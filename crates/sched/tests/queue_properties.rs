//! Property tests for the ready-queue priority structures.

use abg_dag::TaskId;
use abg_sched::queue::{BreadthFirstQueue, FifoQueue, LifoQueue, ReadyQueue};
use proptest::prelude::*;

/// An interleaved push/pop script: `Some((id, level))` pushes, `None`
/// pops.
fn scripts() -> impl Strategy<Value = Vec<Option<(u32, u32)>>> {
    prop::collection::vec(
        prop_oneof![
            3 => ((0u32..1000), (0u32..20)).prop_map(Some),
            1 => Just(None),
        ],
        0..200,
    )
}

/// The pop rule a naive model replays (see [`oracle`]).
#[derive(Clone, Copy)]
enum Discipline {
    BreadthFirst,
    Fifo,
    Lifo,
}

/// Replays a script against a naive `Vec` model of the discipline and
/// returns the pop sequence: the model keeps `(level, arrival, id)`
/// triples and pops by linear scan — minimum `(level, arrival)` for
/// breadth-first (stable: FIFO within a level), minimum `arrival` for
/// FIFO, maximum `arrival` for LIFO.
fn oracle(script: &[Option<(u32, u32)>], d: Discipline) -> Vec<u32> {
    let mut model: Vec<(u32, usize, u32)> = Vec::new();
    let mut popped = Vec::new();
    for (arrival, step) in script.iter().enumerate() {
        match step {
            Some((id, level)) => model.push((*level, arrival, *id)),
            None => {
                let pick = match d {
                    Discipline::BreadthFirst => model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(l, a, _))| (l, a))
                        .map(|(i, _)| i),
                    Discipline::Fifo => model
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(_, a, _))| a)
                        .map(|(i, _)| i),
                    Discipline::Lifo => model
                        .iter()
                        .enumerate()
                        .max_by_key(|(_, &(_, a, _))| a)
                        .map(|(i, _)| i),
                };
                if let Some(i) = pick {
                    popped.push(model.remove(i).2);
                }
            }
        }
    }
    popped
}

fn run_script<Q: ReadyQueue>(queue: &mut Q, script: &[Option<(u32, u32)>]) -> Vec<u32> {
    let mut popped = Vec::new();
    for step in script {
        match step {
            Some((id, level)) => queue.push(TaskId(*id), *level),
            None => {
                if let Some(t) = queue.pop() {
                    popped.push(t.0);
                }
            }
        }
    }
    popped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The breadth-first queue always pops a task of the minimum level
    /// currently present, regardless of interleaving.
    #[test]
    fn breadth_first_always_pops_minimum_level(script in scripts()) {
        let mut queue = BreadthFirstQueue::default();
        // Shadow model: multiset of (level, id) currently enqueued.
        let mut model: Vec<(u32, u32)> = Vec::new();
        for step in &script {
            match step {
                Some((id, level)) => {
                    queue.push(TaskId(*id), *level);
                    model.push((*level, *id));
                }
                None => {
                    let popped = queue.pop();
                    match popped {
                        Some(t) => {
                            let min_level = model.iter().map(|(l, _)| *l).min()
                                .expect("queue non-empty implies model non-empty");
                            let idx = model.iter()
                                .position(|&(l, id)| id == t.0 && l == min_level)
                                .unwrap_or_else(|| panic!(
                                    "popped {t} is not a minimum-level ({min_level}) task"));
                            model.swap_remove(idx);
                        }
                        None => prop_assert!(model.is_empty()),
                    }
                }
            }
            prop_assert_eq!(queue.len(), model.len());
        }
    }

    /// Conservation: across any script, every queue type pops exactly
    /// the ids it was given (drain at the end and compare multisets).
    #[test]
    fn queues_conserve_tasks(script in scripts()) {
        fn check<Q: ReadyQueue>(mut q: Q, script: &[Option<(u32, u32)>]) {
            let mut popped = run_script(&mut q, script);
            while let Some(t) = q.pop() {
                popped.push(t.0);
            }
            let mut pushed: Vec<u32> =
                script.iter().flatten().map(|(id, _)| *id).collect();
            pushed.sort_unstable();
            popped.sort_unstable();
            assert_eq!(pushed, popped, "queue lost or duplicated tasks");
        }
        check(BreadthFirstQueue::default(), &script);
        check(FifoQueue::default(), &script);
        check(LifoQueue::default(), &script);
    }

    /// Exact-identity oracle: each queue's full pop sequence over an
    /// interleaved script equals a naive sorted model of its discipline
    /// — for breadth-first that is "stable sort by level": minimum level
    /// first, FIFO (push order) within a level. The interleaving drives
    /// the breadth-first cursor up and then pushes below it, so the
    /// rewind path is exercised, not just monotone level streams.
    #[test]
    fn pop_sequences_match_sorted_model(script in scripts()) {
        let bf = run_script(&mut BreadthFirstQueue::default(), &script);
        let fifo = run_script(&mut FifoQueue::default(), &script);
        let lifo = run_script(&mut LifoQueue::default(), &script);
        prop_assert_eq!(bf, oracle(&script, Discipline::BreadthFirst));
        prop_assert_eq!(fifo, oracle(&script, Discipline::Fifo));
        prop_assert_eq!(lifo, oracle(&script, Discipline::Lifo));
    }

    /// Directed push-below-cursor coverage: drain a high level to park
    /// the breadth-first cursor there, then push strictly lower levels.
    /// Every later pop must still produce the global minimum level, and
    /// the final drain must follow the sorted model exactly.
    #[test]
    fn breadth_first_push_below_cursor(
        high in 5u32..20,
        low_ids in prop::collection::vec((0u32..1000, 0u32..5), 1..32),
    ) {
        // Park the cursor: push two tasks at `high`, pop them both.
        let mut script: Vec<Option<(u32, u32)>> =
            vec![Some((9000, high)), Some((9001, high)), None, None];
        // Now everything arrives below the cursor.
        script.extend(low_ids.iter().map(|&(id, l)| Some((id, l))));
        script.extend((0..low_ids.len()).map(|_| None));
        let got = run_script(&mut BreadthFirstQueue::default(), &script);
        prop_assert_eq!(got, oracle(&script, Discipline::BreadthFirst));
    }

    /// FIFO pops in push order; LIFO pops in reverse push order (when
    /// pops happen only after all pushes).
    #[test]
    fn fifo_and_lifo_orders(ids in prop::collection::vec(0u32..1000, 0..64)) {
        let mut fifo = FifoQueue::default();
        let mut lifo = LifoQueue::default();
        for &id in &ids {
            fifo.push(TaskId(id), 0);
            lifo.push(TaskId(id), 0);
        }
        let fifo_out: Vec<u32> = std::iter::from_fn(|| fifo.pop()).map(|t| t.0).collect();
        let lifo_out: Vec<u32> = std::iter::from_fn(|| lifo.pop()).map(|t| t.0).collect();
        prop_assert_eq!(&fifo_out, &ids);
        let reversed: Vec<u32> = ids.iter().rev().copied().collect();
        prop_assert_eq!(&lifo_out, &reversed);
    }
}
