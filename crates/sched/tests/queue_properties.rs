//! Property tests for the ready-queue priority structures.

use abg_dag::TaskId;
use abg_sched::queue::{BreadthFirstQueue, FifoQueue, LifoQueue, ReadyQueue};
use proptest::prelude::*;

/// An interleaved push/pop script: `Some((id, level))` pushes, `None`
/// pops.
fn scripts() -> impl Strategy<Value = Vec<Option<(u32, u32)>>> {
    prop::collection::vec(
        prop_oneof![
            3 => ((0u32..1000), (0u32..20)).prop_map(Some),
            1 => Just(None),
        ],
        0..200,
    )
}

fn run_script<Q: ReadyQueue>(queue: &mut Q, script: &[Option<(u32, u32)>]) -> Vec<u32> {
    let mut popped = Vec::new();
    for step in script {
        match step {
            Some((id, level)) => queue.push(TaskId(*id), *level),
            None => {
                if let Some(t) = queue.pop() {
                    popped.push(t.0);
                }
            }
        }
    }
    popped
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The breadth-first queue always pops a task of the minimum level
    /// currently present, regardless of interleaving.
    #[test]
    fn breadth_first_always_pops_minimum_level(script in scripts()) {
        let mut queue = BreadthFirstQueue::default();
        // Shadow model: multiset of (level, id) currently enqueued.
        let mut model: Vec<(u32, u32)> = Vec::new();
        for step in &script {
            match step {
                Some((id, level)) => {
                    queue.push(TaskId(*id), *level);
                    model.push((*level, *id));
                }
                None => {
                    let popped = queue.pop();
                    match popped {
                        Some(t) => {
                            let min_level = model.iter().map(|(l, _)| *l).min()
                                .expect("queue non-empty implies model non-empty");
                            let idx = model.iter()
                                .position(|&(l, id)| id == t.0 && l == min_level)
                                .unwrap_or_else(|| panic!(
                                    "popped {t} is not a minimum-level ({min_level}) task"));
                            model.swap_remove(idx);
                        }
                        None => prop_assert!(model.is_empty()),
                    }
                }
            }
            prop_assert_eq!(queue.len(), model.len());
        }
    }

    /// Conservation: across any script, every queue type pops exactly
    /// the ids it was given (drain at the end and compare multisets).
    #[test]
    fn queues_conserve_tasks(script in scripts()) {
        fn check<Q: ReadyQueue>(mut q: Q, script: &[Option<(u32, u32)>]) {
            let mut popped = run_script(&mut q, script);
            while let Some(t) = q.pop() {
                popped.push(t.0);
            }
            let mut pushed: Vec<u32> =
                script.iter().flatten().map(|(id, _)| *id).collect();
            pushed.sort_unstable();
            popped.sort_unstable();
            assert_eq!(pushed, popped, "queue lost or duplicated tasks");
        }
        check(BreadthFirstQueue::default(), &script);
        check(FifoQueue::default(), &script);
        check(LifoQueue::default(), &script);
    }

    /// FIFO pops in push order; LIFO pops in reverse push order (when
    /// pops happen only after all pushes).
    #[test]
    fn fifo_and_lifo_orders(ids in prop::collection::vec(0u32..1000, 0..64)) {
        let mut fifo = FifoQueue::default();
        let mut lifo = LifoQueue::default();
        for &id in &ids {
            fifo.push(TaskId(id), 0);
            lifo.push(TaskId(id), 0);
        }
        let fifo_out: Vec<u32> = std::iter::from_fn(|| fifo.pop()).map(|t| t.0).collect();
        let lifo_out: Vec<u32> = std::iter::from_fn(|| lifo.pop()).map(|t| t.0).collect();
        prop_assert_eq!(&fifo_out, &ids);
        let reversed: Vec<u32> = ids.iter().rev().copied().collect();
        prop_assert_eq!(&lifo_out, &reversed);
    }
}
