//! The naive per-step reference kernel.
//!
//! [`ReferenceExecutor`] preserves the original, pre-optimisation
//! execution kernel: one task at a time through the ready queue, the dag
//! handle re-borrowed at every access, and the quantum span recovered by
//! cloning the per-level completion counters at the quantum boundary and
//! rescanning all `T∞` levels — `O(T∞)` per quantum regardless of how
//! little work the quantum did.
//!
//! It exists for two reasons:
//!
//! 1. **Equivalence testing.** The optimised
//!    [`DagExecutor`](crate::DagExecutor) must produce bit-identical
//!    [`QuantumStats`] on every quantum; the `executor_equivalence`
//!    proptest suite drives both kernels in lockstep over random dags.
//!    To make the span comparison exact rather than approximate, the
//!    reference accumulates span per completed task in pop order as
//!    `1.0 / level_size` — IEEE division yields exactly the value the
//!    optimised kernel reads from the precomputed reciprocal table, and
//!    the addition order matches, so the sums are bit-equal. The legacy
//!    rescan formula (`Δcompleted / size` summed per level) is still
//!    computed every quantum and cross-checked against the per-task sum
//!    to within `1e-9`, guarding against semantic drift in either.
//! 2. **Benchmarking the before/after.** `cargo bench -p abg-bench` and
//!    the CLI `bench` subcommand run the same microkernels through this
//!    executor and the optimised one, so the speedup claimed by the
//!    kernel overhaul stays measurable in every future checkout.

use crate::quantum::QuantumStats;
use crate::queue::{BreadthFirstQueue, ReadyQueue};
use crate::JobExecutor;
use abg_dag::{ExplicitDag, TaskId};
use std::borrow::Borrow;

/// The pre-overhaul per-task executor: per-step loop, per-access dag
/// borrow, and an `O(T∞)` clone-and-rescan of the per-level completion
/// counters at every quantum boundary.
///
/// Semantically identical to [`DagExecutor`](crate::DagExecutor) with the
/// same queue discipline; see the module docs for why it is kept.
#[derive(Debug)]
pub struct ReferenceExecutor<D: Borrow<ExplicitDag>, Q: ReadyQueue> {
    dag: D,
    remaining_preds: Vec<u32>,
    ready: Q,
    completed_per_level: Vec<u64>,
    /// Weighted dags only: completed cost units per level, for the
    /// weighted span rescan cross-check.
    completed_cost_per_level: Vec<u64>,
    completed: u64,
    /// Processor-step units executed (weighted dags count partial
    /// progress; equals `completed` on unit dags).
    worked: u64,
    elapsed: u64,
    batch: Vec<TaskId>,
    /// Weighted dags only: started-but-unfinished tasks with residual
    /// cost, in start order (mirrors the optimised kernel's slot list).
    in_progress: Vec<(TaskId, u64)>,
}

/// Reference B-Greedy (breadth-first) executor over a borrowed dag.
pub type ReferenceBGreedyExecutor<'a> = ReferenceExecutor<&'a ExplicitDag, BreadthFirstQueue>;

impl<D: Borrow<ExplicitDag>, Q: ReadyQueue> ReferenceExecutor<D, Q> {
    /// Creates an executor at the start of the job: all sources ready.
    pub fn new(dag_handle: D) -> Self {
        let dag = dag_handle.borrow();
        let mut ready = Q::default();
        for t in dag.sources() {
            ready.push(t, dag.level(t));
        }
        let remaining_preds = (0..dag.num_tasks() as u32)
            .map(|i| dag.in_degree(TaskId(i)))
            .collect();
        let completed_per_level = vec![0; dag.span() as usize];
        let completed_cost_per_level = vec![0; dag.span() as usize];
        Self {
            dag: dag_handle,
            remaining_preds,
            ready,
            completed_per_level,
            completed_cost_per_level,
            completed: 0,
            worked: 0,
            elapsed: 0,
            batch: Vec::new(),
            in_progress: Vec::new(),
        }
    }

    /// Rewinds to the start of the job in place (the reference mirror of
    /// [`DagExecutor::reset`](crate::DagExecutor::reset), so reset-reuse
    /// can itself be equivalence-tested against this kernel).
    pub fn reset(&mut self) {
        let dag = self.dag.borrow();
        self.remaining_preds.copy_from_slice(dag.in_degrees());
        self.completed_per_level.fill(0);
        self.completed_cost_per_level.fill(0);
        self.completed = 0;
        self.worked = 0;
        self.elapsed = 0;
        self.batch.clear();
        self.in_progress.clear();
        self.ready.clear();
        for t in dag.sources() {
            self.ready.push(t, dag.level(t));
        }
    }

    /// One time step; returns tasks completed and adds each task's
    /// fractional span contribution to `span` in pop order.
    fn step(&mut self, allotment: u32, span: &mut f64) -> u64 {
        let k = (allotment as usize).min(self.ready.len());
        self.batch.clear();
        for _ in 0..k {
            let t = self.ready.pop().expect("queue length checked");
            self.batch.push(t);
        }
        for i in 0..self.batch.len() {
            let t = self.batch[i];
            let l = self.dag.borrow().level(t) as usize;
            self.completed_per_level[l] += 1;
            *span += 1.0 / self.dag.borrow().level_sizes()[l] as f64;
            for &s in self.dag.borrow().successors(t) {
                let r = &mut self.remaining_preds[s.index()];
                *r -= 1;
                if *r == 0 {
                    self.ready.push(s, self.dag.borrow().level(s));
                }
            }
        }
        let done = self.batch.len() as u64;
        self.completed += done;
        done
    }

    /// One weighted time step, kept deliberately naive: the dag handle
    /// is re-borrowed at every access and the span factors are
    /// recomputed inline (`1.0 / level_cost as f64` is the same IEEE
    /// division that produced the optimised kernel's precomputed
    /// reciprocal, so the sums stay bit-equal). Returns processor-step
    /// units executed.
    fn step_weighted(&mut self, allotment: u32, span: &mut f64) -> u64 {
        let a = allotment as usize;
        while self.in_progress.len() < a {
            match self.ready.pop() {
                Some(t) => {
                    let c = self
                        .dag
                        .borrow()
                        .weight_profile()
                        .expect("weighted step requires a weight table")
                        .cost(t);
                    self.in_progress.push((t, c));
                }
                None => break,
            }
        }
        let run = self.in_progress.len().min(a);
        for slot in self.in_progress[..run].iter_mut() {
            slot.1 -= 1;
        }
        self.worked += run as u64;
        let mut kept = 0usize;
        for i in 0..self.in_progress.len() {
            let (t, rem) = self.in_progress[i];
            if rem == 0 {
                let l = self.dag.borrow().level(t) as usize;
                let c = self.dag.borrow().weight_profile().unwrap().cost(t);
                let level_cost = self.dag.borrow().weight_profile().unwrap().level_cost(l);
                let level_max = self
                    .dag
                    .borrow()
                    .weight_profile()
                    .unwrap()
                    .level_max_cost(l);
                self.completed_per_level[l] += 1;
                self.completed_cost_per_level[l] += c;
                *span += c as f64 * (1.0 / level_cost as f64) * level_max as f64;
                self.completed += 1;
                for &s in self.dag.borrow().successors(t) {
                    let r = &mut self.remaining_preds[s.index()];
                    *r -= 1;
                    if *r == 0 {
                        self.ready.push(s, self.dag.borrow().level(s));
                    }
                }
            } else {
                self.in_progress[kept] = (t, rem);
                kept += 1;
            }
        }
        self.in_progress.truncate(kept);
        run as u64
    }

    /// The weighted quantum loop, with the weighted analogue of the
    /// legacy rescan: per level, the completed cost units this quantum
    /// times `level_max_cost / level_cost` must agree with the per-task
    /// accumulation to within `1e-9`.
    fn run_quantum_weighted(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        let before = self.completed_cost_per_level.clone();
        let mut work = 0u64;
        let mut steps_worked = 0u64;
        let mut span = 0.0f64;
        for _ in 0..steps {
            if self.is_complete() {
                break;
            }
            let units = self.step_weighted(allotment, &mut span);
            debug_assert!(units > 0, "a live job always has a ready or running task");
            work += units;
            steps_worked += 1;
            self.elapsed += 1;
        }
        let dag = self.dag.borrow();
        let wp = dag.weight_profile().expect("weighted quantum");
        let rescan: f64 = self
            .completed_cost_per_level
            .iter()
            .zip(&before)
            .enumerate()
            .map(|(l, (now, was))| {
                (now - was) as f64 / wp.level_cost(l) as f64 * wp.level_max_cost(l) as f64
            })
            .sum();
        assert!(
            (rescan - span).abs() < 1e-9,
            "weighted per-task span {span} diverged from per-level rescan {rescan}"
        );
        QuantumStats {
            allotment,
            quantum_len: steps,
            steps_worked,
            work,
            span,
            completed: self.is_complete(),
        }
    }
}

impl<D: Borrow<ExplicitDag>, Q: ReadyQueue> JobExecutor for ReferenceExecutor<D, Q> {
    fn run_quantum(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        if allotment > 0 && !self.dag.borrow().is_unit_weight() {
            return self.run_quantum_weighted(allotment, steps);
        }
        let before = self.completed_per_level.clone();
        let mut work = 0u64;
        let mut steps_worked = 0u64;
        let mut span = 0.0f64;
        if allotment > 0 {
            for _ in 0..steps {
                if self.is_complete() {
                    break;
                }
                let done = self.step(allotment, &mut span);
                debug_assert!(done > 0, "a live job always has a ready task");
                work += done;
                steps_worked += 1;
                self.elapsed += 1;
            }
        }
        // The legacy O(T∞) rescan; kept live (a plain assert, present in
        // release builds too) so the reference both pays the original
        // per-quantum cost in benchmarks and cross-checks the per-task
        // accumulation for semantic drift.
        let rescan: f64 = self
            .completed_per_level
            .iter()
            .zip(&before)
            .zip(self.dag.borrow().level_sizes())
            .map(|((now, was), &size)| (now - was) as f64 / size as f64)
            .sum();
        assert!(
            (rescan - span).abs() < 1e-9,
            "per-task span {span} diverged from per-level rescan {rescan}"
        );
        QuantumStats {
            allotment,
            quantum_len: steps,
            steps_worked,
            work,
            span,
            completed: self.is_complete(),
        }
    }

    fn is_complete(&self) -> bool {
        self.completed == self.dag.borrow().num_tasks() as u64
    }

    fn total_work(&self) -> u64 {
        self.dag.borrow().work()
    }

    fn total_span(&self) -> u64 {
        self.dag.borrow().weighted_span()
    }

    fn completed_work(&self) -> u64 {
        if self.dag.borrow().is_unit_weight() {
            self.completed
        } else {
            self.worked
        }
    }

    fn elapsed_steps(&self) -> u64 {
        self.elapsed
    }

    fn try_reset(&mut self) -> bool {
        self.reset();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_dag::generate::figure2_job;

    #[test]
    fn reference_reproduces_figure2() {
        let d = figure2_job();
        let mut ex = ReferenceBGreedyExecutor::new(&d);
        let warmup = ex.run_quantum(1, 2);
        assert_eq!(warmup.work, 2);
        let q = ex.run_quantum(4, 3);
        assert_eq!(q.work, 12);
        assert!((q.span - 2.4).abs() < 1e-12, "span = {}", q.span);
    }
}
