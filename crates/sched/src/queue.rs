//! Ready-task queues encoding each greedy variant's priority rule.
//!
//! A greedy scheduler is fully determined by how it picks which ready
//! tasks to run when more are ready than processors are allotted. The
//! [`ReadyQueue`] trait captures that choice; the generic executor in
//! [`crate::executor`] is parameterised over it.

use abg_dag::{Level, TaskId};
use std::collections::VecDeque;

/// A container of ready tasks with a scheduler-specific pop order.
pub trait ReadyQueue: Default {
    /// Inserts a task that just became ready, along with its level.
    fn push(&mut self, task: TaskId, level: Level);

    /// Removes and returns the next task to execute, or `None` if empty.
    fn pop(&mut self) -> Option<TaskId>;

    /// Number of ready tasks.
    fn len(&self) -> usize;

    /// Whether no tasks are ready.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every task while keeping allocated storage, so a reset
    /// executor can refill the queue without reallocating.
    fn clear(&mut self);

    /// Bulk-access hook: a queue that maintains per-level buckets returns
    /// itself here, which lets the executor drain whole frontier levels
    /// as contiguous slices instead of per-task `pop` calls. Queues
    /// without level structure return `None` (the default), keeping the
    /// executor on the exact per-task path. Monomorphisation turns the
    /// check into a compile-time constant for every concrete queue.
    fn as_level_buckets(&mut self) -> Option<&mut BreadthFirstQueue> {
        None
    }
}

/// Breadth-first priority: always pops a ready task with the **lowest
/// level** (the B-Greedy rule, Section 2). Ties within a level break in
/// FIFO order.
///
/// Each level is a `Vec` bucket with a consumed-prefix head index
/// (instead of a `VecDeque`), so the pending tasks of a level are one
/// contiguous slice — the representation behind the executor's bulk
/// level stepping. A fully consumed bucket is cleared and its head
/// rewound, so the backing storage is reused when later pushes land on
/// the same level (which only happens after a `clear`/reset on
/// well-formed dags).
#[derive(Debug, Default, Clone)]
pub struct BreadthFirstQueue {
    buckets: Vec<Vec<TaskId>>,
    /// Consumed prefix per bucket: `buckets[l][heads[l]..]` is pending.
    heads: Vec<usize>,
    /// Lower bound on the first non-empty bucket; monotonically advanced
    /// by `pop`, reset by `push` when a lower level arrives (which cannot
    /// happen on well-formed dags, but the structure stays correct).
    cursor: usize,
    len: usize,
}

impl BreadthFirstQueue {
    /// Advances the cursor to the lowest level with pending tasks and
    /// returns `(level, pending count)`; `None` when empty.
    pub fn current_level(&mut self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        while self.heads[self.cursor] == self.buckets[self.cursor].len() {
            self.cursor += 1;
        }
        Some((
            self.cursor,
            self.buckets[self.cursor].len() - self.heads[self.cursor],
        ))
    }

    /// The pending tasks of level `l` in FIFO order, as one slice.
    pub fn pending(&self, l: usize) -> &[TaskId] {
        &self.buckets[l][self.heads[l]..]
    }

    /// Marks the first `n` pending tasks of level `l` consumed (they must
    /// already have been copied out). A fully consumed bucket is cleared
    /// in place so its storage is reused.
    pub fn consume(&mut self, l: usize, n: usize) {
        debug_assert!(self.heads[l] + n <= self.buckets[l].len());
        self.heads[l] += n;
        self.len -= n;
        if self.heads[l] == self.buckets[l].len() {
            self.buckets[l].clear();
            self.heads[l] = 0;
        }
    }

    /// Pre-sizes the bucket table to hold levels `0..levels`, so pushes
    /// through a [`LevelPusher`] never need to grow it mid-drain.
    pub fn ensure_levels(&mut self, levels: usize) {
        if levels > self.buckets.len() {
            self.buckets.resize_with(levels, Vec::new);
            self.heads.resize(levels, 0);
        }
    }

    /// Splits the queue into the first `n` pending tasks of level `l`
    /// (borrowed in place — no copy) and a [`LevelPusher`] that can
    /// insert tasks at strictly higher levels while the slice is live.
    /// This is the zero-copy core of the executor's saturated bulk step:
    /// while the minimum nonempty level drains, every newly enabled
    /// successor lives above it, so the two borrows are disjoint.
    ///
    /// Call [`finish_bulk`](Self::finish_bulk) afterwards with the
    /// pusher's final [`pushed`](LevelPusher::pushed) count to commit the
    /// drain. Requires [`ensure_levels`](Self::ensure_levels) to cover
    /// every level the pusher will see.
    ///
    /// # Panics
    ///
    /// The pusher panics (index out of bounds) if a task is pushed at a
    /// level `≤ l` or beyond the ensured table — both would break the
    /// frozen-frontier invariant the bulk step relies on.
    pub fn bulk_level(&mut self, l: usize, n: usize) -> (&[TaskId], LevelPusher<'_>) {
        let (low, high) = self.buckets.split_at_mut(l + 1);
        let head = self.heads[l];
        debug_assert!(head + n <= low[l].len());
        (
            &low[l][head..head + n],
            LevelPusher {
                buckets: high,
                base: l + 1,
                pushed: 0,
            },
        )
    }

    /// Specialisation of [`bulk_level`](Self::bulk_level) for dags whose
    /// every edge drops exactly one level: all successors enabled while
    /// level `l` drains land on level `l + 1`, so instead of a
    /// [`LevelPusher`] the caller gets bucket `l + 1` itself and appends
    /// straight into it (e.g. via `extend_from_slice`) with no per-task
    /// level indexing at all. Commit with
    /// [`finish_bulk`](Self::finish_bulk) passing the bucket's length
    /// growth as `pushed`. Requires
    /// [`ensure_levels`](Self::ensure_levels) to cover level `l + 1`.
    pub fn bulk_level_unit(&mut self, l: usize, n: usize) -> (&[TaskId], &mut Vec<TaskId>) {
        let (low, high) = self.buckets.split_at_mut(l + 1);
        let head = self.heads[l];
        debug_assert!(head + n <= low[l].len());
        (&low[l][head..head + n], &mut high[0])
    }

    /// Commits a bulk drain opened by [`bulk_level`](Self::bulk_level):
    /// accounts the `pushed` insertions, then consumes the `n` drained
    /// tasks of level `l`.
    pub fn finish_bulk(&mut self, l: usize, n: usize, pushed: usize) {
        self.len += pushed;
        self.consume(l, n);
    }
}

/// A push handle over the levels strictly above a draining frontier
/// level, produced by [`BreadthFirstQueue::bulk_level`]. Insertions skip
/// the queue's resize/cursor/length bookkeeping (the cursor sits at or
/// below the draining level and the length is committed once by
/// [`BreadthFirstQueue::finish_bulk`]), leaving one bounds-checked
/// bucket append per enabled task.
#[derive(Debug)]
pub struct LevelPusher<'a> {
    buckets: &'a mut [Vec<TaskId>],
    base: usize,
    pushed: usize,
}

impl LevelPusher<'_> {
    /// Appends a task to its level bucket (FIFO position preserved).
    #[inline]
    pub fn push(&mut self, task: TaskId, level: Level) {
        self.buckets[level as usize - self.base].push(task);
        self.pushed += 1;
    }

    /// Tasks pushed through this handle so far — pass the final value to
    /// [`BreadthFirstQueue::finish_bulk`].
    pub fn pushed(&self) -> usize {
        self.pushed
    }
}

impl ReadyQueue for BreadthFirstQueue {
    fn push(&mut self, task: TaskId, level: Level) {
        let l = level as usize;
        if l >= self.buckets.len() {
            self.buckets.resize_with(l + 1, Vec::new);
            self.heads.resize(l + 1, 0);
        }
        self.buckets[l].push(task);
        self.cursor = self.cursor.min(l);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<TaskId> {
        let (l, _) = self.current_level()?;
        let t = self.buckets[l][self.heads[l]];
        self.consume(l, 1);
        Some(t)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.clear();
        }
        self.heads.fill(0);
        self.cursor = 0;
        self.len = 0;
    }

    fn as_level_buckets(&mut self) -> Option<&mut BreadthFirstQueue> {
        Some(self)
    }
}

/// Plain-greedy order: FIFO over readiness time, ignoring levels ("any
/// `a(q)` ready tasks"). This is the unaugmented greedy scheduler of
/// Graham \[10\] used as a measurement baseline.
#[derive(Debug, Default, Clone)]
pub struct FifoQueue {
    queue: VecDeque<TaskId>,
}

impl ReadyQueue for FifoQueue {
    fn push(&mut self, task: TaskId, _level: Level) {
        self.queue.push_back(task);
    }

    fn pop(&mut self) -> Option<TaskId> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }

    fn clear(&mut self) {
        self.queue.clear();
    }
}

/// Depth-first order: LIFO over readiness time, so the scheduler chases
/// the most recently enabled chain. The antithesis of B-Greedy; included
/// for the scheduler-strategy ablation.
#[derive(Debug, Default, Clone)]
pub struct LifoQueue {
    stack: Vec<TaskId>,
}

impl ReadyQueue for LifoQueue {
    fn push(&mut self, task: TaskId, _level: Level) {
        self.stack.push(task);
    }

    fn pop(&mut self) -> Option<TaskId> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }

    fn clear(&mut self) {
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn breadth_first_pops_lowest_level() {
        let mut q = BreadthFirstQueue::default();
        q.push(t(0), 2);
        q.push(t(1), 0);
        q.push(t(2), 1);
        q.push(t(3), 0);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(t(1)));
        assert_eq!(q.pop(), Some(t(3)));
        assert_eq!(q.pop(), Some(t(2)));
        assert_eq!(q.pop(), Some(t(0)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn breadth_first_interleaved_push_pop() {
        let mut q = BreadthFirstQueue::default();
        q.push(t(0), 1);
        assert_eq!(q.pop(), Some(t(0)));
        // Cursor has advanced past level 0; a later push at level 0 must
        // still be found first.
        q.push(t(1), 3);
        q.push(t(2), 0);
        assert_eq!(q.pop(), Some(t(2)));
        assert_eq!(q.pop(), Some(t(1)));
    }

    #[test]
    fn breadth_first_bulk_slices_match_pop_order() {
        let mut q = BreadthFirstQueue::default();
        q.push(t(4), 1);
        q.push(t(5), 1);
        q.push(t(6), 2);
        let (l, n) = q.current_level().unwrap();
        assert_eq!((l, n), (1, 2));
        assert_eq!(q.pending(1), &[t(4), t(5)]);
        q.consume(1, 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.current_level(), Some((2, 1)));
        q.consume(2, 1);
        assert_eq!(q.current_level(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn breadth_first_partial_consume_keeps_fifo_tail() {
        let mut q = BreadthFirstQueue::default();
        for i in 0..5 {
            q.push(t(i), 0);
        }
        q.consume(0, 2);
        assert_eq!(q.pending(0), &[t(2), t(3), t(4)]);
        assert_eq!(q.pop(), Some(t(2)));
        // Bucket fully consumed → storage rewound; a later push reuses it.
        q.consume(0, 2);
        assert_eq!(q.len(), 0);
        q.push(t(9), 0);
        assert_eq!(q.pending(0), &[t(9)]);
    }

    #[test]
    fn clear_empties_and_queue_stays_usable() {
        let mut q = BreadthFirstQueue::default();
        q.push(t(0), 3);
        q.push(t(1), 1);
        q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.push(t(2), 2);
        assert_eq!(q.pop(), Some(t(2)));

        let mut f = FifoQueue::default();
        f.push(t(0), 0);
        f.clear();
        assert!(f.is_empty());
        let mut l = LifoQueue::default();
        l.push(t(0), 0);
        l.clear();
        assert!(l.is_empty());
    }

    #[test]
    fn only_breadth_first_exposes_level_buckets() {
        assert!(BreadthFirstQueue::default().as_level_buckets().is_some());
        assert!(FifoQueue::default().as_level_buckets().is_none());
        assert!(LifoQueue::default().as_level_buckets().is_none());
    }

    #[test]
    fn fifo_order() {
        let mut q = FifoQueue::default();
        q.push(t(5), 9);
        q.push(t(6), 0);
        assert_eq!(q.pop(), Some(t(5)));
        assert_eq!(q.pop(), Some(t(6)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn lifo_order() {
        let mut q = LifoQueue::default();
        q.push(t(5), 9);
        q.push(t(6), 0);
        assert_eq!(q.pop(), Some(t(6)));
        assert_eq!(q.pop(), Some(t(5)));
    }

    #[test]
    fn lengths_track_contents() {
        let mut q = LifoQueue::default();
        assert!(q.is_empty());
        q.push(t(1), 0);
        q.push(t(2), 0);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
