//! Ready-task queues encoding each greedy variant's priority rule.
//!
//! A greedy scheduler is fully determined by how it picks which ready
//! tasks to run when more are ready than processors are allotted. The
//! [`ReadyQueue`] trait captures that choice; the generic executor in
//! [`crate::executor`] is parameterised over it.

use abg_dag::{Level, TaskId};
use std::collections::VecDeque;

/// A container of ready tasks with a scheduler-specific pop order.
pub trait ReadyQueue: Default {
    /// Inserts a task that just became ready, along with its level.
    fn push(&mut self, task: TaskId, level: Level);

    /// Removes and returns the next task to execute, or `None` if empty.
    fn pop(&mut self) -> Option<TaskId>;

    /// Number of ready tasks.
    fn len(&self) -> usize;

    /// Whether no tasks are ready.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Breadth-first priority: always pops a ready task with the **lowest
/// level** (the B-Greedy rule, Section 2). Ties within a level break in
/// FIFO order.
#[derive(Debug, Default)]
pub struct BreadthFirstQueue {
    buckets: Vec<VecDeque<TaskId>>,
    /// Lower bound on the first non-empty bucket; monotonically advanced
    /// by `pop`, reset by `push` when a lower level arrives (which cannot
    /// happen on well-formed dags, but the structure stays correct).
    cursor: usize,
    len: usize,
}

impl ReadyQueue for BreadthFirstQueue {
    fn push(&mut self, task: TaskId, level: Level) {
        let l = level as usize;
        if l >= self.buckets.len() {
            self.buckets.resize_with(l + 1, VecDeque::new);
        }
        self.buckets[l].push_back(task);
        self.cursor = self.cursor.min(l);
        self.len += 1;
    }

    fn pop(&mut self) -> Option<TaskId> {
        while self.cursor < self.buckets.len() {
            if let Some(t) = self.buckets[self.cursor].pop_front() {
                self.len -= 1;
                return Some(t);
            }
            self.cursor += 1;
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }
}

/// Plain-greedy order: FIFO over readiness time, ignoring levels ("any
/// `a(q)` ready tasks"). This is the unaugmented greedy scheduler of
/// Graham [10] used as a measurement baseline.
#[derive(Debug, Default)]
pub struct FifoQueue {
    queue: VecDeque<TaskId>,
}

impl ReadyQueue for FifoQueue {
    fn push(&mut self, task: TaskId, _level: Level) {
        self.queue.push_back(task);
    }

    fn pop(&mut self) -> Option<TaskId> {
        self.queue.pop_front()
    }

    fn len(&self) -> usize {
        self.queue.len()
    }
}

/// Depth-first order: LIFO over readiness time, so the scheduler chases
/// the most recently enabled chain. The antithesis of B-Greedy; included
/// for the scheduler-strategy ablation.
#[derive(Debug, Default)]
pub struct LifoQueue {
    stack: Vec<TaskId>,
}

impl ReadyQueue for LifoQueue {
    fn push(&mut self, task: TaskId, _level: Level) {
        self.stack.push(task);
    }

    fn pop(&mut self) -> Option<TaskId> {
        self.stack.pop()
    }

    fn len(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TaskId {
        TaskId(i)
    }

    #[test]
    fn breadth_first_pops_lowest_level() {
        let mut q = BreadthFirstQueue::default();
        q.push(t(0), 2);
        q.push(t(1), 0);
        q.push(t(2), 1);
        q.push(t(3), 0);
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some(t(1)));
        assert_eq!(q.pop(), Some(t(3)));
        assert_eq!(q.pop(), Some(t(2)));
        assert_eq!(q.pop(), Some(t(0)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn breadth_first_interleaved_push_pop() {
        let mut q = BreadthFirstQueue::default();
        q.push(t(0), 1);
        assert_eq!(q.pop(), Some(t(0)));
        // Cursor has advanced past level 0; a later push at level 0 must
        // still be found first.
        q.push(t(1), 3);
        q.push(t(2), 0);
        assert_eq!(q.pop(), Some(t(2)));
        assert_eq!(q.pop(), Some(t(1)));
    }

    #[test]
    fn fifo_order() {
        let mut q = FifoQueue::default();
        q.push(t(5), 9);
        q.push(t(6), 0);
        assert_eq!(q.pop(), Some(t(5)));
        assert_eq!(q.pop(), Some(t(6)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn lifo_order() {
        let mut q = LifoQueue::default();
        q.push(t(5), 9);
        q.push(t(6), 0);
        assert_eq!(q.pop(), Some(t(6)));
        assert_eq!(q.pop(), Some(t(5)));
    }

    #[test]
    fn lengths_track_contents() {
        let mut q = LifoQueue::default();
        assert!(q.is_empty());
        q.push(t(1), 0);
        q.push(t(2), 0);
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
    }
}
