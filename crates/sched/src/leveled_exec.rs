//! Fast-forward executor for barrier-synchronous leveled jobs.
//!
//! On a [`LeveledJob`] only one level is ever ready (the barrier), so any
//! greedy scheduler — B-Greedy included — executes
//! `min(allotment, remaining-in-level)` tasks per step and crosses into
//! the next level on the following step. That makes a whole quantum
//! computable in `O(levels touched)` time with exact task-level fidelity,
//! which is what lets the paper-scale sweeps (thousands of jobs with
//! millions of tasks) run in seconds.

use crate::executor::OwnedBGreedyExecutor;
use crate::quantum::QuantumStats;
use crate::JobExecutor;
use abg_dag::LeveledJob;
use std::borrow::Borrow;

/// Executor state over a [`LeveledJob`]: the current level and how many
/// of its tasks have completed.
///
/// Like [`PipelinedExecutor`](crate::PipelinedExecutor), the executor is
/// generic over how it holds the (immutable) job — owned by default,
/// `&LeveledJob` or `Arc<LeveledJob>` when several runs share one job
/// structure without cloning the width profile.
#[derive(Debug, Clone)]
pub struct LeveledExecutor<J: Borrow<LeveledJob> = LeveledJob> {
    job: J,
    level: usize,
    done_in_level: u64,
    completed: u64,
    elapsed: u64,
    /// Uniform per-task cost in processor-steps (1 = the unit model).
    task_cost: u64,
    /// Costs above 1 route through the weighted per-task kernel over the
    /// lowered explicit dag (see
    /// [`PipelinedExecutor::with_task_cost`](crate::PipelinedExecutor::with_task_cost)).
    weighted: Option<Box<OwnedBGreedyExecutor>>,
}

impl<J: Borrow<LeveledJob>> LeveledExecutor<J> {
    /// Creates an executor at the start of the job.
    pub fn new(job: J) -> Self {
        Self {
            job,
            level: 0,
            done_in_level: 0,
            completed: 0,
            elapsed: 0,
            task_cost: 1,
            weighted: None,
        }
    }

    /// Creates an executor whose every task costs `cost` processor-steps.
    /// `LeveledJob` has no per-task identity, so the weighted
    /// generalisation is uniform; costs above 1 execute the lowered
    /// explicit dag through the weighted B-Greedy kernel, which is exact
    /// on the residual-work semantics.
    pub fn with_task_cost(job: J, cost: u64) -> Self {
        let cost = cost.max(1);
        let weighted = (cost > 1).then(|| {
            let dag = job
                .borrow()
                .to_explicit()
                .with_uniform_weight(cost as f64)
                .expect("a positive integer cost is a valid weight");
            Box::new(OwnedBGreedyExecutor::new(dag))
        });
        Self {
            job,
            level: 0,
            done_in_level: 0,
            completed: 0,
            elapsed: 0,
            task_cost: cost,
            weighted,
        }
    }

    /// Uniform processor-steps per task (1 for the unit model).
    pub fn task_cost(&self) -> u64 {
        self.task_cost
    }

    /// The job being executed.
    pub fn job(&self) -> &LeveledJob {
        self.job.borrow()
    }

    /// Index of the level currently in progress (== `span` once done).
    pub fn current_level(&self) -> usize {
        self.level
    }

    /// Tasks completed within the current level.
    pub fn done_in_level(&self) -> u64 {
        self.done_in_level
    }

    /// Rewinds to the start of the job (four counters, allocation-free;
    /// a weighted inner executor resets in place keeping its buffers).
    pub fn reset(&mut self) {
        self.level = 0;
        self.done_in_level = 0;
        self.completed = 0;
        self.elapsed = 0;
        if let Some(inner) = &mut self.weighted {
            inner.reset();
        }
    }
}

impl<J: Borrow<LeveledJob>> JobExecutor for LeveledExecutor<J> {
    fn run_quantum(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        if let Some(inner) = &mut self.weighted {
            return inner.run_quantum(allotment, steps);
        }
        let mut work = 0u64;
        let mut span = 0.0f64;
        let mut steps_left = if allotment == 0 { 0 } else { steps };
        let mut steps_worked = 0u64;
        let a = allotment as u64;
        let widths = self.job.borrow().widths();
        while steps_left > 0 && self.level < widths.len() {
            let width = widths[self.level];
            let remaining = width - self.done_in_level;
            // Steps to finish the level at `a` tasks per step.
            let need = remaining.div_ceil(a);
            if need <= steps_left {
                work += remaining;
                span += remaining as f64 / width as f64;
                steps_left -= need;
                steps_worked += need;
                self.level += 1;
                self.done_in_level = 0;
            } else {
                let executed = steps_left * a; // < remaining, so no spill
                work += executed;
                span += executed as f64 / width as f64;
                self.done_in_level += executed;
                steps_worked += steps_left;
                steps_left = 0;
            }
        }
        self.completed += work;
        self.elapsed += steps_worked;
        QuantumStats {
            allotment,
            quantum_len: steps,
            steps_worked,
            work,
            span,
            completed: self.is_complete(),
        }
    }

    fn is_complete(&self) -> bool {
        match &self.weighted {
            Some(inner) => inner.is_complete(),
            None => self.level >= self.job.borrow().widths().len(),
        }
    }

    fn total_work(&self) -> u64 {
        match &self.weighted {
            Some(inner) => inner.total_work(),
            None => self.job.borrow().work(),
        }
    }

    fn total_span(&self) -> u64 {
        match &self.weighted {
            Some(inner) => inner.total_span(),
            None => self.job.borrow().span(),
        }
    }

    fn completed_work(&self) -> u64 {
        match &self.weighted {
            Some(inner) => inner.completed_work(),
            None => self.completed,
        }
    }

    fn elapsed_steps(&self) -> u64 {
        match &self.weighted {
            Some(inner) => inner.elapsed_steps(),
            None => self.elapsed,
        }
    }

    fn try_reset(&mut self) -> bool {
        self.reset();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::BGreedyExecutor;
    use abg_dag::LeveledJob;

    /// Runs the same quantum schedule through the fast path and through
    /// the per-task executor on the lowered dag, asserting identical
    /// statistics for every quantum.
    fn assert_equivalent(job: LeveledJob, allotments: &[u32], quantum_len: u64) {
        let explicit = job.to_explicit();
        let mut fast = LeveledExecutor::new(job);
        let mut slow = BGreedyExecutor::new(&explicit);
        for (i, &a) in allotments.iter().enumerate() {
            let f = fast.run_quantum(a, quantum_len);
            let s = slow.run_quantum(a, quantum_len);
            assert_eq!(f.work, s.work, "quantum {i}: work");
            assert!(
                (f.span - s.span).abs() < 1e-9,
                "quantum {i}: span {} vs {}",
                f.span,
                s.span
            );
            assert_eq!(f.steps_worked, s.steps_worked, "quantum {i}: steps");
            assert_eq!(f.completed, s.completed, "quantum {i}: completed");
            if fast.is_complete() {
                break;
            }
        }
    }

    #[test]
    fn matches_per_task_executor_on_constant_job() {
        assert_equivalent(LeveledJob::constant(7, 12), &[3; 20], 5);
    }

    #[test]
    fn matches_per_task_executor_on_forkjoin_job() {
        let job = LeveledJob::from_widths(vec![1, 1, 6, 6, 6, 1, 4, 4, 1, 1]);
        for a in [1u32, 2, 3, 5, 8, 100] {
            assert_equivalent(job.clone(), &[a; 40], 4);
        }
    }

    #[test]
    fn matches_with_varying_allotments() {
        let job = LeveledJob::from_widths(vec![2, 5, 3, 8, 1, 9]);
        assert_equivalent(job, &[1, 4, 2, 7, 3, 1, 6, 2, 9, 5], 3);
    }

    #[test]
    fn ample_processors_one_level_per_step() {
        let job = LeveledJob::from_widths(vec![4, 9, 2]);
        let mut ex = LeveledExecutor::new(job);
        let s = ex.run_quantum(100, 10);
        assert_eq!(s.steps_worked, 3);
        assert_eq!(s.work, 15);
        assert_eq!(s.span, 3.0);
        assert!(s.completed);
    }

    #[test]
    fn partial_level_progress_is_fractional() {
        let job = LeveledJob::from_widths(vec![10]);
        let mut ex = LeveledExecutor::new(job);
        let s = ex.run_quantum(2, 3);
        assert_eq!(s.work, 6);
        assert!((s.span - 0.6).abs() < 1e-12);
        assert_eq!(ex.done_in_level(), 6);
        assert_eq!(ex.current_level(), 0);
    }

    #[test]
    fn level_finishing_step_does_not_spill_into_next_level() {
        // Width 3 then 5, allotment 2: step 1 runs 2, step 2 runs the
        // last 1 (not 1+1 from the next level — barrier).
        let job = LeveledJob::from_widths(vec![3, 5]);
        let mut ex = LeveledExecutor::new(job);
        let s = ex.run_quantum(2, 2);
        assert_eq!(s.work, 3);
        assert_eq!(ex.current_level(), 1);
        assert_eq!(ex.done_in_level(), 0);
    }

    #[test]
    fn zero_allotment_is_noop() {
        let job = LeveledJob::constant(3, 3);
        let mut ex = LeveledExecutor::new(job);
        let s = ex.run_quantum(0, 100);
        assert_eq!(s.work, 0);
        assert_eq!(s.steps_worked, 0);
        assert!(!ex.is_complete());
    }

    #[test]
    fn elapsed_and_completed_track_totals() {
        let job = LeveledJob::constant(4, 6);
        let mut ex = LeveledExecutor::new(job);
        while !ex.is_complete() {
            ex.run_quantum(2, 3);
        }
        assert_eq!(ex.completed_work(), 24);
        assert_eq!(ex.elapsed_steps(), 12); // 2 steps per level × 6 levels
    }

    #[test]
    fn quantum_parallelism_measures_job_parallelism() {
        // Allotment below width: A(q) should still come out as the
        // *job's* parallelism (width), not the allotment — this is the
        // whole point of the fractional span measurement.
        let job = LeveledJob::constant(10, 100);
        let mut ex = LeveledExecutor::new(job);
        let s = ex.run_quantum(2, 20);
        // 20 steps × 2 = 40 tasks = 4 levels; span 4; A = 10.
        assert_eq!(s.average_parallelism(), Some(10.0));
    }
}
