//! Per-quantum statistics measured by the task scheduler.

use serde::{Deserialize, Serialize};

/// Statistics collected by a task scheduler over one scheduling quantum
/// (Sections 2 and 5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantumStats {
    /// Processors allotted for the quantum, `a(q)`.
    pub allotment: u32,
    /// Nominal quantum length in steps, `L` (the final quantum of a job
    /// may stop working earlier; see [`QuantumStats::steps_worked`]).
    pub quantum_len: u64,
    /// Steps in which at least one task executed. Equal to
    /// `quantum_len` for every quantum except possibly the job's last.
    pub steps_worked: u64,
    /// Quantum work `T1(q)`: tasks completed during the quantum.
    pub work: u64,
    /// Quantum critical-path length `T∞(q)`: levels advanced, counting a
    /// partially completed level as (tasks completed there) / (level
    /// size). Fractional, per the paper's Figure 2.
    pub span: f64,
    /// Whether the job completed during this quantum.
    pub completed: bool,
}

impl QuantumStats {
    /// Whether this was a *full* quantum: work was done on every time
    /// step of the quantum (Section 5.1). All quanta of a live job with a
    /// positive allotment are full except possibly the last.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.steps_worked == self.quantum_len && self.work > 0
    }

    /// Quantum average parallelism `A(q) = T1(q) / T∞(q)`.
    ///
    /// Returns `None` for a quantum in which no work was done (e.g. a
    /// zero allotment): the parallelism measurement is undefined there
    /// and the feedback controller must skip it.
    #[inline]
    pub fn average_parallelism(&self) -> Option<f64> {
        if self.work == 0 || self.span <= 0.0 {
            None
        } else {
            Some(self.work as f64 / self.span)
        }
    }

    /// Quantum work efficiency `α(q) = T1(q) / (a(q)·L)` (Section 5.1).
    ///
    /// Returns `None` when the allotment was zero.
    #[inline]
    pub fn work_efficiency(&self) -> Option<f64> {
        if self.allotment == 0 || self.quantum_len == 0 {
            None
        } else {
            Some(self.work as f64 / (self.allotment as f64 * self.quantum_len as f64))
        }
    }

    /// Quantum critical-path length efficiency `β(q) = T∞(q) / L`
    /// (Section 5.1).
    #[inline]
    pub fn span_efficiency(&self) -> Option<f64> {
        if self.quantum_len == 0 {
            None
        } else {
            Some(self.span / self.quantum_len as f64)
        }
    }

    /// Processor cycles wasted in the quantum under the paper's
    /// accounting: the job holds its allotment for the whole quantum, so
    /// waste is `a(q)·L − T1(q)`.
    #[inline]
    pub fn waste(&self) -> u64 {
        (self.allotment as u64 * self.quantum_len).saturating_sub(self.work)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(allotment: u32, quantum_len: u64, steps: u64, work: u64, span: f64) -> QuantumStats {
        QuantumStats {
            allotment,
            quantum_len,
            steps_worked: steps,
            work,
            span,
            completed: false,
        }
    }

    #[test]
    fn figure2_numbers() {
        // The paper's Figure 2: T1(q) = 12, T∞(q) = 2.4, A(q) = 5.
        let s = stats(4, 3, 3, 12, 2.4);
        assert_eq!(s.average_parallelism(), Some(5.0));
        assert!(s.is_full());
        assert_eq!(s.waste(), 0);
        assert_eq!(s.work_efficiency(), Some(1.0));
        assert!((s.span_efficiency().unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn zero_work_quantum_has_no_parallelism() {
        let s = stats(0, 10, 0, 0, 0.0);
        assert_eq!(s.average_parallelism(), None);
        assert!(!s.is_full());
        assert_eq!(s.work_efficiency(), None);
    }

    #[test]
    fn partial_final_quantum_not_full() {
        let s = stats(2, 10, 4, 8, 4.0);
        assert!(!s.is_full());
        assert_eq!(s.waste(), 2 * 10 - 8);
    }

    #[test]
    fn efficiency_bounds_hold_for_full_quantum() {
        // α(q) + β(q) ≥ 1 must hold for full quanta (Inequality (5));
        // spot-check a representative sample.
        let s = stats(4, 10, 10, 25, 4.0);
        let a = s.work_efficiency().unwrap();
        let b = s.span_efficiency().unwrap();
        assert!(a + b >= 0.99, "α={a} β={b}");
    }

    #[test]
    fn waste_saturates() {
        // Work can exceed a·L only through accounting mistakes; waste
        // must not underflow.
        let s = stats(1, 5, 5, 100, 1.0);
        assert_eq!(s.waste(), 0);
    }
}
