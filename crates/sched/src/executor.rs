//! Per-task executor for explicit dags, generic over the greedy variant.

use crate::quantum::QuantumStats;
use crate::queue::{BreadthFirstQueue, FifoQueue, LifoQueue, ReadyQueue};
use crate::JobExecutor;
use abg_dag::{ExplicitDag, TaskId};
use std::borrow::Borrow;

/// Executes an [`ExplicitDag`] one time step at a time, popping up to
/// `a(q)` ready tasks per step from a [`ReadyQueue`] `Q` that encodes the
/// scheduling priority.
///
/// On unit dags a task popped in step `t` completes at the end of step
/// `t`, and its successors become ready no earlier than step `t+1`
/// (newly enabled tasks are inserted after the step's batch is chosen).
///
/// On *weighted* dags ([`ExplicitDag::is_unit_weight`] false) a task
/// occupies one processor for `task_cost` consecutive steps. Execution
/// is non-preemptive within a quantum — a started task keeps its slot
/// until it completes — but partially executed tasks carry their
/// residual work across quantum boundaries, and when the allotment
/// shrinks the excess in-progress tasks pause in place (their residual
/// is preserved, FIFO order kept) until a slot frees up.
///
/// The dag handle `D` can be a borrow (`&ExplicitDag`) for zero-copy use,
/// or an owning handle (`ExplicitDag`, `Arc<ExplicitDag>`) when the
/// executor must be `'static`, e.g. inside the multi-job simulator's
/// boxed job table.
#[derive(Debug, Clone)]
pub struct DagExecutor<D: Borrow<ExplicitDag>, Q: ReadyQueue> {
    dag: D,
    remaining_preds: Vec<u32>,
    ready: Q,
    /// Tasks completed per level since job start (for fractional T∞(q)).
    completed_per_level: Vec<u64>,
    /// Tasks fully completed since job start.
    completed: u64,
    /// Processor-step units executed since job start (== `completed` on
    /// unit dags; counts partial progress on weighted ones).
    worked: u64,
    elapsed: u64,
    /// Scratch buffer of tasks selected in the current step.
    batch: Vec<TaskId>,
    /// Weighted dags only: started-but-unfinished tasks with their
    /// residual cost, in start order (the front `min(a, len)` entries
    /// hold processors each step; the tail is paused).
    in_progress: Vec<(TaskId, u64)>,
}

/// B-Greedy: greedy with breadth-first (lowest level first) priority.
pub type BGreedyExecutor<'a> = DagExecutor<&'a ExplicitDag, BreadthFirstQueue>;

/// Plain greedy: any ready tasks, FIFO order.
pub type GreedyExecutor<'a> = DagExecutor<&'a ExplicitDag, FifoQueue>;

/// Depth-first greedy: most recently enabled tasks first.
pub type DepthFirstExecutor<'a> = DagExecutor<&'a ExplicitDag, LifoQueue>;

/// Owning B-Greedy executor, usable where `'static` is required.
pub type OwnedBGreedyExecutor = DagExecutor<ExplicitDag, BreadthFirstQueue>;

impl<D: Borrow<ExplicitDag>, Q: ReadyQueue> DagExecutor<D, Q> {
    /// Creates an executor at the start of the job: all sources ready.
    pub fn new(dag_handle: D) -> Self {
        let dag = dag_handle.borrow();
        let mut ready = Q::default();
        for &t in dag.source_tasks() {
            ready.push(t, dag.level(t));
        }
        let remaining_preds = dag.in_degrees().to_vec();
        let completed_per_level = vec![0; dag.span() as usize];
        Self {
            dag: dag_handle,
            remaining_preds,
            ready,
            completed_per_level,
            completed: 0,
            worked: 0,
            elapsed: 0,
            batch: Vec::new(),
            in_progress: Vec::new(),
        }
    }

    /// Rewinds the executor to the start of the job in place: one memcpy
    /// of the dag's cached in-degree table into `remaining_preds`, a
    /// zero-fill of the per-level counters, and a refill of the (cleared,
    /// storage-retaining) ready queue from the cached source list.
    /// Repeated runs of the same dag through a reset executor therefore
    /// allocate nothing, and behave bit-identically to runs through a
    /// freshly constructed executor (enforced by the equivalence suite).
    pub fn reset(&mut self) {
        let dag = self.dag.borrow();
        self.remaining_preds.copy_from_slice(dag.in_degrees());
        self.completed_per_level.fill(0);
        self.completed = 0;
        self.worked = 0;
        self.elapsed = 0;
        self.batch.clear();
        self.in_progress.clear();
        self.ready.clear();
        for &t in dag.source_tasks() {
            self.ready.push(t, dag.level(t));
        }
    }

    /// The dag being executed.
    pub fn dag(&self) -> &ExplicitDag {
        self.dag.borrow()
    }

    /// Number of currently ready tasks (the job's instantaneous
    /// parallelism floor for the next step).
    pub fn ready_tasks(&self) -> usize {
        self.ready.len()
    }

    /// Tasks completed at each level since the job started.
    pub fn completed_per_level(&self) -> &[u64] {
        &self.completed_per_level
    }

    /// Started-but-unfinished tasks with their residual cost (weighted
    /// dags only; always empty on unit dags).
    pub fn in_progress(&self) -> &[(TaskId, u64)] {
        &self.in_progress
    }

    /// The residual-work quantum kernel for weighted dags.
    ///
    /// Each step first keeps every processor already bound to an
    /// in-progress task (the front `min(a, len)` entries of
    /// `in_progress`), then fills free slots by popping the ready queue —
    /// a started task gets `task_cost` residual units and completes when
    /// they reach zero. Completions are swept in slot order; a completed
    /// task at level `l` with cost `c` charges `c · (1/level_cost(l)) ·
    /// level_max_cost(l)` fractional span (so a fully completed level
    /// contributes its max cost, the level's weighted critical-path
    /// share), and releases its successors after the sweep position —
    /// never runnable in the same step. The arithmetic (operand order
    /// included) is bit-identical to the weighted
    /// [`ReferenceExecutor`](crate::reference::ReferenceExecutor) path,
    /// which the `executor_equivalence` proptest suite enforces.
    fn run_quantum_weighted(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        let mut work = 0u64;
        let mut steps_worked = 0u64;
        let mut span = 0.0f64;
        let finished;
        {
            let Self {
                dag,
                remaining_preds,
                ready,
                completed_per_level,
                completed,
                worked,
                elapsed,
                batch: _,
                in_progress,
            } = self;
            let dag: &ExplicitDag = (*dag).borrow();
            let wp = dag
                .weight_profile()
                .expect("weighted quantum requires a weight table");
            let total = dag.num_tasks() as u64;
            let a = allotment as usize;
            let mut remaining = steps;
            while remaining > 0 && *completed < total {
                // Fill free processor slots with newly started tasks.
                while in_progress.len() < a {
                    match ready.pop() {
                        Some(t) => in_progress.push((t, wp.cost(t))),
                        None => break,
                    }
                }
                let run = in_progress.len().min(a);
                debug_assert!(run > 0, "a live job always has a ready or running task");
                for slot in in_progress[..run].iter_mut() {
                    slot.1 -= 1;
                }
                work += run as u64;
                *worked += run as u64;
                // Sweep completions in slot order, compacting the
                // survivors in place (their relative order is the
                // pause/resume fairness order).
                let mut kept = 0usize;
                for i in 0..in_progress.len() {
                    let (t, rem) = in_progress[i];
                    if rem == 0 {
                        let l = dag.level(t) as usize;
                        completed_per_level[l] += 1;
                        span += wp.span_contribution(wp.cost(t), l);
                        *completed += 1;
                        for &s in dag.successors(t) {
                            let r = &mut remaining_preds[s.index()];
                            *r -= 1;
                            if *r == 0 {
                                ready.push(s, dag.level(s));
                            }
                        }
                    } else {
                        in_progress[kept] = (t, rem);
                        kept += 1;
                    }
                }
                in_progress.truncate(kept);
                steps_worked += 1;
                *elapsed += 1;
                remaining -= 1;
            }
            finished = *completed == total;
        }
        QuantumStats {
            allotment,
            quantum_len: steps,
            steps_worked,
            work,
            span,
            completed: finished,
        }
    }
}

impl<D: Borrow<ExplicitDag>, Q: ReadyQueue> JobExecutor for DagExecutor<D, Q> {
    /// The hot-path kernel.
    ///
    /// Per-quantum cost is `O(tasks completed + edges relaxed)` this
    /// quantum: the fractional span `T∞(q)` is accumulated per completed
    /// task from the dag's precomputed reciprocal level sizes instead of
    /// cloning and rescanning the per-level completion counters (which
    /// cost `O(T∞)` per quantum and made chain-heavy workloads
    /// quadratic). The dag handle is borrowed once per quantum, and two
    /// regimes bypass the per-task queue round-trip entirely:
    ///
    /// * **Serial** — exactly one ready task whose completion enables at
    ///   most one successor is fast-forwarded in a tight chain walk.
    /// * **Wide frontier** (breadth-first queues only) — while the lowest
    ///   ready level holds at least `allotment` pending tasks, the
    ///   frontier is frozen: every push during its drain targets a
    ///   strictly higher level, so `s = min(pending / a, remaining)`
    ///   whole steps are advanced at once — one bulk slice copy out of
    ///   the level bucket, one `completed_per_level[l] += s·a` update,
    ///   and successor decrements walked straight over the CSR successor
    ///   slices. A partial level (fewer pending tasks than the allotment)
    ///   falls back to a single straddling step whose batch is gathered
    ///   across consecutive level slices before any successor is
    ///   released, exactly like the per-task step. FIFO/LIFO queues have
    ///   no level structure and always take the per-task path.
    ///
    /// Span is accumulated in task pop order — the saturated bulk loop
    /// performs the same IEEE addition sequence, never an `n × recip`
    /// shortcut — so the result is bit-identical to the per-step
    /// reference kernel
    /// ([`ReferenceExecutor`](crate::reference::ReferenceExecutor)); the
    /// equivalence is enforced by the `executor_equivalence` proptest
    /// suite.
    fn run_quantum(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        if allotment > 0 && !self.dag.borrow().is_unit_weight() && !self.is_complete() {
            // Weighted dags route to the residual-work kernel; the gate
            // keeps every unit-dag run on the bit-pinned fast paths
            // below (an all-1.0 weight table is flagged unit and stays
            // here too).
            return self.run_quantum_weighted(allotment, steps);
        }
        let mut work = 0u64;
        let mut steps_worked = 0u64;
        let mut span = 0.0f64;
        if allotment > 0 && !self.is_complete() {
            // Field-disjoint borrows: bind the dag once for the whole
            // quantum while the queue and counters stay mutable.
            let Self {
                dag,
                remaining_preds,
                ready,
                completed_per_level,
                completed,
                elapsed,
                batch,
                ..
            } = self;
            let dag: &ExplicitDag = (*dag).borrow();
            let recips = dag.level_recips();
            let total = dag.work();
            let mut remaining = steps;
            while remaining > 0 && *completed < total {
                if ready.len() == 1 {
                    // Serial regime: the single ready task is popped by
                    // any positive allotment, so each step executes
                    // exactly one task. Walk the chain until it branches,
                    // dies out into a wider frontier, or the quantum
                    // ends; the queue round-trip is skipped because
                    // popping the sole queued task after pushing it is a
                    // no-op on every queue discipline.
                    let mut t = ready.pop().expect("length checked");
                    loop {
                        let l = dag.level(t) as usize;
                        completed_per_level[l] += 1;
                        span += recips[l];
                        *completed += 1;
                        work += 1;
                        steps_worked += 1;
                        *elapsed += 1;
                        remaining -= 1;
                        batch.clear();
                        for &s in dag.successors(t) {
                            let r = &mut remaining_preds[s.index()];
                            *r -= 1;
                            if *r == 0 {
                                batch.push(s);
                            }
                        }
                        if batch.len() == 1 && remaining > 0 {
                            t = batch[0];
                            continue;
                        }
                        for &s in batch.iter() {
                            ready.push(s, dag.level(s));
                        }
                        break;
                    }
                    continue;
                }
                if let Some(bf) = ready.as_level_buckets() {
                    let a = allotment as usize;
                    let (l, avail) = bf
                        .current_level()
                        .expect("a live job always has a ready task");
                    if avail >= a {
                        // Saturated macro-step: the next `s` steps each
                        // pop exactly `a` tasks from level `l` (lower
                        // buckets are empty and enabled successors land
                        // strictly above `l`), so they collapse into one
                        // bulk pass straight over the bucket slice — no
                        // copy, and successor insertions go through a
                        // split-borrow pusher that skips the queue's
                        // per-push bookkeeping.
                        let s = ((avail / a) as u64).min(remaining);
                        let n = s as usize * a;
                        let r = recips[l];
                        if dag.is_forest() && dag.has_unit_edges() {
                            // Structural fast path: with at most one
                            // predecessor per task, a completed task
                            // enables all its successors outright (no
                            // remaining-predecessor decrement can be
                            // pending), and with unit edges they all land
                            // on level l + 1 — so the relaxation collapses
                            // to appending each CSR successor row into the
                            // next bucket. Skipped decrements leave stale
                            // remaining-predecessor entries, but in a
                            // forest each entry is only ever touched by
                            // its task's sole predecessor, which has now
                            // completed: the entry is never read again.
                            bf.ensure_levels(dag.span() as usize + 1);
                            let (slice, next) = bf.bulk_level_unit(l, n);
                            let before = next.len();
                            // Span accumulation doubles as the id-run
                            // scan: the additions are the same serial
                            // IEEE sequence as per-task popping (`n × r`
                            // would round differently), and the integer
                            // compares ride in the shadow of that FP
                            // dependency chain.
                            let mut consecutive = true;
                            let mut prev = slice[0].0;
                            span += r;
                            for &t in &slice[1..] {
                                consecutive &= t.0 == prev.wrapping_add(1);
                                prev = t.0;
                                span += r;
                            }
                            if consecutive {
                                // One ascending id run: its CSR rows are
                                // one flat range, appended in exactly the
                                // order the per-task walk would push.
                                next.extend_from_slice(
                                    dag.successors_block(slice[0], slice[n - 1]),
                                );
                            } else {
                                for &t in slice {
                                    next.extend_from_slice(dag.successors(t));
                                }
                            }
                            let pushed = next.len() - before;
                            bf.finish_bulk(l, n, pushed);
                        } else {
                            bf.ensure_levels(dag.span() as usize);
                            let (slice, mut pusher) = bf.bulk_level(l, n);
                            for &t in slice {
                                // Same addition sequence as per-task
                                // popping: `n × r` would round
                                // differently.
                                span += r;
                                for &sc in dag.successors(t) {
                                    let rp = &mut remaining_preds[sc.index()];
                                    *rp -= 1;
                                    if *rp == 0 {
                                        pusher.push(sc, dag.level(sc));
                                    }
                                }
                            }
                            let pushed = pusher.pushed();
                            bf.finish_bulk(l, n, pushed);
                        }
                        completed_per_level[l] += n as u64;
                        *completed += n as u64;
                        work += n as u64;
                        steps_worked += s;
                        *elapsed += s;
                        remaining -= s;
                    } else {
                        // Straddling step: the level is narrower than the
                        // allotment, so one step's batch spans several
                        // levels. Gather the whole batch from consecutive
                        // bucket slices first — successors released by it
                        // must not be runnable in the same step.
                        let k = a.min(bf.len());
                        batch.clear();
                        while batch.len() < k {
                            let (lv, av) = bf.current_level().expect("length checked");
                            let take = av.min(k - batch.len());
                            batch.extend_from_slice(&bf.pending(lv)[..take]);
                            bf.consume(lv, take);
                        }
                        for &t in batch.iter() {
                            let lv = dag.level(t) as usize;
                            completed_per_level[lv] += 1;
                            span += recips[lv];
                            for &s in dag.successors(t) {
                                let rp = &mut remaining_preds[s.index()];
                                *rp -= 1;
                                if *rp == 0 {
                                    bf.push(s, dag.level(s));
                                }
                            }
                        }
                        *completed += k as u64;
                        work += k as u64;
                        steps_worked += 1;
                        *elapsed += 1;
                        remaining -= 1;
                    }
                    continue;
                }
                // General step: pop up to `a(q)` ready tasks, complete
                // them, then release their successors (never runnable in
                // the same step because the batch is chosen first).
                let k = (allotment as usize).min(ready.len());
                batch.clear();
                for _ in 0..k {
                    // `len() >= k` guarantees the pops succeed.
                    let t = ready.pop().expect("queue length checked");
                    batch.push(t);
                }
                for &t in batch.iter() {
                    let l = dag.level(t) as usize;
                    completed_per_level[l] += 1;
                    span += recips[l];
                    for &s in dag.successors(t) {
                        let r = &mut remaining_preds[s.index()];
                        *r -= 1;
                        if *r == 0 {
                            ready.push(s, dag.level(s));
                        }
                    }
                }
                let done = batch.len() as u64;
                debug_assert!(done > 0, "a live job always has a ready task");
                *completed += done;
                work += done;
                steps_worked += 1;
                *elapsed += 1;
                remaining -= 1;
            }
        }
        QuantumStats {
            allotment,
            quantum_len: steps,
            steps_worked,
            work,
            span,
            completed: self.is_complete(),
        }
    }

    fn is_complete(&self) -> bool {
        self.completed == self.dag.borrow().num_tasks() as u64
    }

    fn total_work(&self) -> u64 {
        self.dag.borrow().work()
    }

    fn total_span(&self) -> u64 {
        self.dag.borrow().weighted_span()
    }

    fn completed_work(&self) -> u64 {
        if self.dag.borrow().is_unit_weight() {
            self.completed
        } else {
            self.worked
        }
    }

    fn elapsed_steps(&self) -> u64 {
        self.elapsed
    }

    fn try_reset(&mut self) -> bool {
        self.reset();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceExecutor;
    use abg_dag::generate::{chain, figure2_job, fork_join_diamond};
    use abg_dag::DagBuilder;

    #[test]
    fn chain_executes_serially_regardless_of_allotment() {
        let d = chain(6);
        let mut ex = BGreedyExecutor::new(&d);
        let s = ex.run_quantum(8, 100);
        assert_eq!(s.work, 6);
        assert_eq!(s.steps_worked, 6);
        assert!(s.completed);
        assert!(!s.is_full());
        assert_eq!(s.span, 6.0);
        assert_eq!(s.average_parallelism(), Some(1.0));
    }

    #[test]
    fn diamond_with_ample_processors_takes_span_steps() {
        let d = fork_join_diamond(10);
        let mut ex = BGreedyExecutor::new(&d);
        let s = ex.run_quantum(64, 100);
        assert_eq!(s.steps_worked, 3);
        assert_eq!(s.work, 12);
        // Span is accumulated per task as 1/level_size, so a fully
        // completed level of width w contributes w × (1/w) — within an
        // ulp of 1 rather than exactly 1.
        assert!((s.span - 3.0).abs() < 1e-12, "span = {}", s.span);
    }

    #[test]
    fn diamond_with_one_processor_takes_work_steps() {
        let d = fork_join_diamond(10);
        let mut ex = GreedyExecutor::new(&d);
        let s = ex.run_quantum(1, 1000);
        assert_eq!(s.steps_worked, 12);
        assert_eq!(s.work, 12);
    }

    #[test]
    fn figure2_quantum_statistics() {
        // Reproduces the paper's Figure 2 numbers: after a warm-up that
        // completes the source and one chain head, a 3-step quantum with
        // allotment 4 yields T1(q) = 12, T∞(q) = 2.4, A(q) = 5.
        let d = figure2_job();
        let mut ex = BGreedyExecutor::new(&d);
        let warmup = ex.run_quantum(1, 2);
        assert_eq!(warmup.work, 2);
        let q = ex.run_quantum(4, 3);
        assert_eq!(q.work, 12);
        assert!((q.span - 2.4).abs() < 1e-12, "span = {}", q.span);
        assert_eq!(q.average_parallelism(), Some(5.0));
        assert!(q.is_full());
    }

    #[test]
    fn zero_allotment_quantum_is_a_noop() {
        let d = chain(3);
        let mut ex = BGreedyExecutor::new(&d);
        let s = ex.run_quantum(0, 10);
        assert_eq!(s.work, 0);
        assert_eq!(s.steps_worked, 0);
        assert_eq!(s.average_parallelism(), None);
        assert!(!ex.is_complete());
        assert_eq!(ex.elapsed_steps(), 0);
    }

    #[test]
    fn quantum_spans_accumulate_to_total_span() {
        let d = figure2_job();
        let mut ex = BGreedyExecutor::new(&d);
        let mut span = 0.0;
        while !ex.is_complete() {
            span += ex.run_quantum(2, 3).span;
        }
        assert!((span - d.span() as f64).abs() < 1e-9);
        assert_eq!(ex.completed_work(), d.work());
    }

    #[test]
    fn greedy_bound_holds() {
        // Graham/Brent: T ≤ T1/a + T∞ for greedy on a fixed allotment.
        for width in [1u32, 3, 7] {
            for a in [1u32, 2, 5, 16] {
                let d = fork_join_diamond(width);
                let mut ex = BGreedyExecutor::new(&d);
                let s = ex.run_quantum(a, u64::MAX);
                let bound = (d.work() as f64 / a as f64) + d.span() as f64;
                assert!(
                    (s.steps_worked as f64) <= bound + 1e-9,
                    "width {width} a {a}: T = {} > {bound}",
                    s.steps_worked
                );
            }
        }
    }

    #[test]
    fn depth_first_still_completes_everything() {
        let d = figure2_job();
        let mut ex = DepthFirstExecutor::new(&d);
        let s = ex.run_quantum(2, u64::MAX);
        assert_eq!(s.work, d.work());
        assert!(s.completed);
    }

    #[test]
    fn reset_replays_bit_identically() {
        let d = figure2_job();
        let mut ex = BGreedyExecutor::new(&d);
        let run = |ex: &mut BGreedyExecutor| {
            let mut out = Vec::new();
            while !ex.is_complete() {
                let s = ex.run_quantum(3, 4);
                out.push((s.work, s.steps_worked, s.span.to_bits()));
            }
            out
        };
        let first = run(&mut ex);
        ex.reset();
        assert_eq!(ex.completed_work(), 0);
        assert_eq!(ex.elapsed_steps(), 0);
        assert_eq!(ex.ready_tasks(), 1);
        assert!(!ex.is_complete());
        assert_eq!(first, run(&mut ex), "reset run diverged");
        assert!(ex.try_reset());
    }

    #[test]
    fn scrambled_forest_takes_per_row_fallback_exactly() {
        // A unit-edge forest whose level-1 bucket fills in non-ascending
        // id order (0 -> 3, 1 -> 2): the saturated bulk step must detect
        // the broken id run and fall back to per-row appends — and the
        // level-2 bucket it produces ([4, 5]) is ascending again, so the
        // next drain re-enters the single-range copy. Both paths must
        // stay bit-identical to the per-step reference.
        let mut b = DagBuilder::new();
        b.add_tasks(6);
        for (from, to) in [(0, 3), (1, 2), (3, 4), (2, 5)] {
            b.add_edge(TaskId(from), TaskId(to)).unwrap();
        }
        let d = b.build().unwrap();
        assert!(d.is_forest() && d.has_unit_edges());
        let mut fast = BGreedyExecutor::new(&d);
        let mut slow: ReferenceExecutor<&ExplicitDag, BreadthFirstQueue> =
            ReferenceExecutor::new(&d);
        while !fast.is_complete() {
            let f = fast.run_quantum(2, 1);
            let s = slow.run_quantum(2, 1);
            assert_eq!(f.work, s.work);
            assert_eq!(f.steps_worked, s.steps_worked);
            assert_eq!(f.span.to_bits(), s.span.to_bits());
        }
        assert!(slow.is_complete());
    }

    fn weighted_chain() -> abg_dag::ExplicitDag {
        // t0(2) -> t1(3) -> t2(1): work 6, weighted span 6.
        let mut b = DagBuilder::new();
        let t0 = b.add_weighted_task(2.0).unwrap();
        let t1 = b.add_weighted_task(3.0).unwrap();
        let t2 = b.add_task();
        b.add_edge(t0, t1).unwrap();
        b.add_edge(t1, t2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn weighted_tasks_consume_cost_steps() {
        let d = weighted_chain();
        let mut ex = DagExecutor::<_, BreadthFirstQueue>::new(&d);
        let s = ex.run_quantum(4, 100);
        assert_eq!(s.steps_worked, 6, "costs serialise on a chain");
        assert_eq!(s.work, 6, "work counts processor-step units");
        assert!(s.completed);
        assert_eq!(ex.total_work(), 6);
        assert_eq!(ex.total_span(), 6);
        assert!((s.span - 6.0).abs() < 1e-12, "span = {}", s.span);
    }

    #[test]
    fn weighted_residual_carries_across_quanta() {
        let d = weighted_chain();
        let mut ex = DagExecutor::<_, BreadthFirstQueue>::new(&d);
        // One step into t0 (cost 2): partial progress, nothing completed.
        let s = ex.run_quantum(1, 1);
        assert_eq!(s.work, 1);
        assert_eq!(ex.completed_work(), 1, "units, not tasks");
        assert_eq!(ex.in_progress(), &[(TaskId(0), 1)]);
        // The residual unit finishes the task in the next quantum.
        let s = ex.run_quantum(1, 1);
        assert_eq!(s.work, 1);
        assert_eq!(ex.in_progress(), &[], "t0 completed");
        assert_eq!(ex.ready_tasks(), 1, "t1 released");
        while !ex.is_complete() {
            ex.run_quantum(1, 1);
        }
        assert_eq!(ex.elapsed_steps(), 6);
        assert_eq!(ex.completed_work(), 6);
    }

    #[test]
    fn weighted_allotment_shrink_pauses_in_progress_tasks() {
        // Two independent cost-4 tasks; start both, then shrink to 1.
        let mut b = DagBuilder::new();
        b.add_weighted_task(4.0).unwrap();
        b.add_weighted_task(4.0).unwrap();
        let d = b.build().unwrap();
        let mut ex = DagExecutor::<_, BreadthFirstQueue>::new(&d);
        ex.run_quantum(2, 1);
        assert_eq!(ex.in_progress(), &[(TaskId(0), 3), (TaskId(1), 3)]);
        // One processor: the front slot runs, the second pauses intact.
        let s = ex.run_quantum(1, 3);
        assert_eq!(s.work, 3);
        assert_eq!(ex.in_progress(), &[(TaskId(1), 3)], "t1 residual preserved");
        let s = ex.run_quantum(1, 3);
        assert!(s.completed);
        assert_eq!(ex.elapsed_steps(), 7);
    }

    #[test]
    fn weighted_spans_accumulate_to_weighted_span() {
        // a(1) -> {x(2), y(5)} -> z(3): weighted span 1 + 5 + 3 = 9.
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let x = b.add_weighted_task(2.0).unwrap();
        let y = b.add_weighted_task(5.0).unwrap();
        let z = b.add_weighted_task(3.0).unwrap();
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        let d = b.build().unwrap();
        let mut ex = DagExecutor::<_, BreadthFirstQueue>::new(&d);
        let mut span = 0.0;
        while !ex.is_complete() {
            span += ex.run_quantum(2, 3).span;
        }
        assert_eq!(ex.total_span(), 9);
        assert!((span - 9.0).abs() < 1e-9, "span = {span}");
        assert_eq!(ex.completed_work(), d.work());
    }

    #[test]
    fn weighted_reset_replays_bit_identically() {
        let d = weighted_chain();
        let mut ex = DagExecutor::<_, BreadthFirstQueue>::new(&d);
        let run = |ex: &mut DagExecutor<&abg_dag::ExplicitDag, BreadthFirstQueue>| {
            let mut out = Vec::new();
            while !ex.is_complete() {
                let s = ex.run_quantum(2, 3);
                out.push((s.work, s.steps_worked, s.span.to_bits()));
            }
            out
        };
        let first = run(&mut ex);
        assert!(ex.try_reset());
        assert_eq!(first, run(&mut ex), "weighted reset run diverged");
    }

    #[test]
    fn successors_not_runnable_same_step() {
        // Chain of 2 with allotment 2: the child must wait a step.
        let d = chain(2);
        let mut ex = BGreedyExecutor::new(&d);
        let s = ex.run_quantum(2, 10);
        assert_eq!(
            s.steps_worked, 2,
            "unit tasks cannot pipeline within a step"
        );
    }
}
