//! Fast-forward executor for phase-structured pipelined jobs.
//!
//! Inside a width-`w` phase of a [`PhasedJob`] every live chain
//! contributes exactly one ready task, so a greedy scheduler executes
//! `min(a, w, remaining)` tasks per step; the breadth-first rule keeps
//! the chains level-balanced, which makes the execution equivalent to
//! consuming the phase's tasks in level-major order at that rate. That
//! closed form lets a whole quantum be fast-forwarded in
//! `O(phases touched)` while remaining step-exact — the test-suite
//! checks bit-for-bit agreement with the per-task [`BGreedyExecutor`]
//! on the lowered dag.
//!
//! [`BGreedyExecutor`]: crate::executor::BGreedyExecutor

use crate::executor::OwnedBGreedyExecutor;
use crate::quantum::QuantumStats;
use crate::JobExecutor;
use abg_dag::PhasedJob;
use std::borrow::Borrow;

/// Executor state over a [`PhasedJob`]: the current phase and the
/// level-major position within it.
///
/// The job structure is immutable during execution, so the executor is
/// generic over *how* it holds the job: owned (`PhasedJob`, the
/// default), borrowed (`&PhasedJob`), or shared (`Arc<PhasedJob>`). The
/// harness exploits this to run the ABG/A-Greedy pair — and every
/// repetition of a bench kernel — against one job allocation instead of
/// cloning the phase list per run.
///
/// ```
/// use abg_dag::PhasedJob;
/// use abg_sched::{JobExecutor, PipelinedExecutor};
///
/// // A constant-parallelism job: 10 chains, 100 levels.
/// let job = PhasedJob::constant(10, 100);
/// // Two executors over the same job, no clone.
/// let mut ex = PipelinedExecutor::new(&job);
/// let mut other = PipelinedExecutor::new(&job);
/// // 20 steps at 7 processors: pipelining keeps all 7 busy, and the
/// // fractional span measurement still reads the job's parallelism.
/// let q = ex.run_quantum(7, 20);
/// assert_eq!(q.work, 140);
/// assert_eq!(q.average_parallelism(), Some(10.0));
/// assert_eq!(other.run_quantum(7, 20).work, q.work);
/// ```
#[derive(Debug, Clone)]
pub struct PipelinedExecutor<J: Borrow<PhasedJob> = PhasedJob> {
    job: J,
    phase: usize,
    /// Tasks of the current phase already completed (level-major count).
    pos: u64,
    completed: u64,
    elapsed: u64,
    /// Uniform per-task cost in processor-steps (1 = the classic unit
    /// model and the closed-form fast path below).
    task_cost: u64,
    /// Costs above 1 route through the weighted per-task kernel over the
    /// lowered explicit dag — exact by construction, at per-task rather
    /// than per-phase cost.
    weighted: Option<Box<OwnedBGreedyExecutor>>,
}

impl<J: Borrow<PhasedJob>> PipelinedExecutor<J> {
    /// Creates an executor at the start of the job.
    pub fn new(job: J) -> Self {
        Self {
            job,
            phase: 0,
            pos: 0,
            completed: 0,
            elapsed: 0,
            task_cost: 1,
            weighted: None,
        }
    }

    /// Creates an executor whose every task costs `cost` processor-steps
    /// (`cost ≤ 1` is the unit model). `PhasedJob` has no per-task
    /// identity, so the weighted generalisation is uniform: costs above
    /// 1 lower the job to its explicit dag with a uniform weight table
    /// and execute it through the weighted B-Greedy kernel, trading the
    /// `O(phases touched)` closed form for exactness on the residual
    /// semantics.
    pub fn with_task_cost(job: J, cost: u64) -> Self {
        let cost = cost.max(1);
        let weighted = (cost > 1).then(|| {
            let dag = job
                .borrow()
                .to_explicit()
                .with_uniform_weight(cost as f64)
                .expect("a positive integer cost is a valid weight");
            Box::new(OwnedBGreedyExecutor::new(dag))
        });
        Self {
            job,
            phase: 0,
            pos: 0,
            completed: 0,
            elapsed: 0,
            task_cost: cost,
            weighted,
        }
    }

    /// Uniform processor-steps per task (1 for the unit model).
    pub fn task_cost(&self) -> u64 {
        self.task_cost
    }

    /// The job being executed.
    pub fn job(&self) -> &PhasedJob {
        self.job.borrow()
    }

    /// Index of the phase currently in progress (== number of phases
    /// once complete).
    pub fn current_phase(&self) -> usize {
        self.phase
    }

    /// Rewinds to the start of the job (the unit-cost state is four
    /// counters, so this is trivially allocation-free; a weighted inner
    /// executor resets in place keeping its buffers).
    pub fn reset(&mut self) {
        self.phase = 0;
        self.pos = 0;
        self.completed = 0;
        self.elapsed = 0;
        if let Some(inner) = &mut self.weighted {
            inner.reset();
        }
    }
}

impl<J: Borrow<PhasedJob>> JobExecutor for PipelinedExecutor<J> {
    fn run_quantum(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        if let Some(inner) = &mut self.weighted {
            return inner.run_quantum(allotment, steps);
        }
        let mut work = 0u64;
        let mut span = 0.0f64;
        let mut steps_left = if allotment == 0 { 0 } else { steps };
        let mut steps_worked = 0u64;
        let a = allotment as u64;
        let phases = self.job.borrow().phases();
        while steps_left > 0 && self.phase < phases.len() {
            let p = phases[self.phase];
            let total = p.work();
            let remaining = total - self.pos;
            let rate = a.min(p.width);
            let need = remaining.div_ceil(rate);
            if need <= steps_left {
                work += remaining;
                span += remaining as f64 / p.width as f64;
                steps_left -= need;
                steps_worked += need;
                self.phase += 1;
                self.pos = 0;
            } else {
                let executed = steps_left * rate; // < remaining
                work += executed;
                span += executed as f64 / p.width as f64;
                self.pos += executed;
                steps_worked += steps_left;
                steps_left = 0;
            }
        }
        self.completed += work;
        self.elapsed += steps_worked;
        QuantumStats {
            allotment,
            quantum_len: steps,
            steps_worked,
            work,
            span,
            completed: self.is_complete(),
        }
    }

    fn is_complete(&self) -> bool {
        match &self.weighted {
            Some(inner) => inner.is_complete(),
            None => self.phase >= self.job.borrow().phases().len(),
        }
    }

    fn total_work(&self) -> u64 {
        match &self.weighted {
            Some(inner) => inner.total_work(),
            None => self.job.borrow().work(),
        }
    }

    fn total_span(&self) -> u64 {
        match &self.weighted {
            Some(inner) => inner.total_span(),
            None => self.job.borrow().span(),
        }
    }

    fn completed_work(&self) -> u64 {
        match &self.weighted {
            Some(inner) => inner.completed_work(),
            None => self.completed,
        }
    }

    fn elapsed_steps(&self) -> u64 {
        match &self.weighted {
            Some(inner) => inner.elapsed_steps(),
            None => self.elapsed,
        }
    }

    fn try_reset(&mut self) -> bool {
        self.reset();
        true
    }

    fn steady_quanta(&self, allotment: u32, steps: u64, stats: &QuantumStats) -> u64 {
        if self.weighted.is_some() {
            // The weighted kernel has no closed-form freeze analysis;
            // the always-correct "no lookahead" answer keeps the engine
            // on the quantum-by-quantum path.
            return 0;
        }
        if self.is_complete() || stats.completed || steps == 0 {
            return 0;
        }
        if allotment == 0 {
            // Zero allotment executes nothing: every further quantum is
            // the same all-zero record until the allotment changes.
            return u64::MAX;
        }
        // Inside one phase a quantum at (allotment, steps) consumes
        // `steps · rate` tasks in level-major order, so it reproduces
        // `stats` exactly while the phase has strictly more than that
        // many tasks left (the strict inequality keeps `completed` and
        // the partial-progress branch identical).
        let p = self.job.borrow().phases()[self.phase];
        let rate = (allotment as u64).min(p.width);
        let per_quantum = steps * rate;
        let predicted_span = per_quantum as f64 / p.width as f64;
        if stats.steps_worked != steps
            || stats.work != per_quantum
            || stats.span.to_bits() != predicted_span.to_bits()
        {
            return 0;
        }
        let remaining = p.work() - self.pos;
        (remaining.saturating_sub(1)) / per_quantum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::BGreedyExecutor;
    use abg_dag::{Phase, PhasedJob};

    /// Runs the same quantum schedule through the fast path and the
    /// per-task B-Greedy executor on the lowered dag; the quantum
    /// statistics must agree exactly.
    fn assert_equivalent(job: PhasedJob, allotments: &[u32], quantum_len: u64) {
        let explicit = job.to_explicit();
        let mut fast = PipelinedExecutor::new(job);
        let mut slow = BGreedyExecutor::new(&explicit);
        for (i, &a) in allotments.iter().enumerate() {
            let f = fast.run_quantum(a, quantum_len);
            let s = slow.run_quantum(a, quantum_len);
            assert_eq!(f.work, s.work, "quantum {i}: work (a={a})");
            assert!(
                (f.span - s.span).abs() < 1e-9,
                "quantum {i}: span {} vs {} (a={a})",
                f.span,
                s.span
            );
            assert_eq!(f.steps_worked, s.steps_worked, "quantum {i}: steps (a={a})");
            assert_eq!(f.completed, s.completed, "quantum {i}: completed (a={a})");
            if fast.is_complete() {
                break;
            }
        }
        assert_eq!(fast.is_complete(), slow.is_complete());
    }

    fn forkjoin() -> PhasedJob {
        PhasedJob::new(vec![
            Phase::new(1, 3),
            Phase::new(6, 7),
            Phase::new(1, 2),
            Phase::new(4, 5),
            Phase::new(1, 1),
        ])
    }

    #[test]
    fn matches_per_task_executor_across_allotments() {
        for a in [1u32, 2, 3, 5, 7, 64] {
            assert_equivalent(forkjoin(), &[a; 30], 4);
        }
    }

    #[test]
    fn matches_with_varying_allotments() {
        assert_equivalent(forkjoin(), &[1, 5, 2, 9, 3, 1, 8, 2, 4, 6, 7, 1, 2], 3);
    }

    #[test]
    fn matches_on_constant_job() {
        assert_equivalent(PhasedJob::constant(8, 11), &[3; 40], 5);
        assert_equivalent(PhasedJob::constant(8, 11), &[13; 10], 5);
    }

    #[test]
    fn full_utilization_below_width() {
        // Width 10, allotment 7: pipelining keeps all 7 busy — 70 tasks
        // in 10 steps, no ceil losses.
        let job = PhasedJob::constant(10, 100);
        let mut ex = PipelinedExecutor::new(job);
        let s = ex.run_quantum(7, 10);
        assert_eq!(s.work, 70);
        assert!((s.span - 7.0).abs() < 1e-12);
        assert_eq!(s.average_parallelism(), Some(10.0));
    }

    #[test]
    fn allotment_above_width_capped_by_parallelism() {
        let job = PhasedJob::constant(10, 50);
        let mut ex = PipelinedExecutor::new(job);
        let s = ex.run_quantum(64, 20);
        // One level per step: 10 tasks/step.
        assert_eq!(s.work, 200);
        assert_eq!(s.span, 20.0);
    }

    #[test]
    fn phase_tail_does_not_spill_into_next_phase() {
        // Phase of 3 tasks then a join: the join's successor starts the
        // step after the phase completes.
        let job = PhasedJob::new(vec![Phase::new(3, 1), Phase::new(1, 1)]);
        let mut ex = PipelinedExecutor::new(job);
        let s = ex.run_quantum(8, 10);
        assert_eq!(s.steps_worked, 2);
        assert!(s.completed);
    }

    #[test]
    fn zero_allotment_is_noop() {
        let mut ex = PipelinedExecutor::new(PhasedJob::constant(4, 4));
        let s = ex.run_quantum(0, 100);
        assert_eq!(s.work, 0);
        assert!(!ex.is_complete());
    }

    #[test]
    fn steady_quanta_predicts_bitwise_repeats_and_bulk_equivalence() {
        // Drive a long constant phase one quantum at a time; after each
        // quantum the steady_quanta prediction must hold bit-for-bit for
        // every predicted repeat, and a single bulk call must land the
        // executor in the same state as the repeats it replaces.
        for (a, steps) in [(3u32, 7u64), (16, 5), (10, 4)] {
            let job = PhasedJob::constant(10, 100); // 1000 tasks
            let mut ex = PipelinedExecutor::new(&job);
            let stats = ex.run_quantum(a, steps);
            let m = ex.steady_quanta(a, steps, &stats);
            assert!(m > 0, "long phase must freeze (a={a}, steps={steps})");
            let mut serial = ex.clone();
            for j in 0..m {
                let repeat = serial.run_quantum(a, steps);
                assert_eq!(repeat.work, stats.work, "repeat {j} (a={a})");
                assert_eq!(repeat.steps_worked, stats.steps_worked);
                assert_eq!(repeat.span.to_bits(), stats.span.to_bits());
                assert!(!repeat.completed);
            }
            // One past the prediction must differ (phase tail or completion).
            let past = serial.run_quantum(a, steps);
            assert!(
                past.work != stats.work || past.completed,
                "prediction m={m} was not tight (a={a}, steps={steps})"
            );
            let mut bulk = ex.clone();
            bulk.run_quantum(a, m * steps);
            assert_eq!(bulk.completed_work(), {
                let mut want = ex.clone();
                for _ in 0..m {
                    want.run_quantum(a, steps);
                }
                assert_eq!(want.elapsed_steps(), bulk.elapsed_steps());
                assert_eq!(want.current_phase(), bulk.current_phase());
                want.completed_work()
            });
        }
    }

    #[test]
    fn steady_quanta_edge_cases() {
        let job = PhasedJob::constant(4, 10);
        let mut ex = PipelinedExecutor::new(&job);
        let zero = ex.run_quantum(0, 8);
        assert_eq!(
            ex.steady_quanta(0, 8, &zero),
            u64::MAX,
            "zero allotment repeats forever"
        );
        // Drain the job: a complete executor never freezes.
        let last = ex.run_quantum(64, 1000);
        assert!(last.completed);
        assert_eq!(ex.steady_quanta(64, 1000, &last), 0);
    }

    #[test]
    fn spans_accumulate_to_total() {
        let mut ex = PipelinedExecutor::new(forkjoin());
        let mut span = 0.0;
        while !ex.is_complete() {
            span += ex.run_quantum(3, 4).span;
        }
        assert!((span - ex.total_span() as f64).abs() < 1e-9);
        assert_eq!(ex.completed_work(), ex.total_work());
    }
}
