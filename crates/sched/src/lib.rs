//! Task schedulers for the ABG reproduction.
//!
//! In the paper's two-level framework, a *task scheduler* executes the
//! ready tasks of a single job on whatever allotment the OS allocator
//! granted for the quantum, and measures the statistics that drive the
//! feedback loop (Section 2):
//!
//! * the **quantum work** `T1(q)` — tasks completed in quantum `q`,
//! * the **quantum critical-path length** `T∞(q)` — the number of levels
//!   the job advanced, where a partially completed level counts
//!   fractionally (completed tasks / level size), and
//! * the **quantum average parallelism** `A(q) = T1(q) / T∞(q)`.
//!
//! [`BGreedyExecutor`] implements the paper's B-Greedy: a greedy scheduler
//! that gives priority to the ready task with the lowest level
//! (breadth-first). [`GreedyExecutor`] (FIFO tie-breaking, no level
//! priority) and [`DepthFirstExecutor`] (LIFO) are the baselines used to
//! show why the breadth-first rule matters for measuring `A(q)`.
//!
//! [`LeveledExecutor`] is a fast-forward executor for barrier-synchronous
//! [`abg_dag::LeveledJob`]s: one `O(1)` update per level touched instead
//! of one per task. On such jobs every greedy scheduler behaves
//! identically (only one level is ever ready), and the executor is
//! bit-for-bit equivalent to running [`BGreedyExecutor`] on the lowered
//! explicit dag — a property the test-suite checks.
//!
//! All executors share the [`JobExecutor`] interface consumed by the
//! simulation engine in `abg-sim`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod leveled_exec;
pub mod pipelined_exec;
pub mod quantum;
pub mod queue;
pub mod reference;

pub use executor::{
    BGreedyExecutor, DagExecutor, DepthFirstExecutor, GreedyExecutor, OwnedBGreedyExecutor,
};
pub use leveled_exec::LeveledExecutor;
pub use pipelined_exec::PipelinedExecutor;
pub use quantum::QuantumStats;
pub use queue::{BreadthFirstQueue, FifoQueue, LifoQueue, ReadyQueue};
pub use reference::{ReferenceBGreedyExecutor, ReferenceExecutor};

/// A task scheduler bound to one job, executing it quantum by quantum.
///
/// `run_quantum(allotment, steps)` advances the job by up to `steps` time
/// steps with `allotment` processors and returns the quantum statistics.
/// If the job completes before the quantum ends, execution stops early and
/// the returned [`QuantumStats::steps_worked`] reflects the shorter span;
/// processor-hold accounting for the remainder of the quantum is the
/// simulator's concern, not the executor's.
pub trait JobExecutor {
    /// Executes up to `steps` steps with `allotment` processors.
    fn run_quantum(&mut self, allotment: u32, steps: u64) -> QuantumStats;

    /// Whether every task of the job has completed.
    fn is_complete(&self) -> bool;

    /// Total work `T1` of the job.
    fn total_work(&self) -> u64;

    /// Total critical-path length `T∞` of the job.
    fn total_span(&self) -> u64;

    /// Tasks completed so far across all quanta.
    fn completed_work(&self) -> u64;

    /// Time steps executed so far across all quanta (steps in which at
    /// least one task ran).
    fn elapsed_steps(&self) -> u64;

    /// Rewinds the executor to the start of its job **in place**, keeping
    /// every allocated buffer, and returns `true`; executors that cannot
    /// rewind return `false` and callers construct a fresh one instead.
    /// A successful reset must be observationally equivalent to a fresh
    /// executor over the same job — harnesses use it to recycle executor
    /// state across repeated runs without changing any simulated result.
    fn try_reset(&mut self) -> bool {
        false
    }

    /// How many *further* quanta of `steps` steps at `allotment`
    /// processors would each reproduce `stats` bit-for-bit, given that
    /// the executor just returned `stats` for exactly such a quantum.
    ///
    /// The contract backing frozen-quantum macro-stepping: if this
    /// returns `m`, then for any `k ≤ m` a single
    /// `run_quantum(allotment, k·steps)` call must leave the executor in
    /// the same state as `k` individual `run_quantum(allotment, steps)`
    /// calls, each of which would have returned `stats`. The default of
    /// `0` (no lookahead) is always correct and keeps the engine on the
    /// quantum-by-quantum path for executors without an analysis.
    fn steady_quanta(&self, allotment: u32, steps: u64, stats: &QuantumStats) -> u64 {
        let _ = (allotment, steps, stats);
        0
    }
}

/// Mutable references are executors too, so a driver that owns its
/// executor can lend it to a generic engine for the duration of a run.
/// Every method forwards — `try_reset` explicitly, because falling back
/// to the provided default would silently disable recycling.
impl<T: JobExecutor + ?Sized> JobExecutor for &mut T {
    fn run_quantum(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        (**self).run_quantum(allotment, steps)
    }
    fn is_complete(&self) -> bool {
        (**self).is_complete()
    }
    fn total_work(&self) -> u64 {
        (**self).total_work()
    }
    fn total_span(&self) -> u64 {
        (**self).total_span()
    }
    fn completed_work(&self) -> u64 {
        (**self).completed_work()
    }
    fn elapsed_steps(&self) -> u64 {
        (**self).elapsed_steps()
    }
    fn try_reset(&mut self) -> bool {
        (**self).try_reset()
    }
    fn steady_quanta(&self, allotment: u32, steps: u64, stats: &QuantumStats) -> u64 {
        (**self).steady_quanta(allotment, steps, stats)
    }
}

/// Boxed executors are executors too, so engines generic over the
/// executor type can hold heterogeneous `Box<dyn JobExecutor + Send>`
/// job sets.
impl<T: JobExecutor + ?Sized> JobExecutor for Box<T> {
    fn run_quantum(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        (**self).run_quantum(allotment, steps)
    }
    fn is_complete(&self) -> bool {
        (**self).is_complete()
    }
    fn total_work(&self) -> u64 {
        (**self).total_work()
    }
    fn total_span(&self) -> u64 {
        (**self).total_span()
    }
    fn completed_work(&self) -> u64 {
        (**self).completed_work()
    }
    fn elapsed_steps(&self) -> u64 {
        (**self).elapsed_steps()
    }
    fn try_reset(&mut self) -> bool {
        (**self).try_reset()
    }
    fn steady_quanta(&self, allotment: u32, steps: u64, stats: &QuantumStats) -> u64 {
        (**self).steady_quanta(allotment, steps, stats)
    }
}
