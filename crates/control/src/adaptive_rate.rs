//! A-Control with an online convergence-rate governor.
//!
//! The waste, makespan and response-time bounds (Theorems 4 and 5)
//! require the convergence rate to satisfy `r < 1/C_L`, and the paper
//! assumes `r` "is chosen based on some historical characterization of
//! the workload" (Section 6.2). [`AdaptiveRateControl`] removes that
//! assumption: it estimates the transition factor online from the
//! measured parallelism sequence and clamps the working rate to
//! `min(r_target, margin / Ĉ_L)`, so the bound precondition holds
//! against the job actually being scheduled.
//!
//! When `Ĉ_L` is small the controller behaves exactly like
//! [`AControl`](crate::AControl) at the target rate; when the job turns out to sway
//! violently, the rate automatically drops toward one-step convergence
//! (`r = 0`), which is the safe end of the spectrum — the request then
//! tracks the latest measurement as fast as possible.

use crate::Controller;
use abg_sched::QuantumStats;
use serde::{Deserialize, Serialize};

/// A-Control with the convergence rate governed by an online estimate
/// of the transition factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveRateControl {
    target_rate: f64,
    /// Safety margin: the working rate is capped at
    /// `margin / estimated_factor` (margin < 1 keeps strict
    /// inequality).
    margin: f64,
    request: f64,
    estimated_factor: f64,
    prev_parallelism: f64,
}

impl AdaptiveRateControl {
    /// Creates a governor targeting `target_rate` with the given safety
    /// margin (the paper's strict `r < 1/C_L` wants `margin < 1`).
    ///
    /// # Panics
    ///
    /// Panics unless `target_rate ∈ [0, 1)` and `margin ∈ (0, 1)`.
    pub fn new(target_rate: f64, margin: f64) -> Self {
        assert!(
            target_rate.is_finite() && (0.0..1.0).contains(&target_rate),
            "target rate must lie in [0, 1), got {target_rate}"
        );
        assert!(
            margin.is_finite() && margin > 0.0 && margin < 1.0,
            "margin must lie in (0, 1), got {margin}"
        );
        Self {
            target_rate,
            margin,
            request: 1.0,
            estimated_factor: 1.0,
            prev_parallelism: 1.0, // A(0) = 1 by definition
        }
    }

    /// The paper-style default: target `r = 0.2` with a 0.9 margin.
    pub fn paper_default() -> Self {
        Self::new(0.2, 0.9)
    }

    /// The current transition-factor estimate `Ĉ_L` (the running
    /// maximum of adjacent measured-parallelism ratios, seeded with
    /// `A(0) = 1`).
    pub fn estimated_factor(&self) -> f64 {
        self.estimated_factor
    }

    /// The rate currently in force: `min(target, margin / Ĉ_L)`.
    pub fn effective_rate(&self) -> f64 {
        self.target_rate.min(self.margin / self.estimated_factor)
    }
}

impl Controller for AdaptiveRateControl {
    fn observe(&mut self, stats: &QuantumStats) -> f64 {
        if let Some(a) = stats.average_parallelism() {
            // Update Ĉ_L only on full quanta, matching the definition.
            if stats.is_full() {
                let ratio = if a > self.prev_parallelism {
                    a / self.prev_parallelism
                } else {
                    self.prev_parallelism / a
                };
                self.estimated_factor = self.estimated_factor.max(ratio);
                self.prev_parallelism = a;
            }
            let r = self.effective_rate();
            self.request = r * self.request + (1.0 - r) * a;
        }
        self.request
    }

    fn current_request(&self) -> f64 {
        self.request
    }

    fn name(&self) -> &'static str {
        "a-control-adaptive-rate"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AControl;

    fn quantum(work: u64, span: f64) -> QuantumStats {
        QuantumStats {
            allotment: 16,
            quantum_len: 10,
            steps_worked: 10,
            work,
            span,
            completed: false,
        }
    }

    #[test]
    fn behaves_like_acontrol_on_tame_jobs() {
        // Constant parallelism 4 with margin 0.9: Ĉ_L snaps to 4 on the
        // first quantum (vs A(0) = 1) but 0.9/4 = 0.225 > 0.2, so the
        // target rate stays in force and the trajectories coincide.
        let mut adaptive = AdaptiveRateControl::new(0.2, 0.9);
        let mut plain = AControl::new(0.2);
        for _ in 0..10 {
            let s = quantum(40, 10.0);
            assert!((adaptive.observe(&s) - plain.observe(&s)).abs() < 1e-12);
        }
        assert!((adaptive.effective_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn rate_drops_on_violent_jobs() {
        let mut c = AdaptiveRateControl::new(0.2, 0.9);
        // Parallelism jumps 1 -> 50: Ĉ_L ≈ 50, rate capped at 0.018.
        c.observe(&quantum(10, 10.0)); // A = 1
        c.observe(&quantum(500, 10.0)); // A = 50
        assert!(c.estimated_factor() >= 50.0);
        assert!(c.effective_rate() < 0.02);
        // The precondition of Theorem 4 now holds for the estimate.
        assert!(c.effective_rate() * c.estimated_factor() < 1.0);
    }

    #[test]
    fn estimate_only_grows() {
        let mut c = AdaptiveRateControl::paper_default();
        c.observe(&quantum(200, 10.0)); // A = 20
        let peak = c.estimated_factor();
        c.observe(&quantum(200, 10.0)); // constant: ratio 1
        assert_eq!(c.estimated_factor(), peak);
    }

    #[test]
    fn non_full_quanta_do_not_update_estimate() {
        let mut c = AdaptiveRateControl::paper_default();
        let partial = QuantumStats {
            allotment: 16,
            quantum_len: 10,
            steps_worked: 5,
            work: 400,
            span: 5.0,
            completed: true,
        };
        c.observe(&partial);
        assert_eq!(c.estimated_factor(), 1.0, "non-full quanta are excluded");
    }

    #[test]
    fn converges_despite_clamped_rate() {
        let mut c = AdaptiveRateControl::new(0.2, 0.9);
        c.observe(&quantum(10, 10.0)); // A = 1 keeps estimate at 1
        for _ in 0..30 {
            c.observe(&quantum(80, 10.0)); // A = 8
        }
        assert!((c.current_request() - 8.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn margin_of_one_rejected() {
        let _ = AdaptiveRateControl::new(0.2, 1.0);
    }
}
