//! Control-theoretic analysis of the feedback loop (Section 4).
//!
//! With the job's average parallelism held constant at `A`, the paper's
//! Figure-3 loop is linear time-invariant and can be analysed in the
//! z-domain. The component transfer functions are
//!
//! ```text
//! A-Control:  G(z) = K / (z − 1)            (integral controller)
//! B-Greedy:   S(z) = 1 / A                  (measurement path)
//! reference:  R(z) = z / (z − 1)            (unit step)
//! ```
//!
//! giving the first-order closed loop (Equation (2))
//!
//! ```text
//! T(z) = (K/A) / (z − (1 − K/A))
//! ```
//!
//! with the single pole `p₀ = 1 − K/A`. [`ClosedLoop`] models this
//! system exactly; [`analyze_step_response`] extracts the transient and
//! steady-state metrics of Theorem 1 (BIBO stability, steady-state
//! error, maximum overshoot, convergence rate) from any request
//! trajectory — analytical or simulated — so the same machinery also
//! quantifies A-Greedy's instability.

use serde::{Deserialize, Serialize};

/// The first-order closed loop of the ABG feedback structure for a job
/// of constant average parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoop {
    /// The job's (constant) average parallelism `A`.
    pub parallelism: f64,
    /// The controller gain `K`.
    pub gain: f64,
}

impl ClosedLoop {
    /// Builds the loop with the Theorem-1 gain `K = (1 − r)·A` for a
    /// desired convergence rate `r ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism <= 0` or `rate` is outside `[0, 1)`.
    pub fn with_convergence_rate(parallelism: f64, rate: f64) -> Self {
        assert!(parallelism > 0.0, "parallelism must be positive");
        assert!(
            (0.0..1.0).contains(&rate),
            "convergence rate must lie in [0, 1), got {rate}"
        );
        Self {
            parallelism,
            gain: (1.0 - rate) * parallelism,
        }
    }

    /// The closed-loop pole `p₀ = 1 − K/A`.
    pub fn pole(&self) -> f64 {
        1.0 - self.gain / self.parallelism
    }

    /// Bounded-input bounded-output stability: the pole lies strictly
    /// inside the unit circle.
    pub fn is_bibo_stable(&self) -> bool {
        self.pole().abs() < 1.0
    }

    /// The DC gain `T(1)`; a value of 1 means zero steady-state error
    /// for a step reference.
    ///
    /// For this integral loop the result is identically 1 whatever the
    /// gain — `T(1) = (K/A) / (1 − (1 − K/A)) = 1` — which *is* the
    /// zero-steady-state-error property of Theorem 1. The method is
    /// retained as an explicit identity check, not a measurement that
    /// varies across configurations.
    pub fn dc_gain(&self) -> f64 {
        let k_over_a = self.gain / self.parallelism;
        k_over_a / (1.0 - (1.0 - k_over_a))
    }

    /// Simulates the closed loop for `quanta` quanta and returns the
    /// request trajectory `d(1), d(2), …` starting from `d(1) = d1`.
    ///
    /// The recurrence is the time-domain form of the loop:
    /// `d(q+1) = d(q) + K·(1 − d(q)/A)`.
    pub fn request_trajectory(&self, d1: f64, quanta: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(quanta);
        let mut d = d1;
        for _ in 0..quanta {
            out.push(d);
            d += self.gain * (1.0 - d / self.parallelism);
        }
        out
    }
}

/// The second-order closed loop of the gain-scheduled PI controller
/// ([`crate::PiControl`]) for constant parallelism.
///
/// Writing `x(q) = d(q) − A`, the PI recurrence
/// `d(q+1) = d(q) + Kp·(e(q) − e(q−1)) + Ki·e(q)` with `Kp = β·A`,
/// `Ki = (1 − r)·A` and `e(q) = −x(q)/A` reduces to
///
/// ```text
/// x(q+1) = (r − β)·x(q) + β·x(q−1)
/// ```
///
/// with characteristic polynomial `z² − (r − β)·z − β`. Its
/// discriminant `(r − β)² + 4β` is non-negative, so the poles are
/// always real, and the Jury conditions reduce to `r < 1` and
/// `β < (1 + r)/2` — satisfied throughout the controller's admissible
/// range `0 ≤ β ≤ r < 1`, which is the stability claim behind
/// `PiControl`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PiClosedLoop {
    /// Integral rate parameter `r`.
    pub rate: f64,
    /// Proportional coefficient `β`.
    pub beta: f64,
}

impl PiClosedLoop {
    /// Builds the loop; the parameters mirror
    /// [`PiControl::new`](crate::PiControl::new).
    ///
    /// # Panics
    ///
    /// Panics unless `rate ∈ [0, 1)` and `beta ∈ [0, rate]`.
    pub fn new(rate: f64, beta: f64) -> Self {
        assert!((0.0..1.0).contains(&rate), "rate must lie in [0, 1)");
        assert!(
            (0.0..=rate).contains(&beta),
            "beta must lie in [0, rate], got {beta}"
        );
        Self { rate, beta }
    }

    /// The two (always real) closed-loop poles, larger magnitude first.
    pub fn poles(&self) -> (f64, f64) {
        let b = self.rate - self.beta;
        let disc = (b * b + 4.0 * self.beta).sqrt();
        let p1 = (b + disc) / 2.0;
        let p2 = (b - disc) / 2.0;
        if p1.abs() >= p2.abs() {
            (p1, p2)
        } else {
            (p2, p1)
        }
    }

    /// Jury stability: both poles strictly inside the unit circle.
    pub fn is_stable(&self) -> bool {
        let (p1, p2) = self.poles();
        p1.abs() < 1.0 && p2.abs() < 1.0
    }

    /// The asymptotic per-quantum error contraction (the dominant
    /// pole's magnitude); equals `r` when `β = 0`.
    pub fn dominant_rate(&self) -> f64 {
        self.poles().0.abs()
    }

    /// Simulates the error recurrence from `d(1) = d1` (with the
    /// controller's implicit `e(0) = 0` start) and returns the request
    /// trajectory.
    pub fn request_trajectory(&self, parallelism: f64, d1: f64, quanta: usize) -> Vec<f64> {
        assert!(parallelism > 0.0, "parallelism must be positive");
        let mut out = Vec::with_capacity(quanta);
        let mut x_prev = 0.0; // e(0) = 0 ⇔ x(0) treated as 0 by PiControl
        let mut x = d1 - parallelism;
        for _ in 0..quanta {
            out.push(parallelism + x);
            let next = (self.rate - self.beta) * x + self.beta * x_prev;
            x_prev = x;
            x = next;
        }
        out
    }
}

/// Transient and steady-state metrics of a request trajectory against a
/// constant target parallelism — the four criteria of Theorem 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepMetrics {
    /// `|d(q) − A|` at the end of the trajectory.
    pub steady_state_error: f64,
    /// Maximum of `d(q) − d(∞)` over the trajectory (0 when the request
    /// never exceeds its steady-state value).
    pub max_overshoot: f64,
    /// Worst observed per-quantum error-contraction ratio
    /// `|d(q+1) − A| / |d(q) − A|` before settling. For the ideal loop
    /// this equals `|pole|`; values ≥ 1 mean the request is not
    /// converging.
    pub convergence_rate: f64,
    /// First index (0-based) at which the error drops below
    /// `tolerance·A` and stays there, or the trajectory length if never.
    pub settling_quantum: usize,
}

/// Analyzes a request trajectory against a constant parallelism target.
///
/// `tolerance` is the relative error band used for settling detection
/// (e.g. `0.02` for a 2 % band).
///
/// # Panics
///
/// Panics if the trajectory is empty or `target <= 0`.
pub fn analyze_step_response(trajectory: &[f64], target: f64, tolerance: f64) -> StepMetrics {
    assert!(!trajectory.is_empty(), "empty trajectory");
    assert!(target > 0.0, "target parallelism must be positive");
    let steady = *trajectory.last().expect("non-empty");
    let steady_state_error = (steady - target).abs();

    let max_overshoot = trajectory
        .iter()
        .map(|&d| d - steady)
        .fold(0.0f64, f64::max);

    // Contraction ratio while outside the settling band.
    let band = tolerance * target;
    let mut convergence_rate = 0.0f64;
    for w in trajectory.windows(2) {
        let e0 = (w[0] - target).abs();
        let e1 = (w[1] - target).abs();
        if e0 > band {
            convergence_rate = convergence_rate.max(e1 / e0);
        }
    }

    let settling_quantum = (0..trajectory.len())
        .find(|&i| trajectory[i..].iter().all(|&d| (d - target).abs() <= band))
        .unwrap_or(trajectory.len());

    StepMetrics {
        steady_state_error,
        max_overshoot,
        convergence_rate,
        settling_quantum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_pole_equals_rate() {
        for a in [2.0, 10.0, 128.0] {
            for r in [0.0, 0.2, 0.5, 0.9] {
                let loop_ = ClosedLoop::with_convergence_rate(a, r);
                assert!((loop_.pole() - r).abs() < 1e-12);
                assert!(loop_.is_bibo_stable());
                assert!((loop_.dc_gain() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn unstable_gain_detected() {
        // K > 2A puts the pole below −1.
        let loop_ = ClosedLoop {
            parallelism: 10.0,
            gain: 25.0,
        };
        assert!(!loop_.is_bibo_stable());
    }

    #[test]
    fn trajectory_converges_without_overshoot() {
        let loop_ = ClosedLoop::with_convergence_rate(20.0, 0.2);
        let traj = loop_.request_trajectory(1.0, 40);
        let m = analyze_step_response(&traj, 20.0, 0.01);
        assert!(
            m.steady_state_error < 1e-6,
            "sse = {}",
            m.steady_state_error
        );
        assert!(m.max_overshoot < 1e-9, "overshoot = {}", m.max_overshoot);
        assert!((m.convergence_rate - 0.2).abs() < 1e-9);
        assert!(m.settling_quantum < 40);
    }

    #[test]
    fn one_step_convergence_settles_immediately() {
        let loop_ = ClosedLoop::with_convergence_rate(50.0, 0.0);
        let traj = loop_.request_trajectory(1.0, 5);
        assert_eq!(traj[1], 50.0);
        let m = analyze_step_response(&traj, 50.0, 0.01);
        assert_eq!(m.settling_quantum, 1);
        assert_eq!(m.steady_state_error, 0.0);
    }

    #[test]
    fn oscillating_trajectory_flagged_nonconvergent() {
        // A-Greedy-like 8/16 oscillation around A = 10.
        let traj: Vec<f64> = (0..16)
            .map(|i| if i % 2 == 0 { 8.0 } else { 16.0 })
            .collect();
        let m = analyze_step_response(&traj, 10.0, 0.02);
        assert!(m.convergence_rate >= 1.0);
        assert_eq!(m.settling_quantum, traj.len());
        assert!(m.steady_state_error > 0.0);
    }

    #[test]
    fn overshoot_measured_against_steady_state() {
        let traj = vec![1.0, 14.0, 9.0, 10.0, 10.0];
        let m = analyze_step_response(&traj, 10.0, 0.02);
        assert!((m.max_overshoot - 4.0).abs() < 1e-12);
    }

    #[test]
    fn trajectory_matches_closed_form() {
        // d(q) − A = pole^(q-1) · (d(1) − A).
        let a = 32.0;
        let r = 0.3;
        let loop_ = ClosedLoop::with_convergence_rate(a, r);
        let traj = loop_.request_trajectory(1.0, 10);
        for (q, &d) in traj.iter().enumerate() {
            let expected = a + r.powi(q as i32) * (1.0 - a);
            assert!((d - expected).abs() < 1e-9, "q={q}: {d} vs {expected}");
        }
    }

    #[test]
    #[should_panic(expected = "empty trajectory")]
    fn empty_trajectory_rejected() {
        let _ = analyze_step_response(&[], 1.0, 0.01);
    }

    #[test]
    fn pi_loop_stable_across_admissible_range() {
        for r in [0.0, 0.2, 0.5, 0.9] {
            for frac in [0.0, 0.5, 1.0] {
                let beta = r * frac;
                let loop_ = PiClosedLoop::new(r, beta);
                assert!(loop_.is_stable(), "r={r} β={beta}: {:?}", loop_.poles());
                // Poles are real: the discriminant is non-negative.
                let (p1, p2) = loop_.poles();
                assert!(p1.is_finite() && p2.is_finite());
            }
        }
    }

    #[test]
    fn pi_loop_beta_zero_reduces_to_first_order() {
        let loop_ = PiClosedLoop::new(0.3, 0.0);
        let (p1, p2) = loop_.poles();
        assert!((p1 - 0.3).abs() < 1e-12);
        assert!(p2.abs() < 1e-12);
        assert!((loop_.dominant_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn pi_trajectory_matches_controller() {
        use crate::{PiControl, RequestCalculator};
        use abg_sched::QuantumStats;
        let a = 24.0;
        let loop_ = PiClosedLoop::new(0.3, 0.2);
        let analytic = loop_.request_trajectory(a, 1.0, 20);
        let mut ctl = PiControl::new(0.3, 0.2);
        let mut simulated = vec![ctl.current_request()];
        for _ in 1..20 {
            let s = QuantumStats {
                allotment: 32,
                quantum_len: 10,
                steps_worked: 10,
                work: (a * 10.0) as u64,
                span: 10.0,
                completed: false,
            };
            simulated.push(ctl.observe(&s));
        }
        for (q, (x, y)) in analytic.iter().zip(&simulated).enumerate() {
            assert!((x - y).abs() < 1e-9, "q={q}: analytic {x} vs simulated {y}");
        }
    }

    #[test]
    fn pi_dominant_rate_is_the_asymptotic_contraction() {
        // A second-order trajectory can contract non-monotonically near
        // zero crossings (the worst per-quantum ratio is not the story);
        // the *asymptotic* ratio must equal the dominant pole.
        let loop_ = PiClosedLoop::new(0.4, 0.3);
        let a = 50.0;
        let traj = loop_.request_trajectory(a, 1.0, 60);
        let e = |d: f64| (d - a).abs();
        // Average tail contraction over quanta 40..50.
        let tail: Vec<f64> = (40..50).map(|q| e(traj[q + 1]) / e(traj[q])).collect();
        let mean = tail.iter().sum::<f64>() / tail.len() as f64;
        assert!(
            (mean - loop_.dominant_rate()).abs() < 0.05,
            "tail contraction {mean} vs dominant pole {}",
            loop_.dominant_rate()
        );
        let m = analyze_step_response(&traj, a, 0.0001);
        assert!(m.steady_state_error < 1e-3);
    }

    #[test]
    #[should_panic(expected = "beta must lie")]
    fn pi_loop_rejects_beta_above_rate() {
        let _ = PiClosedLoop::new(0.2, 0.5);
    }
}
