//! A gain-scheduled PI (proportional-integral) request controller —
//! the natural next rung on the controller ladder the paper's
//! future-work section points at ("other parameters").
//!
//! A-Control is a pure integral controller: its closed loop is first
//! order, so convergence is monotone but each quantum's correction is
//! limited to a fixed fraction of the remaining error. Adding a
//! proportional term reacts to the *change* of the error within one
//! quantum:
//!
//! ```text
//! d(q+1) = d(q) + Kp·(e(q) − e(q−1)) + Ki·e(q),     e(q) = 1 − d(q)/A(q)
//! ```
//!
//! With the gains scheduled against the measured parallelism the same
//! way Theorem 1 schedules `K` (`Kp = β·A`, `Ki = (1 − r)·A`), the
//! constant-parallelism closed loop is second order; `β = 0` recovers
//! A-Control exactly. The error-difference term cuts both ways: when
//! the job's parallelism *jumps*, `e(q) − e(q−1)` spikes and the
//! controller reacts harder than A-Control on the very next quantum
//! (anticipatory action); during a smooth approach the difference is
//! negative and acts as damping, settling slightly later. The module's
//! tests verify stability, zero steady-state error, both sides of that
//! trade-off, and the A-Control-equivalence corner empirically.

use crate::Controller;
use abg_sched::QuantumStats;
use serde::{Deserialize, Serialize};

/// The gain-scheduled PI request calculator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PiControl {
    /// Integral rate parameter `r` (as in A-Control).
    rate: f64,
    /// Proportional coefficient `β ∈ [0, r]`: the proportional gain is
    /// scheduled as `Kp = β·A(q)`.
    beta: f64,
    request: f64,
    prev_error: f64,
}

impl PiControl {
    /// Creates a PI controller with integral rate `r ∈ [0, 1)` and
    /// proportional coefficient `beta ∈ [0, r]`.
    ///
    /// # Panics
    ///
    /// Panics on parameters outside those ranges.
    pub fn new(rate: f64, beta: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..1.0).contains(&rate),
            "rate must lie in [0, 1), got {rate}"
        );
        assert!(
            beta.is_finite() && (0.0..=rate).contains(&beta),
            "beta must lie in [0, rate], got {beta}"
        );
        Self {
            rate,
            beta,
            request: 1.0,
            prev_error: 0.0,
        }
    }

    /// The integral rate `r`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The proportional coefficient `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Controller for PiControl {
    fn observe(&mut self, stats: &QuantumStats) -> f64 {
        if let Some(a) = stats.average_parallelism() {
            let error = 1.0 - self.request / a;
            let ki = (1.0 - self.rate) * a;
            let kp = self.beta * a;
            self.request += kp * (error - self.prev_error) + ki * error;
            // Requests below one processor are meaningless; the floor
            // mirrors A-Greedy's.
            self.request = self.request.max(1.0);
            self.prev_error = error;
        }
        self.request
    }

    fn current_request(&self) -> f64 {
        self.request
    }

    fn name(&self) -> &'static str {
        "pi-control"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{analyze_step_response, AControl};

    fn quantum(work: u64, span: f64) -> QuantumStats {
        QuantumStats {
            allotment: 32,
            quantum_len: 10,
            steps_worked: 10,
            work,
            span,
            completed: false,
        }
    }

    fn trajectory(ctl: &mut dyn Controller, a: f64, quanta: usize) -> Vec<f64> {
        let mut out = vec![ctl.current_request()];
        for _ in 1..quanta {
            let s = quantum((a * 10.0) as u64, 10.0);
            out.push(ctl.observe(&s));
        }
        out
    }

    #[test]
    fn beta_zero_is_acontrol() {
        let mut pi = PiControl::new(0.2, 0.0);
        let mut ac = AControl::new(0.2);
        for _ in 0..20 {
            let s = quantum(160, 10.0);
            assert!((pi.observe(&s) - ac.observe(&s)).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_with_zero_steady_state_error() {
        for beta in [0.05, 0.1, 0.2] {
            let mut pi = PiControl::new(0.2, beta);
            let traj = trajectory(&mut pi, 16.0, 60);
            let m = analyze_step_response(&traj, 16.0, 0.001);
            assert!(m.steady_state_error < 1e-6, "β={beta}: {m:?}");
        }
    }

    #[test]
    fn proportional_term_damps_settling() {
        let settle = |beta: f64| {
            let mut pi = PiControl::new(0.4, beta);
            let traj = trajectory(&mut pi, 64.0, 80);
            analyze_step_response(&traj, 64.0, 0.01).settling_quantum
        };
        // Damping slows the approach (the error difference opposes the
        // correction while converging) but must stay the same order.
        assert!(
            settle(0.4) >= settle(0.0),
            "{} vs {}",
            settle(0.4),
            settle(0.0)
        );
        assert!(
            settle(0.4) <= 3 * settle(0.0).max(1),
            "damping must not stall convergence"
        );
    }

    #[test]
    fn proportional_term_reacts_harder_to_parallelism_jumps() {
        // Converge to A = 16, then the job widens to A = 48: the error
        // difference spikes, so the PI controller covers more of the
        // gap on the first post-jump quantum than pure A-Control.
        let react = |beta: f64| {
            let mut pi = PiControl::new(0.4, beta);
            for _ in 0..40 {
                pi.observe(&quantum(160, 10.0)); // A = 16
            }
            let before = pi.current_request();
            let after = pi.observe(&quantum(480, 10.0)); // A jumps to 48
            after - before
        };
        let plain = react(0.0);
        let anticipatory = react(0.4);
        assert!(
            anticipatory > plain,
            "the proportional kick should enlarge the first response:              {anticipatory} vs {plain}"
        );
    }

    #[test]
    fn overshoot_stays_negligible() {
        for beta in [0.0, 0.1, 0.2] {
            let mut pi = PiControl::new(0.2, beta);
            let traj = trajectory(&mut pi, 32.0, 60);
            let m = analyze_step_response(&traj, 32.0, 0.001);
            assert!(
                m.max_overshoot <= 0.05 * 32.0,
                "β={beta}: overshoot {}",
                m.max_overshoot
            );
        }
    }

    #[test]
    fn request_floor_is_one() {
        let mut pi = PiControl::new(0.2, 0.2);
        // A job collapsing to parallelism 1 drives e(q) negative hard;
        // the request must not drop below one processor.
        for _ in 0..5 {
            pi.observe(&quantum(320, 10.0)); // A = 32
        }
        for _ in 0..10 {
            pi.observe(&quantum(10, 10.0)); // A = 1
        }
        assert!(pi.current_request() >= 1.0);
        assert!((pi.current_request() - 1.0).abs() < 0.2);
    }

    #[test]
    fn zero_work_quanta_hold_state() {
        let mut pi = PiControl::new(0.2, 0.1);
        pi.observe(&quantum(160, 10.0));
        let held = pi.current_request();
        let idle = QuantumStats {
            allotment: 0,
            quantum_len: 10,
            steps_worked: 0,
            work: 0,
            span: 0.0,
            completed: false,
        };
        assert_eq!(pi.observe(&idle), held);
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn beta_above_rate_rejected() {
        let _ = PiControl::new(0.2, 0.3);
    }
}
