//! A-Greedy: the multiplicative-increase multiplicative-decrease
//! baseline (Agrawal, He, Hsu, Leiserson — PPoPP 2006).

use crate::Controller;
use abg_sched::QuantumStats;
use serde::{Deserialize, Serialize};

/// The A-Greedy desire (processor-request) calculator.
///
/// A-Greedy classifies each quantum by its processor utilization and by
/// whether the allocator granted the full desire:
///
/// * **inefficient** — `T1(q) < δ·a(q)·L`: too many allotted cycles went
///   unused, so the desire is divided by the responsiveness `ρ`;
/// * **efficient and satisfied** — utilization reached `δ` and
///   `a(q) ≥ d(q)`: the job may well be able to use more, so the desire
///   is multiplied by `ρ`;
/// * **efficient but deprived** — utilization reached `δ` but the
///   allocator granted less than requested: the desire is kept.
///
/// The desire starts at `d(1) = 1` and never drops below 1 processor.
/// The paper's simulations use `ρ = 2` (its "multiplicative factor") and
/// the conventional utilization threshold `δ = 0.8`.
///
/// The scheme guarantees provably good time and waste bounds, but its
/// requests never settle: on a job of constant parallelism `A` the desire
/// perpetually oscillates in `[A/ρ, ρ·A)` — the instability shown in the
/// paper's Figures 1 and 4(b) that motivates ABG.
///
/// ```
/// use abg_control::{AGreedy, Controller};
/// use abg_sched::QuantumStats;
///
/// let mut desire = AGreedy::paper_default(); // ρ = 2, δ = 0.8
/// // Fully-utilized satisfied quantum: desire doubles.
/// let good = QuantumStats {
///     allotment: 1, quantum_len: 10, steps_worked: 10,
///     work: 10, span: 10.0, completed: false,
/// };
/// assert_eq!(desire.observe(&good), 2.0);
/// // Poorly-utilized quantum (3 of 20 cycles): desire halves.
/// let bad = QuantumStats {
///     allotment: 2, quantum_len: 10, steps_worked: 10,
///     work: 3, span: 3.0, completed: false,
/// };
/// assert_eq!(desire.observe(&bad), 1.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AGreedy {
    responsiveness: f64,
    utilization: f64,
    desire: f64,
}

impl AGreedy {
    /// Creates a calculator with responsiveness `ρ > 1` and utilization
    /// threshold `δ ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or out-of-range parameters.
    pub fn new(responsiveness: f64, utilization: f64) -> Self {
        assert!(
            responsiveness.is_finite() && responsiveness > 1.0,
            "responsiveness must exceed 1, got {responsiveness}"
        );
        assert!(
            utilization.is_finite() && utilization > 0.0 && utilization <= 1.0,
            "utilization threshold must lie in (0, 1], got {utilization}"
        );
        Self {
            responsiveness,
            utilization,
            desire: 1.0,
        }
    }

    /// The paper's simulation setting: `ρ = 2`, `δ = 0.8`.
    pub fn paper_default() -> Self {
        Self::new(2.0, 0.8)
    }

    /// The responsiveness parameter `ρ`.
    pub fn responsiveness(&self) -> f64 {
        self.responsiveness
    }

    /// The utilization threshold `δ`.
    pub fn utilization_threshold(&self) -> f64 {
        self.utilization
    }

    /// Whether a quantum with these statistics counts as efficient.
    pub fn is_efficient(&self, stats: &QuantumStats) -> bool {
        stats.work as f64 >= self.utilization * stats.allotment as f64 * stats.quantum_len as f64
    }
}

impl Controller for AGreedy {
    fn observe(&mut self, stats: &QuantumStats) -> f64 {
        // A zero allotment carries no utilization signal; hold the desire.
        if stats.allotment == 0 {
            return self.desire;
        }
        let deprived = (stats.allotment as f64) < self.desire;
        if !self.is_efficient(stats) {
            self.desire = (self.desire / self.responsiveness).max(1.0);
        } else if !deprived {
            self.desire *= self.responsiveness;
        }
        // efficient and deprived: desire unchanged.
        self.desire
    }

    fn current_request(&self) -> f64 {
        self.desire
    }

    fn name(&self) -> &'static str {
        "a-greedy"
    }

    fn supports_frozen_stepping(&self) -> bool {
        // observe() is a pure function of (desire, stats): replayable.
        true
    }

    fn is_steady(&self, stats: &QuantumStats) -> bool {
        // Only the holding branches are fixed points: a zero allotment,
        // an efficient-but-deprived quantum, or an inefficient quantum
        // already pinned at the floor. Satisfied quanta oscillate ×ρ/÷ρ
        // forever (the Figure 1 instability), so they are never steady.
        if stats.allotment == 0 {
            return true;
        }
        let deprived = (stats.allotment as f64) < self.desire;
        if !self.is_efficient(stats) {
            ((self.desire / self.responsiveness).max(1.0)).to_bits() == self.desire.to_bits()
        } else {
            deprived
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantum(allotment: u32, quantum_len: u64, work: u64) -> QuantumStats {
        QuantumStats {
            allotment,
            quantum_len,
            steps_worked: quantum_len,
            work,
            span: 1.0,
            completed: false,
        }
    }

    #[test]
    fn efficient_satisfied_doubles() {
        let mut g = AGreedy::paper_default();
        // Desire 1, allotment 1, fully used.
        assert_eq!(g.observe(&quantum(1, 10, 10)), 2.0);
        assert_eq!(g.observe(&quantum(2, 10, 20)), 4.0);
    }

    #[test]
    fn inefficient_halves() {
        let mut g = AGreedy::new(2.0, 0.8);
        g.observe(&quantum(1, 10, 10)); // -> 2
        g.observe(&quantum(2, 10, 20)); // -> 4
                                        // Only 50% utilization at allotment 4: inefficient.
        assert_eq!(g.observe(&quantum(4, 10, 20)), 2.0);
    }

    #[test]
    fn efficient_deprived_holds() {
        let mut g = AGreedy::new(2.0, 0.8);
        g.observe(&quantum(1, 10, 10)); // desire 2
                                        // Granted 1 < desire 2, fully utilized: hold.
        assert_eq!(g.observe(&quantum(1, 10, 10)), 2.0);
    }

    #[test]
    fn desire_never_below_one() {
        let mut g = AGreedy::new(2.0, 0.8);
        for _ in 0..5 {
            g.observe(&quantum(1, 10, 0)); // totally idle quanta
        }
        assert_eq!(g.current_request(), 1.0);
    }

    #[test]
    fn oscillates_on_constant_parallelism() {
        // Constant parallelism A = 10, ample availability: the desire
        // must never settle — the instability of the paper's Figure 1.
        let a_job = 10.0f64;
        let mut g = AGreedy::paper_default();
        let mut desires = Vec::new();
        let mut d = g.current_request();
        for _ in 0..32 {
            let allot = d.ceil() as u32; // allocator grants the request
                                         // Work done: with allotment above the parallelism the job can
                                         // only use A·L cycles; below it, it saturates the allotment.
            let l = 100u64;
            let work = ((allot as f64).min(a_job) * l as f64) as u64;
            d = g.observe(&quantum(allot, l, work));
            desires.push(d);
        }
        let tail = &desires[8..];
        let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = tail.iter().cloned().fold(0.0, f64::max);
        assert!(
            max / min >= 2.0 - 1e-9,
            "A-Greedy settled ({min}..{max}); expected sustained oscillation"
        );
    }

    #[test]
    fn zero_allotment_holds_desire() {
        let mut g = AGreedy::paper_default();
        g.observe(&quantum(1, 10, 10)); // desire 2
        assert_eq!(g.observe(&quantum(0, 10, 0)), 2.0);
    }

    #[test]
    fn only_holding_branches_are_steady() {
        let mut g = AGreedy::paper_default();
        assert!(g.supports_frozen_stepping());
        g.observe(&quantum(1, 10, 10)); // desire 2
        assert!(g.is_steady(&quantum(0, 10, 0)), "zero allotment holds");
        assert!(
            g.is_steady(&quantum(1, 10, 10)),
            "efficient + deprived holds"
        );
        assert!(
            !g.is_steady(&quantum(2, 10, 20)),
            "satisfied quanta keep doubling"
        );
        assert!(
            !g.is_steady(&quantum(2, 10, 5)),
            "inefficient above the floor keeps halving"
        );
        let floor = AGreedy::paper_default(); // desire 1
        assert!(
            floor.is_steady(&quantum(2, 10, 5)),
            "inefficient at the floor stays at 1"
        );
    }

    #[test]
    fn efficiency_threshold_is_inclusive() {
        let g = AGreedy::new(2.0, 0.8);
        assert!(g.is_efficient(&quantum(10, 10, 80)));
        assert!(!g.is_efficient(&quantum(10, 10, 79)));
    }

    #[test]
    #[should_panic(expected = "responsiveness")]
    fn rho_of_one_rejected() {
        let _ = AGreedy::new(1.0, 0.8);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn delta_above_one_rejected() {
        let _ = AGreedy::new(2.0, 1.5);
    }
}
