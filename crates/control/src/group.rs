//! Top-level processor allocation among processor *groups* — the upper
//! half of hierarchical two-level scheduling.
//!
//! In the two-level schemes for malleable jobs (Cao, Sun, Qian, Wu's
//! scalable hierarchical scheduling; the control-theoretic framing of
//! Furia et al.), each group of processors runs its own adaptive
//! scheduler (ABG / A-Greedy under an equi-partition allocator here)
//! and periodically reports a **group desire** upward: its aggregated
//! job requests, in-system population, and served utilization. A
//! top-level [`GroupAllocator`] folds those desires into a new capacity
//! partition at fixed reallocation epochs.
//!
//! The contract mirrors the per-job [`Controller`](crate::Controller)
//! trait one level down: the policy is fed feedback and produces the
//! next grant, but never touches the simulation itself. Every policy
//! must return capacities that sum to exactly the machine size and
//! never fall below the configured per-group floor — the floor is what
//! keeps a starved group able to *report* desire again (a group at
//! zero processors could never run a job and would deadlock the
//! feedback loop).

use serde::{Deserialize, Serialize};

/// One group's per-epoch feedback to the top-level allocator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GroupDesire {
    /// Sum of the standing processor requests `d(q)` of the group's
    /// live jobs at the epoch boundary — the group's aggregate desire
    /// in the sense of the hierarchical desire-feedback schemes.
    pub requests: f64,
    /// Jobs in the group's system (released or pending) at the epoch
    /// boundary.
    pub population: u64,
    /// Fraction of the group's capacity spent on *completed* work over
    /// the last epoch (`0.0` when the group was idle the whole epoch).
    /// Lumpy at small epochs — work in progress counts only when its
    /// job completes — but a pure function of the simulation state.
    pub utilization: f64,
}

/// A top-level allocator policy: folds per-group desires into the next
/// capacity partition at each reallocation epoch.
///
/// Invariants every implementation must uphold (the driver asserts
/// them, and the crate's property tests exercise them):
///
/// * the returned vector has one entry per group;
/// * the capacities sum to exactly `processors`;
/// * every capacity is at least `floor` (which validation guarantees
///   satisfies `groups * floor <= processors`).
pub trait GroupAllocator {
    /// Computes the capacity partition for the next epoch from the
    /// current partition and the per-group desires of the epoch that
    /// just ended. `current` and `desires` are indexed by group, and
    /// the initial partition is always the equi-partition (see
    /// [`equi_partition`]); policies only ever diverge from it at epoch
    /// boundaries.
    fn reallocate(
        &mut self,
        processors: u32,
        floor: u32,
        current: &[u32],
        desires: &[GroupDesire],
    ) -> Vec<u32>;

    /// Short human-readable name used in reports and CLI output.
    fn name(&self) -> &'static str;
}

/// Boxed group allocators are group allocators too, so drivers can be
/// generic over the policy while the CLI picks one at runtime.
impl GroupAllocator for Box<dyn GroupAllocator + Send> {
    fn reallocate(
        &mut self,
        processors: u32,
        floor: u32,
        current: &[u32],
        desires: &[GroupDesire],
    ) -> Vec<u32> {
        (**self).reallocate(processors, floor, current, desires)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// The equi-partition of `processors` over `groups`: `P/G` each, with
/// the remainder spread over the lowest-index groups. This is the
/// partition every hierarchical run starts from, and the same formula
/// the sharded engine uses for its fixed processor groups.
///
/// # Panics
///
/// Panics if `groups == 0`.
pub fn equi_partition(processors: u32, groups: u32) -> Vec<u32> {
    assert!(groups > 0, "need at least one processor group");
    (0..groups)
        .map(|k| processors / groups + u32::from(k < processors % groups))
        .collect()
}

/// Largest-remainder apportionment of `processors` over non-negative
/// `weights`, with every entry granted at least `floor`: the shared
/// arithmetic under the feedback policies. Each group is guaranteed its
/// floor; the remaining `processors - n*floor` are split proportionally
/// to the weights, fractional leftovers going to the largest
/// remainders (ties to the lowest group index). Weights that are all
/// zero (or not finite) fall back to equal weights, i.e. the
/// equi-partition of the free pool.
///
/// The result always sums to exactly `processors` and every entry is
/// at least `floor` — by construction, not by rounding luck.
///
/// # Panics
///
/// Panics if `weights` is empty or `floor * weights.len() > processors`
/// (validation upstream rejects such configurations).
pub fn apportion(processors: u32, floor: u32, weights: &[f64]) -> Vec<u32> {
    let n = weights.len();
    assert!(n > 0, "need at least one processor group");
    let floored = (floor as u64).checked_mul(n as u64).expect("tiny sizes");
    assert!(
        floored <= processors as u64,
        "floor {floor} over {n} groups exceeds {processors} processors"
    );
    let free = processors - floored as u32;

    let clean: Vec<f64> = weights.iter().map(|w| w.max(0.0)).collect();
    let total: f64 = clean.iter().sum();
    let uniform = !(total.is_finite() && total > 0.0);

    // Integer part of each proportional share, then the fractional
    // remainders decide who gets the leftover units.
    let mut out = vec![floor; n];
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(n);
    let mut granted = 0u32;
    for (k, w) in clean.iter().enumerate() {
        let share = if uniform {
            free as f64 / n as f64
        } else {
            free as f64 * w / total
        };
        let base = (share.floor() as u32).min(free - granted.min(free));
        out[k] += base;
        granted += base;
        remainders.push((k, share - share.floor()));
    }
    // Largest remainder first; ties broken by group index for a fully
    // deterministic order.
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    let mut leftover = free - granted;
    while leftover > 0 {
        for &(k, _) in &remainders {
            if leftover == 0 {
                break;
            }
            out[k] += 1;
            leftover -= 1;
        }
    }
    out
}

/// The compatibility anchor: holds the initial equi-partition forever,
/// reproducing the sharded engine's fixed `P/G` groups bit-identically
/// (the capacities never change, so the per-group cores never see a
/// reallocation).
#[derive(Debug, Clone, Copy, Default)]
pub struct StaticEqui;

impl GroupAllocator for StaticEqui {
    fn reallocate(
        &mut self,
        _processors: u32,
        _floor: u32,
        current: &[u32],
        _desires: &[GroupDesire],
    ) -> Vec<u32> {
        current.to_vec()
    }
    fn name(&self) -> &'static str {
        "static"
    }
}

/// Desire-proportional feedback partitioning: each epoch the free pool
/// (everything above the per-group floors) is apportioned in
/// proportion to the groups' aggregated request sums, with an optional
/// per-group ceiling. This is the top-level rule of the hierarchical
/// desire-feedback schemes: groups drowning in requests grow, idle
/// groups shrink to their floor, and a machine with no desire anywhere
/// relaxes back to the equi-partition.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesireProportional {
    /// Optional per-group capacity ceiling; surplus above it is
    /// redistributed to groups still below theirs.
    max_per_group: Option<u32>,
}

impl DesireProportional {
    /// A desire-proportional policy with no per-group ceiling.
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps every group at `max` processors (clamped to at least the
    /// floor at reallocation time); surplus is redistributed in group
    /// index order among groups below the cap, and the cap is ignored
    /// when it cannot be honored (all groups at the cap with processors
    /// still unplaced).
    pub fn with_max(max: u32) -> Self {
        Self {
            max_per_group: Some(max),
        }
    }
}

impl GroupAllocator for DesireProportional {
    fn reallocate(
        &mut self,
        processors: u32,
        floor: u32,
        _current: &[u32],
        desires: &[GroupDesire],
    ) -> Vec<u32> {
        let weights: Vec<f64> = desires.iter().map(|d| d.requests).collect();
        let mut out = apportion(processors, floor, &weights);
        if let Some(max) = self.max_per_group {
            clamp_to_max(&mut out, max.max(floor));
        }
        out
    }
    fn name(&self) -> &'static str {
        "desire"
    }
}

/// Trims every entry above `max` and hands the surplus to entries
/// still below it, one unit at a time in index order. If every entry
/// sits at the cap with surplus left, the cap is infeasible
/// (`max * n < sum`) and the remainder is spread round-robin anyway —
/// the sum invariant outranks the ceiling.
fn clamp_to_max(out: &mut [u32], max: u32) {
    let mut surplus = 0u32;
    for c in out.iter_mut() {
        if *c > max {
            surplus += *c - max;
            *c = max;
        }
    }
    let n = out.len();
    let mut k = 0usize;
    let mut stalled = 0usize;
    while surplus > 0 {
        if out[k] < max || stalled >= n {
            out[k] += 1;
            surplus -= 1;
            stalled = 0;
        } else {
            stalled += 1;
        }
        k = (k + 1) % n;
    }
}

/// A-Greedy's multiplicative desire adjustment lifted to the group
/// level: each group carries a desire multiplier that grows by `rho`
/// when the group was efficient (utilization at least `delta`) but
/// deprived (requested more than its capacity), shrinks by `rho` when
/// the group ran inefficiently, and holds otherwise. Idle groups reset
/// to a desire of one. Capacities are then apportioned to the desires
/// like [`DesireProportional`] — the conservative variant reacts over
/// several epochs where desire-proportional jumps immediately.
#[derive(Debug, Clone)]
pub struct ConservativeTwoLevel {
    rho: f64,
    delta: f64,
    desires: Vec<f64>,
}

impl ConservativeTwoLevel {
    /// A conservative two-level policy with responsiveness `rho > 1`
    /// and utilization threshold `delta` in `(0, 1)` — the same
    /// parameter shape as the per-job A-Greedy controller.
    ///
    /// # Panics
    ///
    /// Panics unless `rho > 1.0` and `0.0 < delta < 1.0`.
    pub fn new(rho: f64, delta: f64) -> Self {
        assert!(rho > 1.0, "responsiveness must exceed 1");
        assert!(delta > 0.0 && delta < 1.0, "threshold must be in (0, 1)");
        Self {
            rho,
            delta,
            desires: Vec::new(),
        }
    }
}

impl GroupAllocator for ConservativeTwoLevel {
    fn reallocate(
        &mut self,
        processors: u32,
        floor: u32,
        current: &[u32],
        desires: &[GroupDesire],
    ) -> Vec<u32> {
        if self.desires.len() != desires.len() {
            self.desires = vec![1.0; desires.len()];
        }
        for (k, d) in desires.iter().enumerate() {
            let g = &mut self.desires[k];
            if d.population == 0 {
                *g = 1.0;
            } else if d.utilization < self.delta {
                *g = (*g / self.rho).max(1.0);
            } else if d.requests > current[k] as f64 {
                *g = (*g * self.rho).min(processors as f64);
            }
        }
        apportion(processors, floor, &self.desires)
    }
    fn name(&self) -> &'static str {
        "conservative"
    }
}

/// The named top-level policies, as a plain enum so configurations and
/// the CLI can carry a policy by name and build the trait object at
/// run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GroupPolicy {
    /// [`StaticEqui`]: the fixed equi-partition.
    Static,
    /// [`DesireProportional`] with no per-group ceiling.
    Desire,
    /// [`ConservativeTwoLevel`] with the A-Greedy-shaped defaults
    /// `rho = 2`, `delta = 0.8`.
    Conservative,
}

impl GroupPolicy {
    /// Builds the policy behind the name.
    pub fn build(self) -> Box<dyn GroupAllocator + Send> {
        match self {
            GroupPolicy::Static => Box::new(StaticEqui),
            GroupPolicy::Desire => Box::new(DesireProportional::new()),
            GroupPolicy::Conservative => Box::new(ConservativeTwoLevel::new(2.0, 0.8)),
        }
    }

    /// The policy's [`GroupAllocator::name`] without building it.
    pub fn name(self) -> &'static str {
        match self {
            GroupPolicy::Static => "static",
            GroupPolicy::Desire => "desire",
            GroupPolicy::Conservative => "conservative",
        }
    }
}

impl std::str::FromStr for GroupPolicy {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "static" => Ok(GroupPolicy::Static),
            "desire" => Ok(GroupPolicy::Desire),
            "conservative" => Ok(GroupPolicy::Conservative),
            other => Err(format!(
                "unknown group allocator '{other}' (expected static, desire or conservative)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desire(requests: f64, population: u64, utilization: f64) -> GroupDesire {
        GroupDesire {
            requests,
            population,
            utilization,
        }
    }

    #[test]
    fn equi_partition_spreads_the_remainder_low_first() {
        assert_eq!(equi_partition(16, 3), vec![6, 5, 5]);
        assert_eq!(equi_partition(16, 1), vec![16]);
        assert_eq!(equi_partition(3, 4), vec![1, 1, 1, 0]);
    }

    #[test]
    fn apportion_is_proportional_with_exact_sum() {
        // 12 free over weights 3:1 → 9:3 on top of floor 1 each.
        assert_eq!(apportion(14, 1, &[3.0, 1.0]), vec![10, 4]);
        // Zero weights fall back to equal shares.
        assert_eq!(apportion(8, 1, &[0.0, 0.0]), vec![4, 4]);
        // Largest remainder wins the leftover unit; ties go low-index.
        assert_eq!(apportion(3, 0, &[1.0, 1.0]), vec![2, 1]);
        // Negative and non-finite weights are treated as zero weight.
        let caps = apportion(9, 1, &[f64::NAN, -2.0, 6.0]);
        assert_eq!(caps.iter().sum::<u32>(), 9);
        assert_eq!(caps[2], 7);
    }

    #[test]
    fn static_equi_holds_whatever_partition_it_is_handed() {
        let mut alloc = StaticEqui;
        let current = vec![6, 5, 5];
        let desires = vec![
            desire(100.0, 40, 1.0),
            desire(0.0, 0, 0.0),
            desire(0.0, 0, 0.0),
        ];
        assert_eq!(alloc.reallocate(16, 1, &current, &desires), current);
        assert_eq!(alloc.name(), "static");
    }

    #[test]
    fn desire_proportional_follows_the_request_skew() {
        let mut alloc = DesireProportional::new();
        let desires = vec![desire(30.0, 20, 0.9), desire(10.0, 5, 0.5)];
        let caps = alloc.reallocate(16, 1, &[8, 8], &desires);
        assert_eq!(caps.iter().sum::<u32>(), 16);
        // Floor 1 each, 14 free split 3:1 → 10.5:3.5 → [12, 4] or
        // [11, 5] depending on rounding; exact: 14*0.75 = 10.5 → base
        // 10, remainder .5 each, leftover 1 to lower index → [12, 4].
        assert_eq!(caps, vec![12, 4]);
        // No desire anywhere: relax back to equal shares.
        let idle = vec![desire(0.0, 0, 0.0); 2];
        assert_eq!(alloc.reallocate(16, 1, &caps, &idle), vec![8, 8]);
    }

    #[test]
    fn desire_proportional_honors_the_ceiling_when_feasible() {
        let mut alloc = DesireProportional::with_max(9);
        let desires = vec![desire(100.0, 50, 1.0), desire(1.0, 1, 0.2)];
        let caps = alloc.reallocate(16, 1, &[8, 8], &desires);
        assert_eq!(caps, vec![9, 7]);
        // Infeasible ceiling (2 groups × max 7 < 16): sum still wins.
        let mut tight = DesireProportional::with_max(7);
        let caps = tight.reallocate(16, 1, &[8, 8], &desires);
        assert_eq!(caps.iter().sum::<u32>(), 16);
    }

    #[test]
    fn conservative_policy_ramps_desire_multiplicatively() {
        let mut alloc = ConservativeTwoLevel::new(2.0, 0.8);
        let mut current = equi_partition(16, 2);
        // Group 0 efficient and deprived, group 1 idle: capacity shifts
        // toward group 0 over epochs, but only by a factor of rho each.
        let desires = vec![desire(20.0, 10, 0.95), desire(0.0, 0, 0.0)];
        current = alloc.reallocate(16, 1, &current, &desires);
        // Desires 2:1 over 14 free → [10, 6] (with floors).
        assert_eq!(current, vec![10, 6]);
        current = alloc.reallocate(16, 1, &current, &desires);
        // Desires 4:1 over 14 free → ~[12, 4].
        assert!(current[0] > 10, "desire keeps ramping: {current:?}");
        assert_eq!(current.iter().sum::<u32>(), 16);
        // Group 0 turns inefficient: its desire halves back.
        let cooled = vec![desire(20.0, 10, 0.2), desire(0.0, 0, 0.0)];
        let next = alloc.reallocate(16, 1, &current, &cooled);
        assert!(next[0] < current[0], "inefficiency must shrink: {next:?}");
    }

    #[test]
    fn policy_names_round_trip_through_from_str() {
        for (name, policy) in [
            ("static", GroupPolicy::Static),
            ("desire", GroupPolicy::Desire),
            ("conservative", GroupPolicy::Conservative),
        ] {
            assert_eq!(name.parse::<GroupPolicy>().unwrap(), policy);
            assert_eq!(policy.name(), name);
            assert_eq!(policy.build().name(), name);
        }
        let err = "greedy".parse::<GroupPolicy>().unwrap_err();
        assert!(err.contains("unknown group allocator 'greedy'"), "{err}");
    }
}
