//! A-Control: the paper's adaptive integral controller (Section 3).

use crate::Controller;
use abg_sched::QuantumStats;
use serde::{Deserialize, Serialize};

/// The A-Control processor-request calculator.
///
/// A-Control closes the loop of the paper's Figure 3 with the integral
/// control law `d(q+1) = d(q) + K(q+1)·e(q)` where `e(q) = 1 − d(q)/A(q)`
/// and the gain is retuned every quantum to `K(q+1) = (1 − r)·A(q)`
/// (Theorem 1). Substituting the gain gives the closed form actually
/// implemented (Equation (3)):
///
/// ```text
/// d(q) = r·d(q−1) + (1 − r)·A(q−1)     for q > 1,      d(1) = 1.
/// ```
///
/// `r ∈ [0, 1)` is the **convergence rate**: the request approaches a
/// constant parallelism geometrically with ratio `r` per quantum, with
/// `r = 0` giving one-step convergence (`d(q) = A(q−1)`).
///
/// A quantum in which no work was done carries no parallelism measurement
/// (`A(q)` is undefined); the controller holds the previous request in
/// that case rather than decaying toward zero.
///
/// ```
/// use abg_control::{AControl, Controller};
/// use abg_sched::QuantumStats;
///
/// let mut ctl = AControl::new(0.2);
/// assert_eq!(ctl.initial_request(), 1.0);
/// // A quantum that measured average parallelism A(q) = 10:
/// let stats = QuantumStats {
///     allotment: 4, quantum_len: 10, steps_worked: 10,
///     work: 100, span: 10.0, completed: false,
/// };
/// let d = ctl.observe(&stats);
/// assert!((d - (0.2 * 1.0 + 0.8 * 10.0)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AControl {
    rate: f64,
    request: f64,
}

impl AControl {
    /// Creates a controller with the given convergence rate `r ∈ [0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is outside `[0, 1)` or not finite.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && (0.0..1.0).contains(&rate),
            "convergence rate must lie in [0, 1), got {rate}"
        );
        Self { rate, request: 1.0 }
    }

    /// One-step convergence (`r = 0`): `d(q) = A(q − 1)`.
    pub fn one_step() -> Self {
        Self::new(0.0)
    }

    /// The paper's simulation setting, `r = 0.2` (Section 7.1).
    pub fn paper_default() -> Self {
        Self::new(0.2)
    }

    /// The configured convergence rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The adaptive gain `K(q+1) = (1 − r)·A(q)` that Theorem 1
    /// prescribes for the measured parallelism `a`.
    pub fn gain_for(&self, parallelism: f64) -> f64 {
        (1.0 - self.rate) * parallelism
    }
}

impl Controller for AControl {
    fn observe(&mut self, stats: &QuantumStats) -> f64 {
        if let Some(a) = stats.average_parallelism() {
            self.request = self.rate * self.request + (1.0 - self.rate) * a;
        }
        self.request
    }

    fn current_request(&self) -> f64 {
        self.request
    }

    fn name(&self) -> &'static str {
        "a-control"
    }

    fn supports_frozen_stepping(&self) -> bool {
        // observe() is a pure function of (request, stats): replayable.
        true
    }

    fn is_steady(&self, stats: &QuantumStats) -> bool {
        // Steady iff re-running the recurrence on the same measurement
        // reproduces the request bit-for-bit (a geometric fixed point, or
        // a zero-work quantum that holds the request).
        match stats.average_parallelism() {
            Some(a) => {
                (self.rate * self.request + (1.0 - self.rate) * a).to_bits()
                    == self.request.to_bits()
            }
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantum(work: u64, span: f64) -> QuantumStats {
        QuantumStats {
            allotment: 8,
            quantum_len: 10,
            steps_worked: 10,
            work,
            span,
            completed: false,
        }
    }

    #[test]
    fn initial_request_is_one() {
        let c = AControl::new(0.2);
        assert_eq!(c.current_request(), 1.0);
        assert_eq!(c.initial_request(), 1.0);
    }

    #[test]
    fn recurrence_matches_equation_3() {
        let mut c = AControl::new(0.2);
        // A(1) = 40 / 4 = 10.
        let d2 = c.observe(&quantum(40, 4.0));
        assert!((d2 - (0.2 * 1.0 + 0.8 * 10.0)).abs() < 1e-12);
        let d3 = c.observe(&quantum(40, 4.0));
        assert!((d3 - (0.2 * d2 + 0.8 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn one_step_convergence_copies_parallelism() {
        let mut c = AControl::one_step();
        assert_eq!(c.observe(&quantum(50, 5.0)), 10.0);
        assert_eq!(c.observe(&quantum(21, 3.0)), 7.0);
    }

    #[test]
    fn converges_geometrically_with_rate_r() {
        let a = 16.0;
        let mut c = AControl::new(0.5);
        let mut prev_err = (c.current_request() - a).abs();
        for _ in 0..20 {
            let d = c.observe(&quantum(64, 4.0));
            let err = (d - a).abs();
            if prev_err > 1e-9 {
                assert!((err / prev_err - 0.5).abs() < 1e-9);
            }
            prev_err = err;
        }
        assert!(prev_err < 1e-4);
    }

    #[test]
    fn no_overshoot_from_below() {
        let mut c = AControl::new(0.2);
        for _ in 0..100 {
            let d = c.observe(&quantum(100, 10.0));
            assert!(d <= 10.0 + 1e-12, "request {d} overshot the parallelism");
        }
    }

    #[test]
    fn zero_work_quantum_holds_request() {
        let mut c = AControl::new(0.2);
        c.observe(&quantum(40, 4.0));
        let held = c.current_request();
        let idle = QuantumStats {
            allotment: 0,
            quantum_len: 10,
            steps_worked: 0,
            work: 0,
            span: 0.0,
            completed: false,
        };
        assert_eq!(c.observe(&idle), held);
    }

    #[test]
    fn steadiness_tracks_the_fixed_point() {
        let mut c = AControl::one_step();
        let q = quantum(50, 5.0); // A = 10
        assert!(c.supports_frozen_stepping());
        assert!(!c.is_steady(&q), "request 1.0 is far from A = 10");
        c.observe(&q); // one-step convergence: request = 10 exactly
        assert!(
            c.is_steady(&q),
            "at the fixed point observe() is idempotent"
        );
        let idle = QuantumStats {
            allotment: 0,
            quantum_len: 10,
            steps_worked: 0,
            work: 0,
            span: 0.0,
            completed: false,
        };
        assert!(c.is_steady(&idle), "zero-work quanta hold the request");
    }

    #[test]
    fn gain_matches_theorem_1() {
        let c = AControl::new(0.25);
        assert!((c.gain_for(12.0) - 0.75 * 12.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "convergence rate")]
    fn rate_one_rejected() {
        let _ = AControl::new(1.0);
    }

    #[test]
    #[should_panic(expected = "convergence rate")]
    fn nan_rate_rejected() {
        let _ = AControl::new(f64::NAN);
    }
}
