//! Processor-request calculation for the ABG reproduction.
//!
//! Between scheduling quanta the task scheduler reports a *processor
//! request* `d(q+1)` to the OS allocator, computed from the statistics of
//! the quantum that just ended. This crate implements the paper's
//! [`AControl`] adaptive integral controller (Section 3) and the
//! [`AGreedy`] multiplicative-increase/multiplicative-decrease baseline it
//! is compared against, plus simple reference calculators and the
//! control-theoretic analysis toolkit behind Theorem 1. The
//! [`group`] module lifts the same feedback shape one level up: a
//! [`GroupAllocator`] repartitions the machine among processor groups
//! from per-group desire reports (hierarchical two-level scheduling).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acontrol;
pub mod adaptive_rate;
pub mod agreedy;
pub mod analysis;
pub mod baselines;
pub mod group;
pub mod pi;

pub use acontrol::AControl;
pub use adaptive_rate::AdaptiveRateControl;
pub use agreedy::AGreedy;
pub use analysis::{analyze_step_response, ClosedLoop, PiClosedLoop, StepMetrics};
pub use baselines::{ConstantRequest, OracleRequest};
pub use group::{
    equi_partition, ConservativeTwoLevel, DesireProportional, GroupAllocator, GroupDesire,
    GroupPolicy, StaticEqui,
};
pub use pi::PiControl;

use abg_sched::QuantumStats;

/// A non-clairvoyant per-job controller: the request side of the
/// two-level loop, plus an optional say in the quantum length.
///
/// The controller is fed the statistics of each completed quantum and
/// produces the request for the next one. `current_request` must return
/// the value most recently produced (or the initial request before any
/// feedback), so the simulator can query a job's standing request without
/// mutating state.
///
/// The two quantum-length hooks let a controller *pace* the loop (the
/// paper's adaptive-quantum future-work item): the engine passes its
/// configured quantum length `L` and the controller returns the length it
/// wants for the (first / next) quantum. The defaults return `L`
/// unchanged, so ordinary request calculators are fixed-quantum
/// controllers for free. On a machine shared by several jobs the engine
/// runs each quantum at the minimum length any live job asks for.
pub trait Controller {
    /// The request for the job's first quantum; the paper fixes
    /// `d(1) = 1` for both ABG and A-Greedy.
    fn initial_request(&self) -> f64 {
        1.0
    }

    /// Observes quantum `q` and returns the request `d(q+1)`.
    fn observe(&mut self, stats: &QuantumStats) -> f64;

    /// The standing request (last value returned by [`observe`], or the
    /// initial request).
    ///
    /// [`observe`]: Controller::observe
    fn current_request(&self) -> f64;

    /// Short human-readable name used in traces and reports.
    fn name(&self) -> &'static str;

    /// Length of the job's first quantum, given the engine's configured
    /// length `default_len`. Fixed-quantum controllers keep the default.
    fn initial_quantum_len(&self, default_len: u64) -> u64 {
        default_len
    }

    /// Length the controller wants for the job's next quantum, queried
    /// right after each [`observe`] call. Fixed-quantum controllers keep
    /// the default.
    ///
    /// [`observe`]: Controller::observe
    fn next_quantum_len(&mut self, default_len: u64) -> u64 {
        default_len
    }

    /// Whether the controller participates in frozen-quantum
    /// macro-stepping: its [`observe`] must be a pure function of
    /// `(current state, stats)` with no hidden inputs, and its
    /// [`next_quantum_len`] must be a pure function of the state (no
    /// side effects), so the engine can replay the feedback per-quantum
    /// (or skip it while [`is_steady`] holds) during a bulk advance.
    /// Defaults to `false` — unknown controllers force the engine back
    /// to quantum-by-quantum stepping.
    ///
    /// [`next_quantum_len`]: Controller::next_quantum_len
    ///
    /// [`observe`]: Controller::observe
    /// [`is_steady`]: Controller::is_steady
    fn supports_frozen_stepping(&self) -> bool {
        false
    }

    /// Whether feeding the *same* `stats` to [`observe`] again would
    /// leave the controller state (and thus its request and quantum
    /// length) bit-identical. A conservative `false` is always correct;
    /// `true` lets the engine skip the replay entirely for this job.
    ///
    /// [`observe`]: Controller::observe
    fn is_steady(&self, stats: &QuantumStats) -> bool {
        let _ = stats;
        false
    }
}

/// The pre-unification name of [`Controller`] (when the request side and
/// the quantum-length side were separate traits). Kept as an alias so
/// existing `impl RequestCalculator for ...` blocks and bounds keep
/// working unchanged.
pub use Controller as RequestCalculator;

/// Boxed controllers are controllers too, so the simulator can hold a
/// heterogeneous set of per-job controllers. All methods forward —
/// including the quantum-length and frozen-stepping hooks, so a boxed
/// paced controller still paces the engine and a boxed steady controller
/// still freezes it (a defaulted forward here would silently disable
/// macro-stepping for every boxed controller).
impl Controller for Box<dyn Controller + Send> {
    fn initial_request(&self) -> f64 {
        (**self).initial_request()
    }
    fn observe(&mut self, stats: &QuantumStats) -> f64 {
        (**self).observe(stats)
    }
    fn current_request(&self) -> f64 {
        (**self).current_request()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn initial_quantum_len(&self, default_len: u64) -> u64 {
        (**self).initial_quantum_len(default_len)
    }
    fn next_quantum_len(&mut self, default_len: u64) -> u64 {
        (**self).next_quantum_len(default_len)
    }
    fn supports_frozen_stepping(&self) -> bool {
        (**self).supports_frozen_stepping()
    }
    fn is_steady(&self, stats: &QuantumStats) -> bool {
        (**self).is_steady(stats)
    }
}

/// Mutable references are controllers too, so a driver that owns its
/// controller can lend it to a generic engine for the duration of a run.
impl<T: Controller + ?Sized> Controller for &mut T {
    fn initial_request(&self) -> f64 {
        (**self).initial_request()
    }
    fn observe(&mut self, stats: &QuantumStats) -> f64 {
        (**self).observe(stats)
    }
    fn current_request(&self) -> f64 {
        (**self).current_request()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn initial_quantum_len(&self, default_len: u64) -> u64 {
        (**self).initial_quantum_len(default_len)
    }
    fn next_quantum_len(&mut self, default_len: u64) -> u64 {
        (**self).next_quantum_len(default_len)
    }
    fn supports_frozen_stepping(&self) -> bool {
        (**self).supports_frozen_stepping()
    }
    fn is_steady(&self, stats: &QuantumStats) -> bool {
        (**self).is_steady(stats)
    }
}
