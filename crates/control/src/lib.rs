//! Processor-request calculation for the ABG reproduction.
//!
//! Between scheduling quanta the task scheduler reports a *processor
//! request* `d(q+1)` to the OS allocator, computed from the statistics of
//! the quantum that just ended. This crate implements the paper's
//! [`AControl`] adaptive integral controller (Section 3) and the
//! [`AGreedy`] multiplicative-increase/multiplicative-decrease baseline it
//! is compared against, plus simple reference calculators and the
//! control-theoretic analysis toolkit behind Theorem 1.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acontrol;
pub mod adaptive_rate;
pub mod agreedy;
pub mod analysis;
pub mod baselines;
pub mod pi;

pub use acontrol::AControl;
pub use adaptive_rate::AdaptiveRateControl;
pub use agreedy::AGreedy;
pub use analysis::{analyze_step_response, ClosedLoop, PiClosedLoop, StepMetrics};
pub use baselines::{ConstantRequest, OracleRequest};
pub use pi::PiControl;

use abg_sched::QuantumStats;

/// A non-clairvoyant processor-request calculator for one job.
///
/// The calculator is fed the statistics of each completed quantum and
/// produces the request for the next one. `current_request` must return
/// the value most recently produced (or the initial request before any
/// feedback), so the simulator can query a job's standing request without
/// mutating state.
pub trait RequestCalculator {
    /// The request for the job's first quantum; the paper fixes
    /// `d(1) = 1` for both ABG and A-Greedy.
    fn initial_request(&self) -> f64 {
        1.0
    }

    /// Observes quantum `q` and returns the request `d(q+1)`.
    fn observe(&mut self, stats: &QuantumStats) -> f64;

    /// The standing request (last value returned by [`observe`], or the
    /// initial request).
    ///
    /// [`observe`]: RequestCalculator::observe
    fn current_request(&self) -> f64;

    /// Short human-readable name used in traces and reports.
    fn name(&self) -> &'static str;
}

/// Boxed calculators are calculators too, so the simulator can hold a
/// heterogeneous set of per-job controllers.
impl RequestCalculator for Box<dyn RequestCalculator + Send> {
    fn initial_request(&self) -> f64 {
        (**self).initial_request()
    }
    fn observe(&mut self, stats: &QuantumStats) -> f64 {
        (**self).observe(stats)
    }
    fn current_request(&self) -> f64 {
        (**self).current_request()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}
