//! Reference request calculators used as experiment controls.

use crate::Controller;
use abg_sched::QuantumStats;
use serde::{Deserialize, Serialize};

/// Requests a fixed number of processors every quantum — the
/// conventional non-adaptive strategy the paper's introduction argues
/// against.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ConstantRequest {
    request: f64,
}

impl ConstantRequest {
    /// Creates a calculator that always requests `request` processors.
    ///
    /// # Panics
    ///
    /// Panics if `request < 1` or is not finite.
    pub fn new(request: f64) -> Self {
        assert!(
            request.is_finite() && request >= 1.0,
            "constant request must be at least 1, got {request}"
        );
        Self { request }
    }
}

impl Controller for ConstantRequest {
    fn initial_request(&self) -> f64 {
        self.request
    }

    fn observe(&mut self, _stats: &QuantumStats) -> f64 {
        self.request
    }

    fn current_request(&self) -> f64 {
        self.request
    }

    fn name(&self) -> &'static str {
        "constant"
    }

    fn supports_frozen_stepping(&self) -> bool {
        true
    }

    fn is_steady(&self, _stats: &QuantumStats) -> bool {
        // The request never moves: every quantum is a fixed point.
        true
    }
}

/// A clairvoyant calculator that always requests the job's *overall*
/// average parallelism `T1/T∞`.
///
/// No online scheduler can use this (the parallelism is unknown before
/// the job finishes); it serves as an idealised upper baseline when
/// evaluating how close the adaptive schemes get.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OracleRequest {
    parallelism: f64,
}

impl OracleRequest {
    /// Creates an oracle for a job whose average parallelism is known.
    ///
    /// # Panics
    ///
    /// Panics if `average_parallelism < 1` or is not finite.
    pub fn new(average_parallelism: f64) -> Self {
        assert!(
            average_parallelism.is_finite() && average_parallelism >= 1.0,
            "average parallelism must be at least 1, got {average_parallelism}"
        );
        Self {
            parallelism: average_parallelism,
        }
    }
}

impl Controller for OracleRequest {
    fn initial_request(&self) -> f64 {
        self.parallelism
    }

    fn observe(&mut self, _stats: &QuantumStats) -> f64 {
        self.parallelism
    }

    fn current_request(&self) -> f64 {
        self.parallelism
    }

    fn name(&self) -> &'static str {
        "oracle"
    }

    fn supports_frozen_stepping(&self) -> bool {
        true
    }

    fn is_steady(&self, _stats: &QuantumStats) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn any_quantum() -> QuantumStats {
        QuantumStats {
            allotment: 3,
            quantum_len: 5,
            steps_worked: 5,
            work: 15,
            span: 5.0,
            completed: false,
        }
    }

    #[test]
    fn constant_ignores_feedback() {
        let mut c = ConstantRequest::new(7.0);
        assert_eq!(c.initial_request(), 7.0);
        assert_eq!(c.observe(&any_quantum()), 7.0);
        assert_eq!(c.current_request(), 7.0);
        assert_eq!(c.name(), "constant");
    }

    #[test]
    fn oracle_requests_average_parallelism() {
        let mut o = OracleRequest::new(12.5);
        assert_eq!(o.initial_request(), 12.5);
        assert_eq!(o.observe(&any_quantum()), 12.5);
    }

    #[test]
    fn boxed_calculator_dispatches() {
        let mut b: Box<dyn Controller + Send> = Box::new(ConstantRequest::new(4.0));
        assert_eq!(b.observe(&any_quantum()), 4.0);
        assert_eq!(b.name(), "constant");
        assert_eq!(b.initial_request(), 4.0);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn constant_below_one_rejected() {
        let _ = ConstantRequest::new(0.5);
    }

    #[test]
    #[should_panic(expected = "average parallelism")]
    fn oracle_nan_rejected() {
        let _ = OracleRequest::new(f64::NAN);
    }
}
