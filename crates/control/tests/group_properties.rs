//! Property tests for the top-level [`GroupAllocator`] policies: every
//! partition a policy returns must sum to exactly the machine size and
//! keep every group at or above the configured floor, whatever desires
//! it is fed — including adversarial values (NaN, negative, huge).

use abg_control::{
    equi_partition, ConservativeTwoLevel, DesireProportional, GroupAllocator, GroupDesire,
    GroupPolicy, StaticEqui,
};
use proptest::prelude::*;

/// One arbitrary (possibly hostile) desire report.
fn any_desire() -> impl Strategy<Value = GroupDesire> {
    (
        prop_oneof![-1e6f64..1e6, Just(f64::NAN), Just(f64::INFINITY), Just(0.0),],
        0u64..10_000,
        prop_oneof![0.0f64..1.5, Just(f64::NAN)],
    )
        .prop_map(|(requests, population, utilization)| GroupDesire {
            requests,
            population,
            utilization,
        })
}

/// A consistent machine shape: `groups * floor <= processors`.
fn machine() -> impl Strategy<Value = (u32, u32, u32)> {
    (1u32..=16, 1u32..=512).prop_flat_map(|(groups, processors)| {
        let processors = processors.max(groups);
        let max_floor = processors / groups;
        (Just(processors), Just(groups), 1..=max_floor)
    })
}

fn check_invariants(caps: &[u32], processors: u32, groups: u32, floor: u32) {
    assert_eq!(caps.len(), groups as usize);
    assert_eq!(caps.iter().sum::<u32>(), processors);
    for (k, &c) in caps.iter().enumerate() {
        assert!(c >= floor, "group {k} got {c} < floor {floor}: {caps:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every policy keeps the sum-and-floor invariants over a run of
    /// epochs, starting from the equi-partition, for any desire stream.
    #[test]
    fn policies_always_sum_to_p_and_respect_the_floor(
        (processors, groups, floor) in machine(),
        epochs in prop::collection::vec(
            prop::collection::vec(any_desire(), 16), 1..8),
        policy in prop_oneof![
            Just(GroupPolicy::Static),
            Just(GroupPolicy::Desire),
            Just(GroupPolicy::Conservative),
        ],
    ) {
        let mut alloc = policy.build();
        let mut caps = equi_partition(processors, groups);
        // `machine()` guarantees the floor fits, so even the initial
        // equi-partition must satisfy the invariants.
        check_invariants(&caps, processors, groups, floor);
        for desires in &epochs {
            caps = alloc.reallocate(processors, floor, &caps, &desires[..groups as usize]);
            check_invariants(&caps, processors, groups, floor);
        }
    }

    /// The desire-proportional ceiling never breaks the sum invariant,
    /// feasible or not.
    #[test]
    fn desire_ceiling_preserves_the_sum(
        (processors, groups, floor) in machine(),
        max in 1u32..64,
        desires in prop::collection::vec(any_desire(), 16),
    ) {
        let mut alloc = DesireProportional::with_max(max);
        let caps = alloc.reallocate(
            processors, floor, &equi_partition(processors, groups),
            &desires[..groups as usize]);
        prop_assert_eq!(caps.iter().sum::<u32>(), processors);
        prop_assert!(caps.iter().all(|&c| c >= floor));
    }

    /// StaticEqui is the identity on whatever partition it is handed —
    /// the property behind its bit-compatibility with the sharded
    /// engine's fixed groups.
    #[test]
    fn static_equi_is_the_identity(
        (processors, groups, _floor) in machine(),
        desires in prop::collection::vec(any_desire(), 16),
    ) {
        let current = equi_partition(processors, groups);
        let caps = StaticEqui.reallocate(
            processors, 1, &current, &desires[..groups as usize]);
        prop_assert_eq!(caps, current);
    }

    /// The conservative policy's multiplier state never produces an
    /// invalid partition even when group counts change between calls
    /// (the policy re-seeds its state on a shape change).
    #[test]
    fn conservative_survives_shape_changes(
        (processors, groups, floor) in machine(),
        desires in prop::collection::vec(any_desire(), 16),
    ) {
        let mut alloc = ConservativeTwoLevel::new(2.0, 0.8);
        // Warm the state at a different group count first.
        let warm = equi_partition(processors.max(2), 2);
        let _ = alloc.reallocate(processors.max(2), 1, &warm, &[
            GroupDesire::default(), GroupDesire::default()]);
        let caps = alloc.reallocate(
            processors, floor, &equi_partition(processors, groups),
            &desires[..groups as usize]);
        check_invariants(&caps, processors, groups, floor);
    }
}
