//! Property tests for the dag substrate: builder validation, level
//! assignment, and the consistency of the three job representations.

use abg_dag::generate::random_layered;
use abg_dag::{DagBuilder, JobStructure, LeveledJob, Phase, PhasedJob, TaskId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Brute-force longest-path levels for cross-checking the builder.
fn brute_force_levels(n: usize, edges: &[(u32, u32)]) -> Vec<u32> {
    let mut level = vec![0u32; n];
    // Bellman-Ford style relaxation; terminates because the input is
    // acyclic (edges only go forward in id order in the generator).
    for _ in 0..n {
        for &(a, b) in edges {
            level[b as usize] = level[b as usize].max(level[a as usize] + 1);
        }
    }
    level
}

/// Random forward-edge dags: edges (a, b) with a < b never form cycles.
fn forward_dags() -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..24).prop_flat_map(|n| {
        let edges = prop::collection::vec(
            (0..(n as u32 - 1))
                .prop_flat_map(move |a| ((a + 1)..n as u32).prop_map(move |b| (a, b))),
            0..40,
        );
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The builder's level assignment equals the brute-force longest
    /// path, and level sizes always sum to the work.
    #[test]
    fn builder_levels_are_longest_paths((n, mut edges) in forward_dags()) {
        edges.sort_unstable();
        edges.dedup();
        let mut b = DagBuilder::new();
        b.add_tasks(n);
        for &(x, y) in &edges {
            b.add_edge(TaskId(x), TaskId(y)).expect("forward edges are valid");
        }
        let dag = b.build().expect("forward-edge graphs are acyclic");
        let expected = brute_force_levels(n, &edges);
        for t in dag.tasks() {
            prop_assert_eq!(dag.level(t), expected[t.index()]);
        }
        prop_assert_eq!(dag.level_sizes().iter().sum::<u64>(), dag.work());
        prop_assert_eq!(dag.span(), u64::from(*expected.iter().max().unwrap()) + 1);
    }

    /// Duplicate edges are rejected exactly when they repeat.
    #[test]
    fn duplicate_edges_rejected((n, mut edges) in forward_dags()) {
        edges.sort_unstable();
        edges.dedup();
        prop_assume!(!edges.is_empty());
        let mut b = DagBuilder::new();
        b.add_tasks(n);
        for &(x, y) in &edges {
            b.add_edge(TaskId(x), TaskId(y)).expect("first insertion fine");
        }
        let (x, y) = edges[0];
        prop_assert!(b.add_edge(TaskId(x), TaskId(y)).is_err());
    }

    /// A cycle is always caught at build time.
    #[test]
    fn cycles_always_detected(n in 2usize..16, at in 0usize..14) {
        let at = at % (n - 1);
        let mut b = DagBuilder::new();
        b.add_tasks(n);
        // A forward chain plus one back edge closing a cycle.
        for i in 0..n - 1 {
            b.add_edge(TaskId(i as u32), TaskId(i as u32 + 1)).unwrap();
        }
        b.add_edge(TaskId(at as u32 + 1), TaskId(at as u32)).unwrap();
        prop_assert!(b.build().is_err());
    }

    /// The three job representations agree on work, span and profile
    /// for barrier-compatible shapes.
    #[test]
    fn representations_agree(widths in prop::collection::vec(1u64..8, 1..8)) {
        let leveled = LeveledJob::from_widths(widths.clone());
        let phased = PhasedJob::new(
            widths.iter().map(|&w| Phase::new(w, 1)).collect(),
        );
        prop_assert_eq!(leveled.work(), JobStructure::work(&phased));
        prop_assert_eq!(leveled.span(), JobStructure::span(&phased));
        let leveled_profile = JobStructure::profile(&leveled);
        let phased_profile = JobStructure::profile(&phased);
        prop_assert_eq!(leveled_profile.widths(), phased_profile.widths());
        let exp_l = leveled.to_explicit();
        let exp_p = phased.to_explicit();
        prop_assert_eq!(exp_l.work(), exp_p.work());
        prop_assert_eq!(exp_l.span(), exp_p.span());
        // One-level phases have the same barrier structure either way.
        prop_assert_eq!(exp_l.num_edges(), exp_p.num_edges());
    }

    /// The transition factor is scale-consistent: measured with the
    /// whole job as one quantum it is exactly the average parallelism
    /// (vs A(0) = 1) or 1/average, whichever exceeds 1.
    #[test]
    fn transition_factor_whole_job(widths in prop::collection::vec(1u64..9, 1..10)) {
        let job = LeveledJob::from_widths(widths);
        let c = job.transition_factor(job.span());
        let avg = job.average_parallelism();
        let expected = if avg >= 1.0 { avg } else { 1.0 / avg };
        prop_assert!((c - expected).abs() < 1e-9, "c = {c}, expected {expected}");
    }

    /// `random_layered` always produces dags whose span equals the
    /// requested layer count and whose every non-source task has at
    /// least one predecessor.
    #[test]
    fn random_layered_well_formed(seed in 0u64..500, layers in 1u32..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        let dag = random_layered(&mut rng, layers, 1..=4, 0.25);
        prop_assert_eq!(dag.span(), u64::from(layers));
        for t in dag.tasks() {
            if dag.level(t) > 0 {
                prop_assert!(dag.in_degree(t) >= 1);
            }
        }
        let sources = dag.sources().count() as u64;
        prop_assert_eq!(sources, dag.level_sizes()[0]);
    }
}
