//! Phase-structured fork-join jobs with *pipelined* parallel phases.
//!
//! A [`PhasedJob`] is a sequence of [`Phase`]s. Phase `i` of width `w`
//! and length `k` consists of `w` independent chains of `k` unit tasks;
//! consecutive phases are separated by a join: every chain of phase
//! `i + 1` depends on all chains of phase `i` finishing.
//!
//! The difference from the barrier-per-level [`LeveledJob`](crate::LeveledJob) model is
//! *inside* a phase: chains pipeline freely, so a job in a width-`w`
//! phase always has exactly `w` ready tasks (one per live chain) and any
//! allotment `a ≤ w` achieves full utilization. Under a barrier-per-level
//! model, an allotment that does not divide the width loses up to
//! `1 − w/(a·⌈w/a⌉)` of its cycles at every level boundary, which
//! distorts utilization-feedback schedulers like A-Greedy in a way the
//! paper's workloads do not show. The pipelined model is therefore the
//! default workload shape; the barrier model is kept for ablation.

use crate::explicit::{DagBuilder, ExplicitDag};
use crate::leveled::Phase;
use crate::profile::ParallelismProfile;
use crate::stats::JobStructure;
use crate::TaskId;
use serde::{Deserialize, Serialize};

/// A fork-join job given by its phase list, with pipelined chains inside
/// each phase and a join between consecutive phases.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhasedJob {
    phases: Vec<Phase>,
    work: u64,
    span: u64,
}

impl PhasedJob {
    /// Builds a job from its phase list.
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero width or
    /// length.
    pub fn new(phases: Vec<Phase>) -> Self {
        assert!(!phases.is_empty(), "a job must have at least one phase");
        assert!(
            phases.iter().all(|p| p.width > 0 && p.levels > 0),
            "every phase must have positive width and length"
        );
        let work = phases.iter().map(Phase::work).sum();
        let span = phases.iter().map(|p| p.levels).sum();
        Self { phases, work, span }
    }

    /// A constant-parallelism job: one phase of `width` chains, `levels`
    /// long (the synthetic job of the paper's Figures 1 and 4).
    pub fn constant(width: u64, levels: u64) -> Self {
        Self::new(vec![Phase::new(width, levels)])
    }

    /// The phase list.
    #[inline]
    pub fn phases(&self) -> &[Phase] {
        &self.phases
    }

    /// Work `T1`.
    #[inline]
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Critical-path length `T∞` (one task per level of each phase).
    #[inline]
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Average parallelism `T1 / T∞`.
    pub fn average_parallelism(&self) -> f64 {
        self.work as f64 / self.span as f64
    }

    /// Maximum phase width.
    pub fn max_width(&self) -> u64 {
        self.phases.iter().map(|p| p.width).max().unwrap_or(0)
    }

    /// Lowers the job to an [`ExplicitDag`]: chains inside each phase,
    /// full bipartite join edges between the last level of one phase and
    /// the first level of the next.
    ///
    /// Quadratic in phase width at the joins; intended for cross-checking
    /// the fast executor on small jobs.
    pub fn to_explicit(&self) -> ExplicitDag {
        let mut b = DagBuilder::with_capacity(self.work as usize);
        // Tails of the previous phase's chains (its last level).
        let mut prev_tails: Vec<TaskId> = Vec::new();
        for phase in &self.phases {
            let mut tails = Vec::with_capacity(phase.width as usize);
            for _ in 0..phase.width {
                let head = b.add_task();
                for &t in &prev_tails {
                    b.add_edge(t, head).expect("generated edges are valid");
                }
                let mut prev = head;
                for _ in 1..phase.levels {
                    let next = b.add_task();
                    b.add_edge(prev, next).expect("generated edges are valid");
                    prev = next;
                }
                tails.push(prev);
            }
            prev_tails = tails;
        }
        b.build().expect("generated job is acyclic")
    }
}

impl JobStructure for PhasedJob {
    fn work(&self) -> u64 {
        PhasedJob::work(self)
    }
    fn span(&self) -> u64 {
        PhasedJob::span(self)
    }
    fn profile(&self) -> ParallelismProfile {
        let mut widths = Vec::with_capacity(self.span as usize);
        for p in &self.phases {
            widths.extend(std::iter::repeat_n(p.width, p.levels as usize));
        }
        ParallelismProfile::new(widths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let j = PhasedJob::new(vec![Phase::new(1, 3), Phase::new(8, 5), Phase::new(1, 2)]);
        assert_eq!(j.work(), 3 + 40 + 2);
        assert_eq!(j.span(), 10);
        assert_eq!(j.max_width(), 8);
        assert!((j.average_parallelism() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn constant_is_single_phase() {
        let j = PhasedJob::constant(10, 20);
        assert_eq!(j.phases().len(), 1);
        assert_eq!(j.work(), 200);
        assert_eq!(j.span(), 20);
    }

    #[test]
    fn lowering_preserves_structure() {
        let j = PhasedJob::new(vec![Phase::new(1, 2), Phase::new(3, 2), Phase::new(2, 1)]);
        let d = j.to_explicit();
        assert_eq!(d.work(), j.work());
        assert_eq!(d.span(), j.span());
        assert_eq!(d.level_sizes(), &[1, 1, 3, 3, 2]);
        // Join: each head of the 2-wide phase depends on all 3 tails.
        let heads: Vec<_> = d.tasks().filter(|&t| d.level(t) == 4).collect();
        assert_eq!(heads.len(), 2);
        for h in heads {
            assert_eq!(d.in_degree(h), 3);
        }
        // Inside the 3-wide phase, second-level tasks have one parent.
        let inner: Vec<_> = d.tasks().filter(|&t| d.level(t) == 3).collect();
        for t in inner {
            assert_eq!(d.in_degree(t), 1, "chains pipeline inside a phase");
        }
    }

    #[test]
    fn profile_expands_phases() {
        let j = PhasedJob::new(vec![Phase::new(2, 2), Phase::new(5, 1)]);
        assert_eq!(JobStructure::profile(&j).widths(), &[2, 2, 5]);
        assert!(j.transition_factor(1) >= 2.0);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_job_rejected() {
        let _ = PhasedJob::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_width_phase_rejected() {
        let _ = PhasedJob::new(vec![Phase::new(0, 3)]);
    }
}
