//! Intrinsic job statistics shared by all job representations.
//!
//! The paper characterises a job by its work `T1`, critical-path length
//! `T∞`, and transition factor `C_L` (Section 5.2). [`JobStructure`]
//! abstracts the first two over both job representations, and
//! [`transition_factor`] measures `C_L` from a parallelism profile.

use crate::profile::ParallelismProfile;
use crate::{ExplicitDag, LeveledJob};

/// Common intrinsic structure of a job, independent of how it is stored.
pub trait JobStructure {
    /// Work `T1`: total number of unit tasks.
    fn work(&self) -> u64;

    /// Critical-path length `T∞`: tasks on the longest dependency chain.
    fn span(&self) -> u64;

    /// The job's per-level parallelism profile.
    fn profile(&self) -> ParallelismProfile;

    /// Average parallelism `T1 / T∞`.
    fn average_parallelism(&self) -> f64 {
        self.work() as f64 / self.span() as f64
    }

    /// Empirical transition factor for quantum length `quantum_levels`
    /// (in levels); see [`transition_factor`].
    fn transition_factor(&self, quantum_levels: u64) -> f64 {
        transition_factor(&self.profile(), quantum_levels)
    }
}

impl JobStructure for LeveledJob {
    fn work(&self) -> u64 {
        LeveledJob::work(self)
    }
    fn span(&self) -> u64 {
        LeveledJob::span(self)
    }
    fn profile(&self) -> ParallelismProfile {
        ParallelismProfile::from(self)
    }
}

impl JobStructure for ExplicitDag {
    fn work(&self) -> u64 {
        ExplicitDag::work(self)
    }
    fn span(&self) -> u64 {
        ExplicitDag::span(self)
    }
    fn profile(&self) -> ParallelismProfile {
        ParallelismProfile::from(self)
    }
}

/// Measures the transition factor `C_L` of a job from its parallelism
/// profile under the reference (ample-processor) schedule.
///
/// Following Section 5.2 of the paper, `C_L ≥ 1` is the maximal ratio of
/// the average parallelism of any two adjacent full quanta:
///
/// ```text
/// 1 / C_L  ≤  A(q) / A(q - 1)  ≤  C_L      for q ≥ 1,   A(0) = 1.
/// ```
///
/// Under the reference schedule each level takes one step, so a quantum
/// spans `quantum_levels` consecutive levels and `A(q)` is the mean width
/// across them. Only full quanta participate (a trailing partial quantum
/// is excluded), but the defined `A(0) = 1` boundary is always included,
/// so a job that opens at high parallelism has a correspondingly high
/// `C_L`.
///
/// The paper treats `C_L` as an intrinsic characteristic derived from a
/// worst-case schedule; the reference schedule is the natural witness and
/// is what the paper's workload generator controls ("varying the level of
/// parallelism in the parallel phases").
pub fn transition_factor(profile: &ParallelismProfile, quantum_levels: u64) -> f64 {
    let mut averages = profile.quantum_averages(quantum_levels);
    if !profile.span().is_multiple_of(quantum_levels) && averages.len() > 1 {
        averages.pop(); // drop the trailing partial (non-full) quantum
    }
    let mut prev = 1.0f64; // A(0) = 1 by definition
    let mut c = 1.0f64;
    for &a in &averages {
        let ratio = if a > prev { a / prev } else { prev / a };
        c = c.max(ratio);
        prev = a;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_job_starting_serial_has_factor_of_its_width_step() {
        // serial prologue keeps A(1) near 1; the jump to width 8 dominates.
        let p = ParallelismProfile::new(vec![1, 1, 1, 1, 8, 8, 8, 8]);
        let c = transition_factor(&p, 4);
        assert!((c - 8.0).abs() < 1e-12, "c = {c}");
    }

    #[test]
    fn serial_job_has_unit_factor() {
        let p = ParallelismProfile::new(vec![1; 16]);
        assert_eq!(transition_factor(&p, 4), 1.0);
    }

    #[test]
    fn opening_parallel_phase_counts_against_a0() {
        // A(0) = 1 and A(1) = 6, so C_L = 6 even with no later variation.
        let p = ParallelismProfile::new(vec![6; 8]);
        assert_eq!(transition_factor(&p, 4), 6.0);
    }

    #[test]
    fn downward_transitions_count_symmetrically() {
        let p = ParallelismProfile::new(vec![1, 1, 10, 10, 1, 1]);
        let c = transition_factor(&p, 2);
        assert_eq!(c, 10.0);
    }

    #[test]
    fn partial_tail_quantum_is_trimmed() {
        // Last quantum covers a single level of width 100; it is not a
        // full quantum and must not inflate the factor.
        let p = ParallelismProfile::new(vec![1, 1, 2, 2, 100]);
        let c = transition_factor(&p, 2);
        assert_eq!(c, 2.0);
    }

    #[test]
    fn trait_wiring_leveled_vs_explicit() {
        let j = crate::LeveledJob::from_widths(vec![1, 1, 4, 4]);
        let e = j.to_explicit();
        assert_eq!(JobStructure::work(&j), JobStructure::work(&e));
        assert_eq!(JobStructure::span(&j), JobStructure::span(&e));
        assert_eq!(j.transition_factor(2), e.transition_factor(2));
        assert!((j.average_parallelism() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn factor_at_least_one() {
        let p = ParallelismProfile::new(vec![3, 3, 3]);
        assert!(transition_factor(&p, 3) >= 1.0);
    }
}
