//! Leveled (barrier-synchronous) jobs described by a width profile.
//!
//! A [`LeveledJob`] is a sequence of levels; level `l` contains
//! `widths[l]` unit tasks, and every task of level `l + 1` depends on all
//! tasks of level `l` (a barrier). Data-parallel fork-join jobs — the
//! workload class of the paper's evaluation (Section 7.1) — have exactly
//! this shape: serial phases are runs of width-1 levels and parallel
//! phases are runs of width-`w` levels.
//!
//! The barrier structure means a scheduler's progress through the job is
//! fully described by `(current level, tasks completed in that level)`,
//! which is what enables the `O(levels)` fast-forward executor in
//! `abg-sched`.

use crate::explicit::{DagBuilder, ExplicitDag};
use serde::{Deserialize, Serialize};

/// One phase of a fork-join job: `levels` consecutive levels of `width`
/// tasks each.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    /// Tasks per level in this phase (the degree of parallelism).
    pub width: u64,
    /// Number of consecutive levels of this width.
    pub levels: u64,
}

impl Phase {
    /// A phase of `levels` levels, `width` tasks each.
    pub fn new(width: u64, levels: u64) -> Self {
        Self { width, levels }
    }

    /// Total tasks in the phase.
    pub fn work(&self) -> u64 {
        self.width * self.levels
    }
}

/// A job given by its per-level width profile with barrier semantics.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeveledJob {
    widths: Vec<u64>,
    work: u64,
}

impl LeveledJob {
    /// Builds a job from an explicit per-level width profile.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or contains a zero width — a level with
    /// no tasks is meaningless.
    pub fn from_widths(widths: Vec<u64>) -> Self {
        assert!(!widths.is_empty(), "a job must have at least one level");
        assert!(
            widths.iter().all(|&w| w > 0),
            "every level must contain at least one task"
        );
        let work = widths.iter().sum();
        Self { widths, work }
    }

    /// A purely serial job: `levels` levels of width 1.
    pub fn serial(levels: u64) -> Self {
        Self::from_widths(vec![1; levels as usize])
    }

    /// A constant-parallelism job: `levels` levels of width `width`.
    ///
    /// This is the shape used by the paper's Figures 1 and 4 (a job whose
    /// parallelism "stays constant").
    pub fn constant(width: u64, levels: u64) -> Self {
        Self::from_widths(vec![width; levels as usize])
    }

    /// Concatenates phases into a fork-join job.
    pub fn from_phases(phases: &[Phase]) -> Self {
        let total: u64 = phases.iter().map(|p| p.levels).sum();
        let mut widths = Vec::with_capacity(total as usize);
        for p in phases {
            assert!(p.width > 0 && p.levels > 0, "phases must be non-empty");
            widths.extend(std::iter::repeat_n(p.width, p.levels as usize));
        }
        Self::from_widths(widths)
    }

    /// The per-level width profile.
    #[inline]
    pub fn widths(&self) -> &[u64] {
        &self.widths
    }

    /// Work `T1`: total number of unit tasks.
    #[inline]
    pub fn work(&self) -> u64 {
        self.work
    }

    /// Critical-path length `T∞`: the number of levels (each level
    /// contributes exactly one task to the longest chain).
    #[inline]
    pub fn span(&self) -> u64 {
        self.widths.len() as u64
    }

    /// Average parallelism `T1 / T∞`.
    pub fn average_parallelism(&self) -> f64 {
        self.work as f64 / self.span() as f64
    }

    /// Maximum width over all levels.
    pub fn max_width(&self) -> u64 {
        self.widths.iter().copied().max().unwrap_or(0)
    }

    /// Lowers the job to an [`ExplicitDag`] with one task per unit of work
    /// and a full bipartite edge set between consecutive levels (the
    /// barrier).
    ///
    /// The lowering is quadratic in level width and is intended for
    /// cross-checking the fast-forward executor against the per-task
    /// executor on small jobs, not for production workloads.
    pub fn to_explicit(&self) -> ExplicitDag {
        let mut b = DagBuilder::with_capacity(self.work as usize);
        let mut prev: Vec<crate::TaskId> = Vec::new();
        for &w in &self.widths {
            let mut cur = Vec::with_capacity(w as usize);
            for _ in 0..w {
                cur.push(b.add_task());
            }
            for &p in &prev {
                for &c in &cur {
                    b.add_edge(p, c).expect("generated edges are valid");
                }
            }
            prev = cur;
        }
        b.build().expect("generated job is acyclic")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_job() {
        let j = LeveledJob::serial(4);
        assert_eq!(j.work(), 4);
        assert_eq!(j.span(), 4);
        assert_eq!(j.average_parallelism(), 1.0);
        assert_eq!(j.max_width(), 1);
    }

    #[test]
    fn constant_job() {
        let j = LeveledJob::constant(10, 8);
        assert_eq!(j.work(), 80);
        assert_eq!(j.span(), 8);
        assert_eq!(j.average_parallelism(), 10.0);
    }

    #[test]
    fn phases_concatenate() {
        let j = LeveledJob::from_phases(&[Phase::new(1, 2), Phase::new(5, 3), Phase::new(1, 1)]);
        assert_eq!(j.widths(), &[1, 1, 5, 5, 5, 1]);
        assert_eq!(j.work(), 2 + 15 + 1);
        assert_eq!(j.span(), 6);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_profile_panics() {
        let _ = LeveledJob::from_widths(vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn zero_width_panics() {
        let _ = LeveledJob::from_widths(vec![1, 0, 1]);
    }

    #[test]
    fn to_explicit_preserves_structure() {
        let j = LeveledJob::from_widths(vec![1, 3, 2]);
        let d = j.to_explicit();
        assert_eq!(d.work(), j.work());
        assert_eq!(d.span(), j.span());
        assert_eq!(d.level_sizes(), &[1, 3, 2]);
        // Barrier: each level-2 task has 3 predecessors.
        let n2: Vec<_> = d.tasks().filter(|&t| d.level(t) == 2).collect();
        assert_eq!(n2.len(), 2);
        for t in n2 {
            assert_eq!(d.in_degree(t), 3);
        }
    }

    #[test]
    fn phase_work() {
        assert_eq!(Phase::new(7, 3).work(), 21);
    }
}
