//! Job model for the ABG reproduction.
//!
//! The paper models a malleable job as a *dynamically unfolding directed
//! acyclic graph* of unit-size tasks. Two intrinsic characteristics drive
//! all the analysis:
//!
//! * the **work** `T1` — the total number of tasks in the dag, and
//! * the **critical-path length** `T∞` — the number of tasks on the longest
//!   dependency chain.
//!
//! The paper additionally introduces the **transition factor** `C_L`: the
//! maximal ratio between the average parallelism of any two adjacent full
//! scheduling quanta of length `L` (Section 5.2).
//!
//! This crate provides three concrete job representations:
//!
//! * [`ExplicitDag`] — an arbitrary precedence graph over unit tasks, built
//!   with [`DagBuilder`] and validated (acyclic, in-bounds). This is the
//!   fully general model used by the per-task simulator, unit tests and the
//!   paper's Figure-2 example.
//! * [`PhasedJob`] — a fork-join job given by its phase list, with
//!   *pipelined* chains inside each phase and a join between phases. This
//!   is the default model for the paper's data-parallel workloads; it
//!   admits an `O(phases)` fast-forward executor.
//! * [`LeveledJob`] — a job described only by its per-level width profile
//!   with a barrier between *every* pair of consecutive levels — the
//!   stricter bulk-synchronous reading, kept for the phase-semantics
//!   ablation; it admits an `O(levels)` fast-forward executor.
//!
//! All representations expose the same intrinsic statistics through
//! [`JobStructure`], and the compact ones lower to an `ExplicitDag`
//! ([`PhasedJob::to_explicit`], [`LeveledJob::to_explicit`]) so property
//! tests can cross-check the execution paths against per-task simulation.
//!
//! ```
//! use abg_dag::{JobStructure, Phase, PhasedJob};
//!
//! // serial(4) -> 8-wide(16) -> serial(4): a fork-join job.
//! let job = PhasedJob::new(vec![
//!     Phase::new(1, 4),
//!     Phase::new(8, 16),
//!     Phase::new(1, 4),
//! ]);
//! assert_eq!(job.work(), 4 + 128 + 4);
//! assert_eq!(job.span(), 24);
//! // The transition factor for 8-level quanta is the serial/parallel jump.
//! assert!(job.transition_factor(8) >= 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explicit;
pub mod generate;
pub mod leveled;
pub mod phased;
pub mod profile;
pub mod stats;

pub use explicit::{DagBuilder, DagError, DagWire, ExplicitDag, WeightProfile};
pub use generate::ForkJoinSpec;
pub use leveled::{LeveledJob, Phase};
pub use phased::PhasedJob;
pub use profile::ParallelismProfile;
pub use stats::{transition_factor, JobStructure};

use serde::{Deserialize, Serialize};

/// Identifier of a unit task inside a single job.
///
/// Task ids are dense indices assigned by the builder in insertion order;
/// they carry no scheduling meaning beyond identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The task id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// The level of a task: the number of tasks on the longest chain from any
/// source of the dag up to and including the task, minus one.
///
/// Sources have level 0, and the critical-path length of a job equals its
/// maximum level plus one. B-Greedy prioritises ready tasks with the lowest
/// level (Section 2 of the paper).
pub type Level = u32;
