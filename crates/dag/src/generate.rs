//! Job generators: canonical small graphs for tests and examples, plus
//! randomized fork-join and layered-dag generators used by the workload
//! crate.

use crate::explicit::{DagBuilder, ExplicitDag};
use crate::leveled::{LeveledJob, Phase};
use crate::TaskId;
use rand::{Rng, RngExt as _};
use serde::{Deserialize, Serialize};
use std::ops::RangeInclusive;

/// A serial chain of `n` unit tasks.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn chain(n: u32) -> ExplicitDag {
    assert!(n > 0, "a chain needs at least one task");
    let mut b = DagBuilder::with_capacity(n as usize);
    let first = b.add_tasks(n as usize);
    for i in 0..n - 1 {
        b.add_edge(TaskId(first.0 + i), TaskId(first.0 + i + 1))
            .expect("chain edges are valid");
    }
    b.build().expect("chain is acyclic")
}

/// A fork-join diamond: one source forking to `width` parallel tasks that
/// join into one sink (`width + 2` tasks, span 3).
///
/// # Panics
///
/// Panics if `width == 0`.
pub fn fork_join_diamond(width: u32) -> ExplicitDag {
    assert!(width > 0, "fork width must be positive");
    let mut b = DagBuilder::with_capacity(width as usize + 2);
    let src = b.add_task();
    let mid = b.add_tasks(width as usize);
    let sink = b.add_task();
    for i in 0..width {
        let m = TaskId(mid.0 + i);
        b.add_edge(src, m).expect("valid");
        b.add_edge(m, sink).expect("valid");
    }
    b.build().expect("diamond is acyclic")
}

/// A complete binary out-tree of the given `depth` (a `2^depth - 1`-task
/// divide phase); depth 1 is a single task.
///
/// # Panics
///
/// Panics if `depth == 0` or `depth > 31`.
pub fn binary_fork_tree(depth: u32) -> ExplicitDag {
    assert!(depth > 0 && depth <= 31, "depth must be in 1..=31");
    let n = (1u32 << depth) - 1;
    let mut b = DagBuilder::with_capacity(n as usize);
    b.add_tasks(n as usize);
    // Heap-style indexing: children of i are 2i+1 and 2i+2.
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                b.add_edge(TaskId(i), TaskId(c)).expect("valid");
            }
        }
    }
    b.build().expect("tree is acyclic")
}

/// A bundle of `width` independent chains of `levels` unit tasks each —
/// a job whose parallelism is *pipelined*: as long as more than `levels`
/// steps remain, exactly `width` tasks are ready every step, so any
/// allotment `a ≤ width` achieves full utilization.
///
/// This is the natural model of the paper's "synthetic job with constant
/// parallelism" (Figures 1 and 4): unlike a barrier-leveled job of the
/// same width profile, processor counts that do not divide `width` lose
/// nothing at level boundaries.
///
/// # Panics
///
/// Panics if `width == 0` or `levels == 0`.
pub fn chain_bundle(width: u32, levels: u32) -> ExplicitDag {
    assert!(width > 0 && levels > 0, "bundle must be non-empty");
    let mut b = DagBuilder::with_capacity((width as usize) * (levels as usize));
    for _ in 0..width {
        let mut prev = b.add_task();
        for _ in 1..levels {
            let next = b.add_task();
            b.add_edge(prev, next).expect("valid");
            prev = next;
        }
    }
    b.build().expect("chain bundle is acyclic")
}

/// The scenario behind the paper's Figure 2: a job on which B-Greedy's
/// fractional quantum statistics come out to `T1(q) = 12`,
/// `T∞(q) = 0.8 + 1 + 0.6 = 2.4` and hence `A(q) = 5`.
///
/// The job is one source task forking into five independent 3-task chains
/// (levels of sizes `[1, 5, 5, 5]`). Execute it with allotment 1 for the
/// first two steps (completing the source and one chain head), then run a
/// quantum of 3 steps with allotment 4: that quantum completes 4 tasks of
/// level 1 (fraction 0.8), all 5 of level 2 (1.0) and 3 of level 3 (0.6).
pub fn figure2_job() -> ExplicitDag {
    let chains = 5u32;
    let chain_len = 3u32;
    let mut b = DagBuilder::with_capacity(1 + (chains * chain_len) as usize);
    let src = b.add_task();
    for _ in 0..chains {
        let head = b.add_task();
        b.add_edge(src, head).expect("valid");
        let mut prev = head;
        for _ in 1..chain_len {
            let next = b.add_task();
            b.add_edge(prev, next).expect("valid");
            prev = next;
        }
    }
    b.build().expect("figure-2 job is acyclic")
}

/// Specification of a randomized data-parallel fork-join job, the
/// workload class of the paper's Section 7: alternating serial phases
/// (width 1) and parallel phases (width `w`), starting and ending with a
/// serial phase.
///
/// The *transition factor* of the generated job is governed by `width`
/// ("we generate jobs with different transition factors by varying the
/// level of parallelism in the parallel phases"), while `serial_levels`
/// and `parallel_levels` vary the work and critical-path length at a
/// fixed factor.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForkJoinSpec {
    /// Length (in levels) of each serial phase, sampled uniformly.
    pub serial_levels: RangeInclusive<u64>,
    /// Length (in levels) of each parallel phase, sampled uniformly.
    pub parallel_levels: RangeInclusive<u64>,
    /// Width of each parallel phase, sampled uniformly.
    pub width: RangeInclusive<u64>,
    /// Number of (serial, parallel) phase pairs; a trailing serial phase
    /// closes the job.
    pub pairs: u64,
}

impl ForkJoinSpec {
    /// A paper-style spec targeting transition factor `c` on a machine
    /// with quantum length `quantum_levels` (levels per full quantum of
    /// the reference schedule): every parallel phase has width exactly
    /// `c`, and phase lengths are whole multiples of the quantum so that
    /// quantum averages alternate cleanly between `≈1` and `≈c`.
    ///
    /// Serial phases last 1–2 quanta and parallel phases 3–6: a
    /// feedback scheduler necessarily wastes roughly one quantum's worth
    /// of processors at every parallel→serial drop (it cannot see the
    /// drop coming), so parallel phases lasting several quanta are what
    /// separate a stable scheduler (pays the drop once) from an
    /// oscillating one (keeps paying inside the phase) — the regime the
    /// paper's Figure 5 operates in.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0`, `quantum_levels == 0`, or `pairs == 0`.
    pub fn with_transition_factor(c: u64, quantum_levels: u64, pairs: u64) -> Self {
        assert!(c > 0 && quantum_levels > 0 && pairs > 0);
        Self {
            serial_levels: quantum_levels..=2 * quantum_levels,
            parallel_levels: 3 * quantum_levels..=6 * quantum_levels,
            width: c..=c,
            pairs,
        }
    }

    /// Samples a job from the spec with barrier-per-level semantics.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> LeveledJob {
        let phases = self.sample_phases(rng);
        LeveledJob::from_phases(&phases)
    }

    /// Samples a job from the spec with pipelined-phase semantics — the
    /// default model for the paper's data-parallel workloads (see
    /// [`crate::PhasedJob`]).
    pub fn generate_phased<R: Rng + ?Sized>(&self, rng: &mut R) -> crate::PhasedJob {
        crate::PhasedJob::new(self.sample_phases(rng))
    }

    /// Samples the phase list (exposed so callers can inspect or perturb
    /// the phase structure before building the job).
    pub fn sample_phases<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<Phase> {
        assert!(self.pairs > 0, "a job needs at least one phase pair");
        let mut phases = Vec::with_capacity(2 * self.pairs as usize + 1);
        for _ in 0..self.pairs {
            phases.push(Phase::new(1, rng.random_range(self.serial_levels.clone())));
            phases.push(Phase::new(
                rng.random_range(self.width.clone()),
                rng.random_range(self.parallel_levels.clone()),
            ));
        }
        phases.push(Phase::new(1, rng.random_range(self.serial_levels.clone())));
        phases
    }
}

/// Generates a random series-parallel dag by recursive composition:
/// with probability `series_prob` a sub-dag of budget `n` splits into
/// two sequential halves, otherwise into `2..=max_branch` parallel
/// branches; a budget of 1 is a single task. Series-parallel graphs are
/// the closure of fork-join programs under nesting — richer than the
/// flat phase model but still structured, which makes them a good
/// stress input for the schedulers.
///
/// The construction adds one fork task ahead of parallel branches and
/// one join task after, so the generated dag has a unique source and a
/// unique sink.
///
/// # Panics
///
/// Panics if `budget == 0`, `max_branch < 2`, or `series_prob` is
/// outside `[0, 1]`.
pub fn series_parallel<R: Rng + ?Sized>(
    rng: &mut R,
    budget: u32,
    max_branch: u32,
    series_prob: f64,
) -> ExplicitDag {
    assert!(budget > 0, "need a positive task budget");
    assert!(
        max_branch >= 2,
        "parallel composition needs at least 2 branches"
    );
    assert!(
        (0.0..=1.0).contains(&series_prob),
        "probability must be in [0, 1]"
    );
    let mut b = DagBuilder::new();
    let (_, _) = sp_build(rng, &mut b, budget, max_branch, series_prob);
    b.build().expect("series-parallel graphs are acyclic")
}

/// Recursively builds a series-parallel block; returns (entry, exit).
fn sp_build<R: Rng + ?Sized>(
    rng: &mut R,
    b: &mut DagBuilder,
    budget: u32,
    max_branch: u32,
    series_prob: f64,
) -> (TaskId, TaskId) {
    if budget <= 1 {
        let t = b.add_task();
        return (t, t);
    }
    if rng.random_bool(series_prob) {
        // Series: left ; right.
        let left_budget = rng.random_range(1..budget);
        let (entry, mid) = sp_build(rng, b, left_budget, max_branch, series_prob);
        let (mid2, exit) = sp_build(rng, b, budget - left_budget, max_branch, series_prob);
        b.add_edge(mid, mid2).expect("series edge is fresh");
        (entry, exit)
    } else {
        // Parallel: fork -> branches -> join.
        let branches = rng.random_range(2..=max_branch.min(budget.max(2)));
        let fork = b.add_task();
        let join = b.add_task();
        let mut remaining = budget;
        for i in 0..branches {
            let share = if i + 1 == branches {
                remaining.max(1)
            } else {
                (remaining / (branches - i)).max(1)
            };
            remaining = remaining.saturating_sub(share);
            let (entry, exit) = sp_build(rng, b, share, max_branch, series_prob);
            b.add_edge(fork, entry).expect("fork edge is fresh");
            b.add_edge(exit, join).expect("join edge is fresh");
        }
        (fork, join)
    }
}

/// Generates a random layered dag: `levels` layers whose widths are
/// sampled from `width`, where every non-source task has at least one
/// parent in the previous layer (so a task's level equals its layer) and
/// additional cross edges appear with probability `extra_edge_prob`.
///
/// Used for property tests and for exercising schedulers on irregular
/// (non-barrier) structures.
///
/// # Panics
///
/// Panics if `levels == 0`, the width range includes 0, or
/// `extra_edge_prob` is outside `[0, 1]`.
pub fn random_layered<R: Rng + ?Sized>(
    rng: &mut R,
    levels: u32,
    width: RangeInclusive<u32>,
    extra_edge_prob: f64,
) -> ExplicitDag {
    assert!(levels > 0, "need at least one layer");
    assert!(*width.start() > 0, "layer widths must be positive");
    assert!(
        (0.0..=1.0).contains(&extra_edge_prob),
        "probability must be in [0, 1]"
    );
    let mut b = DagBuilder::new();
    let mut prev: Vec<TaskId> = Vec::new();
    for _ in 0..levels {
        let w = rng.random_range(width.clone());
        let cur: Vec<TaskId> = (0..w).map(|_| b.add_task()).collect();
        if !prev.is_empty() {
            for &t in &cur {
                // Mandatory parent pins the task's level to its layer.
                let p = prev[rng.random_range(0..prev.len())];
                b.add_edge(p, t).expect("valid");
                for &q in &prev {
                    if q != p && rng.random_bool(extra_edge_prob) {
                        b.add_edge(q, t).expect("valid");
                    }
                }
            }
        }
        prev = cur;
    }
    b.build().expect("layered dag is acyclic")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::JobStructure;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chain_shape() {
        let d = chain(7);
        assert_eq!(d.work(), 7);
        assert_eq!(d.span(), 7);
    }

    #[test]
    fn diamond_shape() {
        let d = fork_join_diamond(6);
        assert_eq!(d.work(), 8);
        assert_eq!(d.span(), 3);
        assert_eq!(d.level_sizes(), &[1, 6, 1]);
    }

    #[test]
    fn binary_tree_shape() {
        let d = binary_fork_tree(4);
        assert_eq!(d.work(), 15);
        assert_eq!(d.span(), 4);
        assert_eq!(d.level_sizes(), &[1, 2, 4, 8]);
    }

    #[test]
    fn chain_bundle_shape() {
        let d = chain_bundle(10, 7);
        assert_eq!(d.work(), 70);
        assert_eq!(d.span(), 7);
        assert_eq!(d.level_sizes(), &[10; 7]);
        assert_eq!(d.sources().count(), 10);
        assert_eq!(d.sinks().count(), 10);
    }

    #[test]
    fn figure2_job_shape() {
        let d = figure2_job();
        assert_eq!(d.work(), 16);
        assert_eq!(d.span(), 4);
        assert_eq!(d.level_sizes(), &[1, 5, 5, 5]);
    }

    #[test]
    fn forkjoin_spec_alternates_phases() {
        let mut rng = StdRng::seed_from_u64(7);
        let spec = ForkJoinSpec {
            serial_levels: 2..=4,
            parallel_levels: 3..=5,
            width: 10..=10,
            pairs: 3,
        };
        let phases = spec.sample_phases(&mut rng);
        assert_eq!(phases.len(), 7);
        for (i, p) in phases.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(p.width, 1);
                assert!((2..=4).contains(&p.levels));
            } else {
                assert_eq!(p.width, 10);
                assert!((3..=5).contains(&p.levels));
            }
        }
    }

    #[test]
    fn transition_factor_spec_hits_target() {
        let mut rng = StdRng::seed_from_u64(42);
        let quantum_levels = 8;
        for c in [2u64, 5, 20] {
            let spec = ForkJoinSpec::with_transition_factor(c, quantum_levels, 4);
            let job = spec.generate(&mut rng);
            let measured = job.transition_factor(quantum_levels);
            // Phase lengths are at least one quantum, so at least one full
            // quantum sits inside a parallel phase (A ≈ c) adjacent to a
            // quantum overlapping serial levels (A < c): measured factor
            // lands within a small constant of the target.
            assert!(
                measured >= c as f64 / 2.0 && measured <= c as f64 + 1e-9,
                "target {c}, measured {measured}"
            );
        }
    }

    #[test]
    fn series_parallel_has_unique_source_and_sink() {
        let mut rng = StdRng::seed_from_u64(13);
        for budget in [1u32, 2, 7, 40, 200] {
            let d = series_parallel(&mut rng, budget, 4, 0.5);
            assert!(
                d.work() >= budget as u64,
                "budget {budget}: work {}",
                d.work()
            );
            assert_eq!(d.sources().count(), 1, "budget {budget}");
            assert_eq!(d.sinks().count(), 1, "budget {budget}");
        }
    }

    #[test]
    fn series_parallel_pure_series_is_a_chain() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = series_parallel(&mut rng, 12, 3, 1.0);
        assert_eq!(d.work(), 12);
        assert_eq!(d.span(), 12, "always-series composition is a chain");
    }

    #[test]
    fn series_parallel_deterministic_per_seed() {
        let a = series_parallel(&mut StdRng::seed_from_u64(8), 30, 3, 0.4);
        let b = series_parallel(&mut StdRng::seed_from_u64(8), 30, 3, 0.4);
        assert_eq!(a.work(), b.work());
        assert_eq!(a.span(), b.span());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn random_layered_levels_match_layers() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = random_layered(&mut rng, 6, 1..=5, 0.3);
        assert_eq!(d.span(), 6);
        assert!(d.work() >= 6);
        // Level sizes are bounded by the sampled width range.
        for &s in d.level_sizes() {
            assert!((1..=5).contains(&s));
        }
    }

    #[test]
    fn random_layered_deterministic_for_seed() {
        let a = random_layered(&mut StdRng::seed_from_u64(9), 5, 2..=4, 0.5);
        let b = random_layered(&mut StdRng::seed_from_u64(9), 5, 2..=4, 0.5);
        assert_eq!(a.work(), b.work());
        assert_eq!(a.level_sizes(), b.level_sizes());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn chain_zero_panics() {
        let _ = chain(0);
    }
}
