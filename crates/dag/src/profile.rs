//! Parallelism profiles: the job's parallelism as a function of
//! critical-path progress.
//!
//! Under the *reference schedule* (B-Greedy with an unbounded number of
//! processors) each level of a job completes in exactly one time step, so
//! the per-level width profile **is** the job's parallelism over time.
//! The profile is the object from which the paper's transition factor
//! `C_L` is derived (Section 5.2) and is also useful for plotting and for
//! characterising generated workloads.

use serde::{Deserialize, Serialize};

/// The per-level parallelism profile of a job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParallelismProfile {
    widths: Vec<u64>,
}

impl ParallelismProfile {
    /// Builds a profile from per-level widths.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty or contains zeros.
    pub fn new(widths: Vec<u64>) -> Self {
        assert!(!widths.is_empty(), "profile must cover at least one level");
        assert!(
            widths.iter().all(|&w| w > 0),
            "profile widths must be positive"
        );
        Self { widths }
    }

    /// Per-level widths.
    #[inline]
    pub fn widths(&self) -> &[u64] {
        &self.widths
    }

    /// Number of levels (`T∞`).
    #[inline]
    pub fn span(&self) -> u64 {
        self.widths.len() as u64
    }

    /// Total work (`T1`).
    #[inline]
    pub fn work(&self) -> u64 {
        self.widths.iter().sum()
    }

    /// Average parallelism `T1 / T∞`.
    pub fn average(&self) -> f64 {
        self.work() as f64 / self.span() as f64
    }

    /// Maximum instantaneous parallelism.
    pub fn peak(&self) -> u64 {
        self.widths.iter().copied().max().unwrap_or(0)
    }

    /// Average parallelism of each scheduling quantum of `quantum_levels`
    /// levels under the reference (ample-processor) schedule, where one
    /// level completes per step.
    ///
    /// The trailing partial quantum, if any, is included as the last
    /// element; callers interested only in full quanta can drop it when
    /// `span() % quantum_levels != 0`.
    pub fn quantum_averages(&self, quantum_levels: u64) -> Vec<f64> {
        assert!(quantum_levels > 0, "quantum must span at least one level");
        self.widths
            .chunks(quantum_levels as usize)
            .map(|c| c.iter().sum::<u64>() as f64 / c.len() as f64)
            .collect()
    }

    /// Coefficient of variation of the per-level parallelism — an
    /// alternative variability characteristic suggested by the paper's
    /// future-work section (Section 9).
    pub fn coefficient_of_variation(&self) -> f64 {
        let n = self.widths.len() as f64;
        let mean = self.average();
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .widths
            .iter()
            .map(|&w| {
                let d = w as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }

    /// Number of adjacent-level parallelism changes — the "frequency of
    /// the change of parallelism" characteristic from Section 9.
    pub fn change_count(&self) -> usize {
        self.widths.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

impl From<&crate::LeveledJob> for ParallelismProfile {
    fn from(job: &crate::LeveledJob) -> Self {
        Self::new(job.widths().to_vec())
    }
}

impl From<&crate::ExplicitDag> for ParallelismProfile {
    fn from(dag: &crate::ExplicitDag) -> Self {
        Self::new(dag.level_sizes().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LeveledJob;

    #[test]
    fn basic_stats() {
        let p = ParallelismProfile::new(vec![1, 1, 4, 4, 4, 1]);
        assert_eq!(p.span(), 6);
        assert_eq!(p.work(), 15);
        assert_eq!(p.peak(), 4);
        assert!((p.average() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn quantum_averages_chunks() {
        let p = ParallelismProfile::new(vec![1, 1, 4, 4, 4, 1]);
        let q = p.quantum_averages(2);
        assert_eq!(q, vec![1.0, 4.0, 2.5]);
    }

    #[test]
    fn quantum_averages_partial_tail() {
        let p = ParallelismProfile::new(vec![2, 2, 2, 6]);
        let q = p.quantum_averages(3);
        assert_eq!(q, vec![2.0, 6.0]);
    }

    #[test]
    fn change_count_counts_transitions() {
        let p = ParallelismProfile::new(vec![1, 1, 4, 4, 1, 1]);
        assert_eq!(p.change_count(), 2);
    }

    #[test]
    fn constant_profile_cv_zero() {
        let p = ParallelismProfile::new(vec![5, 5, 5]);
        assert_eq!(p.coefficient_of_variation(), 0.0);
        assert_eq!(p.change_count(), 0);
    }

    #[test]
    fn from_leveled_and_explicit_agree() {
        let j = LeveledJob::from_widths(vec![1, 3, 2]);
        let from_leveled = ParallelismProfile::from(&j);
        let from_explicit = ParallelismProfile::from(&j.to_explicit());
        assert_eq!(from_leveled, from_explicit);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_profile_rejected() {
        let _ = ParallelismProfile::new(vec![]);
    }
}
