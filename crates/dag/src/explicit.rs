//! Arbitrary precedence graphs over unit tasks.
//!
//! An [`ExplicitDag`] stores the successor adjacency in CSR (compressed
//! sparse row) form — one flat successor array plus an offset table —
//! together with the in-degrees of every task and the level assignment
//! (longest distance from a source). It is constructed through
//! [`DagBuilder`], which validates that the graph is acyclic and
//! well-formed before any scheduler touches it.
//!
//! # Memory layout
//!
//! The builder records edges as a flat `(from, to)` list (with an O(1)
//! hash-based duplicate check) and finalizes into CSR with one stable
//! counting sort, so building a dag is O(V + E) regardless of density.
//! The finished dag packs all successors into a single contiguous
//! allocation: executors iterating `successors(t)` on the hot path read
//! one offset pair and then walk a dense slice, instead of chasing a
//! per-task heap pointer as the previous `Vec<Vec<TaskId>>` layout did.
//!
//! The wire format is unchanged: serde (de)serialization goes through
//! [`DagWire`], which carries the original nested adjacency-list layout.

use crate::{Level, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// Errors detected while building or validating a dag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The graph contains no tasks; a job must have at least one task.
    Empty,
    /// An edge references a task id that was never added.
    UnknownTask(TaskId),
    /// An edge from a task to itself.
    SelfLoop(TaskId),
    /// The same (from, to) edge was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The precedence relation contains a cycle; `remaining` tasks could
    /// not be topologically ordered.
    Cycle {
        /// Number of tasks that are part of (or downstream of) a cycle.
        remaining: usize,
    },
    /// Deserialized wire data is internally inconsistent (derived fields
    /// do not match the adjacency it carries).
    CorruptWire,
    /// A task weight is not a finite positive number (NaN, infinite,
    /// zero or negative weights would poison the span accounting).
    InvalidWeight(TaskId),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::Empty => write!(f, "dag has no tasks"),
            DagError::UnknownTask(t) => write!(f, "edge references unknown task {t}"),
            DagError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            DagError::Cycle { remaining } => {
                write!(
                    f,
                    "precedence relation is cyclic ({remaining} tasks unordered)"
                )
            }
            DagError::CorruptWire => write!(f, "wire data has inconsistent derived fields"),
            DagError::InvalidWeight(t) => {
                write!(
                    f,
                    "invalid weight for task {t}: must be finite and positive"
                )
            }
        }
    }
}

impl std::error::Error for DagError {}

/// Hasher for packed `(from, to)` edge keys: one SplitMix64 finalizer
/// round. Edge keys are already well-distributed dense indices, so the
/// default SipHash would spend most of the duplicate check hashing; this
/// keeps [`DagBuilder::add_edge`] O(1) with a small constant.
#[derive(Debug, Default, Clone)]
pub struct EdgeKeyHasher(u64);

impl Hasher for EdgeKeyHasher {
    fn write(&mut self, bytes: &[u8]) {
        // Only u64 edge keys are ever hashed; fold arbitrary bytes anyway
        // so the impl is total.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, key: u64) {
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.0 = z ^ (z >> 31);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type EdgeSet = HashSet<u64, BuildHasherDefault<EdgeKeyHasher>>;

#[inline]
fn edge_key(from: TaskId, to: TaskId) -> u64 {
    (from.0 as u64) << 32 | to.0 as u64
}

/// Checks that `w` is a usable task weight (finite and strictly
/// positive); anything else is rejected before it can reach the span
/// accounting, where a NaN or an infinity would silently poison every
/// downstream statistic.
fn validate_weight(t: TaskId, w: f64) -> Result<(), DagError> {
    if w.is_finite() && w > 0.0 {
        Ok(())
    } else {
        Err(DagError::InvalidWeight(t))
    }
}

/// Derived per-task and per-level cost tables of a weighted dag.
///
/// A task of weight `w` consumes `ceil(w)` whole processor-steps (the
/// simulation advances in unit steps, so fractional weights round up to
/// the next step; `cost ≥ 1` always). The profile precomputes everything
/// the weighted executors touch on their hot path:
///
/// * `cost(t)` — integer processor-steps of task `t`;
/// * `level_cost(l)` / `level_cost_recip(l)` — total cost of level `l`
///   and its reciprocal, so a completed task charges its fractional
///   share of the level without a division;
/// * `level_max_cost(l)` — the heaviest task of level `l`, which is the
///   level's contribution to the *weighted* critical path: a completed
///   task at level `l` contributes `cost · recip · max` span, so a fully
///   completed level contributes exactly `level_max_cost(l)` and the
///   quantum average parallelism `A(q) = T1(q)/T∞(q)` still measures
///   processor demand (a level of `n` tasks of uniform cost `c` reads as
///   `A = n·c / c = n`);
/// * `total_cost()` — the weighted work `T1 = Σ cost(t)`;
/// * `span_cost()` — the weighted span `T∞ = Σ_l level_max_cost(l)`
///   (the critical-path length of a level-by-level execution, and the
///   value every executor's accumulated quantum spans sum to).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightProfile {
    weights: Vec<f64>,
    costs: Vec<u64>,
    level_cost: Vec<u64>,
    level_cost_recip: Vec<f64>,
    level_max_cost: Vec<u64>,
    total_cost: u64,
    span_cost: u64,
}

impl WeightProfile {
    /// Computes the profile for `weights` over tasks whose levels are
    /// given by `level` (with `num_levels` levels total). Every weight
    /// must be finite and strictly positive.
    fn new(weights: Vec<f64>, level: &[Level], num_levels: usize) -> Result<Self, DagError> {
        debug_assert_eq!(weights.len(), level.len());
        let mut costs = Vec::with_capacity(weights.len());
        for (i, &w) in weights.iter().enumerate() {
            validate_weight(TaskId(i as u32), w)?;
            costs.push(w.ceil() as u64);
        }
        let mut level_cost = vec![0u64; num_levels];
        let mut level_max_cost = vec![0u64; num_levels];
        for (i, &c) in costs.iter().enumerate() {
            let l = level[i] as usize;
            level_cost[l] += c;
            level_max_cost[l] = level_max_cost[l].max(c);
        }
        let level_cost_recip = level_cost.iter().map(|&s| 1.0 / s as f64).collect();
        let total_cost = costs.iter().sum();
        let span_cost = level_max_cost.iter().sum();
        Ok(WeightProfile {
            weights,
            costs,
            level_cost,
            level_cost_recip,
            level_max_cost,
            total_cost,
            span_cost,
        })
    }

    /// The raw (possibly fractional) weight of each task, in id order.
    #[inline]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Integer processor-steps task `t` consumes (`ceil(weight) ≥ 1`).
    #[inline]
    pub fn cost(&self, t: TaskId) -> u64 {
        self.costs[t.index()]
    }

    /// The per-task cost table, in id order.
    #[inline]
    pub fn costs(&self) -> &[u64] {
        &self.costs
    }

    /// Total cost of all tasks at level `l`.
    #[inline]
    pub fn level_cost(&self, l: usize) -> u64 {
        self.level_cost[l]
    }

    /// `1.0 / level_cost(l)`, precomputed for the span hot path.
    #[inline]
    pub fn level_cost_recip(&self, l: usize) -> f64 {
        self.level_cost_recip[l]
    }

    /// Cost of the heaviest task at level `l` — the level's contribution
    /// to the weighted span.
    #[inline]
    pub fn level_max_cost(&self, l: usize) -> u64 {
        self.level_max_cost[l]
    }

    /// The weighted work `T1 = Σ cost(t)`.
    #[inline]
    pub fn total_cost(&self) -> u64 {
        self.total_cost
    }

    /// The weighted span `T∞ = Σ_l level_max_cost(l)`.
    #[inline]
    pub fn span_cost(&self) -> u64 {
        self.span_cost
    }

    /// Fractional span a completed task at level `l` with cost `c`
    /// contributes. The multiplication order (`cost`, then reciprocal,
    /// then max) is part of the bit-identity contract between the
    /// optimised and reference weighted kernels.
    #[inline]
    pub fn span_contribution(&self, c: u64, l: usize) -> f64 {
        c as f64 * self.level_cost_recip[l] * self.level_max_cost[l] as f64
    }
}

/// Incremental builder for an [`ExplicitDag`].
///
/// Edges are kept as a flat insertion-ordered list plus a hash set of
/// packed `(from, to)` keys, so `add_edge` is O(1) — including the
/// duplicate check — and `build` finalizes into CSR in O(V + E).
///
/// ```
/// use abg_dag::DagBuilder;
///
/// // A two-task chain: t0 -> t1.
/// let mut b = DagBuilder::new();
/// let t0 = b.add_task();
/// let t1 = b.add_task();
/// b.add_edge(t0, t1).unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.work(), 2);
/// assert_eq!(dag.span(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    /// Edges in insertion order; `build` counting-sorts them into CSR.
    edges: Vec<(TaskId, TaskId)>,
    /// Packed `(from, to)` keys of `edges`, for O(1) duplicate checks.
    seen: EdgeSet,
    in_degree: Vec<u32>,
    out_degree: Vec<u32>,
    /// Per-task weights, materialised lazily on the first
    /// [`DagBuilder::set_weight`] call (`None` ⇒ every task is unit).
    weights: Option<Vec<f64>>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` tasks.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            edges: Vec::with_capacity(n),
            seen: EdgeSet::with_capacity_and_hasher(n, BuildHasherDefault::default()),
            in_degree: Vec::with_capacity(n),
            out_degree: Vec::with_capacity(n),
            weights: None,
        }
    }

    /// Adds a new unit task and returns its id.
    pub fn add_task(&mut self) -> TaskId {
        let id = TaskId(u32::try_from(self.in_degree.len()).expect("more than u32::MAX tasks"));
        self.in_degree.push(0);
        self.out_degree.push(0);
        if let Some(w) = &mut self.weights {
            w.push(1.0);
        }
        id
    }

    /// Adds a task of weight `w` and returns its id. Equivalent to
    /// [`DagBuilder::add_task`] followed by
    /// [`DagBuilder::set_weight`].
    pub fn add_weighted_task(&mut self, w: f64) -> Result<TaskId, DagError> {
        let id = self.add_task();
        self.set_weight(id, w)?;
        Ok(id)
    }

    /// Sets the weight of task `t` (the default is `1.0`). The weight
    /// must be finite and strictly positive; a task of weight `w`
    /// consumes `ceil(w)` processor-steps when executed.
    pub fn set_weight(&mut self, t: TaskId, w: f64) -> Result<(), DagError> {
        if t.index() >= self.in_degree.len() {
            return Err(DagError::UnknownTask(t));
        }
        validate_weight(t, w)?;
        self.weights
            .get_or_insert_with(|| vec![1.0; self.in_degree.len()])[t.index()] = w;
        Ok(())
    }

    /// Adds `n` tasks, returning the id of the first; the block is
    /// contiguous, so the ids are `first..first + n`.
    pub fn add_tasks(&mut self, n: usize) -> TaskId {
        let first = TaskId(self.in_degree.len() as u32);
        for _ in 0..n {
            self.add_task();
        }
        first
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.in_degree.len()
    }

    /// Whether no tasks were added yet.
    pub fn is_empty(&self) -> bool {
        self.in_degree.is_empty()
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds a precedence edge `from -> to` (i.e. `to` becomes ready only
    /// after `from` completes).
    ///
    /// Rejects self-loops, unknown ids and duplicate edges immediately;
    /// cycles are detected at [`DagBuilder::build`] time.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), DagError> {
        let n = self.in_degree.len() as u32;
        if from.0 >= n {
            return Err(DagError::UnknownTask(from));
        }
        if to.0 >= n {
            return Err(DagError::UnknownTask(to));
        }
        if from == to {
            return Err(DagError::SelfLoop(from));
        }
        if !self.seen.insert(edge_key(from, to)) {
            return Err(DagError::DuplicateEdge(from, to));
        }
        self.edges.push((from, to));
        self.out_degree[from.index()] += 1;
        self.in_degree[to.index()] += 1;
        Ok(())
    }

    /// Validates the graph (non-empty, acyclic), computes levels, and
    /// returns the finished dag in CSR form.
    pub fn build(self) -> Result<ExplicitDag, DagError> {
        if self.in_degree.is_empty() {
            return Err(DagError::Empty);
        }
        let n = self.in_degree.len();
        let m = self.edges.len();
        assert!(
            u32::try_from(m).is_ok(),
            "more than u32::MAX edges (CSR offsets are 32-bit)"
        );
        // CSR finalization: prefix-sum the out-degrees into the offset
        // table, then place each edge at its row cursor. The scan runs in
        // insertion order and each row's cursor only moves forward, so
        // `successors(t)` preserves the per-task edge insertion order.
        let mut succ_off = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        succ_off.push(0);
        for &d in &self.out_degree {
            acc += d;
            succ_off.push(acc);
        }
        let mut cursor: Vec<u32> = succ_off[..n].to_vec();
        let mut succ_flat = vec![TaskId(0); m];
        for &(from, to) in &self.edges {
            let c = &mut cursor[from.index()];
            succ_flat[*c as usize] = to;
            *c += 1;
        }
        // Kahn's algorithm doubling as cycle detection and (longest-path)
        // level assignment.
        let mut indeg = self.in_degree.clone();
        let mut level: Vec<Level> = vec![0; n];
        let mut queue: Vec<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut ordered = 0usize;
        let mut head = 0usize;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            ordered += 1;
            let lu = level[u.index()];
            let row = succ_off[u.index()] as usize..succ_off[u.index() + 1] as usize;
            for &v in &succ_flat[row] {
                let lv = &mut level[v.index()];
                *lv = (*lv).max(lu + 1);
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if ordered != n {
            return Err(DagError::Cycle {
                remaining: n - ordered,
            });
        }
        let span = level.iter().copied().max().unwrap_or(0) + 1;
        let mut level_sizes = vec![0u64; span as usize];
        for &l in &level {
            level_sizes[l as usize] += 1;
        }
        let level_recip = level_sizes.iter().map(|&s| 1.0 / s as f64).collect();
        // The Kahn queue was seeded with exactly the in-degree-zero tasks
        // in id order — cache that prefix as the source list so executor
        // construction and reset need no O(V) rescan.
        let sources = (0..n as u32)
            .map(TaskId)
            .filter(|t| self.in_degree[t.index()] == 0)
            .collect();
        // Structural flags for the wide-frontier kernel (see
        // `ExplicitDag::is_forest` / `has_unit_edges`): both are O(V + E)
        // here and let the executor's saturated bulk step skip per-edge
        // bookkeeping that the shape makes redundant.
        let forest = self.in_degree.iter().all(|&d| d <= 1);
        let unit_edges = self
            .edges
            .iter()
            .all(|&(from, to)| level[to.index()] == level[from.index()] + 1);
        // A weight table of all-exactly-1.0 entries is kept (so the wire
        // round-trip is lossless) but flagged unit, which keeps every
        // executor on the unit-task fast paths.
        let unit_weight = match &self.weights {
            None => true,
            Some(w) => w.iter().all(|&x| x == 1.0),
        };
        let weights = match self.weights {
            None => None,
            Some(w) => Some(Box::new(WeightProfile::new(w, &level, span as usize)?)),
        };
        Ok(ExplicitDag {
            succ_off,
            succ_flat,
            in_degree: self.in_degree,
            level,
            level_sizes,
            level_recip,
            sources,
            forest,
            unit_edges,
            unit_weight,
            weights,
        })
    }
}

/// A validated, immutable precedence graph over unit tasks.
///
/// Tasks are identified by dense [`TaskId`]s. The successor adjacency is
/// stored in CSR form — [`ExplicitDag::successors`] is a slice of one
/// shared flat array — alongside the in-degree of each task (used by
/// executors to track readiness) and each task's level.
///
/// Serde goes through [`DagWire`] (the nested adjacency-list layout of
/// the pre-CSR implementation), so the on-wire format is independent of
/// this in-memory representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(into = "DagWire", try_from = "DagWire")]
pub struct ExplicitDag {
    /// CSR offsets: successors of task `t` occupy
    /// `succ_flat[succ_off[t] .. succ_off[t + 1]]`; length `n + 1`.
    succ_off: Vec<u32>,
    /// All successor ids, row-major in task order.
    succ_flat: Vec<TaskId>,
    in_degree: Vec<u32>,
    level: Vec<Level>,
    level_sizes: Vec<u64>,
    /// `1.0 / level_sizes[l]`, precomputed once so executors can charge a
    /// completed task its fractional span contribution without a division
    /// (or a level rescan) on the hot path.
    level_recip: Vec<f64>,
    /// Tasks with no predecessors, in id order — the initial ready set.
    /// Cached at build time so executor construction and `reset()` avoid
    /// an O(V) in-degree rescan per run.
    sources: Vec<TaskId>,
    /// Whether every task has at most one predecessor (the precedence
    /// relation is a forest). Cached for [`ExplicitDag::is_forest`].
    forest: bool,
    /// Whether every edge drops exactly one level. Cached for
    /// [`ExplicitDag::has_unit_edges`].
    unit_edges: bool,
    /// Whether every task costs exactly one processor-step (no weight
    /// table, or a table of all-1.0 entries). Cached for
    /// [`ExplicitDag::is_unit_weight`] — the gate of the unit-task
    /// executor fast paths.
    unit_weight: bool,
    /// Derived cost tables when a weight table is present; boxed so the
    /// (overwhelmingly common) unit dag pays one pointer of overhead.
    weights: Option<Box<WeightProfile>>,
}

impl ExplicitDag {
    /// The work `T1` of the job in processor-steps: the number of tasks
    /// for a unit dag, or the total task cost `Σ ceil(weight)` when a
    /// weight table is present.
    #[inline]
    pub fn work(&self) -> u64 {
        match &self.weights {
            Some(wp) => wp.total_cost(),
            None => self.in_degree.len() as u64,
        }
    }

    /// Critical-path length `T∞` in *levels*: number of tasks on the
    /// longest chain. Unit executors size their per-level state with
    /// this; the weighted analogue in processor-steps is
    /// [`ExplicitDag::weighted_span`].
    #[inline]
    pub fn span(&self) -> u64 {
        self.level_sizes.len() as u64
    }

    /// Critical-path length `T∞` in processor-steps: `Σ_l max-cost(l)`
    /// over the levels (the span of a level-by-level execution). Equals
    /// [`ExplicitDag::span`] for unit dags.
    #[inline]
    pub fn weighted_span(&self) -> u64 {
        match &self.weights {
            Some(wp) => wp.span_cost(),
            None => self.span(),
        }
    }

    /// Whether every task costs exactly one processor-step — `true` for
    /// dags without a weight table *and* for tables that are all-1.0.
    /// Executors gate the unit-task fast paths (serial chain walk, bulk
    /// level stepping) on this flag; weighted dags take the
    /// residual-work path instead.
    #[inline]
    pub fn is_unit_weight(&self) -> bool {
        self.unit_weight
    }

    /// The derived cost tables, when a weight table is present.
    #[inline]
    pub fn weight_profile(&self) -> Option<&WeightProfile> {
        self.weights.as_deref()
    }

    /// The raw weight of task `t` (`1.0` without a weight table).
    #[inline]
    pub fn weight(&self, t: TaskId) -> f64 {
        match &self.weights {
            Some(wp) => wp.weights()[t.index()],
            None => 1.0,
        }
    }

    /// Processor-steps task `t` consumes (`ceil(weight)`, `1` without a
    /// weight table).
    #[inline]
    pub fn task_cost(&self, t: TaskId) -> u64 {
        match &self.weights {
            Some(wp) => wp.cost(t),
            None => 1,
        }
    }

    /// Returns this dag with the given per-task weight table attached
    /// (replacing any existing one). The structure is untouched; only
    /// the cost tables and the unit-weight flag are recomputed. Rejects
    /// tables of the wrong length ([`DagError::CorruptWire`]) or with
    /// non-finite / non-positive entries ([`DagError::InvalidWeight`]).
    pub fn with_weights(mut self, weights: Vec<f64>) -> Result<Self, DagError> {
        if weights.len() != self.num_tasks() {
            return Err(DagError::CorruptWire);
        }
        self.unit_weight = weights.iter().all(|&x| x == 1.0);
        self.weights = Some(Box::new(WeightProfile::new(
            weights,
            &self.level,
            self.level_sizes.len(),
        )?));
        Ok(self)
    }

    /// Returns this dag with every task weighted `w` — the uniform-cost
    /// generalisation used when lowering profile-based jobs
    /// (`PhasedJob`, `LeveledJob`) to a weighted explicit dag.
    pub fn with_uniform_weight(self, w: f64) -> Result<Self, DagError> {
        let n = self.num_tasks();
        self.with_weights(vec![w; n])
    }

    /// Number of tasks (as a `usize`, for indexing).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.in_degree.len()
    }

    /// Successors of `t`, in edge insertion order.
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        &self.succ_flat[self.succ_off[t.index()] as usize..self.succ_off[t.index() + 1] as usize]
    }

    /// In-degree (number of direct predecessors) of `t`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> u32 {
        self.in_degree[t.index()]
    }

    /// The full in-degree table, indexed by task id. Executors seed (and
    /// reset) their `remaining_preds` state with one memcpy of this slice
    /// instead of `num_tasks` individual `in_degree` calls.
    #[inline]
    pub fn in_degrees(&self) -> &[u32] {
        &self.in_degree
    }

    /// Successors of every task in the contiguous id block
    /// `first..=last`, as one flat CSR slice — the concatenation of each
    /// task's successor row in id order. Executors draining a frontier
    /// whose ids form one ascending run use this to replace per-task row
    /// walks with a single bulk append.
    #[inline]
    pub fn successors_block(&self, first: TaskId, last: TaskId) -> &[TaskId] {
        &self.succ_flat
            [self.succ_off[first.index()] as usize..self.succ_off[last.index() + 1] as usize]
    }

    /// Out-degree (number of direct successors) of `t`.
    #[inline]
    pub fn out_degree(&self, t: TaskId) -> u32 {
        self.succ_off[t.index() + 1] - self.succ_off[t.index()]
    }

    /// Level of `t` (longest distance from a source; sources are level 0).
    #[inline]
    pub fn level(&self, t: TaskId) -> Level {
        self.level[t.index()]
    }

    /// Number of tasks at each level; `level_sizes().len() == span()`.
    #[inline]
    pub fn level_sizes(&self) -> &[u64] {
        &self.level_sizes
    }

    /// Reciprocal level sizes, `level_recips()[l] == 1.0 / level_sizes()[l]`.
    ///
    /// Completing a task at level `l` contributes exactly this much
    /// fractional span, so executors can maintain `T∞(q)` incrementally —
    /// one lookup and add per completed task — instead of rescanning a
    /// per-level counter vector at every quantum boundary.
    #[inline]
    pub fn level_recips(&self) -> &[f64] {
        &self.level_recip
    }

    /// Fractional span contributed by one task at level `l`.
    #[inline]
    pub fn level_recip(&self, l: Level) -> f64 {
        self.level_recip[l as usize]
    }

    /// Whether every task has at most one predecessor, i.e. the
    /// precedence relation is a forest (fork trees, chains, bundles of
    /// chains). In a forest, completing a task enables **all** of its
    /// successors outright, so an executor draining a frontier can push
    /// them without consulting its remaining-predecessor table.
    #[inline]
    pub fn is_forest(&self) -> bool {
        self.forest
    }

    /// Whether every edge drops exactly one level
    /// (`level(to) == level(from) + 1`). When it does, all successors
    /// enabled while level `l` drains land on level `l + 1`, so a
    /// breadth-first executor can target one bucket without a per-task
    /// level lookup. Together with [`ExplicitDag::is_forest`] this is the
    /// precondition of the wide-frontier kernel's structural fast path.
    #[inline]
    pub fn has_unit_edges(&self) -> bool {
        self.unit_edges
    }

    /// Iterator over all task ids in id order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.in_degree.len() as u32).map(TaskId)
    }

    /// Tasks with no predecessors (ready at job start), in id order.
    pub fn sources(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.sources.iter().copied()
    }

    /// The cached source list as a slice (see [`ExplicitDag::sources`]).
    #[inline]
    pub fn source_tasks(&self) -> &[TaskId] {
        &self.sources
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter(|&t| self.out_degree(t) == 0)
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.succ_flat.len()
    }

    /// Average parallelism `T1 / T∞` (in processor-steps, so weighted
    /// dags use the weighted work and span).
    pub fn average_parallelism(&self) -> f64 {
        self.work() as f64 / self.weighted_span() as f64
    }

    /// The successor adjacency as nested lists (the pre-CSR layout);
    /// allocates one `Vec` per task. Useful for interchange and tests —
    /// the hot paths should iterate [`ExplicitDag::successors`] instead.
    pub fn to_adjacency(&self) -> Vec<Vec<TaskId>> {
        self.tasks().map(|t| self.successors(t).to_vec()).collect()
    }

    /// Rebuilds a dag from nested successor lists (the inverse of
    /// [`ExplicitDag::to_adjacency`]), re-validating everything.
    pub fn from_adjacency(succs: Vec<Vec<TaskId>>) -> Result<Self, DagError> {
        let mut b = DagBuilder::with_capacity(succs.len());
        b.add_tasks(succs.len());
        for (i, row) in succs.iter().enumerate() {
            for &to in row {
                b.add_edge(TaskId(i as u32), to)?;
            }
        }
        b.build()
    }

    /// Renders the dag in Graphviz `dot` syntax, ranking tasks by level.
    ///
    /// Intended for debugging and for illustrating small example graphs
    /// (such as the paper's Figure 2); not meant for large jobs.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=TB; node [shape=circle];");
        for l in 0..self.level_sizes.len() as u32 {
            let ids: Vec<String> = self
                .tasks()
                .filter(|t| self.level[t.index()] == l)
                .map(|t| format!("{t}"))
                .collect();
            let _ = writeln!(out, "  {{ rank=same; {} }}", ids.join("; "));
        }
        for t in self.tasks() {
            for &s in self.successors(t) {
                let _ = writeln!(out, "  {t} -> {s};");
            }
        }
        out.push_str("}\n");
        out
    }
}

/// The serde wire form of [`ExplicitDag`]: the nested adjacency-list
/// field layout of the pre-CSR implementation, kept so serialized dags
/// are stable across in-memory representation changes.
///
/// Conversion back into [`ExplicitDag`] re-validates the adjacency and
/// recomputes the derived fields, rejecting wire data whose recorded
/// derived fields disagree ([`DagError::CorruptWire`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DagWire {
    /// Successor lists per task, in task-id order.
    pub succs: Vec<Vec<TaskId>>,
    /// In-degree per task.
    pub in_degree: Vec<u32>,
    /// Level per task.
    pub level: Vec<Level>,
    /// Number of tasks at each level.
    pub level_sizes: Vec<u64>,
    /// Reciprocal level sizes.
    pub level_recip: Vec<f64>,
    /// Per-task weights, when the dag carries a weight table (`None`
    /// for unit dags, which keeps pre-weight wire data decodable).
    pub weights: Option<Vec<f64>>,
}

impl From<ExplicitDag> for DagWire {
    fn from(dag: ExplicitDag) -> Self {
        DagWire {
            succs: dag.to_adjacency(),
            weights: dag.weights.map(|wp| wp.weights),
            in_degree: dag.in_degree,
            level: dag.level,
            level_sizes: dag.level_sizes,
            level_recip: dag.level_recip,
        }
    }
}

impl TryFrom<DagWire> for ExplicitDag {
    type Error = DagError;

    fn try_from(wire: DagWire) -> Result<Self, DagError> {
        let dag = ExplicitDag::from_adjacency(wire.succs)?;
        // The derived fields travel on the wire for the benefit of
        // non-Rust consumers; on the way back in they must agree with
        // what the adjacency implies.
        if dag.in_degree != wire.in_degree
            || dag.level != wire.level
            || dag.level_sizes != wire.level_sizes
            || dag.level_recip.len() != wire.level_recip.len()
        {
            return Err(DagError::CorruptWire);
        }
        // A weight table is re-validated entry by entry: non-finite or
        // non-positive weights are typed errors here, *before* they can
        // reach the span accounting.
        match wire.weights {
            None => Ok(dag),
            Some(w) => dag.with_weights(w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> ExplicitDag {
        let mut b = DagBuilder::new();
        let first = b.add_tasks(n);
        for i in 0..n - 1 {
            b.add_edge(TaskId(first.0 + i as u32), TaskId(first.0 + i as u32 + 1))
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn empty_dag_rejected() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn single_task() {
        let mut b = DagBuilder::new();
        b.add_task();
        let d = b.build().unwrap();
        assert_eq!(d.work(), 1);
        assert_eq!(d.span(), 1);
        assert_eq!(d.level_sizes(), &[1]);
        assert_eq!(d.sources().count(), 1);
        assert_eq!(d.sinks().count(), 1);
    }

    #[test]
    fn chain_levels() {
        let d = chain(5);
        assert_eq!(d.work(), 5);
        assert_eq!(d.span(), 5);
        for t in d.tasks() {
            assert_eq!(d.level(t), t.0);
        }
        assert_eq!(d.average_parallelism(), 1.0);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DagBuilder::new();
        let t = b.add_task();
        assert_eq!(b.add_edge(t, t).unwrap_err(), DagError::SelfLoop(t));
    }

    #[test]
    fn unknown_task_rejected() {
        let mut b = DagBuilder::new();
        let t = b.add_task();
        let bogus = TaskId(7);
        assert_eq!(
            b.add_edge(t, bogus).unwrap_err(),
            DagError::UnknownTask(bogus)
        );
        assert_eq!(
            b.add_edge(bogus, t).unwrap_err(),
            DagError::UnknownTask(bogus)
        );
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let c = b.add_task();
        b.add_edge(a, c).unwrap();
        assert_eq!(b.add_edge(a, c).unwrap_err(), DagError::DuplicateEdge(a, c));
        // The reverse edge is not a duplicate (it is a cycle, caught at
        // build time) — the packed key must distinguish direction.
        assert_eq!(b.add_edge(c, a), Ok(()));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let c = b.add_task();
        let d = b.add_task();
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        b.add_edge(d, c).unwrap();
        match b.build().unwrap_err() {
            DagError::Cycle { remaining } => assert_eq!(remaining, 2),
            e => panic!("expected cycle, got {e:?}"),
        }
    }

    #[test]
    fn diamond_levels() {
        // a -> {b, c} -> d
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let x = b.add_task();
        let y = b.add_task();
        let z = b.add_task();
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.span(), 3);
        assert_eq!(d.level_sizes(), &[1, 2, 1]);
        assert_eq!(d.level(z), 2);
        assert_eq!(d.in_degree(z), 2);
        assert_eq!(d.num_edges(), 4);
        assert_eq!(d.out_degree(a), 2);
        assert_eq!(d.out_degree(z), 0);
    }

    #[test]
    fn successors_preserve_insertion_order() {
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let succs: Vec<TaskId> = (0..5).map(|_| b.add_task()).collect();
        // Insert out of id order; iteration must follow insertion order.
        for &i in &[3usize, 0, 4, 1, 2] {
            b.add_edge(a, succs[i]).unwrap();
        }
        let d = b.build().unwrap();
        let got: Vec<u32> = d.successors(a).iter().map(|t| t.0).collect();
        assert_eq!(got, vec![4, 1, 5, 2, 3]);
    }

    #[test]
    fn level_is_longest_path() {
        // a -> b -> d, a -> d: level(d) must be 2, not 1.
        let mut bld = DagBuilder::new();
        let a = bld.add_task();
        let b = bld.add_task();
        let d = bld.add_task();
        bld.add_edge(a, b).unwrap();
        bld.add_edge(b, d).unwrap();
        bld.add_edge(a, d).unwrap();
        let dag = bld.build().unwrap();
        assert_eq!(dag.level(d), 2);
        assert_eq!(dag.span(), 3);
    }

    #[test]
    fn dot_output_contains_edges() {
        let d = chain(3);
        let dot = d.to_dot("g");
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("t1 -> t2;"));
        assert!(dot.starts_with("digraph g {"));
    }

    #[test]
    fn structural_flags_track_shape() {
        // A chain is a forest with unit edges.
        let c = chain(4);
        assert!(c.is_forest());
        assert!(c.has_unit_edges());
        // A diamond's join has in-degree 2: not a forest, edges unit.
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let x = b.add_task();
        let y = b.add_task();
        let z = b.add_task();
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        let d = b.build().unwrap();
        assert!(!d.is_forest());
        assert!(d.has_unit_edges());
        // A skip-level edge (a -> b -> d plus a -> d) is not unit.
        let mut bld = DagBuilder::new();
        let a = bld.add_task();
        let m = bld.add_task();
        let s = bld.add_task();
        bld.add_edge(a, m).unwrap();
        bld.add_edge(m, s).unwrap();
        bld.add_edge(a, s).unwrap();
        let d = bld.build().unwrap();
        assert!(!d.has_unit_edges());
        assert!(!d.is_forest(), "the sink has two predecessors");
    }

    #[test]
    fn successors_block_concatenates_rows() {
        // 0 -> {2, 1}, 1 -> {3}: the block over ids 0..=1 is both rows
        // in id order, preserving each row's insertion order.
        let mut b = DagBuilder::new();
        b.add_tasks(4);
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(1), TaskId(3)).unwrap();
        let d = b.build().unwrap();
        assert_eq!(
            d.successors_block(TaskId(0), TaskId(1)),
            &[TaskId(2), TaskId(1), TaskId(3)]
        );
        assert_eq!(d.successors_block(TaskId(2), TaskId(3)), &[]);
    }

    #[test]
    fn level_sizes_sum_to_work() {
        let d = chain(9);
        assert_eq!(d.level_sizes().iter().sum::<u64>(), d.work());
    }

    #[test]
    fn adjacency_round_trip_is_identity() {
        let d = chain(7);
        let back = ExplicitDag::from_adjacency(d.to_adjacency()).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn wire_round_trip_is_identity() {
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let x = b.add_task();
        let y = b.add_task();
        b.add_edge(a, y).unwrap();
        b.add_edge(a, x).unwrap();
        b.add_edge(x, y).unwrap();
        let d = b.build().unwrap();
        let wire: DagWire = d.clone().into();
        assert_eq!(wire.succs[a.index()], vec![y, x], "insertion order kept");
        let back = ExplicitDag::try_from(wire).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn corrupt_wire_rejected() {
        let d = chain(4);
        let mut wire: DagWire = d.into();
        wire.level[2] = 7;
        assert_eq!(ExplicitDag::try_from(wire), Err(DagError::CorruptWire));
    }

    #[test]
    fn weighted_chain_costs_and_spans() {
        let mut b = DagBuilder::new();
        let t0 = b.add_weighted_task(2.0).unwrap();
        let t1 = b.add_weighted_task(3.5).unwrap();
        let t2 = b.add_task(); // defaults to 1.0
        b.add_edge(t0, t1).unwrap();
        b.add_edge(t1, t2).unwrap();
        let d = b.build().unwrap();
        assert!(!d.is_unit_weight());
        assert_eq!(d.task_cost(t0), 2, "integral weight is its own cost");
        assert_eq!(d.task_cost(t1), 4, "fractional weight rounds up");
        assert_eq!(d.task_cost(t2), 1);
        assert_eq!(d.weight(t1), 3.5, "raw weights are preserved");
        assert_eq!(d.work(), 7, "work is the total cost");
        assert_eq!(d.span(), 3, "level count is unchanged");
        assert_eq!(d.weighted_span(), 7, "a chain's weighted span is its work");
        assert_eq!(d.average_parallelism(), 1.0);
    }

    #[test]
    fn weighted_level_tables() {
        // a -> {x, y} -> z with costs 1, 2, 4, 1.
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let x = b.add_weighted_task(2.0).unwrap();
        let y = b.add_weighted_task(4.0).unwrap();
        let z = b.add_task();
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        let d = b.build().unwrap();
        let wp = d.weight_profile().unwrap();
        assert_eq!(wp.level_cost(1), 6);
        assert_eq!(wp.level_max_cost(1), 4);
        assert_eq!(wp.level_cost_recip(1), 1.0 / 6.0);
        assert_eq!(wp.total_cost(), 8);
        assert_eq!(d.weighted_span(), 1 + 4 + 1);
        // A completed level contributes its max cost to the span:
        // cost/level_cost · max summed over the level.
        let level1: f64 = wp.span_contribution(2, 1) + wp.span_contribution(4, 1);
        assert!((level1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn all_unit_weight_table_keeps_the_unit_flag() {
        let d = chain(5);
        let w = d.clone().with_weights(vec![1.0; 5]).unwrap();
        assert!(w.is_unit_weight(), "an all-1.0 table is structurally unit");
        assert!(w.weight_profile().is_some(), "but the table is kept");
        assert_eq!(w.work(), d.work());
        assert_eq!(w.weighted_span(), d.span());
    }

    #[test]
    fn invalid_weights_rejected_with_the_typed_message() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0, 0.0] {
            let mut b = DagBuilder::new();
            let t0 = b.add_task();
            let t1 = b.add_task();
            b.add_edge(t0, t1).unwrap();
            let err = b.set_weight(t1, bad).unwrap_err();
            assert_eq!(err, DagError::InvalidWeight(t1), "weight {bad}");
            assert_eq!(
                err.to_string(),
                "invalid weight for task t1: must be finite and positive"
            );
        }
        let mut b = DagBuilder::new();
        b.add_task();
        assert_eq!(
            b.set_weight(TaskId(9), 1.0).unwrap_err(),
            DagError::UnknownTask(TaskId(9))
        );
    }

    #[test]
    fn wire_round_trip_preserves_weights() {
        let mut b = DagBuilder::new();
        let t0 = b.add_weighted_task(2.5).unwrap();
        let t1 = b.add_weighted_task(1.0).unwrap();
        b.add_edge(t0, t1).unwrap();
        let d = b.build().unwrap();
        let wire: DagWire = d.clone().into();
        assert_eq!(wire.weights.as_deref(), Some(&[2.5, 1.0][..]));
        let back = ExplicitDag::try_from(wire).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.task_cost(t0), 3);
    }

    #[test]
    fn wire_decode_rejects_invalid_weights_with_the_typed_error() {
        let d = chain(3);
        let mut wire: DagWire = d.clone().into();
        wire.weights = Some(vec![1.0, f64::NAN, 1.0]);
        let err = ExplicitDag::try_from(wire).unwrap_err();
        assert_eq!(err, DagError::InvalidWeight(TaskId(1)));
        assert_eq!(
            err.to_string(),
            "invalid weight for task t1: must be finite and positive"
        );
        let mut wire: DagWire = d.clone().into();
        wire.weights = Some(vec![1.0, -3.0, 1.0]);
        assert_eq!(
            ExplicitDag::try_from(wire),
            Err(DagError::InvalidWeight(TaskId(1)))
        );
        // A table of the wrong length is corrupt wire data, not a
        // weight error.
        let mut wire: DagWire = d.into();
        wire.weights = Some(vec![1.0, 2.0]);
        assert_eq!(ExplicitDag::try_from(wire), Err(DagError::CorruptWire));
    }

    #[test]
    fn builder_counts_tasks_and_edges() {
        let mut b = DagBuilder::with_capacity(3);
        assert!(b.is_empty());
        b.add_tasks(3);
        assert_eq!(b.len(), 3);
        b.add_edge(TaskId(0), TaskId(1)).unwrap();
        b.add_edge(TaskId(0), TaskId(2)).unwrap();
        assert_eq!(b.num_edges(), 2);
    }
}
