//! Arbitrary precedence graphs over unit tasks.
//!
//! An [`ExplicitDag`] stores the successor lists and in-degrees of every
//! task plus the level assignment (longest distance from a source). It is
//! constructed through [`DagBuilder`], which validates that the graph is
//! acyclic and well-formed before any scheduler touches it.

use crate::{Level, TaskId};
use serde::{Deserialize, Serialize};

/// Errors detected while building or validating a dag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// The graph contains no tasks; a job must have at least one task.
    Empty,
    /// An edge references a task id that was never added.
    UnknownTask(TaskId),
    /// An edge from a task to itself.
    SelfLoop(TaskId),
    /// The same (from, to) edge was added twice.
    DuplicateEdge(TaskId, TaskId),
    /// The precedence relation contains a cycle; `remaining` tasks could
    /// not be topologically ordered.
    Cycle {
        /// Number of tasks that are part of (or downstream of) a cycle.
        remaining: usize,
    },
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::Empty => write!(f, "dag has no tasks"),
            DagError::UnknownTask(t) => write!(f, "edge references unknown task {t}"),
            DagError::SelfLoop(t) => write!(f, "self-loop on task {t}"),
            DagError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a} -> {b}"),
            DagError::Cycle { remaining } => {
                write!(
                    f,
                    "precedence relation is cyclic ({remaining} tasks unordered)"
                )
            }
        }
    }
}

impl std::error::Error for DagError {}

/// Incremental builder for an [`ExplicitDag`].
///
/// ```
/// use abg_dag::DagBuilder;
///
/// // A two-task chain: t0 -> t1.
/// let mut b = DagBuilder::new();
/// let t0 = b.add_task();
/// let t1 = b.add_task();
/// b.add_edge(t0, t1).unwrap();
/// let dag = b.build().unwrap();
/// assert_eq!(dag.work(), 2);
/// assert_eq!(dag.span(), 2);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    succs: Vec<Vec<TaskId>>,
    in_degree: Vec<u32>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder with capacity for `n` tasks.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            succs: Vec::with_capacity(n),
            in_degree: Vec::with_capacity(n),
        }
    }

    /// Adds a new unit task and returns its id.
    pub fn add_task(&mut self) -> TaskId {
        let id = TaskId(u32::try_from(self.succs.len()).expect("more than u32::MAX tasks"));
        self.succs.push(Vec::new());
        self.in_degree.push(0);
        id
    }

    /// Adds `n` tasks, returning the id of the first; the block is
    /// contiguous, so the ids are `first..first + n`.
    pub fn add_tasks(&mut self, n: usize) -> TaskId {
        let first = TaskId(self.succs.len() as u32);
        for _ in 0..n {
            self.add_task();
        }
        first
    }

    /// Number of tasks added so far.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether no tasks were added yet.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Adds a precedence edge `from -> to` (i.e. `to` becomes ready only
    /// after `from` completes).
    ///
    /// Rejects self-loops, unknown ids and duplicate edges immediately;
    /// cycles are detected at [`DagBuilder::build`] time.
    pub fn add_edge(&mut self, from: TaskId, to: TaskId) -> Result<(), DagError> {
        let n = self.succs.len() as u32;
        if from.0 >= n {
            return Err(DagError::UnknownTask(from));
        }
        if to.0 >= n {
            return Err(DagError::UnknownTask(to));
        }
        if from == to {
            return Err(DagError::SelfLoop(from));
        }
        if self.succs[from.index()].contains(&to) {
            return Err(DagError::DuplicateEdge(from, to));
        }
        self.succs[from.index()].push(to);
        self.in_degree[to.index()] += 1;
        Ok(())
    }

    /// Validates the graph (non-empty, acyclic), computes levels, and
    /// returns the finished dag.
    pub fn build(self) -> Result<ExplicitDag, DagError> {
        if self.succs.is_empty() {
            return Err(DagError::Empty);
        }
        let n = self.succs.len();
        // Kahn's algorithm doubling as cycle detection and (longest-path)
        // level assignment.
        let mut indeg = self.in_degree.clone();
        let mut level: Vec<Level> = vec![0; n];
        let mut queue: Vec<TaskId> = (0..n as u32)
            .map(TaskId)
            .filter(|t| indeg[t.index()] == 0)
            .collect();
        let mut ordered = 0usize;
        let mut head = 0usize;
        while head < queue.len() {
            let u = queue[head];
            head += 1;
            ordered += 1;
            let lu = level[u.index()];
            for &v in &self.succs[u.index()] {
                let lv = &mut level[v.index()];
                *lv = (*lv).max(lu + 1);
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if ordered != n {
            return Err(DagError::Cycle {
                remaining: n - ordered,
            });
        }
        let span = level.iter().copied().max().unwrap_or(0) + 1;
        let mut level_sizes = vec![0u64; span as usize];
        for &l in &level {
            level_sizes[l as usize] += 1;
        }
        let level_recip = level_sizes.iter().map(|&s| 1.0 / s as f64).collect();
        Ok(ExplicitDag {
            succs: self.succs,
            in_degree: self.in_degree,
            level,
            level_sizes,
            level_recip,
        })
    }
}

/// A validated, immutable precedence graph over unit tasks.
///
/// Tasks are identified by dense [`TaskId`]s; the structure stores the
/// successor adjacency, the in-degree of each task (used by executors to
/// track readiness) and each task's level.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplicitDag {
    succs: Vec<Vec<TaskId>>,
    in_degree: Vec<u32>,
    level: Vec<Level>,
    level_sizes: Vec<u64>,
    /// `1.0 / level_sizes[l]`, precomputed once so executors can charge a
    /// completed task its fractional span contribution without a division
    /// (or a level rescan) on the hot path.
    level_recip: Vec<f64>,
}

impl ExplicitDag {
    /// Total number of tasks, i.e. the work `T1` of the job.
    #[inline]
    pub fn work(&self) -> u64 {
        self.succs.len() as u64
    }

    /// Critical-path length `T∞`: number of tasks on the longest chain.
    #[inline]
    pub fn span(&self) -> u64 {
        self.level_sizes.len() as u64
    }

    /// Number of tasks (as a `usize`, for indexing).
    #[inline]
    pub fn num_tasks(&self) -> usize {
        self.succs.len()
    }

    /// Successors of `t`.
    #[inline]
    pub fn successors(&self, t: TaskId) -> &[TaskId] {
        &self.succs[t.index()]
    }

    /// In-degree (number of direct predecessors) of `t`.
    #[inline]
    pub fn in_degree(&self, t: TaskId) -> u32 {
        self.in_degree[t.index()]
    }

    /// Level of `t` (longest distance from a source; sources are level 0).
    #[inline]
    pub fn level(&self, t: TaskId) -> Level {
        self.level[t.index()]
    }

    /// Number of tasks at each level; `level_sizes().len() == span()`.
    #[inline]
    pub fn level_sizes(&self) -> &[u64] {
        &self.level_sizes
    }

    /// Reciprocal level sizes, `level_recips()[l] == 1.0 / level_sizes()[l]`.
    ///
    /// Completing a task at level `l` contributes exactly this much
    /// fractional span, so executors can maintain `T∞(q)` incrementally —
    /// one lookup and add per completed task — instead of rescanning a
    /// per-level counter vector at every quantum boundary.
    #[inline]
    pub fn level_recips(&self) -> &[f64] {
        &self.level_recip
    }

    /// Fractional span contributed by one task at level `l`.
    #[inline]
    pub fn level_recip(&self, l: Level) -> f64 {
        self.level_recip[l as usize]
    }

    /// Iterator over all task ids in id order.
    pub fn tasks(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.succs.len() as u32).map(TaskId)
    }

    /// Tasks with no predecessors (ready at job start).
    pub fn sources(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter(|t| self.in_degree[t.index()] == 0)
    }

    /// Tasks with no successors.
    pub fn sinks(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks().filter(|t| self.succs[t.index()].is_empty())
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.succs.iter().map(Vec::len).sum()
    }

    /// Average parallelism `T1 / T∞`.
    pub fn average_parallelism(&self) -> f64 {
        self.work() as f64 / self.span() as f64
    }

    /// Renders the dag in Graphviz `dot` syntax, ranking tasks by level.
    ///
    /// Intended for debugging and for illustrating small example graphs
    /// (such as the paper's Figure 2); not meant for large jobs.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "digraph {name} {{");
        let _ = writeln!(out, "  rankdir=TB; node [shape=circle];");
        for l in 0..self.level_sizes.len() as u32 {
            let ids: Vec<String> = self
                .tasks()
                .filter(|t| self.level[t.index()] == l)
                .map(|t| format!("{t}"))
                .collect();
            let _ = writeln!(out, "  {{ rank=same; {} }}", ids.join("; "));
        }
        for t in self.tasks() {
            for &s in self.successors(t) {
                let _ = writeln!(out, "  {t} -> {s};");
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> ExplicitDag {
        let mut b = DagBuilder::new();
        let first = b.add_tasks(n);
        for i in 0..n - 1 {
            b.add_edge(TaskId(first.0 + i as u32), TaskId(first.0 + i as u32 + 1))
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn empty_dag_rejected() {
        assert_eq!(DagBuilder::new().build().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn single_task() {
        let mut b = DagBuilder::new();
        b.add_task();
        let d = b.build().unwrap();
        assert_eq!(d.work(), 1);
        assert_eq!(d.span(), 1);
        assert_eq!(d.level_sizes(), &[1]);
        assert_eq!(d.sources().count(), 1);
        assert_eq!(d.sinks().count(), 1);
    }

    #[test]
    fn chain_levels() {
        let d = chain(5);
        assert_eq!(d.work(), 5);
        assert_eq!(d.span(), 5);
        for t in d.tasks() {
            assert_eq!(d.level(t), t.0);
        }
        assert_eq!(d.average_parallelism(), 1.0);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = DagBuilder::new();
        let t = b.add_task();
        assert_eq!(b.add_edge(t, t).unwrap_err(), DagError::SelfLoop(t));
    }

    #[test]
    fn unknown_task_rejected() {
        let mut b = DagBuilder::new();
        let t = b.add_task();
        let bogus = TaskId(7);
        assert_eq!(
            b.add_edge(t, bogus).unwrap_err(),
            DagError::UnknownTask(bogus)
        );
        assert_eq!(
            b.add_edge(bogus, t).unwrap_err(),
            DagError::UnknownTask(bogus)
        );
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let c = b.add_task();
        b.add_edge(a, c).unwrap();
        assert_eq!(b.add_edge(a, c).unwrap_err(), DagError::DuplicateEdge(a, c));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let c = b.add_task();
        let d = b.add_task();
        b.add_edge(a, c).unwrap();
        b.add_edge(c, d).unwrap();
        b.add_edge(d, c).unwrap();
        match b.build().unwrap_err() {
            DagError::Cycle { remaining } => assert_eq!(remaining, 2),
            e => panic!("expected cycle, got {e:?}"),
        }
    }

    #[test]
    fn diamond_levels() {
        // a -> {b, c} -> d
        let mut b = DagBuilder::new();
        let a = b.add_task();
        let x = b.add_task();
        let y = b.add_task();
        let z = b.add_task();
        b.add_edge(a, x).unwrap();
        b.add_edge(a, y).unwrap();
        b.add_edge(x, z).unwrap();
        b.add_edge(y, z).unwrap();
        let d = b.build().unwrap();
        assert_eq!(d.span(), 3);
        assert_eq!(d.level_sizes(), &[1, 2, 1]);
        assert_eq!(d.level(z), 2);
        assert_eq!(d.in_degree(z), 2);
        assert_eq!(d.num_edges(), 4);
    }

    #[test]
    fn level_is_longest_path() {
        // a -> b -> d, a -> d: level(d) must be 2, not 1.
        let mut bld = DagBuilder::new();
        let a = bld.add_task();
        let b = bld.add_task();
        let d = bld.add_task();
        bld.add_edge(a, b).unwrap();
        bld.add_edge(b, d).unwrap();
        bld.add_edge(a, d).unwrap();
        let dag = bld.build().unwrap();
        assert_eq!(dag.level(d), 2);
        assert_eq!(dag.span(), 3);
    }

    #[test]
    fn dot_output_contains_edges() {
        let d = chain(3);
        let dot = d.to_dot("g");
        assert!(dot.contains("t0 -> t1;"));
        assert!(dot.contains("t1 -> t2;"));
        assert!(dot.starts_with("digraph g {"));
    }

    #[test]
    fn level_sizes_sum_to_work() {
        let d = chain(9);
        assert_eq!(d.level_sizes().iter().sum::<u64>(), d.work());
    }
}
