//! Scripted (adversarial) single-job availability.

use crate::{ceil_request, invariants, Allocator};
use serde::{Deserialize, Serialize};

/// A single-job allocator whose per-quantum availability `p(q)` follows
/// a caller-supplied script.
///
/// The paper's trim analysis (Section 6.1) limits the power of an OS
/// allocator that behaves *adversarially* — e.g. offering many
/// processors exactly when the job's parallelism is low. `Scripted`
/// realises such adversaries for the Theorem-3 experiments: quantum `q`
/// grants `a(q) = min(ceil(d(q)), p(q))` with `p(q)` read from the
/// script (repeating the last entry, or cycling if so configured).
///
/// With a constant script equal to the machine size this is also the
/// "unconstrained environment" of the paper's first simulation set, in
/// which every request is granted (Section 7.2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Scripted {
    processors: u32,
    script: Vec<u32>,
    cycle: bool,
    cursor: usize,
}

impl Scripted {
    /// Creates a scripted allocator; availability for quantum `q`
    /// (0-based) is `script[q]`, with the last entry repeated once the
    /// script runs out.
    ///
    /// # Panics
    ///
    /// Panics if the script is empty or any entry exceeds `processors`.
    pub fn new(processors: u32, script: Vec<u32>) -> Self {
        assert!(processors > 0, "a machine needs at least one processor");
        assert!(!script.is_empty(), "availability script must be non-empty");
        assert!(
            script.iter().all(|&p| p <= processors),
            "scripted availability cannot exceed the machine size"
        );
        Self {
            processors,
            script,
            cycle: false,
            cursor: 0,
        }
    }

    /// As [`Scripted::new`], but the script repeats from the start
    /// instead of holding its last value.
    pub fn cycling(processors: u32, script: Vec<u32>) -> Self {
        let mut s = Self::new(processors, script);
        s.cycle = true;
        s
    }

    /// Constant availability: every request is granted up to the machine
    /// size (the paper's unconstrained single-job environment).
    pub fn ample(processors: u32) -> Self {
        Self::new(processors, vec![processors])
    }

    /// The availability that will apply to the next `allocate` call.
    pub fn peek_availability(&self) -> u32 {
        let idx = if self.cycle {
            self.cursor % self.script.len()
        } else {
            self.cursor.min(self.script.len() - 1)
        };
        self.script[idx]
    }
}

impl Allocator for Scripted {
    fn allocate_into(&mut self, requests: &[f64], out: &mut Vec<u32>) {
        assert!(
            requests.len() <= 1,
            "the scripted allocator models a single-job environment"
        );
        out.clear();
        if requests.is_empty() {
            return;
        }
        let p = self.peek_availability();
        self.cursor += 1;
        out.push(ceil_request(requests[0]).min(p));
        debug_assert_eq!(invariants::validate(requests, out, self.processors), Ok(()));
    }

    fn availabilities(&mut self, requests: &[f64]) -> Vec<u32> {
        // The script *is* the availability; do not advance the cursor.
        if requests.is_empty() {
            Vec::new()
        } else {
            vec![self.peek_availability()]
        }
    }

    fn try_availabilities(&mut self, requests: &[f64], out: &mut Vec<u32>) -> bool {
        out.clear();
        out.append(&mut self.availabilities(requests));
        true
    }

    fn total_processors(&self) -> u32 {
        self.processors
    }

    fn name(&self) -> &'static str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follows_script_then_holds() {
        let mut s = Scripted::new(16, vec![4, 8, 2]);
        assert_eq!(s.allocate(&[100.0]), vec![4]);
        assert_eq!(s.allocate(&[100.0]), vec![8]);
        assert_eq!(s.allocate(&[100.0]), vec![2]);
        assert_eq!(s.allocate(&[100.0]), vec![2], "holds last entry");
    }

    #[test]
    fn cycling_script_wraps() {
        let mut s = Scripted::cycling(16, vec![4, 8]);
        assert_eq!(s.allocate(&[100.0]), vec![4]);
        assert_eq!(s.allocate(&[100.0]), vec![8]);
        assert_eq!(s.allocate(&[100.0]), vec![4]);
    }

    #[test]
    fn conservative_wrt_request() {
        let mut s = Scripted::new(16, vec![10]);
        assert_eq!(s.allocate(&[3.5]), vec![4]);
    }

    #[test]
    fn ample_grants_every_request() {
        let mut s = Scripted::ample(128);
        assert_eq!(s.allocate(&[1000.0]), vec![128]);
        assert_eq!(s.allocate(&[37.0]), vec![37]);
    }

    #[test]
    fn availabilities_do_not_advance_script() {
        let mut s = Scripted::new(16, vec![4, 8]);
        assert_eq!(s.availabilities(&[100.0]), vec![4]);
        assert_eq!(s.allocate(&[100.0]), vec![4]);
        assert_eq!(s.availabilities(&[100.0]), vec![8]);
    }

    #[test]
    #[should_panic(expected = "single-job")]
    fn multi_job_rejected() {
        let mut s = Scripted::ample(8);
        let _ = s.allocate(&[1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "cannot exceed the machine size")]
    fn oversized_script_rejected() {
        let _ = Scripted::new(8, vec![9]);
    }
}
