//! Proportional-share allocation.

use crate::{ceil_request, invariants, AllocationStability, Allocator};
use serde::{Deserialize, Serialize};

/// Allocates processors in proportion to the requests.
///
/// Each job's ideal share is `P·d_i / Σd`; jobs receive the floor of the
/// ideal (capped by their request), and the leftover processors go one
/// at a time to the uncapped jobs with the largest fractional remainder
/// (largest-remainder apportionment). Conservative and non-reserving,
/// but **not** fair in the equi-partition sense: a job can starve
/// smaller requesters by inflating its request, which is one reason the
/// paper's framework prefers DEQ.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Proportional {
    processors: u32,
    /// Scratch (integerized requests), reused across `allocate_into`
    /// calls.
    #[serde(skip)]
    caps: Vec<u32>,
    /// Scratch (fractional remainders for largest-remainder rounds).
    #[serde(skip)]
    fractions: Vec<(f64, usize)>,
    /// Stability verdict of the last `allocate_into` call.
    #[serde(skip)]
    stability: AllocationStability,
}

impl Proportional {
    /// Creates a proportional-share policy over a `processors`-processor
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0`.
    pub fn new(processors: u32) -> Self {
        assert!(processors > 0, "a machine needs at least one processor");
        Self {
            processors,
            caps: Vec::new(),
            fractions: Vec::new(),
            stability: AllocationStability::Unstable,
        }
    }
}

impl Allocator for Proportional {
    fn allocate_into(&mut self, requests: &[f64], out: &mut Vec<u32>) {
        out.clear();
        let n = requests.len();
        if n == 0 {
            self.stability = AllocationStability::ByCeilings;
            return;
        }
        let Self {
            processors,
            caps,
            fractions,
            stability,
        } = self;
        caps.clear();
        caps.extend(requests.iter().map(|&d| ceil_request(d)));
        let demand: u64 = caps.iter().map(|&c| c as u64).sum();
        let p = *processors as u64;
        if demand <= p {
            // Everyone fits: grant everything (non-reserving). The
            // allotments are exactly the ceilings, so repeating the call
            // with ceiling-equal requests reproduces them.
            *stability = AllocationStability::ByCeilings;
            out.extend_from_slice(caps);
            return;
        }
        // Overloaded: the ideal shares divide the *raw* requests, so two
        // requests with equal ceilings can still split differently.
        *stability = AllocationStability::ByExactRequests;
        let total: f64 = requests.iter().sum();
        out.resize(n, 0);
        let mut granted = 0u64;
        fractions.clear();
        for i in 0..n {
            let ideal = p as f64 * requests[i] / total;
            let base = (ideal.floor() as u64).min(caps[i] as u64) as u32;
            out[i] = base;
            granted += base as u64;
            fractions.push((ideal - base as f64, i));
        }
        // Largest remainder first; ties broken by index for determinism.
        fractions.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        let mut leftover = p - granted;
        while leftover > 0 {
            let mut progressed = false;
            for &(_, i) in fractions.iter() {
                if leftover == 0 {
                    break;
                }
                if out[i] < caps[i] {
                    out[i] += 1;
                    leftover -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break; // every job is at its cap
            }
        }
        debug_assert_eq!(invariants::validate(requests, out, self.processors), Ok(()));
    }

    fn try_availabilities(&mut self, requests: &[f64], out: &mut Vec<u32>) -> bool {
        out.clear();
        out.append(&mut self.availabilities(requests));
        true
    }

    fn total_processors(&self) -> u32 {
        self.processors
    }

    fn name(&self) -> &'static str {
        "proportional"
    }

    fn allocation_stability(&self) -> AllocationStability {
        self.stability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::{is_non_reserving, validate};

    #[test]
    fn light_demand_fully_granted() {
        let mut pr = Proportional::new(16);
        assert_eq!(pr.allocate(&[3.0, 4.0]), vec![3, 4]);
    }

    #[test]
    fn heavy_demand_split_proportionally() {
        let mut pr = Proportional::new(12);
        let a = pr.allocate(&[10.0, 20.0, 30.0]);
        assert_eq!(a, vec![2, 4, 6]);
    }

    #[test]
    fn remainders_are_apportioned() {
        let mut pr = Proportional::new(10);
        let reqs = [30.0, 30.0, 30.0];
        let a = pr.allocate(&reqs);
        assert_eq!(a.iter().sum::<u32>(), 10);
        assert!(a.iter().all(|&x| x == 3 || x == 4));
        assert!(is_non_reserving(&reqs, &a, 10));
    }

    #[test]
    fn big_requester_dominates() {
        let mut pr = Proportional::new(10);
        let a = pr.allocate(&[90.0, 10.0]);
        assert_eq!(a, vec![9, 1], "proportional is not equi-partition fair");
    }

    #[test]
    fn contract_holds() {
        let mut pr = Proportional::new(9);
        let reqs = [0.4, 7.3, 2.0, 100.0];
        let a = pr.allocate(&reqs);
        assert_eq!(validate(&reqs, &a, 9), Ok(()));
        assert!(is_non_reserving(&reqs, &a, 9));
    }

    #[test]
    fn empty_request_set() {
        let mut pr = Proportional::new(4);
        assert!(pr.allocate(&[]).is_empty());
    }

    #[test]
    fn stability_tracks_the_branch() {
        let mut pr = Proportional::new(16);
        assert_eq!(pr.allocation_stability(), AllocationStability::Unstable);
        pr.allocate(&[3.0, 4.0]);
        assert_eq!(pr.allocation_stability(), AllocationStability::ByCeilings);
        pr.allocate(&[10.0, 20.0, 30.0]);
        assert_eq!(
            pr.allocation_stability(),
            AllocationStability::ByExactRequests,
            "overloaded shares divide the raw requests"
        );
    }
}
