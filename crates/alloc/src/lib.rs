//! OS-level processor allocators for the ABG reproduction.
//!
//! In the two-level framework (Section 1), the *OS allocator* receives
//! each job's processor request `d(q)` at every quantum boundary and
//! decides the allotments `a(q)` under the system policy. The paper
//! assumes the allocator is **conservative** — it never allots more than
//! requested, so `a(q) = min{d(q), p(q)}` where `p(q)` is the
//! availability under the policy — and its global results (Theorem 5)
//! additionally require the allocator to be **fair** (equal shares unless
//! a job asks for less) and **non-reserving** (no processor stays idle
//! while some job wants more).
//!
//! [`DynamicEquiPartition`] (McCann, Vaswani, Zahorjan 1993) is the fair
//! non-reserving policy used in the paper's multiprogrammed simulations;
//! [`RoundRobin`], [`Proportional`] and the adversarial [`Scripted`]
//! allocator provide contrasts and the trim-analysis adversary.
//!
//! Requests are real-valued (the controller output); allotments are
//! integral. Allocators integerize a request as `ceil(d)` and the
//! conservativeness invariant is `a_i ≤ ceil(d_i)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deq;
pub mod invariants;
pub mod proportional;
pub mod round_robin;
pub mod scripted;

pub use deq::DynamicEquiPartition;
pub use proportional::Proportional;
pub use round_robin::RoundRobin;
pub use scripted::Scripted;

/// What the *last* `allocate_into` call guarantees about repeating the
/// allocation, used by frozen-quantum macro-stepping to decide whether
/// allotments can be held without re-running the policy.
///
/// The verdict describes the call that just happened: "if the next call
/// saw inputs equivalent in the stated sense, it would write the same
/// allotments and leave the policy state unchanged."
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum AllocationStability {
    /// No guarantee — the policy mutated tie-break state (or made no
    /// claim), so the allocation must be recomputed every quantum.
    #[default]
    Unstable,
    /// The allotments are a pure function of the integerized requests
    /// `ceil(d_i)`: repeating the call with requests of equal ceilings
    /// reproduces the allotments exactly.
    ByCeilings,
    /// The allotments are a pure function of the *exact* request values:
    /// repeating the call requires bit-identical `d_i`, not just equal
    /// ceilings.
    ByExactRequests,
}

/// Integerizes a request: the smallest processor count that satisfies
/// it, saturating into `0..=u32::MAX`.
///
/// # Panics
///
/// Panics on NaN or negative requests — a controller must never emit
/// those.
#[inline]
pub fn ceil_request(d: f64) -> u32 {
    assert!(!d.is_nan() && d >= 0.0, "invalid processor request {d}");
    if d >= u32::MAX as f64 {
        u32::MAX
    } else {
        d.ceil() as u32
    }
}

/// A processor-allocation policy.
///
/// `allocate` is called once per quantum boundary with the standing
/// requests of all live jobs (indexed consistently with the returned
/// vector). Implementations must be conservative (`a_i ≤ ceil(d_i)`) and
/// respect the machine capacity (`Σ a_i ≤ P`); [`invariants::validate`]
/// checks both and is used in debug builds and tests.
pub trait Allocator {
    /// Computes the allotment of each job for the next quantum, writing
    /// it into `out` (which is cleared first and ends up with
    /// `requests.len()` entries).
    ///
    /// This is the required method so the simulation engines can reuse
    /// one allotment buffer across quanta and keep their steady-state
    /// loops free of per-quantum heap allocation; [`Allocator::allocate`]
    /// is the allocating convenience wrapper.
    fn allocate_into(&mut self, requests: &[f64], out: &mut Vec<u32>);

    /// Computes the allotment of each job for the next quantum.
    fn allocate(&mut self, requests: &[f64]) -> Vec<u32> {
        let mut out = Vec::with_capacity(requests.len());
        self.allocate_into(requests, &mut out);
        out
    }

    /// The availability `p_i` of each job: the allotment the job would
    /// have received had it requested the whole machine, holding the
    /// other requests fixed. Satisfies `a_i = min(ceil(d_i), p_i)` when
    /// queried **before** the corresponding `allocate` call — policies
    /// with rotating tie-break state (DEQ, round-robin) answer for the
    /// *next* allocation, so probe first, then allocate.
    ///
    /// The default implementation re-runs the policy once per job with
    /// that job's request raised to the machine size, on a clone of the
    /// policy state (leaving the real state untouched); stateful
    /// policies may override with something cheaper.
    fn availabilities(&mut self, requests: &[f64]) -> Vec<u32>
    where
        Self: Clone,
    {
        let p = self.total_processors() as f64;
        let mut out = Vec::with_capacity(requests.len());
        let mut probe = requests.to_vec();
        for i in 0..requests.len() {
            let saved = probe[i];
            probe[i] = p;
            // Clone so the probe does not advance stateful policies.
            let alloc = self.clone().allocate(&probe);
            out.push(alloc[i]);
            probe[i] = saved;
        }
        out
    }

    /// Object-safe availability probe used by the generic quantum core:
    /// writes the availability `p_i` of each job into `out` and returns
    /// `true`, or returns `false` (leaving `out` in an unspecified state)
    /// if this policy cannot answer. Like [`Allocator::availabilities`],
    /// the answer describes the *next* allocation, so engines probe
    /// first, then allocate.
    ///
    /// The default declines; the concrete policies in this crate all
    /// override it (delegating to the clone-probing
    /// [`Allocator::availabilities`]), so traces carry `p(q)` under any
    /// of them.
    fn try_availabilities(&mut self, requests: &[f64], out: &mut Vec<u32>) -> bool {
        let _ = (requests, out);
        false
    }

    /// Machine size `P`.
    fn total_processors(&self) -> u32;

    /// Short policy name for traces and reports.
    fn name(&self) -> &'static str;

    /// Stability verdict for the most recent [`allocate_into`] call (see
    /// [`AllocationStability`]). The default `Unstable` is always
    /// correct; policies that can certify repeatability override it so
    /// engines may macro-step frozen quanta without re-allocating.
    ///
    /// [`allocate_into`]: Allocator::allocate_into
    fn allocation_stability(&self) -> AllocationStability {
        AllocationStability::Unstable
    }
}

/// Mutable references are allocators too, so a driver that owns its
/// allocator can lend it to a generic engine for the duration of a run.
impl<A: Allocator + ?Sized> Allocator for &mut A {
    fn allocate_into(&mut self, requests: &[f64], out: &mut Vec<u32>) {
        (**self).allocate_into(requests, out)
    }
    fn try_availabilities(&mut self, requests: &[f64], out: &mut Vec<u32>) -> bool {
        (**self).try_availabilities(requests, out)
    }
    fn total_processors(&self) -> u32 {
        (**self).total_processors()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn allocation_stability(&self) -> AllocationStability {
        (**self).allocation_stability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_request_rounds_up() {
        assert_eq!(ceil_request(0.0), 0);
        assert_eq!(ceil_request(0.2), 1);
        assert_eq!(ceil_request(3.0), 3);
        assert_eq!(ceil_request(3.001), 4);
    }

    #[test]
    fn ceil_request_saturates() {
        assert_eq!(ceil_request(1e20), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "invalid processor request")]
    fn ceil_request_rejects_nan() {
        let _ = ceil_request(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "invalid processor request")]
    fn ceil_request_rejects_negative() {
        let _ = ceil_request(-1.0);
    }
}
