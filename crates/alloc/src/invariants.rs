//! Allocation invariant checks shared by tests and debug assertions.

use crate::ceil_request;

/// Violations of the allocation contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// `allotments.len() != requests.len()`.
    LengthMismatch,
    /// Some job received more than it asked for (index).
    NotConservative(usize),
    /// The allotments exceed the machine capacity.
    OverCapacity {
        /// Sum of all allotments.
        granted: u64,
        /// Machine size.
        capacity: u32,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::LengthMismatch => write!(f, "allotment vector length mismatch"),
            Violation::NotConservative(i) => {
                write!(f, "job {i} was granted more than it requested")
            }
            Violation::OverCapacity { granted, capacity } => {
                write!(
                    f,
                    "granted {granted} processors on a {capacity}-processor machine"
                )
            }
        }
    }
}

/// Checks the universal allocator contract: lengths match, every
/// allotment is conservative, and the total fits the machine.
pub fn validate(requests: &[f64], allotments: &[u32], capacity: u32) -> Result<(), Violation> {
    if requests.len() != allotments.len() {
        return Err(Violation::LengthMismatch);
    }
    for (i, (&d, &a)) in requests.iter().zip(allotments).enumerate() {
        if a > ceil_request(d) {
            return Err(Violation::NotConservative(i));
        }
    }
    let granted: u64 = allotments.iter().map(|&a| a as u64).sum();
    if granted > capacity as u64 {
        return Err(Violation::OverCapacity { granted, capacity });
    }
    Ok(())
}

/// Checks the *non-reserving* property: either every request is fully
/// satisfied or the whole machine is in use.
pub fn is_non_reserving(requests: &[f64], allotments: &[u32], capacity: u32) -> bool {
    let granted: u64 = allotments.iter().map(|&a| a as u64).sum();
    let demand: u64 = requests.iter().map(|&d| ceil_request(d) as u64).sum();
    granted == demand.min(capacity as u64)
}

/// Checks the *fairness* property for equi-partition-style policies:
/// any two jobs that did not receive their full request have allotments
/// within one processor of each other (the slack absorbs integer
/// rounding).
pub fn is_fair(requests: &[f64], allotments: &[u32]) -> bool {
    let deprived: Vec<u32> = requests
        .iter()
        .zip(allotments)
        .filter(|(&d, &a)| a < ceil_request(d))
        .map(|(_, &a)| a)
        .collect();
    match (deprived.iter().min(), deprived.iter().max()) {
        (Some(&lo), Some(&hi)) => hi - lo <= 1,
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_good_allocation() {
        assert_eq!(validate(&[2.0, 3.5], &[2, 4], 8), Ok(()));
    }

    #[test]
    fn validate_rejects_generous_allocation() {
        assert_eq!(
            validate(&[2.0, 3.5], &[3, 4], 8),
            Err(Violation::NotConservative(0))
        );
    }

    #[test]
    fn validate_rejects_over_capacity() {
        assert_eq!(
            validate(&[5.0, 5.0], &[5, 5], 8),
            Err(Violation::OverCapacity {
                granted: 10,
                capacity: 8
            })
        );
    }

    #[test]
    fn validate_rejects_length_mismatch() {
        assert_eq!(validate(&[1.0], &[1, 1], 8), Err(Violation::LengthMismatch));
    }

    #[test]
    fn non_reserving_detects_idle_processors() {
        // Demand 10 on 8 processors but only 6 granted: reserving.
        assert!(!is_non_reserving(&[5.0, 5.0], &[3, 3], 8));
        assert!(is_non_reserving(&[5.0, 5.0], &[4, 4], 8));
        // All demand met: trivially non-reserving.
        assert!(is_non_reserving(&[2.0, 2.0], &[2, 2], 8));
    }

    #[test]
    fn fairness_allows_rounding_slack() {
        // Jobs 0 and 1 deprived with allotments 3 and 4: fair.
        assert!(is_fair(&[10.0, 10.0, 1.0], &[3, 4, 1]));
        // Allotments 2 and 4 while both deprived: unfair.
        assert!(!is_fair(&[10.0, 10.0], &[2, 4]));
    }

    #[test]
    fn violation_display_is_informative() {
        let v = Violation::OverCapacity {
            granted: 9,
            capacity: 8,
        };
        assert!(v.to_string().contains("9"));
        assert!(v.to_string().contains("8"));
    }
}
