//! Static equal-share ("round-robin") allocation.

use crate::{ceil_request, invariants, Allocator};
use serde::{Deserialize, Serialize};

/// Equal-share allocation without redistribution.
///
/// Every live job is offered exactly `P / n` processors (the integer
/// remainder rotating across quanta) and takes the minimum of that offer
/// and its request. Unlike [DEQ](crate::DynamicEquiPartition), a job
/// requesting *less* than its share does **not** release the difference
/// to the others — the policy is fair and conservative but *reserving*,
/// which is precisely the inefficiency DEQ removes. Kept as an
/// experimental contrast (He et al. also analysed round-robin
/// allocators).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoundRobin {
    processors: u32,
    rotation: u64,
}

impl RoundRobin {
    /// Creates an equal-share policy over a `processors`-processor
    /// machine.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0`.
    pub fn new(processors: u32) -> Self {
        assert!(processors > 0, "a machine needs at least one processor");
        Self {
            processors,
            rotation: 0,
        }
    }
}

impl Allocator for RoundRobin {
    fn allocate_into(&mut self, requests: &[f64], out: &mut Vec<u32>) {
        out.clear();
        let n = requests.len();
        if n == 0 {
            return;
        }
        let len = n as u64;
        let base = self.processors as u64 / len;
        let extra = self.processors as u64 % len;
        let offset = self.rotation % len;
        out.extend(requests.iter().enumerate().map(|(k, &d)| {
            let slot = (k as u64 + len - offset) % len;
            let share = base + u64::from(slot < extra);
            (share.min(ceil_request(d) as u64)) as u32
        }));
        self.rotation = self.rotation.wrapping_add(extra);
        debug_assert_eq!(invariants::validate(requests, out, self.processors), Ok(()));
    }

    fn try_availabilities(&mut self, requests: &[f64], out: &mut Vec<u32>) -> bool {
        out.clear();
        out.append(&mut self.availabilities(requests));
        true
    }

    fn total_processors(&self) -> u32 {
        self.processors
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::{is_fair, is_non_reserving, validate};

    #[test]
    fn shares_are_equal() {
        let mut rr = RoundRobin::new(12);
        let a = rr.allocate(&[100.0, 100.0, 100.0]);
        assert_eq!(a, vec![4, 4, 4]);
    }

    #[test]
    fn does_not_redistribute_unused_share() {
        let mut rr = RoundRobin::new(12);
        let reqs = [1.0, 100.0, 100.0];
        let a = rr.allocate(&reqs);
        assert_eq!(a, vec![1, 4, 4], "round-robin reserves the slack");
        assert!(!is_non_reserving(&reqs, &a, 12));
        assert!(is_fair(&reqs, &a));
        assert_eq!(validate(&reqs, &a, 12), Ok(()));
    }

    #[test]
    fn single_job_capped_by_machine() {
        let mut rr = RoundRobin::new(8);
        assert_eq!(rr.allocate(&[100.0]), vec![8]);
    }

    #[test]
    fn remainder_rotates() {
        let mut rr = RoundRobin::new(7);
        let reqs = [100.0, 100.0, 100.0];
        let a1 = rr.allocate(&reqs);
        let a2 = rr.allocate(&reqs);
        assert_eq!(a1.iter().sum::<u32>(), 7);
        assert_ne!(a1, a2, "the +1 slots should move between quanta");
    }

    #[test]
    fn empty_request_set() {
        let mut rr = RoundRobin::new(4);
        assert!(rr.allocate(&[]).is_empty());
    }
}
