//! Dynamic equi-partitioning (DEQ) — the fair, conservative,
//! non-reserving policy of McCann, Vaswani and Zahorjan used by the
//! paper's multiprogrammed experiments (Section 7).

use crate::{ceil_request, invariants, AllocationStability, Allocator};
use serde::{Deserialize, Serialize};

/// The DEQ allocator.
///
/// DEQ repeatedly offers every unsatisfied job an equal share of the
/// remaining processors; jobs requesting no more than the share are
/// granted their full request and drop out, which raises the share for
/// the rest (water-filling). Jobs still unsatisfied at the fixpoint split
/// the remainder evenly, with the integer remainder rotated across quanta
/// so no job is systematically favoured.
///
/// Properties (checked by the test-suite):
///
/// * **conservative** — `a_i ≤ ceil(d_i)`;
/// * **fair** — deprived jobs' allotments differ by at most one;
/// * **non-reserving** — `Σ a_i = min(Σ ceil(d_i), P)`.
///
/// ```
/// use abg_alloc::{Allocator, DynamicEquiPartition};
///
/// let mut deq = DynamicEquiPartition::new(12);
/// // A modest job releases its surplus share to the greedy ones.
/// let allotments = deq.allocate(&[1.0, 100.0, 100.0]);
/// assert_eq!(allotments[0], 1);
/// assert_eq!(allotments[1] + allotments[2], 11);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicEquiPartition {
    processors: u32,
    /// Rotates which deprived jobs absorb the integer remainder.
    rotation: u64,
    /// Scratch (integerized requests), reused so repeated `allocate_into`
    /// calls allocate nothing at steady state.
    #[serde(skip)]
    caps: Vec<u32>,
    /// Scratch (indices of jobs not yet satisfied by water-filling).
    #[serde(skip)]
    active: Vec<usize>,
    /// Stability verdict of the last `allocate_into` call.
    #[serde(skip)]
    stability: AllocationStability,
}

impl DynamicEquiPartition {
    /// Creates a DEQ policy over a `processors`-processor machine.
    ///
    /// # Panics
    ///
    /// Panics if `processors == 0`.
    pub fn new(processors: u32) -> Self {
        assert!(processors > 0, "a machine needs at least one processor");
        Self {
            processors,
            rotation: 0,
            caps: Vec::new(),
            active: Vec::new(),
            stability: AllocationStability::Unstable,
        }
    }
}

impl Allocator for DynamicEquiPartition {
    fn allocate_into(&mut self, requests: &[f64], out: &mut Vec<u32>) {
        let n = requests.len();
        out.clear();
        out.resize(n, 0);
        if n == 0 {
            return;
        }
        let Self {
            processors,
            rotation,
            caps,
            active,
            stability,
        } = self;
        // Until the remainder branch proves otherwise, the allotments are
        // a pure function of the integerized requests.
        *stability = AllocationStability::ByCeilings;
        caps.clear();
        caps.extend(requests.iter().map(|&d| ceil_request(d)));
        let mut remaining = *processors as u64;
        active.clear();
        active.extend(0..n);

        // Water-filling: satisfy every job whose cap fits under the
        // current equal share, re-deriving the share until a fixpoint.
        loop {
            if active.is_empty() || remaining == 0 {
                break;
            }
            let share = remaining / active.len() as u64;
            let before = active.len();
            active.retain(|&i| {
                if caps[i] as u64 <= share {
                    out[i] = caps[i];
                    remaining -= caps[i] as u64;
                    false
                } else {
                    true
                }
            });
            if active.len() == before {
                break; // every remaining job wants more than the share
            }
        }

        // Split what is left evenly among the deprived jobs; the `extra`
        // single processors rotate across calls.
        if !active.is_empty() && remaining > 0 {
            let len = active.len() as u64;
            let base = remaining / len;
            let extra = remaining % len;
            let offset = *rotation % len;
            for (k, &i) in active.iter().enumerate() {
                let slot = (k as u64 + len - offset) % len;
                let bonus = u64::from(slot < extra);
                out[i] = ((base + bonus).min(caps[i] as u64)) as u32;
            }
            if extra > 0 {
                // The rotation advanced: replaying the same requests
                // would hand the bonus processors to different jobs.
                *stability = AllocationStability::Unstable;
                *rotation = rotation.wrapping_add(extra);
            }
        }

        debug_assert_eq!(invariants::validate(requests, out, self.processors), Ok(()));
    }

    fn try_availabilities(&mut self, requests: &[f64], out: &mut Vec<u32>) -> bool {
        out.clear();
        out.append(&mut self.availabilities(requests));
        true
    }

    fn total_processors(&self) -> u32 {
        self.processors
    }

    fn name(&self) -> &'static str {
        "deq"
    }

    fn allocation_stability(&self) -> AllocationStability {
        self.stability
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariants::{is_fair, is_non_reserving, validate};

    fn deq(p: u32) -> DynamicEquiPartition {
        DynamicEquiPartition::new(p)
    }

    #[test]
    fn light_demand_fully_granted() {
        let mut d = deq(16);
        let a = d.allocate(&[3.0, 5.0, 2.0]);
        assert_eq!(a, vec![3, 5, 2]);
    }

    #[test]
    fn heavy_demand_split_equally() {
        let mut d = deq(12);
        let a = d.allocate(&[100.0, 100.0, 100.0]);
        assert_eq!(a, vec![4, 4, 4]);
    }

    #[test]
    fn small_requesters_release_share_to_big_ones() {
        let mut d = deq(12);
        // Equal share is 4; job 0 takes only 1, freeing share for others.
        let a = d.allocate(&[1.0, 100.0, 100.0]);
        assert_eq!(a[0], 1);
        assert_eq!(a[1] + a[2], 11);
        assert!(a[1].abs_diff(a[2]) <= 1);
    }

    #[test]
    fn remainder_rotates_across_quanta() {
        let mut d = deq(10);
        let reqs = [100.0, 100.0, 100.0];
        let a1 = d.allocate(&reqs);
        let a2 = d.allocate(&reqs);
        // 10 = 3 + 3 + 3 + 1: one job gets the extra processor, and it
        // should be a different job the next time around.
        let lucky1 = a1.iter().position(|&x| x == 4).expect("one +1 slot");
        let lucky2 = a2.iter().position(|&x| x == 4).expect("one +1 slot");
        assert_ne!(lucky1, lucky2, "remainder should rotate");
    }

    #[test]
    fn stability_tracks_the_rotation() {
        let mut d = deq(12);
        assert_eq!(d.allocation_stability(), AllocationStability::Unstable);
        // Satisfied regime: pure function of the ceilings.
        d.allocate(&[3.0, 5.0, 2.0]);
        assert_eq!(d.allocation_stability(), AllocationStability::ByCeilings);
        // Deprived with an even split (12 = 4+4+4): still stable.
        d.allocate(&[100.0, 100.0, 100.0]);
        assert_eq!(d.allocation_stability(), AllocationStability::ByCeilings);
        // Deprived with a remainder (12 = 7+5): the rotation advances.
        d.allocate(&[100.0, 100.0, 100.0, 100.0, 100.0]);
        assert_eq!(d.allocation_stability(), AllocationStability::Unstable);
    }

    #[test]
    fn single_job_gets_min_of_request_and_machine() {
        let mut d = deq(128);
        assert_eq!(d.allocate(&[1000.0]), vec![128]);
        assert_eq!(d.allocate(&[37.2]), vec![38]);
    }

    #[test]
    fn empty_request_set() {
        let mut d = deq(8);
        assert!(d.allocate(&[]).is_empty());
    }

    #[test]
    fn zero_request_gets_zero() {
        let mut d = deq(8);
        let a = d.allocate(&[0.0, 5.0]);
        assert_eq!(a, vec![0, 5]);
    }

    #[test]
    fn contract_invariants_hold_on_mixed_workload() {
        let mut d = deq(7);
        let reqs = [0.5, 9.0, 2.0, 40.0, 1.0];
        let a = d.allocate(&reqs);
        assert_eq!(validate(&reqs, &a, 7), Ok(()));
        assert!(is_non_reserving(&reqs, &a, 7));
        assert!(is_fair(&reqs, &a));
    }

    #[test]
    fn availabilities_bound_allotments() {
        let mut d = deq(9);
        let reqs = [2.0, 50.0, 4.0];
        // Probe availability first, then allocate — the engine's order.
        // (The probes run on clones, so the rotation state the real
        // allocation sees is the same one the probes saw.)
        let p = d.availabilities(&reqs);
        let a = d.allocate(&reqs);
        for i in 0..reqs.len() {
            assert!(a[i] <= p[i], "a={a:?} p={p:?}");
            // a_i = min(ceil(d_i), p_i) per the conservative model.
            assert_eq!(a[i], ceil_request(reqs[i]).min(p[i]), "a={a:?} p={p:?}");
        }
    }

    #[test]
    fn fairness_under_many_equal_requests() {
        let mut d = deq(10);
        let reqs = vec![3.0; 7]; // demand 21 > 10
        let a = d.allocate(&reqs);
        assert!(is_fair(&reqs, &a));
        assert_eq!(a.iter().map(|&x| x as u64).sum::<u64>(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processor_machine_rejected() {
        let _ = deq(0);
    }
}
