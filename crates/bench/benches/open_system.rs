//! Open-system driver benchmarks: the sustained-arrival stepping loop
//! (admission, quantum stepping, completion drain, statistics
//! collection) and the full ρ sweep at smoke scale.

use abg::experiments::{open_system_sweep, OpenSystemConfig};
use abg::queue::{
    run_open_hierarchical_with_threads, run_open_sharded_with_threads, run_open_system,
    HierOpenConfig, OpenConfig, SaturationConfig, ShardRouting, ShardedOpenConfig,
};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, GroupPolicy, RequestCalculator};
use abg_dag::PhasedJob;
use abg_queue::ReferenceOpenDriver;
use abg_sched::{JobExecutor, PipelinedExecutor};
use abg_workload::{mean_gap_for_utilization, ArrivalProcess};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn driver_config(rho: f64, measured_jobs: u64) -> OpenConfig {
    OpenConfig {
        processors: 32,
        quantum_len: 100,
        arrivals: ArrivalProcess::Poisson {
            // Constant-structure jobs below: T1 = 8 × 200 = 1600 steps.
            mean_gap: mean_gap_for_utilization(rho, 32, 1600.0),
        },
        warmup_jobs: measured_jobs / 4,
        measured_jobs,
        batches: 8,
        max_quanta: u64::MAX,
        saturation: SaturationConfig::default(),
        seed: 0xB16C_2008,
    }
}

fn bench_open_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("open_system");
    g.sample_size(20);

    let job = Arc::new(PhasedJob::constant(8, 200));
    for rho in [0.3, 0.7] {
        let cfg = driver_config(rho, 120);
        let job = Arc::clone(&job);
        g.bench_function(format!("driver_rho_{rho}"), |b| {
            b.iter(|| {
                black_box(run_open_system(
                    black_box(&cfg),
                    DynamicEquiPartition::new(cfg.processors),
                    |_rng, recycled| {
                        if let Some(mut ex) = recycled {
                            if ex.try_reset() {
                                return ex;
                            }
                        }
                        Box::new(PipelinedExecutor::new(Arc::clone(&job)))
                    },
                    || Box::new(AControl::new(0.2)),
                ))
            })
        });
    }

    let sweep = OpenSystemConfig::smoke();
    g.bench_function("smoke_sweep", |b| {
        b.iter(|| black_box(open_system_sweep(black_box(&sweep))))
    });

    g.finish();
}

/// Event-driven driver vs the legacy quantum-by-quantum reference loop,
/// at a lull-dominated load (ρ = 0.3, idle fast-forward does the work)
/// and a backlog-dominated one (ρ = 0.9, frozen-quantum macro-stepping
/// does). The pair quantifies what the calendar layer buys end to end.
///
/// Jobs here are deep (T₁ = 8 × 50 000 = 400 000 steps) so events are
/// *sparse* relative to the quantum: at ρ = 0.9 the mean arrival gap is
/// ~35 quanta, at ρ = 0.3 it is ~104 — both well past the ~22 quanta
/// the controller needs to reach a bitwise-steady request after each
/// event. Shallow jobs (as in the `open_system` group above) see an
/// arrival almost every quantum and leave no window for macro-stepping
/// — that regime stays covered by the group above.
fn bench_open_event_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("open_event_kernel");
    g.sample_size(20);

    let job = Arc::new(PhasedJob::constant(8, 50_000));
    for rho in [0.3, 0.9] {
        let mut cfg = driver_config(rho, 60);
        // 128 processors = 16 effective servers for width-8 jobs, so the
        // ρ = 0.9 population stays in DEQ's satisfied regime (allotments
        // it can freeze); on a 4-server machine that load lives in the
        // deprived regime where every quantum reallocates.
        cfg.processors = 128;
        cfg.arrivals = ArrivalProcess::Poisson {
            mean_gap: mean_gap_for_utilization(rho, 128, 400_000.0),
        };
        for (name, legacy) in [("event", false), ("legacy", true)] {
            let cfg = cfg.clone();
            let job = Arc::clone(&job);
            g.bench_function(format!("{name}_rho_{rho}"), |b| {
                b.iter(|| {
                    let make_executor =
                        |_rng: &mut _, recycled: Option<Box<dyn JobExecutor + Send>>| {
                            if let Some(mut ex) = recycled {
                                if ex.try_reset() {
                                    return ex;
                                }
                            }
                            Box::new(PipelinedExecutor::new(Arc::clone(&job)))
                                as Box<dyn JobExecutor + Send>
                        };
                    let make_controller =
                        || Box::new(AControl::new(0.2)) as Box<dyn RequestCalculator + Send>;
                    let alloc = DynamicEquiPartition::new(cfg.processors);
                    black_box(if legacy {
                        ReferenceOpenDriver::run(
                            black_box(&cfg),
                            alloc,
                            make_executor,
                            make_controller,
                        )
                    } else {
                        run_open_system(black_box(&cfg), alloc, make_executor, make_controller)
                    })
                })
            });
        }
    }

    g.finish();
}

/// The sharded engine across shard counts on one worker, at the
/// backlog-dominated load of the `open_event` regime. Deep width-2 jobs
/// (T₁ = 2 × 200 000 = 400 000 steps) keep even a 16-processor shard at
/// 8 effective servers, so every shard stays in the satisfied regime
/// where frozen windows form. Simulated time committed per iteration
/// *grows* with the shard count (every decimated shard runs its own
/// full horizon) while iteration wall-clock stays roughly flat beyond
/// `G = 2` — each shard's event loop prices a fraction of the
/// population, paying back the per-shard arrival replay and trend-check
/// bookkeeping; the `open_sharded` gated kernel tracks the resulting
/// steps/s ratio against `open_event`.
fn bench_open_sharded(c: &mut Criterion) {
    let mut g = c.benchmark_group("open_sharded");
    g.sample_size(20);

    let job = Arc::new(PhasedJob::constant(2, 200_000));
    let mut open = driver_config(0.85, 60);
    open.processors = 128;
    open.arrivals = ArrivalProcess::Poisson {
        mean_gap: mean_gap_for_utilization(0.85, 128, 400_000.0),
    };
    for shards in [1u32, 2, 4, 8] {
        let cfg = ShardedOpenConfig {
            open: open.clone(),
            shards,
            routing: ShardRouting::RoundRobin,
        };
        let job = Arc::clone(&job);
        g.bench_function(format!("shards_{shards}"), |b| {
            b.iter(|| {
                black_box(run_open_sharded_with_threads(
                    black_box(&cfg),
                    DynamicEquiPartition::new,
                    |_rng, recycled: Option<Box<dyn JobExecutor + Send>>| {
                        if let Some(mut ex) = recycled {
                            if ex.try_reset() {
                                return ex;
                            }
                        }
                        Box::new(PipelinedExecutor::new(Arc::clone(&job)))
                    },
                    || Box::new(AControl::new(0.2)) as Box<dyn RequestCalculator + Send>,
                    1,
                ))
            })
        });
    }

    g.finish();
}

/// The hierarchical top level over four groups, static vs the
/// desire-proportional feedback allocator, at a uniform and a 4:1
/// skewed arrival split. Same deep width-2 jobs and backlog-dominated
/// load as `open_sharded`, so the static/uniform cell prices exactly
/// the sharded engine plus the epoch-slicing overhead (desires are
/// folded every 64 quanta but no group ever resizes); the feedback
/// cells add the allocator-rebuild cost on every capacity move. Under
/// skew the static partition's hot group carries most of the
/// population, so the feedback rows can be *faster* per unit of
/// simulated time — the gated `open_hier` kernel tracks that ratio.
fn bench_open_hier(c: &mut Criterion) {
    let mut g = c.benchmark_group("open_hier");
    g.sample_size(20);

    let job = Arc::new(PhasedJob::constant(2, 200_000));
    let mut open = driver_config(0.7, 60);
    open.processors = 128;
    open.arrivals = ArrivalProcess::Poisson {
        mean_gap: mean_gap_for_utilization(0.7, 128, 400_000.0),
    };
    for (route_name, routing) in [
        ("uniform", ShardRouting::RoundRobin),
        ("skew4", ShardRouting::Skewed { hot: 4 }),
    ] {
        for policy in [GroupPolicy::Static, GroupPolicy::Desire] {
            let cfg = HierOpenConfig {
                open: open.clone(),
                groups: 4,
                routing,
                realloc_epoch: 64,
                group_floor: 1,
            };
            let job = Arc::clone(&job);
            g.bench_function(format!("{}_{route_name}", policy.name()), |b| {
                b.iter(|| {
                    black_box(run_open_hierarchical_with_threads(
                        black_box(&cfg),
                        DynamicEquiPartition::new,
                        |_rng, recycled: Option<Box<dyn JobExecutor + Send>>| {
                            if let Some(mut ex) = recycled {
                                if ex.try_reset() {
                                    return ex;
                                }
                            }
                            Box::new(PipelinedExecutor::new(Arc::clone(&job)))
                        },
                        || Box::new(AControl::new(0.2)) as Box<dyn RequestCalculator + Send>,
                        policy.build(),
                        1,
                    ))
                })
            });
        }
    }

    g.finish();
}

criterion_group!(
    benches,
    bench_open_system,
    bench_open_event_kernel,
    bench_open_sharded,
    bench_open_hier
);
criterion_main!(benches);
