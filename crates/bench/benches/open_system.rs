//! Open-system driver benchmarks: the sustained-arrival stepping loop
//! (admission, quantum stepping, completion drain, statistics
//! collection) and the full ρ sweep at smoke scale.

use abg::experiments::{open_system_sweep, OpenSystemConfig};
use abg::queue::{run_open_system, OpenConfig, SaturationConfig};
use abg_alloc::DynamicEquiPartition;
use abg_control::AControl;
use abg_dag::PhasedJob;
use abg_sched::PipelinedExecutor;
use abg_workload::{mean_gap_for_utilization, ArrivalProcess};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn driver_config(rho: f64, measured_jobs: u64) -> OpenConfig {
    OpenConfig {
        processors: 32,
        quantum_len: 100,
        arrivals: ArrivalProcess::Poisson {
            // Constant-structure jobs below: T1 = 8 × 200 = 1600 steps.
            mean_gap: mean_gap_for_utilization(rho, 32, 1600.0),
        },
        warmup_jobs: measured_jobs / 4,
        measured_jobs,
        batches: 8,
        max_quanta: u64::MAX,
        saturation: SaturationConfig::default(),
        seed: 0xB16C_2008,
    }
}

fn bench_open_system(c: &mut Criterion) {
    let mut g = c.benchmark_group("open_system");
    g.sample_size(20);

    let job = Arc::new(PhasedJob::constant(8, 200));
    for rho in [0.3, 0.7] {
        let cfg = driver_config(rho, 120);
        let job = Arc::clone(&job);
        g.bench_function(format!("driver_rho_{rho}"), |b| {
            b.iter(|| {
                black_box(run_open_system(
                    black_box(&cfg),
                    DynamicEquiPartition::new(cfg.processors),
                    |_rng, recycled| {
                        if let Some(mut ex) = recycled {
                            if ex.try_reset() {
                                return ex;
                            }
                        }
                        Box::new(PipelinedExecutor::new(Arc::clone(&job)))
                    },
                    || Box::new(AControl::new(0.2)),
                ))
            })
        });
    }

    let sweep = OpenSystemConfig::smoke();
    g.bench_function("smoke_sweep", |b| {
        b.iter(|| black_box(open_system_sweep(black_box(&sweep))))
    });

    g.finish();
}

criterion_group!(benches, bench_open_system);
criterion_main!(benches);
