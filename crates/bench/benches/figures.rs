//! One benchmark per figure/analysis of the paper: times the full
//! regeneration of each experiment at bench scale. The quality numbers
//! themselves come from `abg-cli`; these benches track that the
//! simulator stays fast enough to run the paper-scale sweeps.

use abg::experiments::{
    lemma2_check, multiprogrammed_sweep, single_job_sweep, theorem1_grid, theorem3_check,
    theorem4_check, theorem5_check, transient_comparison,
};
use abg_bench::{fig5_config, fig6_config, transient_config};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(20);

    let tcfg = transient_config();
    g.bench_function("fig1_fig4_transient", |b| {
        b.iter(|| black_box(transient_comparison(black_box(&tcfg))))
    });

    let f5 = fig5_config();
    g.bench_function("fig5_single_job_sweep", |b| {
        b.iter(|| black_box(single_job_sweep(black_box(&f5))))
    });

    let f6 = fig6_config();
    g.bench_function("fig6_multiprogrammed_sweep", |b| {
        b.iter(|| black_box(multiprogrammed_sweep(black_box(&f6))))
    });

    g.finish();
}

fn bench_theorems(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorems");
    g.sample_size(20);

    g.bench_function("thm1_control_metrics", |b| {
        b.iter(|| {
            black_box(theorem1_grid(
                black_box(&[2.0, 16.0, 128.0]),
                black_box(&[0.0, 0.2, 0.5]),
                64,
            ))
        })
    });

    g.bench_function("lemma2_envelope", |b| {
        b.iter(|| black_box(lemma2_check(4, 0.2, 50, 2, 64, 7)))
    });

    g.bench_function("thm3_trim_analysis", |b| {
        b.iter(|| black_box(theorem3_check(5, 0.2, 50, 2, 64, 11)))
    });

    g.bench_function("thm4_waste_bound", |b| {
        b.iter(|| black_box(theorem4_check(4, 0.2, 50, 2, 64, 13)))
    });

    g.bench_function("thm5_global_bounds", |b| {
        b.iter(|| black_box(theorem5_check(1.0, 4, 0.2, 32, 2, 32, 17)))
    });

    g.finish();
}

criterion_group!(benches, bench_figures, bench_theorems);
criterion_main!(benches);
