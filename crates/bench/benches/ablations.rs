//! Design-choice ablations as benchmarks: how the convergence rate, the
//! quantum length and the job-model semantics move the *cost* of a
//! simulated schedule. (The quality side of the same ablations — time
//! and waste — is printed by `abg-cli ablate`.)

use abg::experiments::{quantum_ablation, rate_ablation, scheduler_ablation, semantics_ablation};
use abg_bench::ablation_config;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_rate(c: &mut Criterion) {
    let cfg = ablation_config();
    let mut g = c.benchmark_group("ablation_rate");
    g.sample_size(10);
    for rate in [0.0f64, 0.4, 0.8] {
        g.bench_with_input(BenchmarkId::from_parameter(rate), &rate, |b, &r| {
            b.iter(|| black_box(rate_ablation(black_box(&cfg), &[r])))
        });
    }
    g.finish();
}

fn bench_quantum(c: &mut Criterion) {
    let cfg = ablation_config();
    let mut g = c.benchmark_group("ablation_quantum");
    g.sample_size(10);
    for l in [25u64, 100, 400] {
        g.bench_with_input(BenchmarkId::from_parameter(l), &l, |b, &l| {
            b.iter(|| black_box(quantum_ablation(black_box(&cfg), &[l])))
        });
    }
    g.finish();
}

fn bench_models(c: &mut Criterion) {
    let cfg = ablation_config();
    let mut g = c.benchmark_group("ablation_models");
    g.sample_size(10);
    g.bench_function("semantics_pipelined_vs_barrier", |b| {
        b.iter(|| black_box(semantics_ablation(black_box(&cfg))))
    });
    g.bench_function("scheduler_priority_rules", |b| {
        b.iter(|| black_box(scheduler_ablation(black_box(&cfg))))
    });
    g.finish();
}

criterion_group!(benches, bench_rate, bench_quantum, bench_models);
criterion_main!(benches);
