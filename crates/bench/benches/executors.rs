//! Executor throughput: the per-task executor against the two
//! fast-forward executors on equivalent jobs, plus ready-queue
//! microbenches. This quantifies the ablation "leveled/pipelined fast
//! path vs explicit per-task simulation" from DESIGN.md.

use abg::experiments::KernelBenchConfig;
use abg_dag::{generate, LeveledJob, Phase, PhasedJob, TaskId};
use abg_sched::queue::{BreadthFirstQueue, FifoQueue, LifoQueue};
use abg_sched::{
    BGreedyExecutor, JobExecutor, LeveledExecutor, PipelinedExecutor, ReadyQueue,
    ReferenceBGreedyExecutor,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

/// Full execution of an 8-wide, 2000-level constant job at allotment 8.
fn bench_executors(c: &mut Criterion) {
    let width = 8u64;
    let levels = 2_000u64;
    let work = width * levels;

    let mut g = c.benchmark_group("executor_full_job");
    g.throughput(Throughput::Elements(work));

    g.bench_function("per_task_bgreedy", |b| {
        let dag = generate::chain_bundle(width as u32, levels as u32);
        b.iter(|| {
            let mut ex = BGreedyExecutor::new(black_box(&dag));
            while !ex.is_complete() {
                black_box(ex.run_quantum(8, 100));
            }
            ex.completed_work()
        })
    });

    g.bench_function("leveled_fast_path", |b| {
        let job = LeveledJob::constant(width, levels);
        b.iter(|| {
            let mut ex = LeveledExecutor::new(black_box(&job));
            while !ex.is_complete() {
                black_box(ex.run_quantum(8, 100));
            }
            ex.completed_work()
        })
    });

    g.bench_function("pipelined_fast_path", |b| {
        let job = PhasedJob::constant(width, levels);
        b.iter(|| {
            let mut ex = PipelinedExecutor::new(black_box(&job));
            while !ex.is_complete() {
                black_box(ex.run_quantum(8, 100));
            }
            ex.completed_work()
        })
    });

    g.bench_function("work_stealing", |b| {
        let dag = generate::chain_bundle(width as u32, levels as u32);
        b.iter(|| {
            let mut ex = abg_steal::StealExecutor::new(black_box(&dag), 7);
            while !ex.is_complete() {
                black_box(ex.run_quantum(8, 100));
            }
            ex.completed_work()
        })
    });

    g.finish();
}

/// The CLI's chain kernels (`abg-cli bench`) under Criterion: the
/// macro-stepping kernel against the legacy clone-and-rescan reference
/// on the same serial chain with short quanta. The ratio of these two
/// is the headline speedup of the incremental-span rewrite.
fn bench_chain_kernels(c: &mut Criterion) {
    let cfg = KernelBenchConfig::full();
    let chain = generate::chain(cfg.chain_len);
    let q = cfg.chain_quantum;

    let mut g = c.benchmark_group("chain_kernel");
    g.throughput(Throughput::Elements(cfg.chain_len as u64));
    g.sample_size(10);

    g.bench_function("macro_stepping", |b| {
        b.iter(|| {
            let mut ex = BGreedyExecutor::new(black_box(&chain));
            while !ex.is_complete() {
                black_box(ex.run_quantum(1, q));
            }
            ex.completed_work()
        })
    });

    g.bench_function("reference_rescan", |b| {
        b.iter(|| {
            let mut ex = ReferenceBGreedyExecutor::new(black_box(&chain));
            while !ex.is_complete() {
                black_box(ex.run_quantum(1, q));
            }
            ex.completed_work()
        })
    });

    g.finish();
}

/// The CLI's fork-join kernels under Criterion: the wide-frontier bulk
/// kernel against the per-step reference on the same dags. The tree is
/// the bulk path's best case (a frontier that doubles every level, all
/// structural fast-path conditions met); the bundle is the steady
/// saturated regime (constant width, join nodes keep the in-degree
/// table live).
fn bench_forkjoin_kernels(c: &mut Criterion) {
    let cfg = KernelBenchConfig::full();
    let tree = generate::binary_fork_tree(cfg.tree_depth);
    let bundle = generate::chain_bundle(cfg.bundle_width, cfg.bundle_levels);
    let bundle_a = cfg.bundle_width;

    let mut g = c.benchmark_group("forkjoin_kernel");
    g.sample_size(10);

    g.throughput(Throughput::Elements(tree.work()));
    g.bench_function("tree_bulk", |b| {
        let mut ex = BGreedyExecutor::new(&tree);
        b.iter(|| {
            ex.reset();
            while !ex.is_complete() {
                black_box(ex.run_quantum(32, 100));
            }
            ex.completed_work()
        })
    });
    g.bench_function("tree_reference", |b| {
        b.iter(|| {
            let mut ex = ReferenceBGreedyExecutor::new(black_box(&tree));
            while !ex.is_complete() {
                black_box(ex.run_quantum(32, 100));
            }
            ex.completed_work()
        })
    });

    g.throughput(Throughput::Elements(bundle.work()));
    g.bench_function("bundle_bulk", |b| {
        let mut ex = BGreedyExecutor::new(&bundle);
        b.iter(|| {
            ex.reset();
            while !ex.is_complete() {
                black_box(ex.run_quantum(bundle_a, 100));
            }
            ex.completed_work()
        })
    });
    g.bench_function("bundle_reference", |b| {
        b.iter(|| {
            let mut ex = ReferenceBGreedyExecutor::new(black_box(&bundle));
            while !ex.is_complete() {
                black_box(ex.run_quantum(bundle_a, 100));
            }
            ex.completed_work()
        })
    });

    g.finish();
}

/// Quantum fast-forward cost as the number of phases grows.
fn bench_pipelined_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipelined_quantum");
    for phases in [4u64, 64, 1024] {
        let job = PhasedJob::new(
            (0..phases)
                .map(|i| Phase::new(if i % 2 == 0 { 1 } else { 16 }, 8))
                .collect(),
        );
        g.bench_with_input(BenchmarkId::from_parameter(phases), &job, |b, job| {
            b.iter(|| {
                let mut ex = PipelinedExecutor::new(job);
                // One huge quantum sweeps every phase.
                black_box(ex.run_quantum(16, u64::MAX))
            })
        });
    }
    g.finish();
}

/// Ready-queue push/pop microbenches across the three priority rules.
fn bench_queues(c: &mut Criterion) {
    const N: u32 = 10_000;
    let mut g = c.benchmark_group("ready_queue");
    g.throughput(Throughput::Elements(N as u64));

    fn drive<Q: ReadyQueue + Default>(n: u32) -> usize {
        let mut q = Q::default();
        let mut popped = 0;
        for i in 0..n {
            q.push(TaskId(i), i % 64);
            if i % 3 == 0 {
                popped += usize::from(q.pop().is_some());
            }
        }
        while q.pop().is_some() {
            popped += 1;
        }
        popped
    }

    g.bench_function("breadth_first", |b| {
        b.iter(|| black_box(drive::<BreadthFirstQueue>(N)))
    });
    g.bench_function("fifo", |b| b.iter(|| black_box(drive::<FifoQueue>(N))));
    g.bench_function("lifo", |b| b.iter(|| black_box(drive::<LifoQueue>(N))));
    g.finish();
}

criterion_group!(
    benches,
    bench_executors,
    bench_chain_kernels,
    bench_forkjoin_kernels,
    bench_pipelined_scaling,
    bench_queues
);
criterion_main!(benches);
