//! Allocator throughput: DEQ, round-robin and proportional-share across
//! job counts, plus the availability probe used by traced runs.

use abg_alloc::{Allocator, DynamicEquiPartition, Proportional, RoundRobin};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn requests(n: usize) -> Vec<f64> {
    // Deterministic mixed workload: small, medium and greedy requesters.
    (0..n)
        .map(|i| match i % 4 {
            0 => 1.0,
            1 => 7.5,
            2 => 31.0,
            _ => 500.0,
        })
        .collect()
}

fn bench_allocate(c: &mut Criterion) {
    let mut g = c.benchmark_group("allocate");
    for n in [4usize, 32, 128] {
        let reqs = requests(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("deq", n), &reqs, |b, reqs| {
            let mut alloc = DynamicEquiPartition::new(128);
            b.iter(|| black_box(alloc.allocate(black_box(reqs))))
        });
        g.bench_with_input(BenchmarkId::new("round_robin", n), &reqs, |b, reqs| {
            let mut alloc = RoundRobin::new(128);
            b.iter(|| black_box(alloc.allocate(black_box(reqs))))
        });
        g.bench_with_input(BenchmarkId::new("proportional", n), &reqs, |b, reqs| {
            let mut alloc = Proportional::new(128);
            b.iter(|| black_box(alloc.allocate(black_box(reqs))))
        });
    }
    g.finish();
}

fn bench_availability_probe(c: &mut Criterion) {
    let mut g = c.benchmark_group("availability_probe");
    for n in [4usize, 32] {
        let reqs = requests(n);
        g.bench_with_input(BenchmarkId::new("deq", n), &reqs, |b, reqs| {
            let mut alloc = DynamicEquiPartition::new(128);
            b.iter(|| black_box(alloc.availabilities(black_box(reqs))))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_allocate, bench_availability_probe);
criterion_main!(benches);
