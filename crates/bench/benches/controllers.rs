//! Request-calculator microbenches: the per-quantum cost of A-Control
//! and A-Greedy feedback (it must be negligible against a quantum), and
//! the closed-loop trajectory simulation used by the Theorem-1 grid.

use abg_control::{AControl, AGreedy, ClosedLoop, RequestCalculator};
use abg_sched::QuantumStats;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn stats_stream(n: usize) -> Vec<QuantumStats> {
    (0..n)
        .map(|i| {
            let work = 100 + (i as u64 * 37) % 900;
            QuantumStats {
                allotment: 1 + (i as u32 % 64),
                quantum_len: 100,
                steps_worked: 100,
                work,
                span: 10.0 + (i % 7) as f64,
                completed: false,
            }
        })
        .collect()
}

fn bench_observe(c: &mut Criterion) {
    const N: usize = 10_000;
    let stream = stats_stream(N);
    let mut g = c.benchmark_group("observe");
    g.throughput(Throughput::Elements(N as u64));

    g.bench_function("a_control", |b| {
        b.iter(|| {
            let mut ctl = AControl::new(0.2);
            let mut last = 0.0;
            for s in &stream {
                last = ctl.observe(black_box(s));
            }
            black_box(last)
        })
    });

    g.bench_function("a_greedy", |b| {
        b.iter(|| {
            let mut ctl = AGreedy::paper_default();
            let mut last = 0.0;
            for s in &stream {
                last = ctl.observe(black_box(s));
            }
            black_box(last)
        })
    });

    g.finish();
}

fn bench_closed_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("closed_loop");
    g.bench_function("trajectory_1k", |b| {
        let loop_ = ClosedLoop::with_convergence_rate(64.0, 0.2);
        b.iter(|| black_box(loop_.request_trajectory(1.0, 1_000)))
    });
    g.finish();
}

criterion_group!(benches, bench_observe, bench_closed_loop);
criterion_main!(benches);
