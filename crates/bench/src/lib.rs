//! Shared fixtures for the Criterion benchmark suite.
//!
//! The benches live in `benches/`; this small library provides the
//! configurations they share so figure benches, component microbenches
//! and ablations all agree on sizes.

#![forbid(unsafe_code)]

use abg::experiments::{
    AblationConfig, MultiprogrammedConfig, SingleJobSweepConfig, TransientConfig,
};

/// Transient-experiment config used by the figure benches (Figures 1/4).
pub fn transient_config() -> TransientConfig {
    TransientConfig {
        parallelism: 10,
        quantum_len: 100,
        quanta: 8,
        rate: 0.2,
        responsiveness: 2.0,
        utilization: 0.8,
        processors: 128,
    }
}

/// Figure-5 sweep at bench scale: a handful of factors and jobs so one
/// Criterion iteration stays in the low-millisecond range.
pub fn fig5_config() -> SingleJobSweepConfig {
    SingleJobSweepConfig {
        factors: vec![2, 10, 40],
        jobs_per_factor: 4,
        quantum_len: 100,
        pairs: 2,
        ..SingleJobSweepConfig::scaled()
    }
}

/// Figure-6 sweep at bench scale.
pub fn fig6_config() -> MultiprogrammedConfig {
    MultiprogrammedConfig {
        loads: vec![0.5, 2.0],
        sets_per_load: 2,
        processors: 32,
        quantum_len: 50,
        pairs: 2,
        max_factor: 16,
        ..MultiprogrammedConfig::scaled()
    }
}

/// Ablation probe at bench scale.
pub fn ablation_config() -> AblationConfig {
    AblationConfig {
        factors: vec![5, 20],
        jobs_per_factor: 2,
        processors: 64,
        quantum_len: 50,
        pairs: 2,
        seed: 0xBE7C,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_small_enough_to_bench() {
        assert!(fig5_config().factors.len() * fig5_config().jobs_per_factor as usize <= 16);
        assert!(fig6_config().loads.len() * fig6_config().sets_per_load as usize <= 8);
        assert_eq!(transient_config().quanta, 8);
        assert!(ablation_config().jobs_per_factor <= 4);
    }
}
