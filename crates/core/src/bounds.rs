//! Theoretical bounds of the paper (Lemma 2, Theorems 3–5) and the
//! lower bounds the two-level scheduler is competitive against.
//!
//! All bound functions take the convergence rate `r` and the transition
//! factor `C_L` explicitly. The waste, makespan and response-time bounds
//! only hold when `r < 1/C_L` (the remark after Lemma 2); functions
//! depending on that return `None` when the precondition fails.

use serde::{Deserialize, Serialize};

/// Coefficients of Lemma 2: for every full quantum `q`,
/// `lower·A(q) ≤ d(q) ≤ upper·A(q)`, where the upper bound exists only
/// when `r < 1/C_L`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lemma2Coefficients {
    /// `(1 − r) / (C_L − r)`.
    pub lower: f64,
    /// `C_L(1 − r) / (1 − C_L·r)` when `r < 1/C_L`.
    pub upper: Option<f64>,
}

/// Computes the Lemma-2 request/parallelism envelope.
///
/// # Panics
///
/// Panics if `c_l < 1` or `r` is outside `[0, 1)`.
pub fn lemma2_coefficients(c_l: f64, r: f64) -> Lemma2Coefficients {
    validate_params(c_l, r);
    let lower = (1.0 - r) / (c_l - r);
    let upper = (c_l * r < 1.0).then(|| c_l * (1.0 - r) / (1.0 - c_l * r));
    Lemma2Coefficients { lower, upper }
}

/// The trim amount of Theorem 3:
/// `R = (C_L + 1 − 2r)/(1 − r) · T∞ + L` time steps.
pub fn theorem3_trim_steps(span: u64, c_l: f64, r: f64, quantum_len: u64) -> f64 {
    validate_params(c_l, r);
    (c_l + 1.0 - 2.0 * r) / (1.0 - r) * span as f64 + quantum_len as f64
}

/// Theorem 3 running-time bound:
/// `T ≤ 2·T1/P̃ + (C_L + 1 − 2r)/(1 − r)·T∞ + L`,
/// with `P̃` the [`theorem3_trim_steps`]-trimmed availability.
///
/// # Panics
///
/// Panics if `trimmed_availability <= 0` or on invalid `c_l`/`r`.
pub fn theorem3_time_bound(
    work: u64,
    span: u64,
    c_l: f64,
    r: f64,
    trimmed_availability: f64,
    quantum_len: u64,
) -> f64 {
    validate_params(c_l, r);
    assert!(
        trimmed_availability > 0.0,
        "trimmed availability must be positive"
    );
    2.0 * work as f64 / trimmed_availability
        + (c_l + 1.0 - 2.0 * r) / (1.0 - r) * span as f64
        + quantum_len as f64
}

/// Theorem 4 waste bound:
/// `W ≤ C_L(1 − r)/(1 − C_L·r) · T1 + P·L`.
/// Requires `r < 1/C_L`; returns `None` otherwise.
pub fn theorem4_waste_bound(
    work: u64,
    c_l: f64,
    r: f64,
    processors: u32,
    quantum_len: u64,
) -> Option<f64> {
    validate_params(c_l, r);
    (c_l * r < 1.0).then(|| {
        c_l * (1.0 - r) / (1.0 - c_l * r) * work as f64 + processors as f64 * quantum_len as f64
    })
}

/// Theorem 5 makespan bound for `|J| ≤ P` and arbitrary release times:
/// `M ≤ ((C_L + 1 − 2·C_L·r)/(1 − C_L·r) + (C_L + 1 − 2r)/(1 − r))·M* + L(|J| + 2)`.
/// Requires `r < 1/C_L`; returns `None` otherwise.
pub fn theorem5_makespan_bound(
    makespan_lower_bound: f64,
    c_l: f64,
    r: f64,
    quantum_len: u64,
    num_jobs: usize,
) -> Option<f64> {
    validate_params(c_l, r);
    (c_l * r < 1.0).then(|| {
        let coeff =
            (c_l + 1.0 - 2.0 * c_l * r) / (1.0 - c_l * r) + (c_l + 1.0 - 2.0 * r) / (1.0 - r);
        coeff * makespan_lower_bound + quantum_len as f64 * (num_jobs as f64 + 2.0)
    })
}

/// Theorem 5 mean-response-time bound for batched sets:
/// `R ≤ ((2·C_L + 2 − 4·C_L·r)/(1 − C_L·r) + (C_L + 1 − 2r)/(1 − r))·R* + L(|J| + 2)`.
/// Requires `r < 1/C_L`; returns `None` otherwise.
pub fn theorem5_response_bound(
    response_lower_bound: f64,
    c_l: f64,
    r: f64,
    quantum_len: u64,
    num_jobs: usize,
) -> Option<f64> {
    validate_params(c_l, r);
    (c_l * r < 1.0).then(|| {
        let coeff =
            (2.0 * c_l + 2.0 - 4.0 * c_l * r) / (1.0 - c_l * r) + (c_l + 1.0 - 2.0 * r) / (1.0 - r);
        coeff * response_lower_bound + quantum_len as f64 * (num_jobs as f64 + 2.0)
    })
}

/// Intrinsic size of one job as used by the lower bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobSize {
    /// Work `T1`.
    pub work: u64,
    /// Critical-path length `T∞`.
    pub span: u64,
    /// Release step.
    pub release: u64,
}

/// The classical makespan lower bound `M*` on `P` processors:
///
/// ```text
/// M* = max( Σ_j T1_j / P ,  max_j ( r_j + max(T∞_j, T1_j / P) ) )
/// ```
///
/// (total-work bound and per-job release+span bound). The paper's
/// Figure 6(a) normalizes measured makespans against this quantity.
///
/// # Panics
///
/// Panics if `jobs` is empty or `processors == 0`.
pub fn makespan_lower_bound(jobs: &[JobSize], processors: u32) -> f64 {
    assert!(!jobs.is_empty(), "lower bound of an empty set is undefined");
    assert!(processors > 0, "machine must have processors");
    let p = processors as f64;
    let total_work: f64 = jobs.iter().map(|j| j.work as f64).sum();
    let per_job = jobs
        .iter()
        .map(|j| j.release as f64 + (j.span as f64).max(j.work as f64 / p))
        .fold(0.0f64, f64::max);
    (total_work / p).max(per_job)
}

/// The batched mean-response-time lower bound `R*` on `P` processors:
///
/// ```text
/// R* = max( (1/n) Σ_j T∞_j ,  squashed-area bound )
/// ```
///
/// where the squashed-area bound schedules the jobs' work in
/// shortest-first order on all `P` processors with no parallelism
/// constraints: sorting works ascending `T1_(1) ≤ … ≤ T1_(n)`,
/// `SA = (1/(n·P)) Σ_k (n − k + 1)·T1_(k)`.
///
/// # Panics
///
/// Panics if `jobs` is empty, `processors == 0`, or any release is
/// non-zero (the bound is for batched sets).
pub fn response_lower_bound_batched(jobs: &[JobSize], processors: u32) -> f64 {
    assert!(!jobs.is_empty(), "lower bound of an empty set is undefined");
    assert!(processors > 0, "machine must have processors");
    assert!(
        jobs.iter().all(|j| j.release == 0),
        "the batched response-time bound requires all releases at 0"
    );
    let n = jobs.len() as f64;
    let p = processors as f64;
    let mean_span: f64 = jobs.iter().map(|j| j.span as f64).sum::<f64>() / n;
    let mut works: Vec<u64> = jobs.iter().map(|j| j.work).collect();
    works.sort_unstable();
    let squashed: f64 = works
        .iter()
        .enumerate()
        .map(|(k, &w)| (jobs.len() - k) as f64 * w as f64)
        .sum::<f64>()
        / (n * p);
    mean_span.max(squashed)
}

fn validate_params(c_l: f64, r: f64) {
    assert!(
        c_l >= 1.0,
        "transition factor must be at least 1, got {c_l}"
    );
    assert!(
        (0.0..1.0).contains(&r),
        "convergence rate must lie in [0, 1), got {r}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lemma2_envelope_brackets_one() {
        let c = lemma2_coefficients(4.0, 0.2);
        assert!(c.lower <= 1.0);
        let upper = c.upper.expect("0.2 < 1/4 fails? 0.2 < 0.25 holds");
        assert!(upper >= 1.0);
        assert!((c.lower - 0.8 / 3.8).abs() < 1e-12);
        assert!((upper - 4.0 * 0.8 / (1.0 - 0.8)).abs() < 1e-9);
    }

    #[test]
    fn lemma2_upper_vanishes_when_rate_too_fast() {
        let c = lemma2_coefficients(10.0, 0.2); // 0.2 ≥ 1/10
        assert!(c.upper.is_none());
        assert!(c.lower > 0.0);
    }

    #[test]
    fn theorem3_bound_formula() {
        // c_l = 3, r = 0.2: coefficient (3 + 1 − 0.4)/0.8 = 4.5.
        let b = theorem3_time_bound(1000, 100, 3.0, 0.2, 10.0, 50);
        assert!((b - (200.0 + 450.0 + 50.0)).abs() < 1e-9);
        let trim = theorem3_trim_steps(100, 3.0, 0.2, 50);
        assert!((trim - 500.0).abs() < 1e-9);
    }

    #[test]
    fn theorem4_requires_slow_rate() {
        assert!(theorem4_waste_bound(100, 10.0, 0.2, 8, 10).is_none());
        let b = theorem4_waste_bound(100, 2.0, 0.2, 8, 10).expect("0.2 < 0.5");
        // 2·0.8/0.6·100 + 80 = 266.67 + 80.
        assert!((b - (2.0 * 0.8 / 0.6 * 100.0 + 80.0)).abs() < 1e-9);
    }

    #[test]
    fn theorem5_bounds_scale_with_lower_bounds() {
        let m = theorem5_makespan_bound(100.0, 2.0, 0.1, 10, 4).unwrap();
        let m2 = theorem5_makespan_bound(200.0, 2.0, 0.1, 10, 4).unwrap();
        assert!(m2 > m);
        let r = theorem5_response_bound(100.0, 2.0, 0.1, 10, 4).unwrap();
        assert!(r > m, "the response coefficient dominates the makespan one");
    }

    #[test]
    fn makespan_lower_bound_picks_binding_constraint() {
        let p = 4;
        // Work-bound case: lots of total work.
        let jobs = [
            JobSize {
                work: 100,
                span: 5,
                release: 0,
            },
            JobSize {
                work: 100,
                span: 5,
                release: 0,
            },
        ];
        assert_eq!(makespan_lower_bound(&jobs, p), 50.0);
        // Span-bound case: one long chain released late.
        let jobs = [
            JobSize {
                work: 10,
                span: 10,
                release: 90,
            },
            JobSize {
                work: 10,
                span: 5,
                release: 0,
            },
        ];
        assert_eq!(makespan_lower_bound(&jobs, p), 100.0);
    }

    #[test]
    fn makespan_lower_bound_uses_work_over_p_per_job() {
        // A single huge job: even alone it needs T1/P steps.
        let jobs = [JobSize {
            work: 1000,
            span: 1,
            release: 0,
        }];
        assert_eq!(makespan_lower_bound(&jobs, 10), 100.0);
    }

    #[test]
    fn response_lower_bound_squashed_area() {
        let p = 2;
        let jobs = [
            JobSize {
                work: 2,
                span: 1,
                release: 0,
            },
            JobSize {
                work: 4,
                span: 1,
                release: 0,
            },
        ];
        // SA = (2·2 + 1·4) / (2·2) = 2; mean span = 1.
        assert_eq!(response_lower_bound_batched(&jobs, p), 2.0);
    }

    #[test]
    fn response_lower_bound_mean_span_dominates_for_serial_jobs() {
        let jobs = [
            JobSize {
                work: 10,
                span: 10,
                release: 0,
            },
            JobSize {
                work: 10,
                span: 10,
                release: 0,
            },
        ];
        // On 100 processors SA is tiny; mean span 10 binds.
        assert_eq!(response_lower_bound_batched(&jobs, 100), 10.0);
    }

    #[test]
    #[should_panic(expected = "batched")]
    fn response_bound_rejects_releases() {
        let jobs = [JobSize {
            work: 1,
            span: 1,
            release: 5,
        }];
        let _ = response_lower_bound_batched(&jobs, 2);
    }

    #[test]
    #[should_panic(expected = "transition factor")]
    fn invalid_factor_rejected() {
        let _ = lemma2_coefficients(0.5, 0.2);
    }
}
