//! Terminal Gantt rendering of multiprogrammed runs: one row per job,
//! one column per quantum, glyph density showing the allotment.
//!
//! Built on the per-job traces of
//! [`MultiJobSim::with_traces`](abg_sim::MultiJobSim::with_traces); the
//! picture makes DEQ's water-filling and the schedulers' request
//! dynamics directly visible, e.g. A-Greedy's columns flicker while
//! ABG's stay solid.

use abg_sim::{MultiJobOutcome, QuantumRecord};

/// Glyph ramp from idle to a full machine share.
const RAMP: [char; 6] = ['.', '1', '2', '4', '8', '#'];

/// Maps an allotment to a density glyph given the machine size.
fn glyph(allotment: u32, processors: u32) -> char {
    if allotment == 0 {
        return RAMP[0];
    }
    match allotment {
        1 => RAMP[1],
        2..=3 => RAMP[2],
        4..=7 => RAMP[3],
        8..=15 => RAMP[4],
        _ if allotment * 2 >= processors => RAMP[5],
        _ => RAMP[4],
    }
}

/// Renders the allotment Gantt of a traced multiprogrammed run.
///
/// Each row is a job; column `q` shows the allotment the job held in
/// global quantum `q` (`.` = not live / zero). Runs longer than
/// `max_columns` quanta are right-truncated with an ellipsis marker.
///
/// # Panics
///
/// Panics if the outcome carries no traces (run the simulation with
/// `with_traces`).
pub fn render_gantt(
    outcome: &MultiJobOutcome,
    quantum_len: u64,
    processors: u32,
    max_columns: usize,
) -> String {
    assert!(
        outcome.traces.iter().any(|t| !t.is_empty()),
        "no traces recorded; build the simulator with with_traces()"
    );
    let total_quanta = outcome
        .traces
        .iter()
        .flat_map(|t| t.iter().map(|r| (r.start_step / quantum_len) as usize + 1))
        .max()
        .unwrap_or(0);
    let columns = total_quanta.min(max_columns);

    let mut out = String::new();
    out.push_str(&format!(
        "allotment per quantum (L = {quantum_len}, P = {processors}; \
         glyphs .=0 1 2 4 8 #=P/2+)\n"
    ));
    for (i, trace) in outcome.traces.iter().enumerate() {
        let mut row = vec!['.'; columns];
        for r in trace {
            let q = (r.start_step / quantum_len) as usize;
            if q < columns {
                row[q] = glyph(r.allotment, processors);
            }
        }
        let truncated = if total_quanta > columns { "…" } else { "" };
        out.push_str(&format!(
            "job {i:>3} |{}|{} done @ {}\n",
            row.iter().collect::<String>(),
            truncated,
            outcome.jobs[i].completion
        ));
    }
    out
}

/// Summarizes a single job's trace as a request/allotment strip — the
/// one-dimensional version of the Gantt used by the single-job
/// examples.
pub fn render_request_strip(trace: &[QuantumRecord], processors: u32) -> String {
    let mut requests = String::new();
    let mut allotments = String::new();
    for r in trace {
        requests.push(glyph(r.request.ceil() as u32, processors));
        allotments.push(glyph(r.allotment, processors));
    }
    format!("requests   |{requests}|\nallotments |{allotments}|\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_alloc::DynamicEquiPartition;
    use abg_control::AControl;
    use abg_dag::PhasedJob;
    use abg_sched::PipelinedExecutor;
    use abg_sim::MultiJobSim;

    fn traced_outcome() -> MultiJobOutcome {
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(8), 10).with_traces();
        sim.add_job(
            Box::new(PipelinedExecutor::new(PhasedJob::constant(4, 60))),
            Box::new(AControl::new(0.2)),
            0,
        );
        sim.add_job(
            Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 30))),
            Box::new(AControl::new(0.2)),
            20,
        );
        sim.run()
    }

    #[test]
    fn gantt_shape_matches_run() {
        let out = traced_outcome();
        let g = render_gantt(&out, 10, 8, 80);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per job:\n{g}");
        assert!(lines[1].starts_with("job   0 |"));
        // Job 1 released at step 20: its first two quanta are idle dots.
        let row1 = lines[2].split('|').nth(1).expect("gantt row");
        assert!(row1.starts_with(".."), "late release shows as idle: {row1}");
    }

    #[test]
    fn gantt_truncates_long_runs() {
        let out = traced_outcome();
        let g = render_gantt(&out, 10, 8, 3);
        assert!(g.contains('…'));
    }

    #[test]
    fn strip_lengths_match_trace() {
        let out = traced_outcome();
        let strip = render_request_strip(&out.traces[0], 8);
        let lines: Vec<&str> = strip.lines().collect();
        assert_eq!(lines.len(), 2);
        let n = out.traces[0].len();
        assert_eq!(
            lines[0].matches(|c| c != '|').count() - "requests   ".len(),
            n
        );
    }

    #[test]
    fn glyphs_are_monotone_in_allotment() {
        let order: Vec<char> = [0u32, 1, 2, 4, 8, 64]
            .iter()
            .map(|&a| glyph(a, 128))
            .collect();
        assert_eq!(order, vec!['.', '1', '2', '4', '8', '#']);
    }

    #[test]
    #[should_panic(expected = "no traces")]
    fn untraced_outcome_rejected() {
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(4), 10);
        sim.add_job(
            Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 20))),
            Box::new(AControl::new(0.2)),
            0,
        );
        let out = sim.run();
        let _ = render_gantt(&out, 10, 4, 40);
    }
}
