//! The single-job sweep over transition factors: the paper's Figure 5.
//!
//! Each job runs alone in an unconstrained environment (every request
//! granted up to `P`), once under ABG and once under A-Greedy, and the
//! sweep reports running time normalized by the critical path (the
//! optimal time in this setting — Figure 5(a)), waste normalized by
//! work (Figure 5(c)), and the per-run A-Greedy/ABG ratios (Figures
//! 5(b) and 5(d)).

use super::{parallel_map, task_seed};
use abg_alloc::Scripted;
use abg_control::{AControl, AGreedy};
use abg_dag::{JobStructure, PhasedJob};
use abg_sched::PipelinedExecutor;
use abg_sim::{run_single_job, SingleJobConfig, SingleJobRun};
use abg_workload::{paper_job, scaled_job};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the Figure-5 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleJobSweepConfig {
    /// The transition factors to sweep (x-axis).
    pub factors: Vec<u64>,
    /// Jobs generated per factor (the paper uses 50).
    pub jobs_per_factor: u32,
    /// Machine size `P` (paper: 128).
    pub processors: u32,
    /// Quantum length `L` in steps (paper: 1000).
    pub quantum_len: u64,
    /// Serial/parallel phase pairs per job.
    pub pairs: u64,
    /// Shrinks phase lengths below the paper's quantum-multiple sizing
    /// (1 = paper scale; larger values make jobs proportionally
    /// smaller, for tests and benches).
    pub scale_down: u64,
    /// ABG convergence rate `r` (paper: 0.2).
    pub rate: f64,
    /// A-Greedy responsiveness `ρ` (paper: 2).
    pub responsiveness: f64,
    /// A-Greedy utilization threshold `δ`.
    pub utilization: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl SingleJobSweepConfig {
    /// The paper's setting: factors 2..=100, 50 jobs per factor,
    /// `P = 128`, `L = 1000`, `r = 0.2`, `ρ = 2`.
    pub fn paper() -> Self {
        Self {
            factors: (2..=100).collect(),
            jobs_per_factor: 50,
            processors: 128,
            quantum_len: 1000,
            pairs: 4,
            scale_down: 1,
            rate: 0.2,
            responsiveness: 2.0,
            utilization: 0.8,
            seed: 0xA6B6_2008,
        }
    }

    /// A scaled-down sweep for tests and benches: sampled factor axis,
    /// fewer jobs, and a shorter quantum. The paper's phase geometry
    /// (phase length at least one quantum's worth of levels) is kept —
    /// that geometry is what makes the feedback dynamics meaningful —
    /// so jobs shrink with the quantum instead of degenerating.
    pub fn scaled() -> Self {
        Self {
            factors: vec![2, 5, 10, 20, 40, 80],
            jobs_per_factor: 8,
            processors: 128,
            quantum_len: 100,
            pairs: 3,
            scale_down: 1,
            rate: 0.2,
            responsiveness: 2.0,
            utilization: 0.8,
            seed: 0xA6B6_2008,
        }
    }
}

/// One x-axis point of Figure 5 (means over the factor's jobs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Target transition factor of the generated jobs.
    pub factor: u64,
    /// Mean measured transition factor (sanity check on the generator).
    pub measured_factor: f64,
    /// Mean `T / T∞` under ABG (Figure 5(a), lower line).
    pub abg_time_norm: f64,
    /// Mean `T / T∞` under A-Greedy (Figure 5(a), upper line).
    pub agreedy_time_norm: f64,
    /// Mean `W / T1` under ABG (Figure 5(c)).
    pub abg_waste_norm: f64,
    /// Mean `W / T1` under A-Greedy (Figure 5(c)).
    pub agreedy_waste_norm: f64,
    /// Mean per-run running-time ratio A-Greedy / ABG (Figure 5(b)).
    pub time_ratio: f64,
    /// Waste ratio A-Greedy / ABG over the factor's jobs, computed on
    /// summed wastes (robust to a single near-zero-waste ABG run that
    /// would dominate a mean of per-run ratios) — Figure 5(d).
    pub waste_ratio: f64,
}

/// The pair of runs for one generated job.
#[derive(Debug, Clone)]
struct JobPair {
    job: PhasedJob,
    abg: SingleJobRun,
    agreedy: SingleJobRun,
}

fn run_pair(cfg: &SingleJobSweepConfig, factor: u64, index: u64) -> JobPair {
    let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, factor, index));
    let job = if cfg.scale_down <= 1 {
        paper_job(factor, cfg.quantum_len, cfg.pairs, &mut rng)
    } else {
        scaled_job(factor, cfg.quantum_len, cfg.pairs, cfg.scale_down, &mut rng)
    };
    let sim_cfg = SingleJobConfig::new(cfg.quantum_len);
    // Both runs borrow the same job structure and share one executor,
    // rewound between them — nothing is cloned or re-allocated per run.
    let mut ex = PipelinedExecutor::new(&job);
    let abg = run_single_job(
        &mut ex,
        &mut AControl::new(cfg.rate),
        &mut Scripted::ample(cfg.processors),
        sim_cfg,
    );
    ex.reset();
    let agreedy = run_single_job(
        &mut ex,
        &mut AGreedy::new(cfg.responsiveness, cfg.utilization),
        &mut Scripted::ample(cfg.processors),
        sim_cfg,
    );
    JobPair { job, abg, agreedy }
}

/// Runs the Figure-5 sweep; one [`SweepPoint`] per configured factor.
///
/// Work units (factor × job) are spread across all cores; results are
/// deterministic for a given config regardless of thread count.
///
/// # Panics
///
/// Panics if the config has no factors or zero jobs per factor.
pub fn single_job_sweep(cfg: &SingleJobSweepConfig) -> Vec<SweepPoint> {
    single_job_sweep_with_steps(cfg).0
}

/// [`single_job_sweep`], additionally returning the total simulated
/// steps across every run of the sweep (both schedulers, every job) —
/// the quantity the kernel-benchmark trajectory reports as steps/sec.
/// Deterministic for a given config, like the points themselves.
///
/// # Panics
///
/// Panics if the config has no factors or zero jobs per factor.
pub fn single_job_sweep_with_steps(cfg: &SingleJobSweepConfig) -> (Vec<SweepPoint>, u64) {
    assert!(!cfg.factors.is_empty(), "sweep needs at least one factor");
    assert!(
        cfg.jobs_per_factor > 0,
        "sweep needs at least one job per factor"
    );
    let units: Vec<(u64, u64)> = cfg
        .factors
        .iter()
        .flat_map(|&f| (0..cfg.jobs_per_factor as u64).map(move |j| (f, j)))
        .collect();
    let pairs = parallel_map(units, |&(factor, index)| {
        (factor, run_pair(cfg, factor, index))
    });
    let steps: u64 = pairs
        .iter()
        .map(|(_, p)| p.abg.running_time + p.agreedy.running_time)
        .sum();

    let points = cfg
        .factors
        .iter()
        .map(|&factor| {
            let runs: Vec<&JobPair> = pairs
                .iter()
                .filter(|(f, _)| *f == factor)
                .map(|(_, p)| p)
                .collect();
            let n = runs.len() as f64;
            let mean = |f: &dyn Fn(&JobPair) -> f64| runs.iter().map(|p| f(p)).sum::<f64>() / n;
            SweepPoint {
                factor,
                measured_factor: mean(&|p| p.job.transition_factor(cfg.quantum_len)),
                abg_time_norm: mean(&|p| p.abg.time_over_span()),
                agreedy_time_norm: mean(&|p| p.agreedy.time_over_span()),
                abg_waste_norm: mean(&|p| p.abg.waste_over_work()),
                agreedy_waste_norm: mean(&|p| p.agreedy.waste_over_work()),
                time_ratio: mean(&|p| p.agreedy.running_time as f64 / p.abg.running_time as f64),
                waste_ratio: {
                    let agreedy: u64 = runs.iter().map(|p| p.agreedy.waste).sum();
                    let abg: u64 = runs.iter().map(|p| p.abg.waste).sum();
                    agreedy as f64 / abg.max(1) as f64
                },
            }
        })
        .collect();
    (points, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_sweep_shows_abg_advantage() {
        let cfg = SingleJobSweepConfig::scaled();
        let points = single_job_sweep(&cfg);
        assert_eq!(points.len(), cfg.factors.len());
        // The headline result: averaged across the sweep, A-Greedy wastes
        // substantially more and runs longer than ABG.
        let mean_time_ratio: f64 =
            points.iter().map(|p| p.time_ratio).sum::<f64>() / points.len() as f64;
        let mean_waste_ratio: f64 =
            points.iter().map(|p| p.waste_ratio).sum::<f64>() / points.len() as f64;
        assert!(mean_time_ratio > 1.0, "time ratio {mean_time_ratio}");
        assert!(mean_waste_ratio > 1.2, "waste ratio {mean_waste_ratio}");
        // Sanity: normalized times are at least 1 (T ≥ T∞).
        for p in &points {
            assert!(p.abg_time_norm >= 1.0 - 1e-9);
            assert!(p.agreedy_time_norm >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = SingleJobSweepConfig {
            factors: vec![5, 10],
            jobs_per_factor: 3,
            ..SingleJobSweepConfig::scaled()
        };
        let a = single_job_sweep_with_steps(&cfg);
        let b = single_job_sweep_with_steps(&cfg);
        assert_eq!(a, b);
        assert!(a.1 > 0, "the sweep simulates a positive number of steps");
        assert_eq!(a.0, single_job_sweep(&cfg), "wrapper returns same points");
    }

    #[test]
    #[should_panic(expected = "at least one factor")]
    fn empty_factor_axis_rejected() {
        let cfg = SingleJobSweepConfig {
            factors: vec![],
            ..SingleJobSweepConfig::scaled()
        };
        let _ = single_job_sweep(&cfg);
    }
}
