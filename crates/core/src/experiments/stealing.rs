//! Centralized vs distributed scheduling: ABG against the
//! work-stealing schedulers of the paper's related work (Section 8).
//!
//! The empirical lineage the paper cites (\[2\]) showed A-Steal (work
//! stealing *with* parallelism feedback) far ahead of ABP (work
//! stealing without feedback). This experiment reproduces that
//! comparison inside the same two-level harness and adds the
//! combination the paper suggests but never built: the A-Control
//! controller driving a work-stealing execution.

use super::{parallel_map, task_seed};
use abg_alloc::Scripted;
use abg_control::AControl;
use abg_sched::PipelinedExecutor;
use abg_sim::{run_single_job, SingleJobConfig, SingleJobRun};
use abg_steal::{abp_request, ASteal, StealExecutor};
use abg_workload::paper_job;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the stealing comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StealingConfig {
    /// Transition factors of the probe jobs.
    pub factors: Vec<u64>,
    /// Jobs per factor.
    pub jobs_per_factor: u32,
    /// Machine size.
    pub processors: u32,
    /// Quantum length `L`.
    pub quantum_len: u64,
    /// Phase pairs per job (jobs are lowered to explicit dags, so keep
    /// them modest).
    pub pairs: u64,
    /// ABG convergence rate.
    pub rate: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl StealingConfig {
    /// A moderate default probe.
    pub fn default_probe() -> Self {
        Self {
            factors: vec![4, 8, 16],
            jobs_per_factor: 4,
            processors: 32,
            quantum_len: 50,
            pairs: 2,
            rate: 0.2,
            seed: 0x0005_7EA1,
        }
    }
}

/// Mean quality of one scheduler across the probe jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StealRow {
    /// Scheduler name.
    pub scheduler: String,
    /// Mean `T / T∞`.
    pub time_norm: f64,
    /// Mean `W / T1` (for the stealing schedulers this includes the
    /// steal cycles — they occupy allotted processors without doing
    /// work, so the quantum accounting already charges them).
    pub waste_norm: f64,
}

fn summarize(name: &str, runs: &[SingleJobRun]) -> StealRow {
    let n = runs.len() as f64;
    StealRow {
        scheduler: name.to_string(),
        time_norm: runs.iter().map(SingleJobRun::time_over_span).sum::<f64>() / n,
        waste_norm: runs.iter().map(SingleJobRun::waste_over_work).sum::<f64>() / n,
    }
}

/// Runs the four schedulers over the probe jobs and returns one row per
/// scheduler: centralized ABG, A-Steal, ABP, and A-Control over
/// stealing.
pub fn stealing_comparison(cfg: &StealingConfig) -> Vec<StealRow> {
    let units: Vec<(u64, u64, u8)> = cfg
        .factors
        .iter()
        .flat_map(|&f| {
            (0..cfg.jobs_per_factor as u64).flat_map(move |j| (0..4u8).map(move |s| (f, j, s)))
        })
        .collect();
    let runs = parallel_map(units, |&(factor, index, scheduler)| {
        let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, factor, index));
        let job = paper_job(factor, cfg.quantum_len, cfg.pairs, &mut rng);
        let sim_cfg = SingleJobConfig::new(cfg.quantum_len);
        let mut alloc = Scripted::ample(cfg.processors);
        let steal_seed = task_seed(cfg.seed ^ 0x5EED, factor, index);
        let run = match scheduler {
            0 => run_single_job(
                &mut PipelinedExecutor::new(job),
                &mut AControl::new(cfg.rate),
                &mut alloc,
                sim_cfg,
            ),
            s => {
                let dag = job.to_explicit();
                let mut ex = StealExecutor::new(&dag, steal_seed);
                match s {
                    1 => run_single_job(&mut ex, &mut ASteal::paper_default(), &mut alloc, sim_cfg),
                    2 => run_single_job(
                        &mut ex,
                        &mut abp_request(cfg.processors),
                        &mut alloc,
                        sim_cfg,
                    ),
                    _ => run_single_job(&mut ex, &mut AControl::new(cfg.rate), &mut alloc, sim_cfg),
                }
            }
        };
        (scheduler, run)
    });

    let by = |s: u8| -> Vec<SingleJobRun> {
        runs.iter()
            .filter(|(sch, _)| *sch == s)
            .map(|(_, r)| r.clone())
            .collect()
    };
    vec![
        summarize("abg (centralized b-greedy)", &by(0)),
        summarize("a-steal (stealing + mult-inc/dec)", &by(1)),
        summarize("abp (stealing, no feedback)", &by(2)),
        summarize("a-control + stealing", &by(3)),
    ]
}

/// Convenience used by the boxed multi-job simulator: a `'static`
/// work-stealing executor over an owned dag.
pub fn owned_steal_executor(
    dag: abg_dag::ExplicitDag,
    seed: u64,
) -> StealExecutor<abg_dag::ExplicitDag> {
    StealExecutor::new(dag, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> StealingConfig {
        StealingConfig {
            factors: vec![4, 8],
            jobs_per_factor: 2,
            processors: 16,
            quantum_len: 25,
            pairs: 2,
            rate: 0.2,
            seed: 5,
        }
    }

    #[test]
    fn four_schedulers_reported() {
        let rows = stealing_comparison(&tiny());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.time_norm >= 1.0 - 1e-9, "{r:?}");
            assert!(r.waste_norm >= 0.0, "{r:?}");
        }
    }

    #[test]
    fn feedback_beats_abp_on_waste() {
        // The headline of [2]: parallelism feedback slashes waste
        // relative to always-ask-for-everything ABP.
        let rows = stealing_comparison(&tiny());
        let waste = |name: &str| {
            rows.iter()
                .find(|r| r.scheduler.starts_with(name))
                .expect("row exists")
                .waste_norm
        };
        assert!(
            waste("abp") > 1.5 * waste("a-steal"),
            "ABP should waste far more than A-Steal: {rows:?}"
        );
        assert!(
            waste("abp") > 1.5 * waste("abg"),
            "ABP should waste far more than ABG: {rows:?}"
        );
    }

    #[test]
    fn comparison_is_deterministic() {
        assert_eq!(stealing_comparison(&tiny()), stealing_comparison(&tiny()));
    }
}
