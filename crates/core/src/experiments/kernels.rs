//! The kernel benchmark trajectory suite: wall-clock throughput of the
//! hot simulation loops, measured the same way from the CLI (`abg-cli
//! bench`), the Criterion benches, and CI smoke runs.
//!
//! Each kernel drives one hot path end to end and reports *operations*
//! (tasks executed, or jobs simulated for the composite kernels) and
//! *simulated steps* per second. The `chain_macro` / `chain_reference`
//! pair measures the incremental-span + macro-stepping kernel against
//! the legacy clone-and-rescan kernel preserved in
//! [`abg_sched::ReferenceExecutor`] — the before/after of the
//! `O(T∞)`-per-quantum → `O(work done this quantum)` rewrite.

use super::single_job::{single_job_sweep_with_steps, SingleJobSweepConfig};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, ConstantRequest};
use abg_dag::{generate, LeveledJob, Phase, PhasedJob};
use abg_sched::{
    BGreedyExecutor, JobExecutor, LeveledExecutor, OwnedBGreedyExecutor, PipelinedExecutor,
    ReferenceBGreedyExecutor,
};
use abg_sim::{live_job_footprint, CompletedJob, MultiJobSim, NullProbe, QuantumCore};
use abg_workload::{JobSetSpec, ReleaseSchedule, WorkflowKind};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

/// Configuration of the kernel suite.
///
/// [`KernelBenchConfig::full`] is the recorded-baseline size;
/// [`KernelBenchConfig::smoke`] shrinks every kernel so the whole suite
/// finishes in well under a second (CI and tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelBenchConfig {
    /// Minimum wall-clock per kernel in milliseconds: each kernel body
    /// repeats until at least this much time has elapsed.
    pub min_wall_ms: u64,
    /// Tasks in the serial-chain kernels (long `T∞`, width 1).
    pub chain_len: u32,
    /// Quantum length for the chain kernels — deliberately short, so the
    /// legacy kernel pays its per-quantum rescan many times.
    pub chain_quantum: u64,
    /// Width of the pipelined chain-bundle (fork-join) kernel.
    pub bundle_width: u32,
    /// Levels per chain in the chain-bundle kernel.
    pub bundle_levels: u32,
    /// Depth of the binary fork-tree kernel (`2^depth − 1` tasks).
    pub tree_depth: u32,
    /// Serial/parallel phase pairs in the phased (pipelined) kernel.
    pub phased_pairs: u64,
    /// Parallel-phase width in the phased kernel.
    pub phased_width: u64,
    /// Levels per phase in the phased kernel.
    pub phased_len: u64,
    /// Width of the barrier-leveled kernel.
    pub leveled_width: u64,
    /// Levels of the barrier-leveled kernel.
    pub leveled_levels: u64,
    /// Levels per chain of the `weighted_frontier` kernel's bundle
    /// (width `bundle_width`, heterogeneous half-integer task weights):
    /// the residual-work executor kernel priced on a sustained wide
    /// frontier.
    pub weighted_levels: u32,
    /// Fan-out of the `workflow_open` kernel's Montage-like arrivals.
    pub workflow_scale: u32,
    /// Measured completions per repetition of the `workflow_open`
    /// kernel.
    pub workflow_jobs: u64,
    /// Layers of the random dag in the `dag_build` kernel.
    pub dag_levels: u32,
    /// Maximum layer width of the `dag_build` kernel's dag.
    pub dag_width: u32,
    /// Extra cross-layer edge probability in the `dag_build` kernel.
    pub dag_edge_prob: f64,
    /// Work units dispatched through the sharded `parallel_map` in the
    /// `sweep_parallel` kernel.
    pub parallel_units: u64,
    /// Transition factors of the single-job sweep kernel.
    pub sweep_factors: Vec<u64>,
    /// Jobs per factor in the single-job sweep kernel.
    pub sweep_jobs: u32,
    /// Machine size for the composite kernels.
    pub processors: u32,
    /// Load of the multiprogrammed DEQ kernel.
    pub load: f64,
    /// Measured completions per repetition of the open-system kernel.
    pub open_jobs: u64,
    /// Offered utilization of the open-system kernel (must be stable).
    pub open_rho: f64,
    /// Levels per job in the open kernels (width-8 phases, so `T1 =
    /// 8 · open_levels`). Long jobs put the drivers in the event-sparse
    /// regime the frozen-quantum machinery targets: thousands of quanta
    /// between arrivals and completions, nearly all of them frozen.
    pub open_levels: u64,
    /// Offered utilization of the `open_event` kernel — high enough
    /// that a double-digit population is live in every window, while
    /// staying in DEQ's satisfied regime where windows can freeze.
    pub open_event_rho: f64,
    /// Processor groups of the `open_sharded` kernel. Each shard is an
    /// independent decimated open system committing its own horizon, so
    /// the kernel's aggregate simulated steps scale with the shard
    /// count while the per-event cost scales with the per-shard
    /// population.
    pub open_shards: u32,
    /// Jobs pushed through the `open_churn` kernel — short jobs on a
    /// dense deterministic arrival grid, every one admitted up front
    /// with a future release step. Completions land in nearly every
    /// quantum, so the kernel prices the core's storage layer: slot
    /// scan/reclamation under churn, with the live set a small fraction
    /// of the in-system population.
    pub churn_jobs: u64,
    /// Jobs of the `open_churn_large` variant: the same regime scaled
    /// until the system *holds* a 10⁵-order job population, so the
    /// kernel demonstrates per-quantum cost scaling with the live set,
    /// not with everything admitted.
    pub churn_large_jobs: u64,
    /// Suite seed (job generation only; timings are machine-dependent).
    pub seed: u64,
}

impl KernelBenchConfig {
    /// The recorded-baseline size (sub-minute on a laptop core).
    pub fn full() -> Self {
        Self {
            min_wall_ms: 200,
            chain_len: 100_000,
            chain_quantum: 64,
            bundle_width: 8,
            bundle_levels: 25_000,
            tree_depth: 16,
            phased_pairs: 64,
            phased_width: 16,
            phased_len: 64,
            leveled_width: 16,
            leveled_levels: 50_000,
            weighted_levels: 25_000,
            workflow_scale: 32,
            workflow_jobs: 1_000,
            dag_levels: 2_000,
            dag_width: 32,
            dag_edge_prob: 0.05,
            parallel_units: 1_024,
            sweep_factors: vec![2, 10, 40],
            sweep_jobs: 8,
            processors: 128,
            load: 2.0,
            open_jobs: 400,
            open_rho: 0.6,
            open_levels: 100_000,
            open_event_rho: 0.85,
            open_shards: 4,
            churn_jobs: 10_000,
            churn_large_jobs: 150_000,
            seed: 0xB16C_2008,
        }
    }

    /// A CI/test smoke size: every kernel shrunk to finish the whole
    /// suite in well under a second.
    pub fn smoke() -> Self {
        Self {
            min_wall_ms: 2,
            chain_len: 4_000,
            chain_quantum: 64,
            bundle_width: 8,
            bundle_levels: 500,
            // Deep enough that the saturated wide-frontier regime
            // dominates, as it does at the full size — a shallower tree
            // is straddle-heavy and systematically undershoots the
            // committed full-size baseline the --check gate compares
            // against.
            tree_depth: 13,
            phased_pairs: 8,
            phased_width: 8,
            phased_len: 16,
            leveled_width: 8,
            leveled_levels: 1_000,
            weighted_levels: 500,
            workflow_scale: 8,
            workflow_jobs: 80,
            dag_levels: 100,
            dag_width: 8,
            dag_edge_prob: 0.05,
            parallel_units: 32,
            sweep_factors: vec![2, 10],
            sweep_jobs: 2,
            processors: 32,
            load: 1.0,
            open_jobs: 60,
            open_rho: 0.5,
            open_levels: 4_000,
            // The full size runs 0.85 on 128 processors (16 effective
            // servers); at the smoke scale (4 effective servers) the
            // same rho is burstier and spends far more time in DEQ's
            // deprived regime where windows cannot freeze, so the smoke
            // point backs off to keep the kernel in the macro-stepping
            // regime the full-size baseline prices.
            open_event_rho: 0.7,
            open_shards: 4,
            churn_jobs: 1_500,
            churn_large_jobs: 8_000,
            seed: 0xB16C_2008,
        }
    }
}

/// One kernel's measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelResult {
    /// Kernel name (stable identifier for trajectory tracking).
    pub kernel: String,
    /// Repetitions of the kernel body within the measurement window.
    pub iters: u64,
    /// Operations processed across all repetitions (tasks executed, or
    /// jobs simulated for the `single_job_sweep` kernel).
    pub ops: u64,
    /// Simulated time steps advanced across all repetitions (zero where
    /// the notion does not apply).
    pub steps: u64,
    /// Wall-clock time of the measurement window in milliseconds.
    pub wall_ms: f64,
    /// Operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Simulated steps per wall-clock second.
    pub steps_per_sec: f64,
    /// Peak in-system job population of the kernel's simulation — the
    /// memory high-water mark of the open kernels (0 where the notion
    /// does not apply).
    pub peak_jobs_in_system: u64,
    /// Estimated core-side bytes per in-system job (slot plus scratch
    /// share, see [`abg_sim::live_job_footprint`]; 0 where the notion
    /// does not apply).
    pub bytes_per_live_job: u64,
}

/// Repeats `body` until `min_wall_ms` has elapsed (at least once) and
/// folds the accumulated counters into a [`KernelResult`].
fn measure<F>(kernel: &str, min_wall_ms: u64, mut body: F) -> KernelResult
where
    F: FnMut() -> (u64, u64),
{
    let mut iters = 0u64;
    let mut ops = 0u64;
    let mut steps = 0u64;
    let start = Instant::now();
    loop {
        let (o, s) = body();
        iters += 1;
        ops += o;
        steps += s;
        if start.elapsed().as_millis() as u64 >= min_wall_ms {
            break;
        }
    }
    let wall = start.elapsed();
    let secs = wall.as_secs_f64().max(1e-9);
    KernelResult {
        kernel: kernel.to_string(),
        iters,
        ops,
        steps,
        wall_ms: wall.as_secs_f64() * 1e3,
        ops_per_sec: ops as f64 / secs,
        steps_per_sec: steps as f64 / secs,
        peak_jobs_in_system: 0,
        bytes_per_live_job: 0,
    }
}

/// One repetition of a churn kernel: `n_jobs` short barrier-leveled
/// jobs (width 4, 200 levels, `T1 = 800`) on a deterministic arrival
/// grid at effective-server utilization 0.85 — each job asks for 2
/// processors, so level boundaries align with quantum boundaries and
/// nearly every quantum both admits releases and reclaims completions.
/// The *entire* calendar is admitted up front with future release
/// steps: the storage layer holds every not-yet-completed job while
/// only the O(live) set is scheduled, which is exactly the regime where
/// per-quantum full-population scans (and compaction on completion)
/// dominate. Executors are pooled across repetitions, so the
/// measurement prices the core, not job construction.
fn churn_body<'j>(
    processors: u32,
    n_jobs: u64,
    job: &'j LeveledJob,
    pool: &mut Vec<LeveledExecutor<&'j LeveledJob>>,
    done: &mut Vec<CompletedJob>,
) -> (u64, u64) {
    // Mean gap T1 / (0.85 · P) as an exact integer grid: arrival `i`
    // releases at ⌊i · 100·T1 / (85·P)⌋.
    let gap_num = 100 * 800;
    let gap_den = 85 * processors as u64;
    let mut core = QuantumCore::new(DynamicEquiPartition::new(processors), 100, NullProbe);
    for i in 0..n_jobs {
        let ex = match pool.pop() {
            Some(mut e) => {
                e.reset();
                e
            }
            None => LeveledExecutor::new(job),
        };
        core.admit(ex, ConstantRequest::new(2.0), i * gap_num / gap_den);
    }
    let mut completed = 0u64;
    while core.jobs_in_system() > 0 {
        if !core.any_live() {
            let next = core.next_release().expect("jobs pending");
            core.skip_idle_until(next);
            continue;
        }
        done.clear();
        core.step_quantum_reclaiming(done, pool);
        completed += done.len() as u64;
    }
    (completed, core.now())
}

/// Runs every kernel once and returns the measurements in suite order.
pub fn run_kernel_suite(cfg: &KernelBenchConfig) -> Vec<KernelResult> {
    let ms = cfg.min_wall_ms;
    let mut results = Vec::new();

    // Serial chain, short quanta: the macro-stepping fast path against
    // the legacy clone-and-rescan kernel on identical inputs. These two
    // produce bit-identical QuantumStats (the equivalence suite checks
    // this); only the cost model differs. Executors are built once and
    // rewound per repetition, so the measurement is the simulation loop
    // itself, not per-run construction.
    let chain = generate::chain(cfg.chain_len);
    let q = cfg.chain_quantum;
    let mut chain_ex = BGreedyExecutor::new(&chain);
    results.push(measure("chain_macro", ms, || {
        chain_ex.reset();
        while !chain_ex.is_complete() {
            chain_ex.run_quantum(1, q);
        }
        (chain_ex.completed_work(), chain_ex.elapsed_steps())
    }));
    let mut chain_ref = ReferenceBGreedyExecutor::new(&chain);
    results.push(measure("chain_reference", ms, || {
        chain_ref.reset();
        while !chain_ref.is_complete() {
            chain_ref.run_quantum(1, q);
        }
        (chain_ref.completed_work(), chain_ref.elapsed_steps())
    }));

    // Pipelined fork-join bundle: wide, constant parallelism.
    let bundle = generate::chain_bundle(cfg.bundle_width, cfg.bundle_levels);
    let width = cfg.bundle_width;
    let mut bundle_ex = BGreedyExecutor::new(&bundle);
    results.push(measure("forkjoin_bundle", ms, || {
        bundle_ex.reset();
        while !bundle_ex.is_complete() {
            bundle_ex.run_quantum(width, 100);
        }
        (bundle_ex.completed_work(), bundle_ex.elapsed_steps())
    }));

    // Binary fork tree: parallelism doubling every level, successor
    // relaxation dominated — the wide-frontier bulk path's home turf.
    let tree = generate::binary_fork_tree(cfg.tree_depth);
    let mut tree_ex = BGreedyExecutor::new(&tree);
    results.push(measure("forkjoin_tree", ms, || {
        tree_ex.reset();
        while !tree_ex.is_complete() {
            tree_ex.run_quantum(32, 100);
        }
        (tree_ex.completed_work(), tree_ex.elapsed_steps())
    }));

    // Phased (serial/parallel alternation) under the pipelined
    // fast-forward executor.
    let phased = PhasedJob::new(
        (0..cfg.phased_pairs * 2)
            .map(|i| {
                let w = if i % 2 == 0 { 1 } else { cfg.phased_width };
                Phase::new(w, cfg.phased_len)
            })
            .collect(),
    );
    let pw = cfg.phased_width as u32;
    let mut phased_ex = PipelinedExecutor::new(&phased);
    results.push(measure("phased_pipelined", ms, || {
        phased_ex.reset();
        while !phased_ex.is_complete() {
            phased_ex.run_quantum(pw, 100);
        }
        (phased_ex.completed_work(), phased_ex.elapsed_steps())
    }));

    // Barrier-leveled constant job under the leveled fast-forward.
    let leveled = LeveledJob::constant(cfg.leveled_width, cfg.leveled_levels);
    let lw = cfg.leveled_width as u32;
    let mut leveled_ex = LeveledExecutor::new(&leveled);
    results.push(measure("leveled_barrier", ms, || {
        leveled_ex.reset();
        while !leveled_ex.is_complete() {
            leveled_ex.run_quantum(lw, 100);
        }
        (leveled_ex.completed_work(), leveled_ex.elapsed_steps())
    }));

    // Weighted wide frontier: the same bundle shape as
    // `forkjoin_bundle`, every task carrying a heterogeneous
    // half-integer weight, so each step advances residual costs and the
    // completion sweep compacts in place — the weighted executor
    // kernel's sustained regime. Built once, rewound per repetition;
    // ops count processor-step units (Σ ceil(wᵢ)), not tasks.
    let weighted = {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let base = generate::chain_bundle(cfg.bundle_width, cfg.weighted_levels);
        let weights: Vec<f64> = (0..base.num_tasks())
            .map(|_| rng.random_range(1..=7u64) as f64 * 0.5)
            .collect();
        base.with_weights(weights)
            .expect("half-integer weights are finite and positive")
    };
    let wwidth = cfg.bundle_width;
    let mut weighted_ex = BGreedyExecutor::new(&weighted);
    results.push(measure("weighted_frontier", ms, || {
        weighted_ex.reset();
        while !weighted_ex.is_complete() {
            weighted_ex.run_quantum(wwidth, 100);
        }
        (weighted_ex.completed_work(), weighted_ex.elapsed_steps())
    }));

    // Dag construction: builder ingest + CSR finalization + Kahn
    // validation of a random layered graph. Ops are tasks built, steps
    // are edges placed; the same seed every iteration keeps the counters
    // iter-constant.
    results.push(measure("dag_build", ms, || {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let dag = generate::random_layered(
            &mut rng,
            cfg.dag_levels,
            1..=cfg.dag_width,
            cfg.dag_edge_prob,
        );
        (dag.work(), dag.num_edges() as u64)
    }));

    // Harness dispatch: many small independent simulations through the
    // sharded `parallel_map` — measures the sweep harness's fan-out
    // throughput (cursor claiming + chunk assembly), not the simulation
    // kernels themselves.
    let par_job = PhasedJob::constant(cfg.phased_width, cfg.phased_len);
    let par_w = cfg.phased_width as u32;
    results.push(measure("sweep_parallel", ms, || {
        let units: Vec<u64> = (0..cfg.parallel_units).collect();
        let runs = super::parallel_map(units, |_unit| {
            let mut ex = PipelinedExecutor::new(&par_job);
            while !ex.is_complete() {
                ex.run_quantum(par_w, 100);
            }
            (ex.completed_work(), ex.elapsed_steps())
        });
        runs.iter()
            .fold((0, 0), |(w, s), &(rw, rs)| (w + rw, s + rs))
    }));

    // Composite: the Figure-5 single-job sweep at a reduced size. Ops
    // are jobs simulated (each factor × job pair runs under both
    // controllers); steps are the total simulated steps of those runs,
    // deterministic in the seed so the counter stays iter-constant.
    let mut sweep_cfg = SingleJobSweepConfig::scaled();
    sweep_cfg.factors = cfg.sweep_factors.clone();
    sweep_cfg.jobs_per_factor = cfg.sweep_jobs;
    sweep_cfg.quantum_len = 100;
    sweep_cfg.seed = cfg.seed;
    let sweep_jobs = sweep_cfg.factors.len() as u64 * sweep_cfg.jobs_per_factor as u64 * 2;
    results.push(measure("single_job_sweep", ms, || {
        let (points, steps) = single_job_sweep_with_steps(&sweep_cfg);
        assert_eq!(points.len(), sweep_cfg.factors.len());
        (sweep_jobs, steps)
    }));

    // Composite: one multiprogrammed job set under DEQ + ABG.
    let spec = JobSetSpec {
        processors: cfg.processors,
        quantum_len: 100,
        load: cfg.load,
        max_factor: 32,
        pairs: 2,
        max_jobs: cfg.processors as usize,
        release: ReleaseSchedule::Batched,
    };
    let set = spec.generate(&mut StdRng::seed_from_u64(cfg.seed));
    let releases = set.releases;
    // One Arc per job, shared by every repetition — the measurement no
    // longer pays a phase-list clone per job per iteration.
    let jobs: Vec<Arc<PhasedJob>> = set.jobs.into_iter().map(Arc::new).collect();
    results.push(measure("multiprogrammed_deq", ms, || {
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(cfg.processors), 100);
        for (job, &release) in jobs.iter().zip(&releases) {
            sim.add_job(
                Box::new(PipelinedExecutor::new(Arc::clone(job))),
                Box::new(AControl::new(0.2)),
                release,
            );
        }
        let out = sim.run();
        (out.total_work(), out.makespan)
    }));

    // Composite: the open-system driver under sustained Poisson
    // arrivals — admission, event-driven stepping with frozen-quantum
    // windows between arrivals and completions, and steady-state
    // collection. The long jobs (`open_levels` width-8 levels) put the
    // run in the event-sparse regime: thousands of quanta separate
    // consecutive events and nearly all of them are macro-stepped. Ops
    // are arrivals admitted, steps are the simulated horizon; the fixed
    // seed keeps both iter-constant.
    let open_t1 = 8.0 * cfg.open_levels as f64;
    let open_job = Arc::new(PhasedJob::constant(8, cfg.open_levels));
    // Every boxed open driver stores the same erased slot types, so one
    // footprint figure covers the four driver kernels. The peak
    // population is read off the final repetition's steady report — the
    // fixed seed makes every repetition identical.
    let boxed_footprint = live_job_footprint::<
        Box<dyn JobExecutor + Send>,
        Box<dyn abg_control::RequestCalculator + Send>,
    >() as u64;
    let peak = Cell::new(0u64);
    let open_cfg = abg_queue::OpenConfig {
        processors: cfg.processors,
        quantum_len: 100,
        arrivals: abg_workload::ArrivalProcess::Poisson {
            mean_gap: abg_workload::mean_gap_for_utilization(cfg.open_rho, cfg.processors, open_t1),
        },
        warmup_jobs: cfg.open_jobs / 4,
        measured_jobs: cfg.open_jobs,
        batches: 8,
        max_quanta: u64::MAX,
        saturation: abg_queue::SaturationConfig::default(),
        seed: cfg.seed,
    };
    let mut open_res = measure("open_system", ms, || {
        let out = abg_queue::run_open_system(
            &open_cfg,
            DynamicEquiPartition::new(cfg.processors),
            // Homogeneous population: every arrival runs the same job
            // structure, so a recycled executor is rewound and reused —
            // the steady-state loop allocates nothing per arrival.
            |_rng, recycled| {
                if let Some(mut ex) = recycled {
                    if ex.try_reset() {
                        return ex;
                    }
                }
                Box::new(PipelinedExecutor::new(Arc::clone(&open_job)))
            },
            || Box::new(AControl::new(0.2)),
        );
        let stats = out.steady().expect("kernel rho must be stable");
        peak.set(stats.peak_jobs_in_system);
        (stats.arrivals, stats.horizon)
    });
    open_res.peak_jobs_in_system = peak.get();
    open_res.bytes_per_live_job = boxed_footprint;
    results.push(open_res);

    // Composite: the same event-driven driver at high offered load —
    // the macro-stepping stress case. A double-digit population is live
    // in every frozen window, so the window bookkeeping (stability
    // checks, per-job lookahead, bulk catch-up) is priced per job
    // rather than hidden behind idle skipping.
    let event_cfg = abg_queue::OpenConfig {
        arrivals: abg_workload::ArrivalProcess::Poisson {
            mean_gap: abg_workload::mean_gap_for_utilization(
                cfg.open_event_rho,
                cfg.processors,
                open_t1,
            ),
        },
        ..open_cfg.clone()
    };
    let mut event_res = measure("open_event", ms, || {
        let out = abg_queue::run_open_system(
            &event_cfg,
            DynamicEquiPartition::new(cfg.processors),
            |_rng, recycled| {
                if let Some(mut ex) = recycled {
                    if ex.try_reset() {
                        return ex;
                    }
                }
                Box::new(PipelinedExecutor::new(Arc::clone(&open_job)))
            },
            || Box::new(AControl::new(0.2)),
        );
        let stats = out.steady().expect("kernel rho must be stable");
        peak.set(stats.peak_jobs_in_system);
        (stats.arrivals, stats.horizon)
    });
    event_res.peak_jobs_in_system = peak.get();
    event_res.bytes_per_live_job = boxed_footprint;
    results.push(event_res);

    // Composite: the sharded open-system engine at the same offered
    // load as `open_event`, the machine split into `open_shards`
    // independent processor groups. Every decimated shard commits its
    // own horizon, so steps (aggregate committed quanta × quantum
    // length) scale with the shard count while each shard's event loop
    // prices a population `open_shards`× smaller — the algorithmic win
    // this kernel gates, so the pool is pinned to one worker and the
    // counters stay independent of the runner's core count. The jobs
    // are width-2 (same `T1` through 4× the levels): a 1/`open_shards`
    // slice of the machine still offers many effective servers, keeping
    // every shard in the satisfied regime where windows freeze.
    let sharded_job = Arc::new(PhasedJob::constant(2, 4 * cfg.open_levels));
    let sharded_cfg = abg_queue::ShardedOpenConfig {
        open: abg_queue::OpenConfig {
            arrivals: abg_workload::ArrivalProcess::Poisson {
                mean_gap: abg_workload::mean_gap_for_utilization(
                    cfg.open_event_rho,
                    cfg.processors,
                    open_t1,
                ),
            },
            ..open_cfg.clone()
        },
        shards: cfg.open_shards,
        routing: abg_queue::ShardRouting::RoundRobin,
    };
    let mut sharded_res = measure("open_sharded", ms, || {
        let out = abg_queue::run_open_sharded_with_threads(
            &sharded_cfg,
            DynamicEquiPartition::new,
            |_rng, recycled: Option<Box<dyn JobExecutor + Send>>| {
                if let Some(mut ex) = recycled {
                    if ex.try_reset() {
                        return ex;
                    }
                }
                Box::new(PipelinedExecutor::new(Arc::clone(&sharded_job)))
            },
            || Box::new(AControl::new(0.2)),
            1,
        );
        let stats = out.steady().expect("kernel rho must be stable");
        peak.set(stats.peak_jobs_in_system);
        (stats.arrivals, stats.quanta * 100)
    });
    sharded_res.peak_jobs_in_system = peak.get();
    sharded_res.bytes_per_live_job = boxed_footprint;
    results.push(sharded_res);

    // Composite: the hierarchical two-level driver over the same
    // decomposition as `open_sharded`, but with the desire-proportional
    // top level reallocating group capacities every 64 quanta. This
    // prices what the top level adds to the sharded engine: the epoch
    // barriers slicing every group's frozen windows, the per-epoch
    // desire folds, and the allocator-rebuild path on resized groups
    // (under round-robin routing the partition quickly settles, so
    // rebuilds price the steady case, not a thrash loop). Same
    // one-worker pool and counters as `open_sharded` so the two gate
    // comparable work.
    let hier_cfg = abg_queue::HierOpenConfig {
        open: sharded_cfg.open.clone(),
        groups: cfg.open_shards,
        routing: abg_queue::ShardRouting::RoundRobin,
        realloc_epoch: 64,
        group_floor: 1,
    };
    let mut hier_res = measure("open_hier", ms, || {
        let out = abg_queue::run_open_hierarchical_with_threads(
            &hier_cfg,
            DynamicEquiPartition::new,
            |_rng, recycled: Option<Box<dyn JobExecutor + Send>>| {
                if let Some(mut ex) = recycled {
                    if ex.try_reset() {
                        return ex;
                    }
                }
                Box::new(PipelinedExecutor::new(Arc::clone(&sharded_job)))
            },
            || Box::new(AControl::new(0.2)),
            abg_control::DesireProportional::new(),
            1,
        );
        let stats = out.steady().expect("kernel rho must be stable");
        peak.set(stats.peak_jobs_in_system);
        (stats.arrivals, stats.quanta * 100)
    });
    hier_res.peak_jobs_in_system = peak.get();
    hier_res.bytes_per_live_job = boxed_footprint;
    results.push(hier_res);

    // Composite: the open-system driver under weighted workflow
    // arrivals — every arrival builds a fresh Montage-like dag (stage
    // structure and half-integer weights from the run's RNG) and
    // executes it through the weighted per-task kernel. Against
    // `open_system` this prices what realistic heterogeneous jobs add:
    // per-arrival dag construction and the residual-work stepping that
    // the homogeneous phased population never touches. The fixed seed
    // keeps arrivals and horizon iter-constant.
    let wf_kind = WorkflowKind::Montage;
    let wf_scale = cfg.workflow_scale;
    let wf_t1 = {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        abg_workload::expected_work_of(256, &mut rng, |rng| {
            wf_kind.generate(wf_scale, rng).work() as f64
        })
    };
    let wf_cfg = abg_queue::OpenConfig {
        arrivals: abg_workload::ArrivalProcess::Poisson {
            mean_gap: abg_workload::mean_gap_for_utilization(cfg.open_rho, cfg.processors, wf_t1),
        },
        warmup_jobs: cfg.workflow_jobs / 4,
        measured_jobs: cfg.workflow_jobs,
        ..open_cfg.clone()
    };
    let mut wf_res = measure("workflow_open", ms, || {
        let out = abg_queue::run_open_system(
            &wf_cfg,
            DynamicEquiPartition::new(cfg.processors),
            // Heterogeneous dags: recycling is declined, every arrival
            // pays its own build — deliberately part of the price.
            |rng, _recycled| Box::new(OwnedBGreedyExecutor::new(wf_kind.generate(wf_scale, rng))),
            || Box::new(AControl::new(0.2)),
        );
        let stats = out.steady().expect("kernel rho must be stable");
        peak.set(stats.peak_jobs_in_system);
        (stats.arrivals, stats.horizon)
    });
    wf_res.peak_jobs_in_system = peak.get();
    wf_res.bytes_per_live_job = boxed_footprint;
    results.push(wf_res);

    // Storage-layer kernels: the completion-heavy churn regime. Short
    // jobs on a dense arrival grid, the whole calendar admitted up
    // front — the core holds the full in-system population while only
    // the small live set does work each quantum, so these two price the
    // live-set bookkeeping itself (the `open_churn` kernel is gated; the
    // large variant demonstrates the population-independent scaling).
    let churn_job = LeveledJob::constant(4, 200); // T1 = 800: four exact quanta at allotment 2
    let churn_footprint = live_job_footprint::<LeveledExecutor<&LeveledJob>, ConstantRequest>();
    let mut churn_pool: Vec<LeveledExecutor<&LeveledJob>> = Vec::new();
    let mut churn_done: Vec<CompletedJob> = Vec::new();
    let mut churn_res = measure("open_churn", ms, || {
        churn_body(
            cfg.processors,
            cfg.churn_jobs,
            &churn_job,
            &mut churn_pool,
            &mut churn_done,
        )
    });
    churn_res.peak_jobs_in_system = cfg.churn_jobs;
    churn_res.bytes_per_live_job = churn_footprint as u64;
    results.push(churn_res);

    let mut churn_large_res = measure("open_churn_large", ms, || {
        churn_body(
            cfg.processors,
            cfg.churn_large_jobs,
            &churn_job,
            &mut churn_pool,
            &mut churn_done,
        )
    });
    churn_large_res.peak_jobs_in_system = cfg.churn_large_jobs;
    churn_large_res.bytes_per_live_job = churn_footprint as u64;
    results.push(churn_large_res);

    // The unified quantum core driven directly, fully monomorphized (no
    // boxed executors or controllers, `NullProbe` instrumentation
    // compiled away): a closed batch released together followed by a
    // staggered open tail that exercises admission ordering and the
    // idle fast-forward. Ops are jobs completed, steps the simulated
    // horizon; both are deterministic so the counters stay
    // iter-constant. The core is rebuilt every repetition — admission
    // and teardown are part of what this kernel prices.
    let uni_job = Arc::new(PhasedJob::constant(8, 200)); // T1 = 1600
    let uni_batch = (cfg.processors as u64 / 8).max(2);
    let uni_gap = 400; // four quanta between staggered releases
    results.push(measure("unified_engine", ms, || {
        let mut core = QuantumCore::new(DynamicEquiPartition::new(cfg.processors), 100, NullProbe);
        for _ in 0..uni_batch {
            core.admit(
                PipelinedExecutor::new(Arc::clone(&uni_job)),
                AControl::new(0.2),
                0,
            );
        }
        for i in 0..uni_batch {
            core.admit(
                PipelinedExecutor::new(Arc::clone(&uni_job)),
                AControl::new(0.2),
                (i + 1) * uni_gap,
            );
        }
        let mut done = Vec::new();
        while core.jobs_in_system() > 0 {
            if !core.any_live() {
                let next = core.next_release().expect("jobs pending");
                core.skip_idle_until(next);
                continue;
            }
            core.step_quantum(&mut done);
        }
        (done.len() as u64, core.now())
    }));

    results
}

/// Throughput ratio `numerator.steps_per_sec / denominator.steps_per_sec`
/// between two kernels of a suite run, by name (`None` if either is
/// missing or the denominator did no steps).
pub fn kernel_speedup(results: &[KernelResult], numerator: &str, denominator: &str) -> Option<f64> {
    let num = results.iter().find(|r| r.kernel == numerator)?;
    let den = results.iter().find(|r| r.kernel == denominator)?;
    if den.steps_per_sec > 0.0 {
        Some(num.steps_per_sec / den.steps_per_sec)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_suite_runs_every_kernel() {
        let results = run_kernel_suite(&KernelBenchConfig::smoke());
        let names: Vec<&str> = results.iter().map(|r| r.kernel.as_str()).collect();
        assert_eq!(
            names,
            [
                "chain_macro",
                "chain_reference",
                "forkjoin_bundle",
                "forkjoin_tree",
                "phased_pipelined",
                "leveled_barrier",
                "weighted_frontier",
                "dag_build",
                "sweep_parallel",
                "single_job_sweep",
                "multiprogrammed_deq",
                "open_system",
                "open_event",
                "open_sharded",
                "open_hier",
                "workflow_open",
                "open_churn",
                "open_churn_large",
                "unified_engine",
            ]
        );
        for r in &results {
            assert!(r.iters > 0, "{}: no iterations", r.kernel);
            assert!(r.ops > 0, "{}: no work", r.kernel);
            assert!(r.wall_ms > 0.0, "{}: no time", r.kernel);
            assert!(r.ops_per_sec > 0.0, "{}: no throughput", r.kernel);
            // Per-iteration counters are deterministic.
            assert_eq!(r.ops % r.iters, 0, "{}: ops not iter-constant", r.kernel);
            assert_eq!(
                r.steps % r.iters,
                0,
                "{}: steps not iter-constant",
                r.kernel
            );
        }
    }

    /// Full-size churn measurement on its own, without the rest of the
    /// suite — the before/after probe of the live-set storage layer:
    /// `cargo test --release -p abg churn_probe -- --ignored --nocapture`.
    #[test]
    #[ignore = "measurement probe, not a correctness test"]
    fn churn_probe() {
        let cfg = KernelBenchConfig::full();
        let job = LeveledJob::constant(4, 200);
        let mut pool = Vec::new();
        let mut done = Vec::new();
        for (name, jobs) in [
            ("open_churn", cfg.churn_jobs),
            ("open_churn_large", cfg.churn_large_jobs),
        ] {
            let r = measure(name, 2_000, || {
                churn_body(cfg.processors, jobs, &job, &mut pool, &mut done)
            });
            println!(
                "{name}: iters={} steps/s={:.0} ops/s={:.0}",
                r.iters, r.steps_per_sec, r.ops_per_sec
            );
        }
    }

    #[test]
    fn chain_kernels_do_identical_simulated_work() {
        let cfg = KernelBenchConfig::smoke();
        let results = run_kernel_suite(&cfg);
        let per_iter = |name: &str| {
            let r = results.iter().find(|r| r.kernel == name).unwrap();
            (r.ops / r.iters, r.steps / r.iters)
        };
        // Same job, same schedule: identical per-iteration work and
        // steps; only wall-clock differs.
        assert_eq!(per_iter("chain_macro"), per_iter("chain_reference"));
        assert_eq!(per_iter("chain_macro").0, cfg.chain_len as u64);
    }

    #[test]
    fn speedup_helper_finds_named_kernels() {
        let results = run_kernel_suite(&KernelBenchConfig::smoke());
        let s = kernel_speedup(&results, "chain_macro", "chain_reference");
        assert!(s.is_some());
        assert!(s.unwrap() > 0.0);
        assert!(kernel_speedup(&results, "chain_macro", "nope").is_none());
    }
}
