//! Adaptive quantum length (future work, Section 9): fixed-short vs
//! fixed-long vs adaptive quantum sizing under the ABG controller.

use super::{parallel_map, task_seed};
use abg_alloc::Scripted;
use abg_control::AControl;
use abg_sched::PipelinedExecutor;
use abg_sim::{run_single_job_adaptive, AdaptiveQuantum, FixedQuantum, SingleJobConfig};
use abg_workload::paper_job;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the adaptive-quantum comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveQuantumConfig {
    /// Transition factors of the probe jobs.
    pub factors: Vec<u64>,
    /// Jobs per factor.
    pub jobs_per_factor: u32,
    /// Machine size.
    pub processors: u32,
    /// Short (and minimum) quantum length.
    pub short_quantum: u64,
    /// Long (and maximum) quantum length.
    pub long_quantum: u64,
    /// Relative request-stability band of the adaptive policy.
    pub stability_band: f64,
    /// ABG convergence rate.
    pub rate: f64,
    /// Phase pairs per job.
    pub pairs: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl AdaptiveQuantumConfig {
    /// Moderate default probe. Jobs are generated against the *short*
    /// quantum's geometry so every policy faces identical jobs.
    pub fn default_probe() -> Self {
        Self {
            factors: vec![5, 20, 60],
            jobs_per_factor: 6,
            processors: 128,
            short_quantum: 50,
            long_quantum: 800,
            stability_band: 0.05,
            rate: 0.2,
            pairs: 3,
            seed: 0xADA7,
        }
    }
}

/// One policy's mean results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveQuantumRow {
    /// Policy name.
    pub policy: String,
    /// Mean `T / T∞`.
    pub time_norm: f64,
    /// Mean `W / T1`.
    pub waste_norm: f64,
    /// Mean number of scheduling quanta (feedback/renegotiation events).
    pub mean_quanta: f64,
    /// Mean number of quanta whose allotment changed (reallocation
    /// events — the overhead the paper's motivation worries about).
    pub mean_reallocations: f64,
}

/// Compares `fixed(short)`, `fixed(long)` and `adaptive(short..long)`
/// quantum policies under ABG on the same jobs.
pub fn adaptive_quantum_comparison(cfg: &AdaptiveQuantumConfig) -> Vec<AdaptiveQuantumRow> {
    let units: Vec<(u64, u64)> = cfg
        .factors
        .iter()
        .flat_map(|&f| (0..cfg.jobs_per_factor as u64).map(move |j| (f, j)))
        .collect();
    // One unit per generated job: all three policies run over the same
    // job through one executor, rewound between policies, so the job is
    // generated once instead of once per policy and nothing is
    // re-allocated. The run set (and every aggregate) is identical to
    // running each policy in its own unit.
    let results = parallel_map(units, |&(factor, index)| {
        let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, factor, index));
        // Phase geometry follows the *long* quantum so even the longest
        // policy sees phases spanning full quanta.
        let job = paper_job(factor, cfg.long_quantum, cfg.pairs, &mut rng);
        let mut ex = PipelinedExecutor::new(job);
        let sim = SingleJobConfig::new(cfg.short_quantum);
        let short = run_single_job_adaptive(
            &mut ex,
            &mut FixedQuantum(cfg.short_quantum).pace(AControl::new(cfg.rate)),
            &mut Scripted::ample(cfg.processors),
            sim,
        );
        ex.reset();
        let long = run_single_job_adaptive(
            &mut ex,
            &mut FixedQuantum(cfg.long_quantum).pace(AControl::new(cfg.rate)),
            &mut Scripted::ample(cfg.processors),
            sim,
        );
        ex.reset();
        let adaptive = run_single_job_adaptive(
            &mut ex,
            &mut AdaptiveQuantum::new(cfg.short_quantum, cfg.long_quantum, cfg.stability_band)
                .pace(AControl::new(cfg.rate)),
            &mut Scripted::ample(cfg.processors),
            sim,
        );
        [short, long, adaptive]
    });

    let names = [
        format!("fixed L = {}", cfg.short_quantum),
        format!("fixed L = {}", cfg.long_quantum),
        format!("adaptive L ∈ [{}, {}]", cfg.short_quantum, cfg.long_quantum),
    ];
    (0..3usize)
        .map(|p| {
            let rows: Vec<_> = results.iter().map(|per_job| &per_job[p]).collect();
            let n = rows.len() as f64;
            AdaptiveQuantumRow {
                policy: names[p].clone(),
                time_norm: rows.iter().map(|(r, _)| r.time_over_span()).sum::<f64>() / n,
                waste_norm: rows.iter().map(|(r, _)| r.waste_over_work()).sum::<f64>() / n,
                mean_quanta: rows.iter().map(|(r, _)| r.quanta as f64).sum::<f64>() / n,
                mean_reallocations: rows.iter().map(|(_, x)| *x as f64).sum::<f64>() / n,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AdaptiveQuantumConfig {
        AdaptiveQuantumConfig {
            factors: vec![8],
            jobs_per_factor: 3,
            processors: 64,
            short_quantum: 20,
            long_quantum: 160,
            stability_band: 0.05,
            rate: 0.2,
            pairs: 2,
            seed: 4,
        }
    }

    #[test]
    fn three_policies_reported() {
        let rows = adaptive_quantum_comparison(&tiny());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.time_norm >= 1.0 - 1e-9, "{r:?}");
            assert!(r.mean_quanta >= 1.0, "{r:?}");
        }
    }

    #[test]
    fn adaptive_uses_fewer_quanta_than_fixed_short() {
        let rows = adaptive_quantum_comparison(&tiny());
        let short = &rows[0];
        let adaptive = &rows[2];
        assert!(
            adaptive.mean_quanta < short.mean_quanta,
            "adaptive {} quanta vs fixed-short {}",
            adaptive.mean_quanta,
            short.mean_quanta
        );
    }

    #[test]
    fn adaptive_wastes_less_than_fixed_long() {
        let rows = adaptive_quantum_comparison(&tiny());
        let long = &rows[1];
        let adaptive = &rows[2];
        assert!(
            adaptive.waste_norm <= long.waste_norm * 1.05,
            "adaptive waste {} vs fixed-long {}",
            adaptive.waste_norm,
            long.waste_norm
        );
    }
}
