//! Empirical validation of the paper's analytical results: Theorem 1
//! (control metrics), Lemma 2 (request envelope), Theorem 3 (running
//! time under trim analysis), Theorem 4 (waste) and Theorem 5 (global
//! bounds).

use super::task_seed;
use crate::bounds::{self, makespan_lower_bound, response_lower_bound_batched, JobSize};
use abg_alloc::{DynamicEquiPartition, Scripted};
use abg_control::{analyze_step_response, AControl, AGreedy, ClosedLoop, RequestCalculator};
use abg_dag::{JobStructure, PhasedJob};
use abg_sched::PipelinedExecutor;
use abg_sim::{run_single_job, MultiJobSim, SingleJobConfig, SingleJobRun};
use abg_workload::{paper_job, JobSetSpec, ReleaseSchedule};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One cell of the Theorem-1 validation grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Theorem1Row {
    /// Constant job parallelism `A`.
    pub parallelism: f64,
    /// Configured convergence rate `r`.
    pub rate: f64,
    /// Closed-loop pole `1 − K/A` (should equal `r`).
    pub pole: f64,
    /// BIBO stability of the loop.
    pub bibo_stable: bool,
    /// Steady-state error of the simulated trajectory.
    pub steady_state_error: f64,
    /// Maximum overshoot of the trajectory.
    pub max_overshoot: f64,
    /// Worst observed per-quantum error contraction (should equal `r`).
    pub measured_rate: f64,
}

/// Validates Theorem 1 on a grid of parallelisms × rates by simulating
/// the ideal closed loop for `quanta` quanta.
pub fn theorem1_grid(parallelisms: &[f64], rates: &[f64], quanta: usize) -> Vec<Theorem1Row> {
    let mut rows = Vec::with_capacity(parallelisms.len() * rates.len());
    for &a in parallelisms {
        for &r in rates {
            let loop_ = ClosedLoop::with_convergence_rate(a, r);
            let traj = loop_.request_trajectory(1.0, quanta);
            let m = analyze_step_response(&traj, a, 0.001);
            rows.push(Theorem1Row {
                parallelism: a,
                rate: r,
                pole: loop_.pole(),
                bibo_stable: loop_.is_bibo_stable(),
                steady_state_error: m.steady_state_error,
                max_overshoot: m.max_overshoot,
                measured_rate: m.convergence_rate,
            });
        }
    }
    rows
}

/// A measured quantity against its theoretical bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundCheck {
    /// What was checked (e.g. `"lemma2-upper"`).
    pub quantity: &'static str,
    /// The measured value.
    pub measured: f64,
    /// The bound it must respect.
    pub bound: f64,
    /// `measured ≤ bound` (with a small floating-point slack).
    pub holds: bool,
}

impl BoundCheck {
    fn le(quantity: &'static str, measured: f64, bound: f64) -> Self {
        Self {
            quantity,
            measured,
            bound,
            holds: measured <= bound * (1.0 + 1e-9) + 1e-9,
        }
    }

    fn ge(quantity: &'static str, measured: f64, bound: f64) -> Self {
        Self {
            quantity,
            measured,
            bound,
            holds: measured >= bound * (1.0 - 1e-9) - 1e-9,
        }
    }
}

/// Measures the transition factor realised by a traced run: the maximal
/// adjacent ratio of measured `A(q)` over full quanta, seeded with
/// `A(0) = 1` (Section 5.2 applied to the actual schedule, which is
/// exactly the quantity the proofs of Lemma 2 / Theorems 3–5 consume).
fn traced_transition_factor(run: &SingleJobRun) -> f64 {
    let mut prev = 1.0f64;
    let mut c = 1.0f64;
    for rec in &run.trace {
        if !rec.stats.is_full() {
            continue;
        }
        if let Some(a) = rec.stats.average_parallelism() {
            c = c.max(if a > prev { a / prev } else { prev / a });
            prev = a;
        }
    }
    c
}

fn abg_traced_run(
    factor: u64,
    rate: f64,
    quantum_len: u64,
    pairs: u64,
    allocator: &mut Scripted,
    seed: u64,
) -> SingleJobRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let job = paper_job(factor, quantum_len, pairs, &mut rng);
    run_single_job(
        &mut PipelinedExecutor::new(job),
        &mut AControl::new(rate),
        allocator,
        SingleJobConfig::new(quantum_len).with_trace(),
    )
}

/// Validates Lemma 2 on a generated job: every full quantum's request
/// must lie in `[(1−r)/(C_L−r)·A(q), C_L(1−r)/(1−C_L·r)·A(q)]` (the
/// upper envelope only when `r < 1/C_L`).
///
/// Returns the lower-envelope check and, when applicable, the upper one.
pub fn lemma2_check(
    factor: u64,
    rate: f64,
    quantum_len: u64,
    pairs: u64,
    processors: u32,
    seed: u64,
) -> Vec<BoundCheck> {
    let mut allocator = Scripted::ample(processors);
    let run = abg_traced_run(factor, rate, quantum_len, pairs, &mut allocator, seed);
    let c_l = traced_transition_factor(&run);
    let coeff = bounds::lemma2_coefficients(c_l, rate);

    let mut min_ratio = f64::INFINITY;
    let mut max_ratio: f64 = 0.0;
    for rec in &run.trace {
        if !rec.stats.is_full() {
            continue;
        }
        if let Some(a) = rec.stats.average_parallelism() {
            let ratio = rec.request / a;
            min_ratio = min_ratio.min(ratio);
            max_ratio = max_ratio.max(ratio);
        }
    }

    if !min_ratio.is_finite() {
        // The run had no full quanta (it completed within its first
        // quantum): there is nothing Lemma 2 constrains, and returning
        // vacuously-passing checks would mask the misconfiguration.
        return Vec::new();
    }
    let mut checks = vec![BoundCheck::ge("lemma2-lower", min_ratio, coeff.lower)];
    if let Some(upper) = coeff.upper {
        checks.push(BoundCheck::le("lemma2-upper", max_ratio, upper));
    }
    checks
}

/// Validates Theorem 3 under an adversarial availability script: the
/// running time must respect
/// `T ≤ 2·T1/P̃ + (C_L + 1 − 2r)/(1 − r)·T∞ + L` with `P̃` the
/// trimmed availability.
pub fn theorem3_check(
    factor: u64,
    rate: f64,
    quantum_len: u64,
    pairs: u64,
    processors: u32,
    seed: u64,
) -> BoundCheck {
    // Adversarial availability: alternating austere and generous quanta
    // plus random spikes, cycling forever.
    let mut rng = StdRng::seed_from_u64(task_seed(seed, factor, 3));
    let script: Vec<u32> = (0..64)
        .map(|i| {
            if i % 7 == 0 {
                processors
            } else {
                rng.random_range(1..=processors.max(2) / 2)
            }
        })
        .collect();
    let mut allocator = Scripted::cycling(processors, script);
    let run = abg_traced_run(factor, rate, quantum_len, pairs, &mut allocator, seed);
    let c_l = traced_transition_factor(&run);
    let trim = bounds::theorem3_trim_steps(run.span, c_l, rate, quantum_len);
    let availabilities: Vec<u32> = run
        .trace
        .iter()
        .map(|r| r.availability.expect("trace recorded availability"))
        .collect();
    let p_trimmed = abg_sim::trimmed_availability(&availabilities, quantum_len, trim.ceil() as u64)
        // With every quantum trimmed the bound is vacuous; availability
        // 1 (the fair minimum) keeps the check meaningful instead.
        .unwrap_or(1.0);
    let bound = bounds::theorem3_time_bound(run.work, run.span, c_l, rate, p_trimmed, quantum_len);
    BoundCheck::le("theorem3-time", run.running_time as f64, bound)
}

/// Validates Theorem 4 in the unconstrained environment: waste must
/// respect `W ≤ C_L(1−r)/(1−C_L·r)·T1 + P·L`. Returns `None` when the
/// measured factor violates `r < 1/C_L` (the bound does not apply).
pub fn theorem4_check(
    factor: u64,
    rate: f64,
    quantum_len: u64,
    pairs: u64,
    processors: u32,
    seed: u64,
) -> Option<BoundCheck> {
    let mut allocator = Scripted::ample(processors);
    let run = abg_traced_run(factor, rate, quantum_len, pairs, &mut allocator, seed);
    let c_l = traced_transition_factor(&run);
    bounds::theorem4_waste_bound(run.work, c_l, rate, processors, quantum_len)
        .map(|bound| BoundCheck::le("theorem4-waste", run.waste as f64, bound))
}

/// Validates Theorem 5 on one batched job set scheduled by ABG + DEQ:
/// makespan and mean response time against their competitive bounds.
/// Returns `None` when `r < 1/C_L` fails for the set's maximum factor.
pub fn theorem5_check(
    load: f64,
    max_factor: u64,
    rate: f64,
    quantum_len: u64,
    pairs: u64,
    processors: u32,
    seed: u64,
) -> Option<Vec<BoundCheck>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = JobSetSpec {
        processors,
        quantum_len,
        load,
        max_factor,
        pairs,
        max_jobs: processors as usize,
        release: ReleaseSchedule::Batched,
    };
    let set = spec.generate(&mut rng);
    let set_len = set.len();
    let releases = set.releases;
    let jobs: Vec<Arc<PhasedJob>> = set.jobs.into_iter().map(Arc::new).collect();

    let mut sim = MultiJobSim::new(DynamicEquiPartition::new(processors), quantum_len);
    let mut max_c_l = 1.0f64;
    for (job, &release) in jobs.iter().zip(&releases) {
        max_c_l = max_c_l.max(job.transition_factor(quantum_len));
        let calc: Box<dyn RequestCalculator + Send> = Box::new(AControl::new(rate));
        sim.add_job(
            Box::new(PipelinedExecutor::new(Arc::clone(job))),
            calc,
            release,
        );
    }
    let out = sim.run();

    let sizes: Vec<JobSize> = jobs
        .iter()
        .zip(&releases)
        .map(|(j, &r)| JobSize {
            work: j.work(),
            span: j.span(),
            release: r,
        })
        .collect();
    let m_star = makespan_lower_bound(&sizes, processors);
    let r_star = response_lower_bound_batched(&sizes, processors);

    let m_bound = bounds::theorem5_makespan_bound(m_star, max_c_l, rate, quantum_len, set_len)?;
    let r_bound = bounds::theorem5_response_bound(r_star, max_c_l, rate, quantum_len, set_len)?;
    Some(vec![
        BoundCheck::le("theorem5-makespan", out.makespan as f64, m_bound),
        BoundCheck::le("theorem5-response", out.mean_response_time(), r_bound),
    ])
}

/// Convenience: run an A-Greedy traced run in the same harness (used by
/// ablation benches comparing envelope violations).
pub fn agreedy_traced_run(
    factor: u64,
    responsiveness: f64,
    utilization: f64,
    quantum_len: u64,
    pairs: u64,
    processors: u32,
    seed: u64,
) -> SingleJobRun {
    let mut rng = StdRng::seed_from_u64(seed);
    let job = paper_job(factor, quantum_len, pairs, &mut rng);
    run_single_job(
        &mut PipelinedExecutor::new(job),
        &mut AGreedy::new(responsiveness, utilization),
        &mut Scripted::ample(processors),
        SingleJobConfig::new(quantum_len).with_trace(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem1_grid_satisfies_all_four_criteria() {
        let rows = theorem1_grid(&[2.0, 16.0, 128.0], &[0.0, 0.2, 0.5], 64);
        assert_eq!(rows.len(), 9);
        for row in rows {
            assert!(row.bibo_stable, "{row:?}");
            assert!((row.pole - row.rate).abs() < 1e-12, "{row:?}");
            assert!(row.steady_state_error < 1e-6, "{row:?}");
            assert!(row.max_overshoot < 1e-9, "{row:?}");
            assert!(row.measured_rate <= row.rate + 1e-9, "{row:?}");
        }
    }

    #[test]
    fn lemma2_holds_on_small_factor() {
        // factor 4 with r = 0.2 < 1/4: both envelopes must exist & hold.
        let checks = lemma2_check(4, 0.2, 32, 3, 128, 7);
        assert_eq!(checks.len(), 2, "upper envelope should apply");
        for c in checks {
            assert!(c.holds, "{c:?}");
        }
    }

    #[test]
    fn lemma2_lower_holds_on_large_factor() {
        // factor 20 with r = 0.2 ≥ 1/20: only the lower envelope applies.
        let checks = lemma2_check(20, 0.2, 32, 3, 128, 7);
        assert_eq!(checks.len(), 1);
        assert!(checks[0].holds, "{:?}", checks[0]);
    }

    #[test]
    fn theorem3_bound_holds_under_adversary() {
        for factor in [2u64, 8] {
            let c = theorem3_check(factor, 0.2, 32, 3, 64, 11);
            assert!(c.holds, "{c:?}");
        }
    }

    #[test]
    fn theorem4_bound_holds_when_applicable() {
        let c = theorem4_check(4, 0.2, 32, 3, 128, 13).expect("0.2 < 1/4");
        assert!(c.holds, "{c:?}");
    }

    #[test]
    fn theorem4_inapplicable_when_rate_too_fast() {
        assert!(theorem4_check(50, 0.2, 32, 3, 128, 13).is_none());
    }

    #[test]
    fn theorem5_bounds_hold_on_batched_set() {
        let checks =
            theorem5_check(1.0, 4, 0.2, 32, 2, 32, 17).expect("factor 4 with r = 0.2 applies");
        assert_eq!(checks.len(), 2);
        for c in checks {
            assert!(c.holds, "{c:?}");
        }
    }
}
