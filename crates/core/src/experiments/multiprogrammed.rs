//! The multiprogrammed load sweep: the paper's Figure 6.
//!
//! Job sets of varying load space-share the machine through dynamic
//! equi-partitioning; both task schedulers run the *same* sets, and the
//! sweep reports makespan and mean response time normalized by their
//! theoretical lower bounds (Figures 6(a)/6(c)) plus per-set
//! A-Greedy/ABG ratios (Figures 6(b)/6(d)).

use super::{parallel_map, task_seed};
use crate::bounds::{makespan_lower_bound, response_lower_bound_batched, JobSize};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, AGreedy, RequestCalculator};
use abg_dag::PhasedJob;
use abg_sched::PipelinedExecutor;
use abg_sim::{MultiJobOutcome, MultiJobSim};
use abg_workload::{JobSetSpec, ReleaseSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which controller drives every job of a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scheduler {
    Abg,
    AGreedy,
}

/// Configuration of the Figure-6 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiprogrammedConfig {
    /// Load values to sweep (x-axis; load = Σ avg parallelism / P).
    pub loads: Vec<f64>,
    /// Job sets generated per load value.
    pub sets_per_load: u32,
    /// Machine size `P` (paper: 128).
    pub processors: u32,
    /// Quantum length `L` in steps (paper: 1000).
    pub quantum_len: u64,
    /// Phase pairs per member job.
    pub pairs: u64,
    /// Largest parallel width in the mixed-factor population.
    pub max_factor: u64,
    /// Release schedule (batched enables the response-time bound).
    pub release: ReleaseSchedule,
    /// ABG convergence rate `r`.
    pub rate: f64,
    /// A-Greedy responsiveness `ρ`.
    pub responsiveness: f64,
    /// A-Greedy utilization threshold `δ`.
    pub utilization: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl MultiprogrammedConfig {
    /// The paper's setting: `P = 128`, `L = 1000`, batched sets,
    /// loads spanning (0, 6], ~5000 sets total.
    pub fn paper() -> Self {
        Self {
            loads: (1..=24).map(|i| i as f64 * 0.25).collect(),
            sets_per_load: 208, // ≈ 5000 sets in total
            processors: 128,
            quantum_len: 1000,
            pairs: 3,
            max_factor: 100,
            release: ReleaseSchedule::Batched,
            rate: 0.2,
            responsiveness: 2.0,
            utilization: 0.8,
            seed: 0xF166,
        }
    }

    /// A scaled-down sweep for tests and benches.
    pub fn scaled() -> Self {
        Self {
            loads: vec![0.5, 1.0, 2.0, 4.0],
            sets_per_load: 4,
            processors: 32,
            quantum_len: 50,
            pairs: 2,
            max_factor: 16,
            release: ReleaseSchedule::Batched,
            rate: 0.2,
            responsiveness: 2.0,
            utilization: 0.8,
            seed: 0xF166,
        }
    }
}

/// One x-axis point of Figure 6 (means over the load's sets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadPoint {
    /// Target load of the generated sets.
    pub load: f64,
    /// Mean achieved load (sanity check on the generator).
    pub measured_load: f64,
    /// Mean number of jobs per set.
    pub mean_jobs: f64,
    /// Mean `M / M*` under ABG (Figure 6(a)).
    pub abg_makespan_norm: f64,
    /// Mean `M / M*` under A-Greedy (Figure 6(a)).
    pub agreedy_makespan_norm: f64,
    /// Mean `R / R*` under ABG (Figure 6(c); batched sets only).
    pub abg_response_norm: f64,
    /// Mean `R / R*` under A-Greedy (Figure 6(c)).
    pub agreedy_response_norm: f64,
    /// Mean per-set makespan ratio A-Greedy / ABG (Figure 6(b)).
    pub makespan_ratio: f64,
    /// Mean per-set response ratio A-Greedy / ABG (Figure 6(d)).
    pub response_ratio: f64,
}

fn run_set(
    cfg: &MultiprogrammedConfig,
    jobs: &[Arc<PhasedJob>],
    releases: &[u64],
    which: Scheduler,
) -> MultiJobOutcome {
    let mut sim = MultiJobSim::new(DynamicEquiPartition::new(cfg.processors), cfg.quantum_len);
    for (job, &release) in jobs.iter().zip(releases) {
        let calculator: Box<dyn RequestCalculator + Send> = match which {
            Scheduler::Abg => Box::new(AControl::new(cfg.rate)),
            Scheduler::AGreedy => Box::new(AGreedy::new(cfg.responsiveness, cfg.utilization)),
        };
        // The executor needs `'static` ownership (it is boxed into the
        // sim), but the job structure itself is shared: both schedulers
        // run against the same `Arc`ed phase lists, no deep clones.
        sim.add_job(
            Box::new(PipelinedExecutor::new(Arc::clone(job))),
            calculator,
            release,
        );
    }
    sim.run()
}

/// The measurements of one set under one scheduler.
#[derive(Debug, Clone, Copy)]
struct SetResult {
    load: f64,
    jobs: f64,
    abg_makespan: f64,
    agreedy_makespan: f64,
    abg_response: f64,
    agreedy_response: f64,
    makespan_star: f64,
    response_star: Option<f64>,
}

fn evaluate_set(cfg: &MultiprogrammedConfig, load: f64, index: u64) -> SetResult {
    let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, index, load.to_bits()));
    let spec = JobSetSpec {
        processors: cfg.processors,
        quantum_len: cfg.quantum_len,
        load,
        max_factor: cfg.max_factor,
        pairs: cfg.pairs,
        max_jobs: cfg.processors as usize,
        release: cfg.release,
    };
    let set = spec.generate(&mut rng);
    let set_load = set.load();
    let set_len = set.len();
    // Move the generated jobs into shared ownership once; the two
    // scheduler runs (and the lower-bound computation) all borrow the
    // same job structures.
    let releases = set.releases;
    let jobs: Vec<Arc<PhasedJob>> = set.jobs.into_iter().map(Arc::new).collect();
    let abg = run_set(cfg, &jobs, &releases, Scheduler::Abg);
    let agreedy = run_set(cfg, &jobs, &releases, Scheduler::AGreedy);

    let sizes: Vec<JobSize> = jobs
        .iter()
        .zip(&releases)
        .map(|(j, &r)| JobSize {
            work: j.work(),
            span: j.span(),
            release: r,
        })
        .collect();
    let makespan_star = makespan_lower_bound(&sizes, cfg.processors);
    let batched = releases.iter().all(|&r| r == 0);
    let response_star = batched.then(|| response_lower_bound_batched(&sizes, cfg.processors));

    SetResult {
        load: set_load,
        jobs: set_len as f64,
        abg_makespan: abg.makespan as f64,
        agreedy_makespan: agreedy.makespan as f64,
        abg_response: abg.mean_response_time(),
        agreedy_response: agreedy.mean_response_time(),
        makespan_star,
        response_star,
    }
}

/// Runs the Figure-6 sweep; one [`LoadPoint`] per configured load.
///
/// # Panics
///
/// Panics if the config has no loads or zero sets per load.
pub fn multiprogrammed_sweep(cfg: &MultiprogrammedConfig) -> Vec<LoadPoint> {
    assert!(!cfg.loads.is_empty(), "sweep needs at least one load");
    assert!(
        cfg.sets_per_load > 0,
        "sweep needs at least one set per load"
    );
    let units: Vec<(f64, u64)> = cfg
        .loads
        .iter()
        .flat_map(|&l| (0..cfg.sets_per_load as u64).map(move |i| (l, i)))
        .collect();
    let results = parallel_map(units, |&(load, index)| {
        (load, evaluate_set(cfg, load, index))
    });

    cfg.loads
        .iter()
        .map(|&load| {
            let rows: Vec<&SetResult> = results
                .iter()
                .filter(|(l, _)| *l == load)
                .map(|(_, r)| r)
                .collect();
            let n = rows.len() as f64;
            let mean = |f: &dyn Fn(&SetResult) -> f64| rows.iter().map(|r| f(r)).sum::<f64>() / n;
            LoadPoint {
                load,
                measured_load: mean(&|r| r.load),
                mean_jobs: mean(&|r| r.jobs),
                abg_makespan_norm: mean(&|r| r.abg_makespan / r.makespan_star),
                agreedy_makespan_norm: mean(&|r| r.agreedy_makespan / r.makespan_star),
                abg_response_norm: mean(&|r| {
                    r.response_star.map_or(f64::NAN, |s| r.abg_response / s)
                }),
                agreedy_response_norm: mean(&|r| {
                    r.response_star.map_or(f64::NAN, |s| r.agreedy_response / s)
                }),
                makespan_ratio: mean(&|r| r.agreedy_makespan / r.abg_makespan),
                response_ratio: mean(&|r| r.agreedy_response / r.abg_response),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_sweep_produces_sane_normalized_metrics() {
        let cfg = MultiprogrammedConfig::scaled();
        let points = multiprogrammed_sweep(&cfg);
        assert_eq!(points.len(), cfg.loads.len());
        for p in &points {
            // Measured metrics can never beat their lower bounds.
            assert!(p.abg_makespan_norm >= 1.0 - 1e-9, "{p:?}");
            assert!(p.agreedy_makespan_norm >= 1.0 - 1e-9, "{p:?}");
            assert!(p.abg_response_norm >= 1.0 - 1e-9, "{p:?}");
            assert!(p.agreedy_response_norm >= 1.0 - 1e-9, "{p:?}");
            assert!(p.mean_jobs >= 1.0);
        }
    }

    #[test]
    fn light_load_favors_abg() {
        let mut cfg = MultiprogrammedConfig::scaled();
        cfg.loads = vec![0.5];
        cfg.sets_per_load = 6;
        let p = &multiprogrammed_sweep(&cfg)[0];
        // Under light load requests are granted and ABG's cleaner
        // feedback should not lose to A-Greedy.
        assert!(
            p.makespan_ratio > 0.97,
            "makespan ratio {} unexpectedly below 1",
            p.makespan_ratio
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let mut cfg = MultiprogrammedConfig::scaled();
        cfg.loads = vec![1.0];
        cfg.sets_per_load = 2;
        assert_eq!(multiprogrammed_sweep(&cfg), multiprogrammed_sweep(&cfg));
    }
}
