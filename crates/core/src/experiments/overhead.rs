//! Reallocation overhead: pricing the instability the paper's
//! introduction warns about.
//!
//! The paper's simulations "ignore the scheduling overheads due to
//! reallocation of processors" while its motivation argues that
//! A-Greedy's fluctuating requests "cause … unnecessary reallocation
//! overheads and loss of localities". This experiment closes that loop:
//! every quantum whose allotment changed burns a configurable number of
//! steps before work resumes. A-Greedy reallocates nearly every quantum
//! (its desire oscillates by design), so its cost grows with the
//! overhead; ABG's requests freeze after convergence, so it pays almost
//! nothing.

use super::{parallel_map, task_seed};
use abg_alloc::Scripted;
use abg_control::{AControl, AGreedy};
use abg_sched::PipelinedExecutor;
use abg_sim::{run_single_job, SingleJobConfig, SingleJobRun};
use abg_workload::paper_job;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the overhead sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadConfig {
    /// Overhead values as fractions of the quantum length (x-axis).
    pub overhead_fractions: Vec<f64>,
    /// Transition factors of the probe jobs.
    pub factors: Vec<u64>,
    /// Jobs per (fraction, factor) cell.
    pub jobs_per_factor: u32,
    /// Machine size.
    pub processors: u32,
    /// Quantum length `L`.
    pub quantum_len: u64,
    /// Phase pairs per job.
    pub pairs: u64,
    /// ABG convergence rate.
    pub rate: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl OverheadConfig {
    /// Moderate default probe: overheads up to 20% of the quantum.
    pub fn default_probe() -> Self {
        Self {
            overhead_fractions: vec![0.0, 0.01, 0.05, 0.1, 0.2],
            factors: vec![8, 24],
            jobs_per_factor: 5,
            processors: 128,
            quantum_len: 200,
            pairs: 3,
            rate: 0.2,
            seed: 0x08EA,
        }
    }
}

/// One x-axis point of the overhead sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Overhead as a fraction of `L`.
    pub overhead_fraction: f64,
    /// Mean `T / T∞` under ABG.
    pub abg_time_norm: f64,
    /// Mean `T / T∞` under A-Greedy.
    pub agreedy_time_norm: f64,
    /// Mean `W / T1` under ABG.
    pub abg_waste_norm: f64,
    /// Mean `W / T1` under A-Greedy.
    pub agreedy_waste_norm: f64,
    /// Mean reallocation events per run under ABG.
    pub abg_reallocations: f64,
    /// Mean reallocation events per run under A-Greedy.
    pub agreedy_reallocations: f64,
}

/// Runs the sweep; one row per overhead fraction.
pub fn overhead_sweep(cfg: &OverheadConfig) -> Vec<OverheadRow> {
    let units: Vec<(usize, u64, u64, bool)> = cfg
        .overhead_fractions
        .iter()
        .enumerate()
        .flat_map(|(oi, _)| {
            cfg.factors.iter().flat_map(move |&f| {
                (0..cfg.jobs_per_factor as u64)
                    .flat_map(move |j| [(oi, f, j, true), (oi, f, j, false)])
            })
        })
        .collect();
    let results = parallel_map(units, |&(oi, factor, index, abg)| {
        let overhead = (cfg.overhead_fractions[oi] * cfg.quantum_len as f64).round() as u64;
        let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, factor, index));
        let job = paper_job(factor, cfg.quantum_len, cfg.pairs, &mut rng);
        let sim = SingleJobConfig::new(cfg.quantum_len).with_reallocation_overhead(overhead);
        let run = if abg {
            run_single_job(
                &mut PipelinedExecutor::new(job),
                &mut AControl::new(cfg.rate),
                &mut Scripted::ample(cfg.processors),
                sim,
            )
        } else {
            run_single_job(
                &mut PipelinedExecutor::new(job),
                &mut AGreedy::paper_default(),
                &mut Scripted::ample(cfg.processors),
                sim,
            )
        };
        (oi, abg, run)
    });

    cfg.overhead_fractions
        .iter()
        .enumerate()
        .map(|(oi, &fraction)| {
            let select = |abg: bool| -> Vec<&SingleJobRun> {
                results
                    .iter()
                    .filter(|(i, a, _)| *i == oi && *a == abg)
                    .map(|(_, _, r)| r)
                    .collect()
            };
            let mean = |runs: &[&SingleJobRun], f: &dyn Fn(&SingleJobRun) -> f64| {
                runs.iter().map(|r| f(r)).sum::<f64>() / runs.len() as f64
            };
            let abg = select(true);
            let agreedy = select(false);
            OverheadRow {
                overhead_fraction: fraction,
                abg_time_norm: mean(&abg, &SingleJobRun::time_over_span),
                agreedy_time_norm: mean(&agreedy, &SingleJobRun::time_over_span),
                abg_waste_norm: mean(&abg, &SingleJobRun::waste_over_work),
                agreedy_waste_norm: mean(&agreedy, &SingleJobRun::waste_over_work),
                abg_reallocations: mean(&abg, &|r| r.reallocations as f64),
                agreedy_reallocations: mean(&agreedy, &|r| r.reallocations as f64),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OverheadConfig {
        OverheadConfig {
            overhead_fractions: vec![0.0, 0.2],
            factors: vec![12],
            jobs_per_factor: 4,
            processors: 64,
            quantum_len: 100,
            pairs: 3,
            rate: 0.2,
            seed: 31,
        }
    }

    #[test]
    fn agreedy_reallocates_far_more() {
        let rows = overhead_sweep(&tiny());
        for r in &rows {
            assert!(
                r.agreedy_reallocations > 1.4 * r.abg_reallocations,
                "A-Greedy's oscillation should dominate the reallocation count: {r:?}"
            );
        }
    }

    #[test]
    fn overhead_widens_the_gap() {
        let rows = overhead_sweep(&tiny());
        let gap = |r: &OverheadRow| r.agreedy_time_norm - r.abg_time_norm;
        assert!(
            gap(&rows[1]) > gap(&rows[0]),
            "pricing reallocations must widen A-Greedy's deficit: {rows:?}"
        );
    }

    #[test]
    fn zero_overhead_matches_baseline_engine() {
        let rows = overhead_sweep(&tiny());
        // With fraction 0 the engine must behave exactly like the plain
        // run; spot-check that normalized time is in the usual band.
        assert!(rows[0].abg_time_norm < 1.5, "{rows:?}");
    }
}
