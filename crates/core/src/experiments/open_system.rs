//! The open-system ρ sweep: ABG vs A-Greedy under sustained Poisson
//! arrivals through DEQ.
//!
//! The paper's Figure-6 sweep is closed (a fixed set runs to drain);
//! this experiment asks the open-system question instead: with jobs
//! arriving indefinitely at offered load ρ, what steady-state mean
//! response time and slowdown does each task scheduler deliver, and
//! where does the system stop being stable? Offered load is pinned by
//! solving the Poisson mean gap from the expected job work,
//! ρ = E\[T₁\] / (gap · P) (see
//! [`abg_workload::mean_gap_for_utilization`]); both schedulers face
//! the *same* arrival sequence and job population at every ρ.

use super::{parallel_map, task_seed};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, AGreedy, GroupPolicy, RequestCalculator};
use abg_dag::ExplicitDag;
use abg_queue::{
    run_open_hierarchical, run_open_sharded, HierOpenConfig, OpenConfig, OpenOutcome,
    SaturationConfig, ShardRouting, ShardedOpenConfig,
};
use abg_sched::{DagExecutor, JobExecutor, OwnedBGreedyExecutor, PipelinedExecutor};
use abg_workload::{
    expected_work, expected_work_of, mean_gap_for_utilization, mixed_factor_job, ArrivalProcess,
    WorkflowKind,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Which controller drives every arriving job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scheduler {
    Abg,
    AGreedy,
}

/// The job population an open-system sweep releases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OpenWorkload {
    /// The paper's mixed-factor fork-join population (unit tasks):
    /// every arrival samples a fresh phase structure with parallel
    /// width uniform in `[2, max_factor]`.
    MixedFactor,
    /// Weighted workflow arrivals: every arrival generates a fresh
    /// instance of the given [`WorkflowKind`] at the given scale, with
    /// stage weights sampled from the run's RNG stream. Executors are
    /// never recycled — the dags are heterogeneous.
    Workflow {
        /// The workflow family to generate.
        kind: WorkflowKind,
        /// Fan-out of the family's widest stage.
        scale: u32,
    },
    /// Trace replay: every arrival executes the *same* dag (typically
    /// loaded from a dag file). The dag is shared by reference and
    /// completed executors are recycled via `try_reset`, so a point
    /// costs no per-arrival dag builds.
    Trace(
        /// The dag every arrival runs.
        Arc<ExplicitDag>,
    ),
}

/// Configuration of the open-system ρ sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenSystemConfig {
    /// Offered utilizations to sweep (values ≥ 1 are expected to be
    /// reported unstable, not simulated to completion).
    pub rhos: Vec<f64>,
    /// Machine size `P`.
    pub processors: u32,
    /// Quantum length `L` in steps.
    pub quantum_len: u64,
    /// Phase pairs per arriving job.
    pub pairs: u64,
    /// Largest parallel width in the mixed-factor job population.
    pub max_factor: u64,
    /// The job population arrivals are drawn from. The presets use
    /// [`OpenWorkload::MixedFactor`], which reproduces the historical
    /// sweep bit-for-bit; workflow and trace workloads route the same
    /// engines over weighted dags.
    pub workload: OpenWorkload,
    /// Arrivals discarded as warmup before measurement.
    pub warmup_jobs: u64,
    /// Arrivals measured per run.
    pub measured_jobs: u64,
    /// Batches for the response-time confidence interval.
    pub batches: u32,
    /// Hard quanta budget per run.
    pub max_quanta: u64,
    /// Monte-Carlo samples for estimating `E[T₁]` of the population.
    pub work_samples: u32,
    /// Saturation-detector tuning.
    pub saturation: SaturationConfig,
    /// Processor groups for the sharded engine. `1` (the presets'
    /// value) runs the unsharded event-driven driver bit-for-bit;
    /// larger counts split the machine into independent per-shard
    /// cores with round-robin arrival routing (see
    /// [`abg_queue::shard`]).
    pub shards: u32,
    /// Processor groups under the hierarchical two-level driver. `1`
    /// (the presets' value) leaves the top level out entirely and the
    /// sweep runs the sharded/unsharded path selected by `shards`;
    /// larger counts route every point through
    /// [`abg_queue::run_open_hierarchical`] with `groups` groups
    /// (ignoring `shards`), reallocated by `group_alloc` every
    /// `realloc_epoch` quanta.
    pub groups: u32,
    /// Top-level reallocation policy (only consulted when
    /// `groups > 1`). [`GroupPolicy::Static`] never resizes anyone and
    /// reproduces the fixed sharded partition bit-for-bit.
    pub group_alloc: GroupPolicy,
    /// Reallocation epoch in quanta (only consulted when `groups > 1`).
    pub realloc_epoch: u64,
    /// Per-group capacity floor the top level must honor (only
    /// consulted when `groups > 1`).
    pub group_floor: u32,
    /// ABG convergence rate `r`.
    pub rate: f64,
    /// A-Greedy responsiveness `ρ`.
    pub responsiveness: f64,
    /// A-Greedy utilization threshold `δ`.
    pub utilization: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl OpenSystemConfig {
    /// Full-scale sweep: ρ from 0.1 to 0.95 plus an intentionally
    /// overloaded point, on a 64-processor machine.
    pub fn paper() -> Self {
        let mut rhos: Vec<f64> = (1..=9).map(|i| i as f64 * 0.1).collect();
        rhos.push(0.95);
        rhos.push(1.2); // must be flagged unstable, not simulated forever
        Self {
            rhos,
            processors: 64,
            quantum_len: 100,
            pairs: 3,
            max_factor: 32,
            workload: OpenWorkload::MixedFactor,
            warmup_jobs: 500,
            measured_jobs: 2000,
            batches: 20,
            max_quanta: 20_000_000,
            work_samples: 4096,
            saturation: SaturationConfig::default(),
            shards: 1,
            groups: 1,
            group_alloc: GroupPolicy::Static,
            realloc_epoch: 50,
            group_floor: 1,
            rate: 0.2,
            responsiveness: 2.0,
            utilization: 0.8,
            seed: 0x09E2,
        }
    }

    /// A scaled-down smoke sweep for tests and CI: four ρ points (one
    /// overloaded) at a size that finishes in well under a second.
    pub fn smoke() -> Self {
        Self {
            rhos: vec![0.2, 0.5, 0.8, 1.2],
            processors: 16,
            quantum_len: 20,
            pairs: 2,
            max_factor: 8,
            workload: OpenWorkload::MixedFactor,
            warmup_jobs: 40,
            measured_jobs: 160,
            batches: 8,
            max_quanta: 500_000,
            work_samples: 512,
            saturation: SaturationConfig::default(),
            shards: 1,
            groups: 1,
            group_alloc: GroupPolicy::Static,
            realloc_epoch: 50,
            group_floor: 1,
            rate: 0.2,
            responsiveness: 2.0,
            utilization: 0.8,
            seed: 0x09E2,
        }
    }

    /// The per-point aggregate open-system configuration (the arrival
    /// gap and seed vary per point but play no part in config
    /// validity, so validation uses placeholders).
    fn open_config(&self, mean_gap: f64, seed: u64) -> OpenConfig {
        OpenConfig {
            processors: self.processors,
            quantum_len: self.quantum_len,
            arrivals: ArrivalProcess::Poisson { mean_gap },
            warmup_jobs: self.warmup_jobs,
            measured_jobs: self.measured_jobs,
            batches: self.batches,
            max_quanta: self.max_quanta,
            saturation: self.saturation,
            seed,
        }
    }

    /// Validates the per-point engine configuration this sweep would
    /// run — the hierarchical [`HierOpenConfig`] when `groups > 1`,
    /// the [`ShardedOpenConfig`] otherwise — so front ends can reject
    /// an inconsistent measurement setup (bad shard/group counts, a
    /// zero reallocation epoch, an ungrantable floor) with a typed
    /// error up front instead of panicking mid-sweep.
    pub fn validate(&self) -> Result<(), abg_queue::ConfigError> {
        if self.groups != 1 {
            return HierOpenConfig {
                open: self.open_config(1.0, self.seed),
                groups: self.groups,
                routing: ShardRouting::RoundRobin,
                realloc_epoch: self.realloc_epoch,
                group_floor: self.group_floor,
            }
            .validate();
        }
        ShardedOpenConfig {
            open: self.open_config(1.0, self.seed),
            shards: self.shards,
            routing: ShardRouting::RoundRobin,
        }
        .validate()
    }
}

/// One scheduler's steady-state measurements at one ρ point. Unstable
/// points report `stable == false` with the statistics fields `NaN`
/// (the diagnostics that exist either way — quanta, arrivals — are
/// always filled in).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerOpenPoint {
    /// Whether the run reached its measurement target.
    pub stable: bool,
    /// Mean response time in steps (`NaN` when unstable).
    pub mean_response: f64,
    /// ~95% batch-means half-width of the mean (`NaN` when unstable).
    pub response_half_width: f64,
    /// Median slowdown (`NaN` when unstable).
    pub slowdown_p50: f64,
    /// 95th-percentile slowdown (`NaN` when unstable).
    pub slowdown_p95: f64,
    /// 99th-percentile slowdown (`NaN` when unstable).
    pub slowdown_p99: f64,
    /// Time-average in-system job count (`NaN` when unstable).
    pub mean_jobs_in_system: f64,
    /// Served utilization: completed work over `P · horizon` (`NaN`
    /// when unstable).
    pub measured_utilization: f64,
    /// Quanta the run executed (before aborting, when unstable).
    pub quanta: u64,
    /// Arrivals admitted.
    pub arrivals: u64,
}

impl SchedulerOpenPoint {
    fn from_outcome(outcome: &OpenOutcome) -> Self {
        match outcome {
            OpenOutcome::Steady(s) => Self {
                stable: true,
                mean_response: s.response.mean,
                response_half_width: s.response.half_width,
                slowdown_p50: s.slowdown.p50,
                slowdown_p95: s.slowdown.p95,
                slowdown_p99: s.slowdown.p99,
                mean_jobs_in_system: s.mean_jobs_in_system,
                measured_utilization: s.measured_utilization,
                quanta: s.quanta,
                arrivals: s.arrivals,
            },
            OpenOutcome::Unstable(u) => Self {
                stable: false,
                mean_response: f64::NAN,
                response_half_width: f64::NAN,
                slowdown_p50: f64::NAN,
                slowdown_p95: f64::NAN,
                slowdown_p99: f64::NAN,
                mean_jobs_in_system: f64::NAN,
                measured_utilization: f64::NAN,
                quanta: u.quanta,
                arrivals: u.arrivals,
            },
        }
    }
}

/// One ρ point of the sweep: both schedulers against the same arrival
/// sequence and job population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenSystemRow {
    /// Offered utilization.
    pub rho: f64,
    /// Poisson mean inter-arrival gap solved for this ρ.
    pub mean_gap: f64,
    /// Estimated `E[T₁]` of the job population (steps).
    pub expected_work: f64,
    /// ABG's measurements.
    pub abg: SchedulerOpenPoint,
    /// A-Greedy's measurements.
    pub agreedy: SchedulerOpenPoint,
}

fn run_point(cfg: &OpenSystemConfig, mean_gap: f64, index: u64, which: Scheduler) -> OpenOutcome {
    let (max_factor, quantum_len, pairs) = (cfg.max_factor, cfg.quantum_len, cfg.pairs);
    match &cfg.workload {
        // Jobs here are heterogeneous (each arrival samples a fresh
        // phase structure), so recycled executors are dropped rather
        // than reset — the sweep fingerprints stay pinned to the
        // fresh-build behaviour.
        OpenWorkload::MixedFactor => run_point_with(
            cfg,
            mean_gap,
            index,
            which,
            move |rng: &mut StdRng,
                  _recycled: Option<Box<dyn JobExecutor + Send>>|
                  -> Box<dyn JobExecutor + Send> {
                Box::new(PipelinedExecutor::new(mixed_factor_job(
                    max_factor,
                    quantum_len,
                    pairs,
                    rng,
                )))
            },
        ),
        // Workflow dags are heterogeneous too (fresh structure and
        // weights per arrival), so recycling is likewise declined.
        OpenWorkload::Workflow { kind, scale } => {
            let (kind, scale) = (*kind, *scale);
            run_point_with(
                cfg,
                mean_gap,
                index,
                which,
                move |rng: &mut StdRng,
                      _recycled: Option<Box<dyn JobExecutor + Send>>|
                      -> Box<dyn JobExecutor + Send> {
                    Box::new(OwnedBGreedyExecutor::new(kind.generate(scale, rng)))
                },
            )
        }
        // Trace replay: one shared dag, so a completed executor rewinds
        // in place instead of rebuilding its frontier state.
        OpenWorkload::Trace(dag) => {
            let dag = Arc::clone(dag);
            run_point_with(
                cfg,
                mean_gap,
                index,
                which,
                move |_rng: &mut StdRng,
                      recycled: Option<Box<dyn JobExecutor + Send>>|
                      -> Box<dyn JobExecutor + Send> {
                    if let Some(mut ex) = recycled {
                        if ex.try_reset() {
                            return ex;
                        }
                    }
                    Box::new(DagExecutor::<_, abg_sched::BreadthFirstQueue>::new(
                        Arc::clone(&dag),
                    ))
                },
            )
        }
    }
}

/// Runs one (ρ, scheduler) point through whichever engine the config
/// selects, with `make_executor` supplying an executor per arrival.
fn run_point_with<E>(
    cfg: &OpenSystemConfig,
    mean_gap: f64,
    index: u64,
    which: Scheduler,
    make_executor: E,
) -> OpenOutcome
where
    E: Fn(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send> + Sync,
{
    // Per-ρ seed shared by BOTH schedulers: identical rng, identical
    // arrival times, identical job structures — a paired comparison.
    let open = cfg.open_config(mean_gap, task_seed(cfg.seed, index, 1));
    // The engine pools honor `ABG_THREADS` like the sweep's own
    // `parallel_map`; the outcome is thread-count invariant either way.
    // `groups > 1` routes through the hierarchical two-level driver
    // (with `shards` ignored: the groups ARE the partition); otherwise
    // the sharded engine runs, and `shards = 1` delegates straight to
    // `run_open_system`.
    if cfg.groups > 1 {
        let hier = HierOpenConfig {
            open,
            groups: cfg.groups,
            routing: ShardRouting::RoundRobin,
            realloc_epoch: cfg.realloc_epoch,
            group_floor: cfg.group_floor,
        };
        return match which {
            Scheduler::Abg => {
                let rate = cfg.rate;
                run_open_hierarchical(
                    &hier,
                    DynamicEquiPartition::new,
                    make_executor,
                    move || -> Box<dyn RequestCalculator + Send> { Box::new(AControl::new(rate)) },
                    cfg.group_alloc.build(),
                )
            }
            Scheduler::AGreedy => {
                let (rho, delta) = (cfg.responsiveness, cfg.utilization);
                run_open_hierarchical(
                    &hier,
                    DynamicEquiPartition::new,
                    make_executor,
                    move || -> Box<dyn RequestCalculator + Send> {
                        Box::new(AGreedy::new(rho, delta))
                    },
                    cfg.group_alloc.build(),
                )
            }
        };
    }
    let sharded = ShardedOpenConfig {
        open,
        shards: cfg.shards,
        routing: ShardRouting::RoundRobin,
    };
    match which {
        Scheduler::Abg => {
            let rate = cfg.rate;
            run_open_sharded(
                &sharded,
                DynamicEquiPartition::new,
                make_executor,
                move || -> Box<dyn RequestCalculator + Send> { Box::new(AControl::new(rate)) },
            )
        }
        Scheduler::AGreedy => {
            let (rho, delta) = (cfg.responsiveness, cfg.utilization);
            run_open_sharded(
                &sharded,
                DynamicEquiPartition::new,
                make_executor,
                move || -> Box<dyn RequestCalculator + Send> { Box::new(AGreedy::new(rho, delta)) },
            )
        }
    }
}

/// Estimates `E[T₁]` of the configured job population — Monte-Carlo
/// sampling for the generative workloads (deterministic in the config
/// seed), exact for trace replay (every arrival is the same dag).
pub fn population_expected_work(cfg: &OpenSystemConfig) -> f64 {
    let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, u64::MAX, 0));
    match &cfg.workload {
        OpenWorkload::MixedFactor => expected_work(cfg.work_samples, &mut rng, |rng| {
            mixed_factor_job(cfg.max_factor, cfg.quantum_len, cfg.pairs, rng)
        }),
        OpenWorkload::Workflow { kind, scale } => {
            expected_work_of(cfg.work_samples, &mut rng, |rng| {
                kind.generate(*scale, rng).work() as f64
            })
        }
        OpenWorkload::Trace(dag) => dag.work() as f64,
    }
}

/// Runs the open-system sweep; one [`OpenSystemRow`] per configured ρ.
///
/// # Panics
///
/// Panics if the config has no ρ values or an inconsistent measurement
/// setup (see [`OpenConfig`]).
pub fn open_system_sweep(cfg: &OpenSystemConfig) -> Vec<OpenSystemRow> {
    assert!(!cfg.rhos.is_empty(), "sweep needs at least one rho");
    let work = population_expected_work(cfg);
    let units: Vec<(u64, Scheduler)> = (0..cfg.rhos.len() as u64)
        .flat_map(|i| [(i, Scheduler::Abg), (i, Scheduler::AGreedy)])
        .collect();
    let outcomes = parallel_map(units, |&(index, which)| {
        let rho = cfg.rhos[index as usize];
        let gap = mean_gap_for_utilization(rho, cfg.processors, work);
        SchedulerOpenPoint::from_outcome(&run_point(cfg, gap, index, which))
    });
    cfg.rhos
        .iter()
        .enumerate()
        .map(|(i, &rho)| OpenSystemRow {
            rho,
            mean_gap: mean_gap_for_utilization(rho, cfg.processors, work),
            expected_work: work,
            abg: outcomes[2 * i],
            agreedy: outcomes[2 * i + 1],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_stable_below_one_and_unstable_above() {
        let cfg = OpenSystemConfig::smoke();
        let rows = open_system_sweep(&cfg);
        assert_eq!(rows.len(), cfg.rhos.len());
        for row in &rows {
            if row.rho < 0.9 {
                assert!(row.abg.stable, "ABG unstable at rho={}", row.rho);
                assert!(row.agreedy.stable, "A-Greedy unstable at rho={}", row.rho);
                assert!(row.abg.mean_response.is_finite());
                assert!(row.agreedy.mean_response.is_finite());
                assert!(row.abg.slowdown_p50 >= 1.0);
            }
            if row.rho >= 1.0 {
                assert!(!row.abg.stable, "ABG steady at rho={}", row.rho);
                assert!(!row.agreedy.stable, "A-Greedy steady at rho={}", row.rho);
                assert!(row.abg.mean_response.is_nan());
            }
            assert!(row.mean_gap > 0.0 && row.expected_work > 0.0);
        }
    }

    #[test]
    fn response_time_grows_with_offered_load() {
        let mut cfg = OpenSystemConfig::smoke();
        cfg.rhos = vec![0.2, 0.8];
        let rows = open_system_sweep(&cfg);
        assert!(rows[1].abg.mean_response >= rows[0].abg.mean_response);
        assert!(rows[1].abg.mean_jobs_in_system > rows[0].abg.mean_jobs_in_system);
    }

    #[test]
    fn sweep_is_deterministic() {
        // Bit-level comparison through the fingerprint: unstable rows
        // hold NaN statistics, so `==` on the rows themselves would
        // always fail (NaN != NaN) — the fingerprint folds exact bit
        // patterns instead.
        let mut cfg = OpenSystemConfig::smoke();
        cfg.rhos = vec![0.3, 1.2];
        cfg.measured_jobs = 80;
        cfg.batches = 8;
        let a = crate::experiments::open_fingerprint(&open_system_sweep(&cfg));
        let b = crate::experiments::open_fingerprint(&open_system_sweep(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn sharded_sweep_is_steady_and_deterministic() {
        // The sharded engine behind the same sweep front end: stable
        // below saturation, flagged unstable above it, and bit-level
        // reproducible across repeat runs. (The overload point sits at
        // ρ = 2 here: decimated smoke-scale shards see a quarter of the
        // arrivals each, so the queue-growth trend needs a steeper ramp
        // than the aggregate smoke sweep's 1.2 to trip before the tiny
        // measurement target drains.)
        let mut cfg = OpenSystemConfig::smoke();
        cfg.shards = 4;
        cfg.rhos = vec![0.4, 2.0];
        let rows = open_system_sweep(&cfg);
        assert!(rows[0].abg.stable && rows[0].agreedy.stable);
        assert!(rows[0].abg.slowdown_p50 >= 1.0);
        assert!(!rows[1].abg.stable && !rows[1].agreedy.stable);
        let a = crate::experiments::open_fingerprint(&rows);
        let b = crate::experiments::open_fingerprint(&open_system_sweep(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn hierarchical_static_sweep_matches_the_sharded_sweep() {
        // The compatibility anchor at the sweep level: groups = 4 with
        // the never-resizing static policy must reproduce shards = 4
        // bit-for-bit — same routing, same per-group loops, no resize.
        let mut sharded = OpenSystemConfig::smoke();
        sharded.shards = 4;
        sharded.rhos = vec![0.4, 2.0];
        let mut hier = sharded.clone();
        hier.shards = 1;
        hier.groups = 4;
        hier.group_alloc = GroupPolicy::Static;
        let a = crate::experiments::open_fingerprint(&open_system_sweep(&sharded));
        let b = crate::experiments::open_fingerprint(&open_system_sweep(&hier));
        assert_eq!(a, b);
    }

    #[test]
    fn hierarchical_desire_sweep_is_steady_and_deterministic() {
        let mut cfg = OpenSystemConfig::smoke();
        cfg.groups = 4;
        cfg.group_alloc = GroupPolicy::Desire;
        cfg.realloc_epoch = 25;
        cfg.rhos = vec![0.4, 2.0];
        let rows = open_system_sweep(&cfg);
        assert!(rows[0].abg.stable && rows[0].agreedy.stable);
        assert!(rows[0].abg.slowdown_p50 >= 1.0);
        assert!(!rows[1].abg.stable && !rows[1].agreedy.stable);
        let a = crate::experiments::open_fingerprint(&rows);
        let b = crate::experiments::open_fingerprint(&open_system_sweep(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn workflow_sweep_is_steady_and_deterministic() {
        let mut cfg = OpenSystemConfig::smoke();
        cfg.workload = OpenWorkload::Workflow {
            kind: WorkflowKind::MapReduce,
            scale: 4,
        };
        cfg.rhos = vec![0.4, 2.0];
        let rows = open_system_sweep(&cfg);
        assert!(rows[0].abg.stable && rows[0].agreedy.stable);
        assert!(rows[0].abg.slowdown_p50 >= 1.0);
        assert!(!rows[1].abg.stable && !rows[1].agreedy.stable);
        let a = crate::experiments::open_fingerprint(&rows);
        let b = crate::experiments::open_fingerprint(&open_system_sweep(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn every_workflow_kind_drives_the_open_system() {
        for kind in WorkflowKind::ALL {
            let mut cfg = OpenSystemConfig::smoke();
            cfg.workload = OpenWorkload::Workflow { kind, scale: 3 };
            cfg.rhos = vec![0.4];
            cfg.warmup_jobs = 10;
            cfg.measured_jobs = 40;
            cfg.batches = 4;
            let rows = open_system_sweep(&cfg);
            assert!(rows[0].abg.stable, "{kind} unstable under ABG");
            assert!(rows[0].agreedy.stable, "{kind} unstable under A-Greedy");
            assert!(rows[0].expected_work > 0.0);
        }
    }

    #[test]
    fn workflow_sweep_runs_the_hierarchical_driver_too() {
        let mut cfg = OpenSystemConfig::smoke();
        cfg.workload = OpenWorkload::Workflow {
            kind: WorkflowKind::Epigenomics,
            scale: 3,
        };
        cfg.groups = 4;
        cfg.group_alloc = GroupPolicy::Desire;
        cfg.realloc_epoch = 25;
        cfg.rhos = vec![0.4];
        cfg.warmup_jobs = 10;
        cfg.measured_jobs = 40;
        cfg.batches = 4;
        let rows = open_system_sweep(&cfg);
        assert!(rows[0].abg.stable && rows[0].agreedy.stable);
        let a = crate::experiments::open_fingerprint(&rows);
        let b = crate::experiments::open_fingerprint(&open_system_sweep(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn trace_workload_replays_one_dag_exactly() {
        let mut rng = StdRng::seed_from_u64(77);
        let dag = WorkflowKind::Montage.generate(4, &mut rng);
        let work = dag.work() as f64;
        let mut cfg = OpenSystemConfig::smoke();
        cfg.workload = OpenWorkload::Trace(Arc::new(dag));
        cfg.rhos = vec![0.4];
        cfg.warmup_jobs = 10;
        cfg.measured_jobs = 60;
        cfg.batches = 4;
        assert_eq!(
            population_expected_work(&cfg),
            work,
            "trace E[T1] is exact, not sampled"
        );
        let rows = open_system_sweep(&cfg);
        assert!(rows[0].abg.stable && rows[0].agreedy.stable);
        assert!(rows[0].abg.slowdown_p50 >= 1.0);
        let a = crate::experiments::open_fingerprint(&rows);
        let b = crate::experiments::open_fingerprint(&open_system_sweep(&cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_factor_presets_are_the_historical_workload() {
        assert_eq!(
            OpenSystemConfig::smoke().workload,
            OpenWorkload::MixedFactor
        );
        assert_eq!(
            OpenSystemConfig::paper().workload,
            OpenWorkload::MixedFactor
        );
    }

    #[test]
    fn validate_rejects_bad_group_configs() {
        let mut cfg = OpenSystemConfig::smoke();
        cfg.groups = 0;
        assert_eq!(cfg.validate(), Err(abg_queue::ConfigError::ZeroGroups));
        cfg.groups = 4;
        cfg.realloc_epoch = 0;
        assert_eq!(cfg.validate(), Err(abg_queue::ConfigError::BadReallocEpoch));
        cfg.realloc_epoch = 50;
        cfg.group_floor = cfg.processors;
        assert!(matches!(
            cfg.validate(),
            Err(abg_queue::ConfigError::BadGroupFloor { .. })
        ));
        cfg.group_floor = 1;
        assert_eq!(cfg.validate(), Ok(()));
        // With the top level out (groups = 1) the group knobs are
        // inert and the shard path is validated instead.
        cfg.groups = 1;
        cfg.group_floor = 0;
        assert_eq!(cfg.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_shard_counts() {
        let mut cfg = OpenSystemConfig::smoke();
        cfg.shards = 0;
        assert_eq!(cfg.validate(), Err(abg_queue::ConfigError::NoShards));
        cfg.shards = cfg.processors + 1;
        assert!(matches!(
            cfg.validate(),
            Err(abg_queue::ConfigError::TooManyShards { .. })
        ));
    }

    #[test]
    fn schedulers_face_the_same_offered_load() {
        let mut cfg = OpenSystemConfig::smoke();
        cfg.rhos = vec![0.4];
        let row = &open_system_sweep(&cfg)[0];
        // Paired runs: identical seed → identical arrival count.
        assert_eq!(row.abg.arrivals, row.agreedy.arrivals);
    }
}
