//! Experiment harness: one function per figure/analysis of the paper's
//! evaluation, shared by the CLI, the benches and the integration tests.
//!
//! Every experiment takes an explicit config with a deterministic seed
//! and returns plain data rows, so the same code regenerates the paper's
//! figures at paper scale (`*Config::paper()`) or at a scaled-down size
//! suitable for tests and Criterion benches (`*Config::scaled()`).

pub mod ablation;
pub mod adaptive_quantum;
pub mod allocator_policies;
pub mod kernels;
pub mod multiprogrammed;
pub mod overhead;
pub mod robustness;
pub mod single_job;
pub mod stealing;
pub mod theory;
pub mod transient;

pub use ablation::{
    agreedy_ablation, governed_rate_quality, quantum_ablation, rate_ablation, scheduler_ablation,
    semantics_ablation, AblationConfig, QualityPoint,
};
pub use adaptive_quantum::{
    adaptive_quantum_comparison, AdaptiveQuantumConfig, AdaptiveQuantumRow,
};
pub use allocator_policies::{
    allocator_policy_comparison, AllocatorPolicyConfig, AllocatorPolicyRow,
};
pub use kernels::{kernel_speedup, run_kernel_suite, KernelBenchConfig, KernelResult};
pub use multiprogrammed::{multiprogrammed_sweep, LoadPoint, MultiprogrammedConfig};
pub use overhead::{overhead_sweep, OverheadConfig, OverheadRow};
pub use robustness::{robustness_comparison, RobustnessConfig, RobustnessRow};
pub use single_job::{single_job_sweep, SingleJobSweepConfig, SweepPoint};
pub use stealing::{stealing_comparison, StealRow, StealingConfig};
pub use theory::{
    lemma2_check, theorem1_grid, theorem3_check, theorem4_check, theorem5_check, BoundCheck,
    Theorem1Row,
};
pub use transient::{transient_comparison, TrajectoryPoint, TransientConfig, TransientResult};

use std::sync::Mutex;

/// Derives a per-task RNG seed from an experiment seed and task indices,
/// so runs are reproducible and independent of the parallel schedule.
pub(crate) fn task_seed(seed: u64, a: u64, b: u64) -> u64 {
    // SplitMix64-style mixing of (seed, a, b).
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-preserving parallel map over work items using scoped threads.
///
/// Each item is independent; results come back in input order. Used by
/// the sweep experiments to spread (factor, job) work units across
/// cores.
pub(crate) fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Mutex<std::vec::IntoIter<T>> = Mutex::new(items.into_iter());
    let indexed: Mutex<Vec<(usize, U)>> = Mutex::new(Vec::with_capacity(n));
    let counter = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let item = {
                    let mut it = work.lock().expect("worker panicked holding queue");
                    let idx = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    match it.next() {
                        Some(x) => (idx, x),
                        None => return,
                    }
                };
                let out = f(item.1);
                indexed
                    .lock()
                    .expect("worker panicked holding results")
                    .push((item.0, out));
            });
        }
    });
    let mut results = indexed.into_inner().expect("scope joined all workers");
    results.sort_by_key(|(i, _)| *i);
    results.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..1000).collect::<Vec<i64>>(), |x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn task_seed_is_deterministic_and_spread() {
        assert_eq!(task_seed(1, 2, 3), task_seed(1, 2, 3));
        assert_ne!(task_seed(1, 2, 3), task_seed(1, 3, 2));
        assert_ne!(task_seed(1, 2, 3), task_seed(2, 2, 3));
    }
}
