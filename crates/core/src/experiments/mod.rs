//! Experiment harness: one function per figure/analysis of the paper's
//! evaluation, shared by the CLI, the benches and the integration tests.
//!
//! Every experiment takes an explicit config with a deterministic seed
//! and returns plain data rows, so the same code regenerates the paper's
//! figures at paper scale (`*Config::paper()`) or at a scaled-down size
//! suitable for tests and Criterion benches (`*Config::scaled()`).

pub mod ablation;
pub mod adaptive_quantum;
pub mod allocator_policies;
pub mod fingerprint;
pub mod hierarchical;
pub mod kernels;
pub mod multiprogrammed;
pub mod open_system;
pub mod overhead;
pub mod robustness;
pub mod single_job;
pub mod stealing;
pub mod theory;
pub mod transient;

pub use ablation::{
    agreedy_ablation, governed_rate_quality, quantum_ablation, rate_ablation, scheduler_ablation,
    semantics_ablation, AblationConfig, QualityPoint,
};
pub use adaptive_quantum::{
    adaptive_quantum_comparison, AdaptiveQuantumConfig, AdaptiveQuantumRow,
};
pub use allocator_policies::{
    allocator_policy_comparison, AllocatorPolicyConfig, AllocatorPolicyRow,
};
pub use fingerprint::{load_fingerprint, open_fingerprint, sweep_fingerprint, Fingerprint};
pub use hierarchical::{hierarchical_skew_sweep, HierarchicalConfig, HierarchicalRow, PolicyPoint};
pub use kernels::{kernel_speedup, run_kernel_suite, KernelBenchConfig, KernelResult};
pub use multiprogrammed::{multiprogrammed_sweep, LoadPoint, MultiprogrammedConfig};
pub use open_system::{
    open_system_sweep, population_expected_work, OpenSystemConfig, OpenSystemRow, OpenWorkload,
    SchedulerOpenPoint,
};
pub use overhead::{overhead_sweep, OverheadConfig, OverheadRow};
pub use robustness::{robustness_comparison, RobustnessConfig, RobustnessRow};
pub use single_job::{
    single_job_sweep, single_job_sweep_with_steps, SingleJobSweepConfig, SweepPoint,
};
pub use stealing::{stealing_comparison, StealRow, StealingConfig};
pub use theory::{
    lemma2_check, theorem1_grid, theorem3_check, theorem4_check, theorem5_check, BoundCheck,
    Theorem1Row,
};
pub use transient::{transient_comparison, TrajectoryPoint, TransientConfig, TransientResult};

/// Derives a per-task RNG seed from an experiment seed and task indices,
/// so runs are reproducible and independent of the parallel schedule.
pub(crate) fn task_seed(seed: u64, a: u64, b: u64) -> u64 {
    // SplitMix64-style mixing of (seed, a, b).
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(b.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Worker count used by the sweep harness's `parallel_map`: the `ABG_THREADS` environment
/// variable when set to a positive integer, the machine's available
/// parallelism otherwise. Results never depend on this — only wall-clock
/// does — so pinning it (CI does, and `abg-cli --threads N` does per
/// invocation) is purely about reproducible timing.
pub fn configured_threads() -> usize {
    if let Ok(s) = std::env::var("ABG_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over work items using scoped threads.
///
/// Each item is independent; results come back in input order. Used by
/// the sweep experiments to spread (factor, job) work units across
/// cores. Honors the `ABG_THREADS` override (see [`configured_threads`]).
///
/// Work distribution is contention-free sharding: workers claim
/// contiguous index ranges by bumping a single atomic cursor and collect
/// each range's results into their own pre-sized chunk buffer, which is
/// handed back through the join handle. No mutex is taken anywhere — the
/// old design serialized every item on a shared work-queue lock and
/// every result on a shared output lock, which flattened scaling once
/// per-item work got small.
pub(crate) fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    parallel_map_with_threads(items, f, configured_threads())
}

/// [`parallel_map`] with an explicit worker count (tests drive this
/// directly to check determinism across thread counts without racing on
/// the process environment).
pub(crate) fn parallel_map_with_threads<T, U, F>(items: Vec<T>, f: F, threads: usize) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return items.iter().map(&f).collect();
    }
    // A handful of chunks per worker: big enough that cursor bumps are
    // rare, small enough that a slow chunk cannot strand the tail on one
    // worker. Any chunking yields identical results — output order is
    // index order by construction.
    let chunk = (n / (threads * 8)).max(1);
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let items = &items[..];
    let f = &f;
    let mut chunks: Vec<(usize, Vec<U>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(usize, Vec<U>)> = Vec::new();
                    loop {
                        let start = cursor.fetch_add(chunk, std::sync::atomic::Ordering::Relaxed);
                        if start >= n {
                            return mine;
                        }
                        let end = (start + chunk).min(n);
                        let mut out = Vec::with_capacity(end - start);
                        out.extend(items[start..end].iter().map(f));
                        mine.push((start, out));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel_map worker panicked"))
            .collect()
    });
    chunks.sort_unstable_by_key(|(start, _)| *start);
    let mut out = Vec::with_capacity(n);
    for (_, c) in chunks {
        out.extend(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..1000).collect::<Vec<i64>>(), |x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |&x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_map_deterministic_across_thread_counts() {
        let items: Vec<u64> = (0..317).collect();
        let expect: Vec<u64> = items.iter().map(|x| task_seed(7, *x, x * 3)).collect();
        for threads in 1..=8 {
            let got =
                parallel_map_with_threads(items.clone(), |&x| task_seed(7, x, x * 3), threads);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_handles_items_fewer_than_threads() {
        let got = parallel_map_with_threads(vec![1u32, 2, 3], |&x| x + 1, 64);
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn abg_threads_env_overrides_worker_count() {
        // Other tests may run parallel_map concurrently; that is safe
        // because results are thread-count independent by construction.
        std::env::set_var("ABG_THREADS", "3");
        assert_eq!(configured_threads(), 3);
        let out = parallel_map((0..100).collect::<Vec<i64>>(), |&x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<i64>>());
        std::env::set_var("ABG_THREADS", "not-a-number");
        assert!(configured_threads() >= 1);
        std::env::remove_var("ABG_THREADS");
    }

    #[test]
    fn task_seed_is_deterministic_and_spread() {
        assert_eq!(task_seed(1, 2, 3), task_seed(1, 2, 3));
        assert_ne!(task_seed(1, 2, 3), task_seed(1, 3, 2));
        assert_ne!(task_seed(1, 2, 3), task_seed(2, 2, 3));
    }
}
