//! OS-allocator policy comparison: the same ABG-scheduled job sets
//! under dynamic equi-partitioning, round-robin and proportional
//! share.
//!
//! Theorem 5's guarantees require the allocator to be fair **and**
//! non-reserving; DEQ is both. Round-robin is fair but reserving (slack
//! from small requesters is not redistributed), and proportional share
//! is non-reserving but unfair (big requesters crowd out small ones).
//! This experiment quantifies what each missing property costs at the
//! system level.

use super::{parallel_map, task_seed};
use crate::bounds::{makespan_lower_bound, response_lower_bound_batched, JobSize};
use abg_alloc::{Allocator, DynamicEquiPartition, Proportional, RoundRobin};
use abg_control::{AControl, RequestCalculator};
use abg_dag::PhasedJob;
use abg_sched::PipelinedExecutor;
use abg_sim::MultiJobSim;
use abg_workload::{JobSetSpec, ReleaseSchedule};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the allocator comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocatorPolicyConfig {
    /// Loads of the probe job sets.
    pub loads: Vec<f64>,
    /// Sets per load.
    pub sets_per_load: u32,
    /// Machine size.
    pub processors: u32,
    /// Quantum length.
    pub quantum_len: u64,
    /// Largest parallel width of member jobs.
    pub max_factor: u64,
    /// Phase pairs per member job.
    pub pairs: u64,
    /// ABG convergence rate.
    pub rate: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl AllocatorPolicyConfig {
    /// Moderate default probe.
    pub fn default_probe() -> Self {
        Self {
            loads: vec![0.5, 1.0, 2.0],
            sets_per_load: 6,
            processors: 64,
            quantum_len: 100,
            max_factor: 32,
            pairs: 2,
            rate: 0.2,
            seed: 0xA110C,
        }
    }
}

/// One (policy, load) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AllocatorPolicyRow {
    /// Allocator name.
    pub policy: String,
    /// Target load of the sets.
    pub load: f64,
    /// Mean `M / M*`.
    pub makespan_norm: f64,
    /// Mean `R / R*`.
    pub response_norm: f64,
    /// Mean total waste normalized by total work.
    pub waste_norm: f64,
}

fn run_with<A: Allocator>(
    jobs: &[Arc<PhasedJob>],
    releases: &[u64],
    processors: u32,
    allocator: A,
    quantum_len: u64,
    rate: f64,
) -> (f64, f64, f64) {
    let mut sim = MultiJobSim::new(allocator, quantum_len);
    for (job, &release) in jobs.iter().zip(releases) {
        let calc: Box<dyn RequestCalculator + Send> = Box::new(AControl::new(rate));
        // All three policies execute the same Arc-shared job structures.
        sim.add_job(
            Box::new(PipelinedExecutor::new(Arc::clone(job))),
            calc,
            release,
        );
    }
    let out = sim.run();
    let sizes: Vec<JobSize> = jobs
        .iter()
        .zip(releases)
        .map(|(j, &r)| JobSize {
            work: j.work(),
            span: j.span(),
            release: r,
        })
        .collect();
    let m_star = makespan_lower_bound(&sizes, processors);
    let r_star = response_lower_bound_batched(&sizes, processors);
    (
        out.makespan as f64 / m_star,
        out.mean_response_time() / r_star,
        out.total_waste as f64 / out.total_work() as f64,
    )
}

/// Runs the comparison; rows are ordered policy-major, load-minor.
pub fn allocator_policy_comparison(cfg: &AllocatorPolicyConfig) -> Vec<AllocatorPolicyRow> {
    let units: Vec<(f64, u64)> = cfg
        .loads
        .iter()
        .flat_map(|&l| (0..cfg.sets_per_load as u64).map(move |i| (l, i)))
        .collect();
    // (load, [deq, rr, prop] triples)
    let results = parallel_map(units, |&(load, index)| {
        let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, index, load.to_bits()));
        let spec = JobSetSpec {
            processors: cfg.processors,
            quantum_len: cfg.quantum_len,
            load,
            max_factor: cfg.max_factor,
            pairs: cfg.pairs,
            max_jobs: cfg.processors as usize,
            release: ReleaseSchedule::Batched,
        };
        let set = spec.generate(&mut rng);
        let releases = set.releases;
        let jobs: Vec<Arc<PhasedJob>> = set.jobs.into_iter().map(Arc::new).collect();
        let deq = run_with(
            &jobs,
            &releases,
            cfg.processors,
            DynamicEquiPartition::new(cfg.processors),
            cfg.quantum_len,
            cfg.rate,
        );
        let rr = run_with(
            &jobs,
            &releases,
            cfg.processors,
            RoundRobin::new(cfg.processors),
            cfg.quantum_len,
            cfg.rate,
        );
        let prop = run_with(
            &jobs,
            &releases,
            cfg.processors,
            Proportional::new(cfg.processors),
            cfg.quantum_len,
            cfg.rate,
        );
        (load, [deq, rr, prop])
    });

    let names = ["deq", "round-robin", "proportional"];
    let mut rows = Vec::new();
    for (pi, name) in names.iter().enumerate() {
        for &load in &cfg.loads {
            let cells: Vec<&(f64, f64, f64)> = results
                .iter()
                .filter(|(l, _)| *l == load)
                .map(|(_, triple)| &triple[pi])
                .collect();
            let n = cells.len() as f64;
            rows.push(AllocatorPolicyRow {
                policy: name.to_string(),
                load,
                makespan_norm: cells.iter().map(|c| c.0).sum::<f64>() / n,
                response_norm: cells.iter().map(|c| c.1).sum::<f64>() / n,
                waste_norm: cells.iter().map(|c| c.2).sum::<f64>() / n,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AllocatorPolicyConfig {
        AllocatorPolicyConfig {
            loads: vec![0.5, 2.0],
            sets_per_load: 3,
            processors: 32,
            quantum_len: 50,
            max_factor: 16,
            pairs: 2,
            rate: 0.2,
            seed: 77,
        }
    }

    #[test]
    fn three_policies_times_loads() {
        let rows = allocator_policy_comparison(&tiny());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.makespan_norm >= 1.0 - 1e-9, "{r:?}");
            assert!(r.response_norm >= 1.0 - 1e-9, "{r:?}");
        }
    }

    #[test]
    fn deq_no_worse_than_round_robin_under_load() {
        let rows = allocator_policy_comparison(&tiny());
        let get = |policy: &str, load: f64| {
            rows.iter()
                .find(|r| r.policy == policy && r.load == load)
                .expect("cell exists")
        };
        // Under contention, redistribution must help (or at least not
        // hurt): round-robin reserves slack that DEQ hands out.
        let deq = get("deq", 2.0);
        let rr = get("round-robin", 2.0);
        assert!(
            deq.makespan_norm <= rr.makespan_norm * 1.02,
            "DEQ {deq:?} should not lose to round-robin {rr:?}"
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            allocator_policy_comparison(&tiny()),
            allocator_policy_comparison(&tiny())
        );
    }
}
