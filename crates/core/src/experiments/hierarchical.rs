//! The hierarchical skew sweep: top-level reallocation policies
//! against increasingly skewed arrival routing.
//!
//! The sharded engine's fixed equi-partition is optimal when arrivals
//! spread evenly across the processor groups — and pathological when
//! they do not: a group receiving `h` of every `h + G - 1` arrivals
//! sees its *local* offered load inflated by `h·G / (h + G - 1)` while
//! its neighbors idle. This experiment quantifies what the two-level
//! feedback loop buys back. For each skew factor `h` it runs the same
//! arrival sequence and job population under every configured
//! [`GroupPolicy`] and reports mean response time, median slowdown,
//! the hot group's final capacity, and the spread of per-group served
//! utilization. The static policy is the fixed-partition baseline
//! (bit-identical to [`abg_queue::run_open_sharded`]); the feedback
//! policies should hold their response time roughly flat as the skew
//! grows, with the hot group's capacity following its load.

use super::{parallel_map, task_seed};
use abg_alloc::DynamicEquiPartition;
use abg_control::{AControl, GroupPolicy, RequestCalculator};
use abg_dag::PhasedJob;
use abg_queue::{
    run_open_hierarchical_detailed, HierOpenConfig, OpenConfig, OpenOutcome, SaturationConfig,
    ShardRouting,
};
use abg_sched::PipelinedExecutor;
use abg_workload::{mean_gap_for_utilization, ArrivalProcess};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of the hierarchical skew sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalConfig {
    /// Machine size `P`.
    pub processors: u32,
    /// Processor groups `G` under the top-level allocator.
    pub groups: u32,
    /// Quantum length `L` in steps.
    pub quantum_len: u64,
    /// Reallocation epoch in quanta.
    pub realloc_epoch: u64,
    /// Per-group capacity floor.
    pub group_floor: u32,
    /// Aggregate offered load ρ (kept fixed across skews: skew moves
    /// load between groups without changing the machine-wide total).
    pub rho: f64,
    /// Skew factors to sweep: skew `h` routes `h` consecutive arrivals
    /// to group 0 for every one routed to each other group (`h = 1` is
    /// the uniform round-robin split).
    pub hots: Vec<u32>,
    /// Top-level policies to compare at every skew point.
    pub policies: Vec<GroupPolicy>,
    /// Constant parallel width of every arriving job.
    pub width: u64,
    /// Phases per job (`T₁ = width · levels`).
    pub levels: u64,
    /// Arrivals discarded as warmup before measurement.
    pub warmup_jobs: u64,
    /// Arrivals measured per run.
    pub measured_jobs: u64,
    /// Batches for the response-time confidence interval.
    pub batches: u32,
    /// Hard quanta budget per run (applies per group).
    pub max_quanta: u64,
    /// Saturation-detector tuning (applies per group).
    pub saturation: SaturationConfig,
    /// ABG convergence rate `r` for the within-group controllers.
    pub rate: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl HierarchicalConfig {
    /// Full-scale sweep: 64 processors in 8 groups, skews up to 8:1.
    pub fn paper() -> Self {
        Self {
            processors: 64,
            groups: 8,
            quantum_len: 20,
            realloc_epoch: 50,
            group_floor: 1,
            rho: 0.45,
            hots: vec![1, 2, 4, 8],
            policies: vec![
                GroupPolicy::Static,
                GroupPolicy::Desire,
                GroupPolicy::Conservative,
            ],
            width: 4,
            levels: 50,
            warmup_jobs: 400,
            measured_jobs: 1600,
            batches: 16,
            max_quanta: 20_000_000,
            saturation: SaturationConfig::default(),
            rate: 0.2,
            seed: 0x5E3A,
        }
    }

    /// A scaled-down smoke sweep for tests and CI: 16 processors in 4
    /// groups, uniform and 4:1 skew, finishing in well under a second.
    pub fn smoke() -> Self {
        Self {
            processors: 16,
            groups: 4,
            quantum_len: 10,
            realloc_epoch: 16,
            group_floor: 1,
            rho: 0.35,
            hots: vec![1, 4],
            policies: vec![
                GroupPolicy::Static,
                GroupPolicy::Desire,
                GroupPolicy::Conservative,
            ],
            width: 2,
            levels: 40,
            warmup_jobs: 40,
            measured_jobs: 160,
            batches: 8,
            max_quanta: 2_000_000,
            saturation: SaturationConfig::default(),
            rate: 0.2,
            seed: 0x5E3A,
        }
    }

    /// The per-point hierarchical engine configuration at skew `hot`.
    fn hier_config(&self, hot: u32, mean_gap: f64) -> HierOpenConfig {
        HierOpenConfig {
            open: OpenConfig {
                processors: self.processors,
                quantum_len: self.quantum_len,
                arrivals: ArrivalProcess::Poisson { mean_gap },
                warmup_jobs: self.warmup_jobs,
                measured_jobs: self.measured_jobs,
                batches: self.batches,
                max_quanta: self.max_quanta,
                saturation: self.saturation,
                // One seed per skew, shared by every policy: identical
                // arrivals and job structures — a paired comparison.
                seed: task_seed(self.seed, hot as u64, 3),
            },
            groups: self.groups,
            routing: ShardRouting::Skewed { hot },
            realloc_epoch: self.realloc_epoch,
            group_floor: self.group_floor,
        }
    }

    /// Validates the engine configuration this sweep would run.
    pub fn validate(&self) -> Result<(), abg_queue::ConfigError> {
        self.hier_config(1, 1.0).validate()
    }
}

/// One policy's measurements at one skew point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyPoint {
    /// The top-level policy measured.
    pub policy: GroupPolicy,
    /// Whether every group reached its measurement target.
    pub stable: bool,
    /// Mean response time in steps (`NaN` when unstable).
    pub mean_response: f64,
    /// ~95% batch-means half-width of the mean (`NaN` when unstable).
    pub response_half_width: f64,
    /// Median slowdown (`NaN` when unstable).
    pub slowdown_p50: f64,
    /// Capacity the hot group (group 0) held when the run ended.
    pub hot_processors: u32,
    /// Per-group served utilization (completed work over each group's
    /// own capacity integral), in group order.
    pub group_utilization: Vec<f64>,
}

/// One skew point: every configured policy against the same arrivals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierarchicalRow {
    /// The skew factor `h` (group 0 receives `h` of every `h + G - 1`
    /// arrivals).
    pub hot: u32,
    /// The hot group's local offered load under the *fixed*
    /// equi-partition — the load the static baseline actually faces:
    /// `ρ · h·G / (h + G - 1)`.
    pub hot_local_rho: f64,
    /// One cell per configured policy, in config order.
    pub cells: Vec<PolicyPoint>,
}

/// Runs the hierarchical skew sweep; one [`HierarchicalRow`] per
/// configured skew factor, each with one [`PolicyPoint`] per policy.
///
/// # Panics
///
/// Panics if the config has no skew factors or policies, or an
/// inconsistent engine setup (see [`HierarchicalConfig::validate`]).
pub fn hierarchical_skew_sweep(cfg: &HierarchicalConfig) -> Vec<HierarchicalRow> {
    assert!(!cfg.hots.is_empty(), "sweep needs at least one skew");
    assert!(!cfg.policies.is_empty(), "sweep needs at least one policy");
    let work = (cfg.width * cfg.levels) as f64;
    let mean_gap = mean_gap_for_utilization(cfg.rho, cfg.processors, work);
    let units: Vec<(u32, GroupPolicy)> = cfg
        .hots
        .iter()
        .flat_map(|&hot| cfg.policies.iter().map(move |&policy| (hot, policy)))
        .collect();
    let cells = parallel_map(units, |&(hot, policy)| {
        let hier = cfg.hier_config(hot, mean_gap);
        let job = Arc::new(PhasedJob::constant(cfg.width, cfg.levels));
        let rate = cfg.rate;
        let (outcome, groups) = run_open_hierarchical_detailed(
            &hier,
            DynamicEquiPartition::new,
            move |_rng, _recycled| Box::new(PipelinedExecutor::new(Arc::clone(&job))),
            move || -> Box<dyn RequestCalculator + Send> { Box::new(AControl::new(rate)) },
            policy.build(),
            1,
        );
        let (stable, mean_response, response_half_width, slowdown_p50) = match &outcome {
            OpenOutcome::Steady(s) => {
                (true, s.response.mean, s.response.half_width, s.slowdown.p50)
            }
            OpenOutcome::Unstable(_) => (false, f64::NAN, f64::NAN, f64::NAN),
        };
        PolicyPoint {
            policy,
            stable,
            mean_response,
            response_half_width,
            slowdown_p50,
            hot_processors: groups[0].final_processors,
            group_utilization: groups.iter().map(|g| g.utilization).collect(),
        }
    });
    let per_row = cfg.policies.len();
    cfg.hots
        .iter()
        .enumerate()
        .map(|(i, &hot)| HierarchicalRow {
            hot,
            hot_local_rho: cfg.rho * (hot as f64 * cfg.groups as f64)
                / (hot as f64 + cfg.groups as f64 - 1.0),
            cells: cells[i * per_row..(i + 1) * per_row].to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_shape_and_stability() {
        let cfg = HierarchicalConfig::smoke();
        let rows = hierarchical_skew_sweep(&cfg);
        assert_eq!(rows.len(), cfg.hots.len());
        for row in &rows {
            assert_eq!(row.cells.len(), cfg.policies.len());
            for cell in &row.cells {
                assert!(cell.stable, "{:?} unstable at hot={}", cell.policy, row.hot);
                assert!(cell.mean_response.is_finite());
                assert!(cell.slowdown_p50 >= 1.0);
                assert_eq!(cell.group_utilization.len(), cfg.groups as usize);
            }
        }
        // At the uniform point the local load equals the aggregate.
        assert!((rows[0].hot_local_rho - cfg.rho).abs() < 1e-12);
        assert!(rows[1].hot_local_rho > cfg.rho);
    }

    #[test]
    fn feedback_beats_the_static_partition_under_skew() {
        // The headline claim: at 4:1 skew the desire-proportional top
        // level must deliver a lower mean response time than the fixed
        // partition, by shifting capacity toward the hot group.
        let cfg = HierarchicalConfig::smoke();
        let rows = hierarchical_skew_sweep(&cfg);
        let skewed = rows.last().unwrap();
        let stat = &skewed.cells[0];
        let desire = &skewed.cells[1];
        assert_eq!(stat.policy, GroupPolicy::Static);
        assert_eq!(desire.policy, GroupPolicy::Desire);
        assert!(
            desire.mean_response < stat.mean_response,
            "desire {} !< static {}",
            desire.mean_response,
            stat.mean_response
        );
        // Capacity visibly followed the load: the static hot group is
        // stuck at P/G while desire's hot group ended above it.
        assert_eq!(stat.hot_processors, cfg.processors / cfg.groups);
        assert!(desire.hot_processors > stat.hot_processors);
    }

    #[test]
    fn sweep_is_deterministic() {
        let mut cfg = HierarchicalConfig::smoke();
        cfg.hots = vec![4];
        let a = hierarchical_skew_sweep(&cfg);
        let b = hierarchical_skew_sweep(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn validate_surfaces_engine_errors() {
        let mut cfg = HierarchicalConfig::smoke();
        assert_eq!(cfg.validate(), Ok(()));
        cfg.realloc_epoch = 0;
        assert_eq!(cfg.validate(), Err(abg_queue::ConfigError::BadReallocEpoch));
    }
}
