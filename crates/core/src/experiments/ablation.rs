//! Ablation experiments for the design choices DESIGN.md calls out:
//! convergence rate, quantum length, A-Greedy parameters, scheduler
//! priority rule, and the phase-semantics model.

use super::{parallel_map, task_seed};
use abg_alloc::Scripted;
use abg_control::{AControl, AGreedy, AdaptiveRateControl, RequestCalculator};
use abg_dag::{ExplicitDag, ForkJoinSpec};
use abg_sched::{
    BGreedyExecutor, DepthFirstExecutor, GreedyExecutor, LeveledExecutor, PipelinedExecutor,
};
use abg_sim::{run_single_job, SingleJobConfig, SingleJobRun};
use abg_workload::paper_job;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Common setup of the single-job ablations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationConfig {
    /// Transition factors of the probe jobs.
    pub factors: Vec<u64>,
    /// Jobs per factor.
    pub jobs_per_factor: u32,
    /// Machine size.
    pub processors: u32,
    /// Quantum length `L`.
    pub quantum_len: u64,
    /// Phase pairs per job.
    pub pairs: u64,
    /// Experiment seed.
    pub seed: u64,
}

impl AblationConfig {
    /// A moderate default: factors {5, 20, 60}, a handful of jobs each.
    pub fn default_probe() -> Self {
        Self {
            factors: vec![5, 20, 60],
            jobs_per_factor: 6,
            processors: 128,
            quantum_len: 200,
            pairs: 3,
            seed: 0x00AB_1A7E,
        }
    }
}

/// Mean time/waste of a run population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityPoint {
    /// Mean `T / T∞`.
    pub time_norm: f64,
    /// Mean `W / T1`.
    pub waste_norm: f64,
}

fn summarize(runs: &[SingleJobRun]) -> QualityPoint {
    let n = runs.len() as f64;
    QualityPoint {
        time_norm: runs.iter().map(SingleJobRun::time_over_span).sum::<f64>() / n,
        waste_norm: runs.iter().map(SingleJobRun::waste_over_work).sum::<f64>() / n,
    }
}

fn abg_runs(cfg: &AblationConfig, rate: f64, quantum_len: u64) -> Vec<SingleJobRun> {
    let units: Vec<(u64, u64)> = cfg
        .factors
        .iter()
        .flat_map(|&f| (0..cfg.jobs_per_factor as u64).map(move |j| (f, j)))
        .collect();
    parallel_map(units, |&(factor, index)| {
        let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, factor, index));
        let job = paper_job(factor, quantum_len, cfg.pairs, &mut rng);
        run_single_job(
            &mut PipelinedExecutor::new(job),
            &mut AControl::new(rate),
            &mut Scripted::ample(cfg.processors),
            SingleJobConfig::new(quantum_len),
        )
    })
}

fn agreedy_runs(
    cfg: &AblationConfig,
    responsiveness: f64,
    utilization: f64,
    quantum_len: u64,
) -> Vec<SingleJobRun> {
    let units: Vec<(u64, u64)> = cfg
        .factors
        .iter()
        .flat_map(|&f| (0..cfg.jobs_per_factor as u64).map(move |j| (f, j)))
        .collect();
    parallel_map(units, |&(factor, index)| {
        let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, factor, index));
        let job = paper_job(factor, quantum_len, cfg.pairs, &mut rng);
        run_single_job(
            &mut PipelinedExecutor::new(job),
            &mut AGreedy::new(responsiveness, utilization),
            &mut Scripted::ample(cfg.processors),
            SingleJobConfig::new(quantum_len),
        )
    })
}

/// One row of the convergence-rate ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateAblationRow {
    /// The convergence rate `r`.
    pub rate: f64,
    /// Quality at this rate.
    pub quality: QualityPoint,
}

/// Sweeps the convergence rate `r` of ABG (the paper notes results "do
/// not deviate too much for all values of convergence rate less than
/// 0.6" — this reproduces that claim).
pub fn rate_ablation(cfg: &AblationConfig, rates: &[f64]) -> Vec<RateAblationRow> {
    rates
        .iter()
        .map(|&rate| RateAblationRow {
            rate,
            quality: summarize(&abg_runs(cfg, rate, cfg.quantum_len)),
        })
        .collect()
}

/// Quality of the rate-governed controller
/// ([`AdaptiveRateControl`]) on the same probe jobs — the online
/// answer to the paper's assumption that `r < 1/C_L` is arranged from
/// historical workload knowledge.
pub fn governed_rate_quality(cfg: &AblationConfig, target_rate: f64) -> QualityPoint {
    let units: Vec<(u64, u64)> = cfg
        .factors
        .iter()
        .flat_map(|&f| (0..cfg.jobs_per_factor as u64).map(move |j| (f, j)))
        .collect();
    let runs = parallel_map(units, |&(factor, index)| {
        let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, factor, index));
        let job = paper_job(factor, cfg.quantum_len, cfg.pairs, &mut rng);
        run_single_job(
            &mut PipelinedExecutor::new(job),
            &mut AdaptiveRateControl::new(target_rate, 0.9),
            &mut Scripted::ample(cfg.processors),
            SingleJobConfig::new(cfg.quantum_len),
        )
    });
    summarize(&runs)
}

/// One row of the quantum-length ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantumAblationRow {
    /// The quantum length `L`.
    pub quantum_len: u64,
    /// ABG quality at this quantum length.
    pub abg: QualityPoint,
    /// A-Greedy quality at this quantum length.
    pub agreedy: QualityPoint,
}

/// Sweeps the quantum length `L`. Jobs are regenerated per `L` so the
/// phase geometry keeps its quantum-multiple shape (the factor is a
/// per-`L` characteristic, per footnote 2 of the paper).
pub fn quantum_ablation(cfg: &AblationConfig, quanta: &[u64]) -> Vec<QuantumAblationRow> {
    quanta
        .iter()
        .map(|&l| QuantumAblationRow {
            quantum_len: l,
            abg: summarize(&abg_runs(cfg, 0.2, l)),
            agreedy: summarize(&agreedy_runs(cfg, 2.0, 0.8, l)),
        })
        .collect()
}

/// One row of the A-Greedy parameter ablation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AGreedyAblationRow {
    /// Responsiveness `ρ`.
    pub responsiveness: f64,
    /// Utilization threshold `δ`.
    pub utilization: f64,
    /// Quality at these parameters.
    pub quality: QualityPoint,
}

/// Sweeps A-Greedy's `ρ × δ` grid — how sensitive is the baseline to
/// its tuning?
pub fn agreedy_ablation(
    cfg: &AblationConfig,
    responsiveness: &[f64],
    utilization: &[f64],
) -> Vec<AGreedyAblationRow> {
    let mut rows = Vec::new();
    for &rho in responsiveness {
        for &delta in utilization {
            rows.push(AGreedyAblationRow {
                responsiveness: rho,
                utilization: delta,
                quality: summarize(&agreedy_runs(cfg, rho, delta, cfg.quantum_len)),
            });
        }
    }
    rows
}

/// One row of the scheduler-priority ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedulerAblationRow {
    /// Priority rule name.
    pub scheduler: String,
    /// Quality of the full ABG loop with this task scheduler.
    pub quality: QualityPoint,
}

/// Runs the full ABG feedback loop with different task-scheduler
/// priority rules (breadth-first = B-Greedy, FIFO = plain greedy,
/// LIFO = depth-first) on the *same* explicit dags.
///
/// B-Greedy's lowest-level-first rule is what makes the fractional
/// `A(q)` measurement faithful; the other rules feed the controller a
/// distorted signal.
pub fn scheduler_ablation(cfg: &AblationConfig) -> Vec<SchedulerAblationRow> {
    // Smaller jobs: the per-task executor materialises every task.
    let quantum_len = cfg.quantum_len.min(100);
    let dags: Vec<ExplicitDag> = cfg
        .factors
        .iter()
        .flat_map(|&f| {
            (0..cfg.jobs_per_factor as u64)
                .map(move |j| (f, j))
                .map(|(f, j)| {
                    let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, f, j));
                    ForkJoinSpec::with_transition_factor(f.min(16), quantum_len, 2)
                        .generate_phased(&mut rng)
                        .to_explicit()
                })
        })
        .collect();

    let run_all = |name: &str, f: &dyn Fn(&ExplicitDag) -> SingleJobRun| SchedulerAblationRow {
        scheduler: name.to_string(),
        quality: summarize(&dags.iter().map(f).collect::<Vec<_>>()),
    };

    let sim_cfg = SingleJobConfig::new(quantum_len);
    let p = cfg.processors;
    vec![
        run_all("breadth-first (B-Greedy)", &|d| {
            run_single_job(
                &mut BGreedyExecutor::new(d),
                &mut AControl::new(0.2),
                &mut Scripted::ample(p),
                sim_cfg,
            )
        }),
        run_all("fifo (plain greedy)", &|d| {
            run_single_job(
                &mut GreedyExecutor::new(d),
                &mut AControl::new(0.2),
                &mut Scripted::ample(p),
                sim_cfg,
            )
        }),
        run_all("lifo (depth-first)", &|d| {
            run_single_job(
                &mut DepthFirstExecutor::new(d),
                &mut AControl::new(0.2),
                &mut Scripted::ample(p),
                sim_cfg,
            )
        }),
    ]
}

/// One row of the phase-semantics ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SemanticsAblationRow {
    /// Job model name.
    pub model: String,
    /// Request calculator name.
    pub scheduler: String,
    /// Quality under this combination.
    pub quality: QualityPoint,
}

/// Compares the pipelined-phase job model against the barrier-per-level
/// model under both controllers, on jobs generated from the *same*
/// phase lists.
///
/// Under barriers, allotments that do not divide the phase width lose
/// cycles at every level boundary; A-Greedy's power-of-two desires are
/// especially hurt (its utilization check keeps it a factor below the
/// width). The ablation quantifies why the pipelined model is the
/// faithful reading of the paper's workloads.
pub fn semantics_ablation(cfg: &AblationConfig) -> Vec<SemanticsAblationRow> {
    let mut rows = Vec::new();
    let combos: [(&str, bool); 4] = [
        ("abg", false),
        ("abg", true),
        ("a-greedy", false),
        ("a-greedy", true),
    ];
    for (sched, barrier) in combos {
        let units: Vec<(u64, u64)> = cfg
            .factors
            .iter()
            .flat_map(|&f| (0..cfg.jobs_per_factor as u64).map(move |j| (f, j)))
            .collect();
        let runs = parallel_map(units, |&(factor, index)| {
            let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, factor, index));
            let spec = ForkJoinSpec::with_transition_factor(factor, cfg.quantum_len, cfg.pairs);
            let mut calc: Box<dyn RequestCalculator + Send> = if sched == "abg" {
                Box::new(AControl::new(0.2))
            } else {
                Box::new(AGreedy::new(2.0, 0.8))
            };
            let mut alloc = Scripted::ample(cfg.processors);
            let sim_cfg = SingleJobConfig::new(cfg.quantum_len);
            if barrier {
                let job = spec.generate(&mut rng);
                run_single_job(
                    &mut LeveledExecutor::new(job),
                    &mut calc,
                    &mut alloc,
                    sim_cfg,
                )
            } else {
                let job = spec.generate_phased(&mut rng);
                run_single_job(
                    &mut PipelinedExecutor::new(job),
                    &mut calc,
                    &mut alloc,
                    sim_cfg,
                )
            }
        });
        rows.push(SemanticsAblationRow {
            model: if barrier { "barrier" } else { "pipelined" }.to_string(),
            scheduler: sched.to_string(),
            quality: summarize(&runs),
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AblationConfig {
        AblationConfig {
            factors: vec![4, 12],
            jobs_per_factor: 2,
            processors: 64,
            quantum_len: 40,
            pairs: 2,
            seed: 3,
        }
    }

    #[test]
    fn rate_ablation_small_rates_are_fine() {
        let rows = rate_ablation(&tiny(), &[0.0, 0.2, 0.6, 0.9]);
        assert_eq!(rows.len(), 4);
        // High convergence rates react too slowly: quality degrades.
        let t0 = rows[0].quality.time_norm;
        let t9 = rows[3].quality.time_norm;
        assert!(
            t9 >= t0 - 1e-9,
            "r=0.9 ({t9}) should be no faster than r=0 ({t0})"
        );
        for r in &rows {
            assert!(r.quality.time_norm >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn governed_rate_is_competitive_with_fixed_target() {
        let cfg = tiny();
        let fixed = rate_ablation(&cfg, &[0.2])[0].quality;
        let governed = governed_rate_quality(&cfg, 0.2);
        // The governor may clamp the rate toward 0 on violent jobs; it
        // must not cost more than a small factor on either metric.
        assert!(
            governed.time_norm <= fixed.time_norm * 1.1,
            "{governed:?} vs {fixed:?}"
        );
        assert!(
            governed.waste_norm <= fixed.waste_norm * 1.3,
            "{governed:?} vs {fixed:?}"
        );
    }

    #[test]
    fn quantum_ablation_produces_rows() {
        let rows = quantum_ablation(&tiny(), &[20, 80]);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.abg.time_norm >= 1.0 - 1e-9);
            assert!(r.agreedy.time_norm >= r.abg.time_norm - 0.5);
        }
    }

    #[test]
    fn agreedy_grid_shapes() {
        let rows = agreedy_ablation(&tiny(), &[1.5, 2.0], &[0.5, 0.8]);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn scheduler_ablation_breadth_first_no_worse() {
        let rows = scheduler_ablation(&tiny());
        assert_eq!(rows.len(), 3);
        let bg = &rows[0];
        assert!(bg.scheduler.contains("breadth"));
        for other in &rows[1..] {
            assert!(
                bg.quality.time_norm <= other.quality.time_norm + 0.25,
                "B-Greedy should not be substantially slower: {rows:?}"
            );
        }
    }

    #[test]
    fn semantics_ablation_barrier_hurts_agreedy_more() {
        let rows = semantics_ablation(&tiny());
        assert_eq!(rows.len(), 4);
        let get = |m: &str, s: &str| {
            rows.iter()
                .find(|r| r.model == m && r.scheduler == s)
                .expect("combo exists")
                .quality
        };
        let ag_pen = get("barrier", "a-greedy").time_norm - get("pipelined", "a-greedy").time_norm;
        let abg_pen = get("barrier", "abg").time_norm - get("pipelined", "abg").time_norm;
        assert!(
            ag_pen >= abg_pen - 0.15,
            "barrier model should hurt A-Greedy at least as much as ABG \
             (A-Greedy penalty {ag_pen:.3}, ABG penalty {abg_pen:.3})"
        );
    }
}
