//! Bit-exact fingerprints of sweep outputs.
//!
//! The sweeps promise determinism down to the last ulp: same config and
//! seed, same results, regardless of thread count or internal data
//! layout. A fingerprint folds every field of every output row into one
//! FNV-1a hash over the raw bit patterns (`f64::to_bits`, so `-0.0`,
//! `NaN` payloads and ulp-level drift all show up), which gives the
//! equivalence tests and the `sweep_fingerprint` example a compact value
//! to record and compare across refactors of the simulation kernels.

use super::multiprogrammed::LoadPoint;
use super::open_system::{OpenSystemRow, SchedulerOpenPoint};
use super::single_job::SweepPoint;

/// Incremental FNV-1a over 64-bit words.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint(u64);

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh fingerprint.
    pub fn new() -> Self {
        Self(Self::OFFSET)
    }

    /// Folds one 64-bit word, byte by byte.
    pub fn word(&mut self, w: u64) -> &mut Self {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds an `f64` through its exact bit pattern.
    pub fn f64(&mut self, x: f64) -> &mut Self {
        self.word(x.to_bits())
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprint of a Figure-5 sweep result (every field of every point).
pub fn sweep_fingerprint(points: &[SweepPoint]) -> u64 {
    let mut f = Fingerprint::new();
    f.word(points.len() as u64);
    for p in points {
        f.word(p.factor)
            .f64(p.measured_factor)
            .f64(p.abg_time_norm)
            .f64(p.agreedy_time_norm)
            .f64(p.abg_waste_norm)
            .f64(p.agreedy_waste_norm)
            .f64(p.time_ratio)
            .f64(p.waste_ratio);
    }
    f.finish()
}

/// Fingerprint of a Figure-6 sweep result (every field of every point).
pub fn load_fingerprint(points: &[LoadPoint]) -> u64 {
    let mut f = Fingerprint::new();
    f.word(points.len() as u64);
    for p in points {
        f.f64(p.load)
            .f64(p.measured_load)
            .f64(p.mean_jobs)
            .f64(p.abg_makespan_norm)
            .f64(p.agreedy_makespan_norm)
            .f64(p.abg_response_norm)
            .f64(p.agreedy_response_norm)
            .f64(p.makespan_ratio)
            .f64(p.response_ratio);
    }
    f.finish()
}

fn fold_scheduler_point(f: &mut Fingerprint, p: &SchedulerOpenPoint) {
    f.word(p.stable as u64)
        .f64(p.mean_response)
        .f64(p.response_half_width)
        .f64(p.slowdown_p50)
        .f64(p.slowdown_p95)
        .f64(p.slowdown_p99)
        .f64(p.mean_jobs_in_system)
        .f64(p.measured_utilization)
        .word(p.quanta)
        .word(p.arrivals);
}

/// Fingerprint of an open-system sweep result (every field of every
/// row; unstable points contribute their `NaN` bit patterns, which are
/// produced deterministically by the sweep).
pub fn open_fingerprint(rows: &[OpenSystemRow]) -> u64 {
    let mut f = Fingerprint::new();
    f.word(rows.len() as u64);
    for r in rows {
        f.f64(r.rho).f64(r.mean_gap).f64(r.expected_work);
        fold_scheduler_point(&mut f, &r.abg);
        fold_scheduler_point(&mut f, &r.agreedy);
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_is_order_and_value_sensitive() {
        let a = Fingerprint::new().word(1).word(2).finish();
        let b = Fingerprint::new().word(2).word(1).finish();
        let c = Fingerprint::new().word(1).word(2).finish();
        assert_ne!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn f64_fingerprint_distinguishes_signed_zero() {
        let pos = Fingerprint::new().f64(0.0).finish();
        let neg = Fingerprint::new().f64(-0.0).finish();
        assert_ne!(pos, neg);
    }
}
