//! Robustness beyond fork-join: ABG vs A-Greedy on irregular
//! parallelism profiles, correlated with the alternative job
//! characteristics of the paper's future-work section (transition
//! factor, coefficient of variation, change frequency).

use super::{parallel_map, task_seed};
use abg_alloc::Scripted;
use abg_control::{AControl, AGreedy};
use abg_dag::{JobStructure, PhasedJob};
use abg_sched::PipelinedExecutor;
use abg_sim::{run_single_job, SingleJobConfig, SingleJobRun};
use abg_workload::paper_job;
use abg_workload::profiles::{bursty_job, ramp_job, random_walk_job};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of the robustness experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessConfig {
    /// Jobs per profile class.
    pub jobs_per_class: u32,
    /// Machine size.
    pub processors: u32,
    /// Quantum length `L`.
    pub quantum_len: u64,
    /// Peak parallelism of the irregular profiles.
    pub peak: u64,
    /// ABG convergence rate.
    pub rate: f64,
    /// Experiment seed.
    pub seed: u64,
}

impl RobustnessConfig {
    /// Moderate default probe.
    pub fn default_probe() -> Self {
        Self {
            jobs_per_class: 8,
            processors: 128,
            quantum_len: 100,
            peak: 32,
            rate: 0.2,
            seed: 0x0B57,
        }
    }
}

/// One profile class's results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessRow {
    /// Profile class name.
    pub class: String,
    /// Mean measured transition factor `C_L`.
    pub transition_factor: f64,
    /// Mean coefficient of variation of the per-level parallelism.
    pub coefficient_of_variation: f64,
    /// Mean number of adjacent-level parallelism changes per 1000
    /// levels (the "frequency of change" characteristic).
    pub changes_per_kilolevel: f64,
    /// Mean `T / T∞` under ABG.
    pub abg_time_norm: f64,
    /// Mean `T / T∞` under A-Greedy.
    pub agreedy_time_norm: f64,
    /// Mean `W / T1` under ABG.
    pub abg_waste_norm: f64,
    /// Mean `W / T1` under A-Greedy.
    pub agreedy_waste_norm: f64,
}

const CLASSES: [&str; 4] = ["fork-join", "random-walk", "bursty", "ramp"];

/// Per-job measurement tuple: (C_L, CV, changes/klvl, ABG run, A-Greedy run).
type JobMeasurement = (f64, f64, f64, SingleJobRun, SingleJobRun);

fn make_job(class: &str, cfg: &RobustnessConfig, rng: &mut StdRng) -> PhasedJob {
    let l = cfg.quantum_len;
    match class {
        "fork-join" => paper_job(cfg.peak, l, 3, rng),
        "random-walk" => random_walk_job(24, l / 2, cfg.peak, 2.0, rng),
        "bursty" => bursty_job(30, l / 2, cfg.peak, 0.15, rng),
        "ramp" => ramp_job(10, l / 2, cfg.peak),
        other => unreachable!("unknown class {other}"),
    }
}

fn pair(job: &PhasedJob, cfg: &RobustnessConfig) -> (SingleJobRun, SingleJobRun) {
    let sim = SingleJobConfig::new(cfg.quantum_len);
    let abg = run_single_job(
        &mut PipelinedExecutor::new(job),
        &mut AControl::new(cfg.rate),
        &mut Scripted::ample(cfg.processors),
        sim,
    );
    let agreedy = run_single_job(
        &mut PipelinedExecutor::new(job),
        &mut AGreedy::paper_default(),
        &mut Scripted::ample(cfg.processors),
        sim,
    );
    (abg, agreedy)
}

/// Runs every profile class and returns one row per class.
pub fn robustness_comparison(cfg: &RobustnessConfig) -> Vec<RobustnessRow> {
    let units: Vec<(usize, u64)> = (0..CLASSES.len())
        .flat_map(|c| (0..cfg.jobs_per_class as u64).map(move |j| (c, j)))
        .collect();
    let results = parallel_map(units, |&(class_idx, index)| {
        let mut rng = StdRng::seed_from_u64(task_seed(cfg.seed, class_idx as u64, index));
        let job = make_job(CLASSES[class_idx], cfg, &mut rng);
        let profile = job.profile();
        let (abg, agreedy) = pair(&job, cfg);
        (
            class_idx,
            (
                job.transition_factor(cfg.quantum_len),
                profile.coefficient_of_variation(),
                profile.change_count() as f64 / profile.span() as f64 * 1000.0,
                abg,
                agreedy,
            ),
        )
    });

    CLASSES
        .iter()
        .enumerate()
        .map(|(ci, name)| {
            let rows: Vec<_> = results
                .iter()
                .filter(|(c, _)| *c == ci)
                .map(|(_, r)| r)
                .collect();
            let n = rows.len() as f64;
            let mean =
                |f: &dyn Fn(&JobMeasurement) -> f64| rows.iter().map(|r| f(r)).sum::<f64>() / n;
            RobustnessRow {
                class: name.to_string(),
                transition_factor: mean(&|r| r.0),
                coefficient_of_variation: mean(&|r| r.1),
                changes_per_kilolevel: mean(&|r| r.2),
                abg_time_norm: mean(&|r| r.3.time_over_span()),
                agreedy_time_norm: mean(&|r| r.4.time_over_span()),
                abg_waste_norm: mean(&|r| r.3.waste_over_work()),
                agreedy_waste_norm: mean(&|r| r.4.waste_over_work()),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RobustnessConfig {
        RobustnessConfig {
            jobs_per_class: 3,
            processors: 64,
            quantum_len: 40,
            peak: 16,
            rate: 0.2,
            seed: 9,
        }
    }

    #[test]
    fn all_classes_reported() {
        let rows = robustness_comparison(&tiny());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.transition_factor >= 1.0, "{r:?}");
            assert!(r.abg_time_norm >= 1.0 - 1e-9, "{r:?}");
            assert!(r.agreedy_time_norm >= 1.0 - 1e-9, "{r:?}");
        }
    }

    #[test]
    fn abg_stays_competitive_on_irregular_profiles() {
        // ABG's advantage was proven for fork-join; the robustness claim
        // is that it does not fall behind A-Greedy on irregular shapes.
        let rows = robustness_comparison(&tiny());
        for r in &rows {
            assert!(
                r.abg_time_norm <= r.agreedy_time_norm * 1.15,
                "ABG fell behind on {}: {r:?}",
                r.class
            );
        }
    }

    #[test]
    fn characteristics_separate_the_classes() {
        let rows = robustness_comparison(&tiny());
        let get = |name: &str| rows.iter().find(|r| r.class == name).unwrap();
        // The ramp changes gently but often; the bursty profile has the
        // extreme variance.
        assert!(get("ramp").changes_per_kilolevel > get("fork-join").changes_per_kilolevel);
        assert!(get("bursty").coefficient_of_variation > get("ramp").coefficient_of_variation);
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            robustness_comparison(&tiny()),
            robustness_comparison(&tiny())
        );
    }
}
