//! Request-trajectory experiments: the paper's Figures 1 and 4.
//!
//! A job of constant parallelism `A` runs alone with every request
//! granted; the interesting output is the *request trajectory* `d(q)`.
//! ABG converges geometrically to `A` with no overshoot (Figure 4(a));
//! A-Greedy oscillates forever (Figures 1 and 4(b)).

use abg_alloc::Scripted;
use abg_control::{AControl, AGreedy, RequestCalculator};
use abg_dag::generate::chain_bundle;
use abg_sched::executor::OwnedBGreedyExecutor;
use abg_sim::{run_single_job, SingleJobConfig};
use serde::{Deserialize, Serialize};

/// Configuration of the transient-behaviour comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransientConfig {
    /// The constant parallelism `A` of the synthetic job.
    pub parallelism: u64,
    /// Quantum length `L` in steps.
    pub quantum_len: u64,
    /// Number of quanta to report (the job is sized to last at least
    /// this long).
    pub quanta: u32,
    /// ABG convergence rate `r`.
    pub rate: f64,
    /// A-Greedy responsiveness `ρ`.
    pub responsiveness: f64,
    /// A-Greedy utilization threshold `δ`.
    pub utilization: f64,
    /// Machine size (every request up to this is granted).
    pub processors: u32,
}

impl TransientConfig {
    /// The paper's Figure-4 setting: constant parallelism 10 over 8
    /// quanta, `r = 0.2`, `ρ = 2`.
    pub fn paper() -> Self {
        Self {
            parallelism: 10,
            quantum_len: 1000,
            quanta: 8,
            rate: 0.2,
            responsiveness: 2.0,
            utilization: 0.8,
            processors: 128,
        }
    }
}

/// One quantum of a request trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Quantum index `q`, 1-based.
    pub quantum: u32,
    /// The request `d(q)`.
    pub request: f64,
    /// The allotment `a(q)` granted.
    pub allotment: u32,
}

/// The two trajectories side by side.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransientResult {
    /// The constant parallelism of the job (the target line).
    pub parallelism: u64,
    /// ABG's trajectory (Figure 4(a)).
    pub abg: Vec<TrajectoryPoint>,
    /// A-Greedy's trajectory (Figures 1 / 4(b)).
    pub agreedy: Vec<TrajectoryPoint>,
}

fn trajectory<C: RequestCalculator>(
    cfg: &TransientConfig,
    mut calculator: C,
) -> Vec<TrajectoryPoint> {
    // Size the job so it cannot finish before `quanta` quanta even at
    // full allotment (one level per step once a ≥ A). The job is a
    // *chain bundle*, not a barrier job: constant parallelism means
    // `parallelism` ready tasks on every step, so any allotment at or
    // below it achieves full utilization (the regime of Figures 1/4).
    let levels = cfg.quantum_len * (cfg.quanta as u64 + 2);
    let mut executor = OwnedBGreedyExecutor::new(chain_bundle(
        u32::try_from(cfg.parallelism).expect("parallelism fits u32"),
        u32::try_from(levels).expect("trajectory job fits u32 levels"),
    ));
    let mut allocator = Scripted::ample(cfg.processors);
    let run = run_single_job(
        &mut executor,
        &mut calculator,
        &mut allocator,
        SingleJobConfig::new(cfg.quantum_len).with_trace(),
    );
    run.trace
        .iter()
        .take(cfg.quanta as usize)
        .map(|r| TrajectoryPoint {
            quantum: r.index,
            request: r.request,
            allotment: r.allotment,
        })
        .collect()
}

/// Runs the Figure-1/Figure-4 comparison.
///
/// # Panics
///
/// Panics on nonsensical configs (zero parallelism/quanta, invalid
/// controller parameters).
pub fn transient_comparison(cfg: &TransientConfig) -> TransientResult {
    assert!(cfg.parallelism > 0 && cfg.quanta > 0);
    TransientResult {
        parallelism: cfg.parallelism,
        abg: trajectory(cfg, AControl::new(cfg.rate)),
        agreedy: trajectory(cfg, AGreedy::new(cfg.responsiveness, cfg.utilization)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TransientConfig {
        TransientConfig {
            parallelism: 10,
            quantum_len: 50,
            quanta: 8,
            rate: 0.2,
            responsiveness: 2.0,
            utilization: 0.8,
            processors: 128,
        }
    }

    #[test]
    fn abg_trajectory_matches_theorem1_shape() {
        let res = transient_comparison(&cfg());
        assert_eq!(res.abg.len(), 8);
        let a = res.parallelism as f64;
        // Monotone approach, no overshoot, geometric with ratio r.
        for w in res.abg.windows(2) {
            assert!(w[1].request >= w[0].request - 1e-9, "must be monotone");
            assert!(w[1].request <= a + 1e-9, "must not overshoot");
        }
        // After 8 quanta at r = 0.2 the error is r^7·(A−1) ≈ 1e-5·9.
        let err = (res.abg.last().unwrap().request - a).abs();
        assert!(err < 0.01, "steady-state error {err}");
    }

    #[test]
    fn agreedy_trajectory_oscillates() {
        let res = transient_comparison(&cfg());
        let reqs: Vec<f64> = res.agreedy.iter().map(|p| p.request).collect();
        // The desire must exceed A at least once (overshoot) and the
        // trajectory must not settle.
        let a = res.parallelism as f64;
        assert!(
            reqs.iter().any(|&d| d > a),
            "expected overshoot in {reqs:?}"
        );
        let tail: Vec<f64> = reqs[3..].to_vec();
        let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = tail.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "A-Greedy settled unexpectedly: {reqs:?}");
    }

    #[test]
    fn first_request_is_one_for_both() {
        let res = transient_comparison(&cfg());
        assert_eq!(res.abg[0].request, 1.0);
        assert_eq!(res.agreedy[0].request, 1.0);
    }

    #[test]
    fn allotments_track_requests_under_ample_availability() {
        let res = transient_comparison(&cfg());
        for p in res.abg.iter().chain(&res.agreedy) {
            assert_eq!(p.allotment, p.request.ceil() as u32);
        }
    }
}
