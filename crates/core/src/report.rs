//! Plain-text table and CSV rendering for experiment output.

use std::fmt::Write as _;

/// A simple fixed-width table builder used by the CLI and by
/// EXPERIMENTS.md generation.
///
/// ```
/// use abg::report::Table;
///
/// let mut t = Table::new(&["factor", "ratio"]);
/// t.row(&["2", "1.08"]);
/// t.row(&["100", "1.31"]);
/// let text = t.render();
/// assert!(text.contains("factor"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new(headers: &[&str]) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; missing cells render empty, extra cells are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than there are headers.
    pub fn row(&mut self, cells: &[&str]) -> &mut Self {
        assert!(
            cells.len() <= self.headers.len(),
            "row has {} cells but the table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
        self
    }

    /// Appends a row of pre-formatted `String` cells.
    pub fn row_owned(&mut self, cells: Vec<String>) -> &mut Self {
        assert!(cells.len() <= self.headers.len());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a header separator.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate().take(cols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:>w$}");
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        for (i, w) in widths.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&"-".repeat(*w));
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as CSV (no quoting: cells are numeric or plain
    /// identifiers in this codebase).
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// A terminal line chart for experiment series: each named series is
/// drawn with its own glyph over a shared y-scale.
///
/// Intended for the CLI's `--plot` mode, where eyeballing a trajectory
/// (Figures 1/4) or a sweep (Figures 5/6) beats reading a column of
/// numbers.
#[derive(Debug, Clone)]
pub struct Chart {
    series: Vec<(String, char, Vec<f64>)>,
    height: usize,
}

impl Chart {
    /// Creates an empty chart of the given height in rows.
    ///
    /// # Panics
    ///
    /// Panics if `height < 2`.
    pub fn new(height: usize) -> Self {
        assert!(height >= 2, "a chart needs at least two rows");
        Self {
            series: Vec::new(),
            height,
        }
    }

    /// Adds a named series drawn with `glyph`.
    pub fn series(&mut self, name: &str, glyph: char, values: &[f64]) -> &mut Self {
        self.series.push((name.to_string(), glyph, values.to_vec()));
        self
    }

    /// Renders the chart; series drawn later overdraw earlier ones where
    /// they collide.
    ///
    /// # Panics
    ///
    /// Panics if no series were added or every value is non-finite.
    pub fn render(&self) -> String {
        assert!(!self.series.is_empty(), "chart has no series");
        let finite: Vec<f64> = self
            .series
            .iter()
            .flat_map(|(_, _, v)| v.iter().copied())
            .filter(|v| v.is_finite())
            .collect();
        assert!(!finite.is_empty(), "chart has no finite values");
        let max = finite.iter().cloned().fold(f64::MIN, f64::max);
        let min = finite.iter().cloned().fold(f64::MAX, f64::min);
        let span = (max - min).max(1e-12);
        let width = self
            .series
            .iter()
            .map(|(_, _, v)| v.len())
            .max()
            .unwrap_or(0);

        let mut grid = vec![vec![' '; width]; self.height];
        for (_, glyph, values) in &self.series {
            for (x, &v) in values.iter().enumerate() {
                if !v.is_finite() {
                    continue;
                }
                let norm = (v - min) / span;
                let y = ((1.0 - norm) * (self.height - 1) as f64).round() as usize;
                grid[y.min(self.height - 1)][x] = *glyph;
            }
        }

        let mut out = String::new();
        for (i, row) in grid.iter().enumerate() {
            let label = if i == 0 {
                format!("{max:>9.2} |")
            } else if i == self.height - 1 {
                format!("{min:>9.2} |")
            } else {
                format!("{:>9} |", "")
            };
            out.push_str(&label);
            out.extend(row.iter());
            out.push('\n');
        }
        let _ = writeln!(out, "{:>9} +{}", "", "-".repeat(width));
        for (name, glyph, _) in &self.series {
            let _ = writeln!(out, "{:>11}{glyph} = {name}", "");
        }
        out
    }
}

/// Formats a float with 3 decimal places (the precision used throughout
/// the experiment tables).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a boolean as a check mark / cross for bound tables.
pub fn mark(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "VIOLATED"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["1", "2"]);
        t.row(&["100", "3"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width.
        assert!(lines.windows(2).all(|w| w[0].len() == w[1].len()));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1", "2"]).row(&["3", "4"]);
        let csv = t.render_csv();
        assert_eq!(csv, "x,y\n1,2\n3,4\n");
    }

    #[test]
    fn short_rows_pad() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&["1"]);
        assert!(t.render().contains('1'));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn long_rows_rejected() {
        let mut t = Table::new(&["x"]);
        t.row(&["1", "2"]);
    }

    #[test]
    fn helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(mark(true), "ok");
        assert_eq!(mark(false), "VIOLATED");
    }

    #[test]
    fn chart_renders_extremes_on_first_and_last_rows() {
        let mut c = Chart::new(5);
        c.series("rise", '#', &[0.0, 1.0, 2.0, 3.0, 4.0]);
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains('#'), "max on the top row: {s}");
        assert!(lines[4].contains('#'), "min on the bottom row: {s}");
        assert!(s.contains("# = rise"));
        assert!(s.contains("4.00"));
        assert!(s.contains("0.00"));
    }

    #[test]
    fn chart_overlays_multiple_series() {
        let mut c = Chart::new(4);
        c.series("a", 'a', &[1.0, 1.0])
            .series("b", 'b', &[2.0, 2.0]);
        let s = c.render();
        assert!(s.contains('a') && s.contains('b'));
    }

    #[test]
    fn chart_skips_non_finite_points() {
        let mut c = Chart::new(3);
        c.series("gappy", '*', &[1.0, f64::NAN, 3.0]);
        let s = c.render();
        assert_eq!(s.matches('*').count(), 3, "2 points + legend glyph: {s}");
    }

    #[test]
    fn chart_handles_constant_series() {
        let mut c = Chart::new(3);
        c.series("flat", '-', &[5.0; 8]);
        let s = c.render();
        assert!(s.contains("5.00"));
    }

    #[test]
    #[should_panic(expected = "no series")]
    fn empty_chart_rejected() {
        let _ = Chart::new(3).render();
    }
}
