//! Convenience re-exports of the types most programs need.

pub use abg_alloc::{Allocator, DynamicEquiPartition, Proportional, RoundRobin, Scripted};
pub use abg_control::{
    AControl, AGreedy, ClosedLoop, ConstantRequest, Controller, OracleRequest, RequestCalculator,
};
pub use abg_dag::{
    DagBuilder, ExplicitDag, ForkJoinSpec, JobStructure, LeveledJob, ParallelismProfile, Phase,
    PhasedJob, TaskId,
};
pub use abg_sched::{
    BGreedyExecutor, DepthFirstExecutor, GreedyExecutor, JobExecutor, LeveledExecutor,
    OwnedBGreedyExecutor, PipelinedExecutor, QuantumStats,
};
pub use abg_sim::{
    run_single_job, CompletedJob, JobMetrics, JobOutcome, MultiJobOutcome, MultiJobSim, NullProbe,
    Probe, QuantumCore, QuantumRecord, SingleJobConfig, SingleJobRun, TraceProbe,
};
pub use abg_workload::{paper_job, JobSet, JobSetSpec, ReleaseSchedule};

pub use crate::bounds;
