//! # Adaptive B-Greedy (ABG)
//!
//! A from-scratch Rust reproduction of *"Adaptive B-Greedy (ABG): A
//! Simple yet Efficient Scheduling Algorithm"* (Sun & Hsu, IPDPS 2008):
//! two-level adaptive scheduling of malleable parallel jobs with
//! parallelism feedback.
//!
//! ABG couples two pieces:
//!
//! * **B-Greedy** ([`abg_sched::BGreedyExecutor`]) — a greedy task
//!   scheduler with breadth-first (lowest-level-first) priority that
//!   measures each quantum's average parallelism
//!   `A(q) = T1(q) / T∞(q)` with fractional critical-path progress;
//! * **A-Control** ([`abg_control::AControl`]) — a self-tuning integral
//!   controller turning the measurement into the next processor request,
//!   `d(q) = r·d(q−1) + (1 − r)·A(q−1)`.
//!
//! The baseline it is evaluated against is **A-Greedy**
//! ([`abg_control::AGreedy`]), the multiplicative-increase /
//! multiplicative-decrease scheduler of Agrawal et al.
//!
//! ## Quick start
//!
//! ```
//! use abg::prelude::*;
//!
//! // A data-parallel job: 1-wide serial phases around a 16-wide phase.
//! let job = LeveledJob::from_phases(&[
//!     Phase::new(1, 20),
//!     Phase::new(16, 40),
//!     Phase::new(1, 20),
//! ]);
//!
//! // Schedule it with ABG (convergence rate 0.2) alone on 64 processors.
//! let mut executor = LeveledExecutor::new(job);
//! let mut controller = AControl::new(0.2);
//! let mut allocator = Scripted::ample(64);
//! let run = run_single_job(
//!     &mut executor,
//!     &mut controller,
//!     &mut allocator,
//!     SingleJobConfig::new(10),
//! );
//! assert!(run.speedup() > 1.0);
//! ```
//!
//! The [`experiments`] module regenerates every figure of the paper's
//! evaluation; [`bounds`] implements the theoretical guarantees
//! (Theorems 3–5 and the lower bounds they are competitive against); and
//! [`report`] renders experiment output as aligned tables or CSV.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod experiments;
pub mod gantt;
pub mod prelude;
pub mod report;

pub use abg_alloc as alloc;
pub use abg_control as control;
pub use abg_dag as dag;
pub use abg_queue as queue;
pub use abg_sched as sched;
pub use abg_sim as sim;
pub use abg_workload as workload;
