//! Distributed work-stealing task scheduling — the decentralized
//! counterpart of B-Greedy.
//!
//! The paper's related work (Section 8) compares against two
//! work-stealing schedulers:
//!
//! * **ABP** (Arora, Blumofe, Plaxton): randomized work stealing with
//!   *no* parallelism feedback — the job simply runs work-stealing on
//!   whatever processors it holds;
//! * **A-Steal** (Agrawal, He, Leiserson): ABP-style execution plus the
//!   same multiplicative-increase/multiplicative-decrease desire rule as
//!   A-Greedy, driven by the quantum's *non-steal usage*.
//!
//! This crate implements the execution substrate both need:
//! [`StealExecutor`], a synchronous-step simulation of per-processor
//! deques with owner-side LIFO and randomized stealing. It implements
//! the same [`JobExecutor`] interface as the centralized executors, so
//! it plugs into the identical two-level simulation:
//!
//! * **A-Steal** = `StealExecutor` + [`ASteal`] (the A-Greedy desire
//!   rule: its "efficient" test on `T1(q) ≥ δ·a·L` is exactly the
//!   non-steal-usage test, since only executed tasks count as work);
//! * **ABP**    = `StealExecutor` + [`abp_request`] (a constant request
//!   for the whole machine).
//!
//! The executor also measures the fractional quantum span the same way
//! B-Greedy does, so the A-Control controller can drive a work-stealing
//! execution too — a combination the paper suggests but never built.
//!
//! ## Model
//!
//! Time advances in unit steps, synchronously across the `a(q)`
//! processors of the quantum. In a step each processor either
//!
//! 1. pops the bottom task of its own deque and executes it (children
//!    are pushed back to the same deque's bottom), or
//! 2. if its deque is empty, picks a uniformly random victim and tries
//!    to steal the *top* task of the victim's deque; a successful steal
//!    deposits the task for execution on a later step, and either way
//!    the step is spent (a *steal cycle*, counted as waste).
//!
//! When the allotment shrinks between quanta, the orphaned deques are
//! redistributed to the surviving processors (a simplification of
//! A-Steal's "mugging"; the paper's accounting charges mug cycles like
//! steal cycles, and redistribution only makes the baseline stronger).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use abg_control::AGreedy;
use abg_control::ConstantRequest;
use abg_dag::{ExplicitDag, TaskId};
use abg_sched::{JobExecutor, QuantumStats};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::borrow::Borrow;
use std::collections::VecDeque;

/// The A-Steal desire calculator.
///
/// A-Steal re-uses A-Greedy's multiplicative update verbatim; the only
/// difference is the execution substrate (work stealing instead of
/// centralized greedy), which is captured by pairing this calculator
/// with a [`StealExecutor`]. The quantum's *non-steal usage* is its
/// `T1(q)` — steal cycles do not execute tasks — so
/// [`AGreedy::is_efficient`] already tests the right quantity.
pub type ASteal = AGreedy;

/// The ABP request policy: no feedback, always ask for the whole
/// machine (work stealing will idle whatever it cannot use).
pub fn abp_request(processors: u32) -> ConstantRequest {
    ConstantRequest::new(f64::from(processors.max(1)))
}

/// A randomized work-stealing executor over an explicit dag.
///
/// Generic over the dag handle like
/// [`DagExecutor`](abg_sched::DagExecutor): pass `&ExplicitDag` for
/// borrowed use or an owned/`Arc` handle where `'static` is needed.
#[derive(Debug)]
pub struct StealExecutor<D: Borrow<ExplicitDag>> {
    dag: D,
    remaining_preds: Vec<u32>,
    /// One deque per currently-allotted processor.
    deques: Vec<VecDeque<TaskId>>,
    /// A stolen task "in hand": executed on the thief's next step and
    /// not stealable in the meantime. Without this, two mutual thieves
    /// can pass one task back and forth forever (work-stealing's
    /// classic livelock); holding the loot for a step breaks the cycle
    /// and matches ABP, where a steal costs the whole step.
    pending: Vec<Option<TaskId>>,
    completed: u64,
    /// Processor-step units executed (weighted dags count partial
    /// progress; equals `completed` on unit dags, where it is unused).
    worked: u64,
    elapsed: u64,
    steal_cycles: u64,
    rng: StdRng,
    /// Construction seed, kept so [`reset`](Self::reset) can replay the
    /// identical steal stream.
    seed: u64,
    /// Scratch: tasks executed this step (children enabled after).
    batch: Vec<(usize, TaskId)>,
    /// Weighted dags only: the task each processor is currently
    /// executing, with residual cost. A running task is pinned to its
    /// processor (non-preemptive) and not stealable.
    running: Vec<Option<(TaskId, u64)>>,
    /// Weighted dags only: partially-executed tasks orphaned by an
    /// allotment shrink; their residual work resumes on whichever
    /// processor next runs dry.
    paused: Vec<(TaskId, u64)>,
}

impl<D: Borrow<ExplicitDag>> StealExecutor<D> {
    /// Creates an executor with the given RNG seed; the sources are
    /// dealt round-robin to an initial single deque (the first quantum
    /// starts with whatever allotment `run_quantum` receives).
    pub fn new(dag_handle: D, seed: u64) -> Self {
        let dag = dag_handle.borrow();
        let mut first = VecDeque::new();
        for t in dag.sources() {
            first.push_back(t);
        }
        let remaining_preds = (0..dag.num_tasks() as u32)
            .map(|i| dag.in_degree(TaskId(i)))
            .collect();
        Self {
            dag: dag_handle,
            remaining_preds,
            deques: vec![first],
            pending: vec![None],
            completed: 0,
            worked: 0,
            elapsed: 0,
            steal_cycles: 0,
            rng: StdRng::seed_from_u64(seed),
            seed,
            batch: Vec::new(),
            running: vec![None],
            paused: Vec::new(),
        }
    }

    /// Rewinds to the start of the job in place, re-seeding the RNG so a
    /// reset run replays the exact steal stream of a fresh executor. The
    /// in-degree table is memcpy'd from the dag's cache and the deque set
    /// shrinks back to the single initial deque without reallocating it.
    pub fn reset(&mut self) {
        let dag = self.dag.borrow();
        self.remaining_preds.copy_from_slice(dag.in_degrees());
        self.deques.truncate(1);
        self.deques[0].clear();
        for t in dag.sources() {
            self.deques[0].push_back(t);
        }
        self.pending.clear();
        self.pending.push(None);
        self.running.clear();
        self.running.push(None);
        self.paused.clear();
        self.completed = 0;
        self.worked = 0;
        self.elapsed = 0;
        self.steal_cycles = 0;
        self.rng = StdRng::seed_from_u64(self.seed);
        self.batch.clear();
    }

    /// Total steal cycles spent so far (the distributed scheduler's
    /// intrinsic overhead; these cycles are part of the waste).
    pub fn steal_cycles(&self) -> u64 {
        self.steal_cycles
    }

    /// Resizes the deque set to the new allotment, redistributing
    /// orphaned tasks round-robin onto the survivors on a shrink.
    fn resize(&mut self, allotment: usize) {
        if allotment == 0 {
            return; // keep state; the quantum will be a no-op
        }
        if allotment > self.deques.len() {
            self.deques.resize_with(allotment, VecDeque::new);
            self.pending.resize(allotment, None);
            self.running.resize(allotment, None);
        } else if allotment < self.deques.len() {
            // Residual work of orphaned processors is paused, not lost:
            // it resumes (with its remaining cost intact) on whichever
            // surviving processor next runs dry.
            self.paused
                .extend(self.running.drain(allotment..).flatten());
            let orphans: Vec<TaskId> = self
                .deques
                .drain(allotment..)
                .flat_map(Vec::from)
                .chain(self.pending.drain(allotment..).flatten())
                .collect();
            for (i, t) in orphans.into_iter().enumerate() {
                self.deques[i % allotment].push_back(t);
            }
        }
    }

    /// One synchronous step over `a` processors; returns tasks executed
    /// and adds each one's fractional span contribution to `span`.
    fn step(&mut self, a: usize, span: &mut f64) -> u64 {
        self.batch.clear();
        for p in 0..a {
            // Loot from last step's steal runs first; then the owner's
            // own deque; an empty-handed processor tries one steal.
            if let Some(t) = self.pending[p].take() {
                self.batch.push((p, t));
            } else if let Some(t) = self.deques[p].pop_back() {
                self.batch.push((p, t));
            } else if a > 1 {
                let victim = self.rng.random_range(0..a - 1);
                let victim = if victim >= p { victim + 1 } else { victim };
                self.steal_cycles += 1;
                // Stolen work is held in hand and executed next step
                // (the steal consumed this one); in-hand tasks cannot
                // be re-stolen, which rules out steal ping-pong.
                self.pending[p] = self.deques[victim].pop_front();
            } else {
                self.steal_cycles += 1; // alone with an empty deque
            }
        }
        // Execute the batch; enabled children go to the executor's own
        // deque bottom (depth-first, the classic work-stealing order).
        // The dag is borrowed once per step and the quantum span is
        // accumulated per task from the precomputed reciprocal level
        // sizes, replacing the old per-quantum clone-and-rescan of a
        // per-level counter vector.
        let dag = self.dag.borrow();
        let recips = dag.level_recips();
        for i in 0..self.batch.len() {
            let (p, t) = self.batch[i];
            *span += recips[dag.level(t) as usize];
            for &s in dag.successors(t) {
                let r = &mut self.remaining_preds[s.index()];
                *r -= 1;
                if *r == 0 {
                    self.deques[p].push_back(s);
                }
            }
        }
        let done = self.batch.len() as u64;
        self.completed += done;
        done
    }

    /// One synchronous weighted step: each processor advances its running
    /// task by one unit, acquiring a new task (paused residual first, then
    /// loot, then its own deque bottom, then a steal attempt) when idle.
    /// Completions are processed after the whole round, exactly like the
    /// unit step. Returns processor-step units executed.
    fn step_weighted(&mut self, a: usize, span: &mut f64) -> u64 {
        let wp = self
            .dag
            .borrow()
            .weight_profile()
            .expect("weighted step requires a weight table");
        self.batch.clear();
        let mut units = 0u64;
        for p in 0..a {
            let acquired = if let Some(slot) = self.running[p].take() {
                Some(slot)
            } else if let Some(slot) = self.paused.pop() {
                Some(slot)
            } else if let Some(t) = self.pending[p].take() {
                Some((t, wp.cost(t)))
            } else if let Some(t) = self.deques[p].pop_back() {
                Some((t, wp.cost(t)))
            } else {
                if a > 1 {
                    let victim = self.rng.random_range(0..a - 1);
                    let victim = if victim >= p { victim + 1 } else { victim };
                    self.pending[p] = self.deques[victim].pop_front();
                }
                self.steal_cycles += 1;
                None
            };
            if let Some((t, rem)) = acquired {
                units += 1;
                if rem == 1 {
                    self.batch.push((p, t));
                } else {
                    self.running[p] = Some((t, rem - 1));
                }
            }
        }
        self.worked += units;
        let dag = self.dag.borrow();
        for i in 0..self.batch.len() {
            let (p, t) = self.batch[i];
            let l = dag.level(t) as usize;
            *span += wp.span_contribution(wp.cost(t), l);
            for &s in dag.successors(t) {
                let r = &mut self.remaining_preds[s.index()];
                *r -= 1;
                if *r == 0 {
                    self.deques[p].push_back(s);
                }
            }
        }
        self.completed += self.batch.len() as u64;
        units
    }

    /// The weighted quantum loop (same shape as the unit one; a step is
    /// "worked" when at least one processor executed a work unit).
    fn run_quantum_weighted(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        let mut work = 0u64;
        let mut steps_worked = 0u64;
        let mut span = 0.0f64;
        self.resize(allotment as usize);
        for _ in 0..steps {
            if self.is_complete() {
                break;
            }
            let units = self.step_weighted(allotment as usize, &mut span);
            work += units;
            if units > 0 {
                steps_worked += 1;
            }
            self.elapsed += 1;
        }
        QuantumStats {
            allotment,
            quantum_len: steps,
            steps_worked,
            work,
            span,
            completed: self.is_complete(),
        }
    }
}

impl<D: Borrow<ExplicitDag>> JobExecutor for StealExecutor<D> {
    fn run_quantum(&mut self, allotment: u32, steps: u64) -> QuantumStats {
        if allotment > 0 && !self.dag.borrow().is_unit_weight() {
            return self.run_quantum_weighted(allotment, steps);
        }
        let mut work = 0u64;
        let mut steps_worked = 0u64;
        let mut span = 0.0f64;
        if allotment > 0 {
            self.resize(allotment as usize);
            for _ in 0..steps {
                if self.is_complete() {
                    break;
                }
                let done = self.step(allotment as usize, &mut span);
                work += done;
                // `steps_worked` honours the JobExecutor contract (steps
                // in which at least one task ran); a step lost entirely
                // to failed steals consumes wall-clock but no work, so
                // quanta containing one are correctly not "full".
                if done > 0 {
                    steps_worked += 1;
                }
                self.elapsed += 1;
            }
        }
        QuantumStats {
            allotment,
            quantum_len: steps,
            steps_worked,
            work,
            span,
            completed: self.is_complete(),
        }
    }

    fn is_complete(&self) -> bool {
        self.completed == self.dag.borrow().num_tasks() as u64
    }

    fn total_work(&self) -> u64 {
        self.dag.borrow().work()
    }

    fn total_span(&self) -> u64 {
        self.dag.borrow().weighted_span()
    }

    fn completed_work(&self) -> u64 {
        if self.dag.borrow().is_unit_weight() {
            self.completed
        } else {
            self.worked
        }
    }

    fn elapsed_steps(&self) -> u64 {
        self.elapsed
    }

    fn try_reset(&mut self) -> bool {
        self.reset();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_dag::generate::{chain, chain_bundle, fork_join_diamond};

    fn drive<D: Borrow<ExplicitDag>>(mut ex: StealExecutor<D>, a: u32, l: u64) -> u64 {
        while !ex.is_complete() {
            let s = ex.run_quantum(a, l);
            assert!(s.work > 0, "a live job must make progress each quantum");
        }
        ex.elapsed_steps()
    }

    #[test]
    fn completes_a_chain() {
        let d = chain(20);
        let steps = drive(StealExecutor::new(&d, 1), 4, 8);
        assert_eq!(steps, 20, "a chain admits no parallelism");
    }

    #[test]
    fn completes_a_diamond_with_speedup() {
        let d = fork_join_diamond(32);
        let mut ex = StealExecutor::new(&d, 7);
        while !ex.is_complete() {
            ex.run_quantum(8, 16);
        }
        // 34 tasks on 8 processors: well below the serial 34 steps even
        // with steal overhead. The bound is deliberately loose — the
        // exact step count depends on the RNG stream (21 with the
        // vendored SplitMix64 StdRng, 19 with upstream ChaCha), and the
        // property under test is speedup, not a particular stream.
        assert!(ex.elapsed_steps() < 26, "steps = {}", ex.elapsed_steps());
        assert_eq!(ex.completed_work(), 34);
    }

    #[test]
    fn work_stealing_bound_holds() {
        // T ≤ T1/a + O(T∞) whp; use a generous constant for the test.
        for seed in 0..5u64 {
            let d = chain_bundle(8, 50);
            let mut ex = StealExecutor::new(&d, seed);
            while !ex.is_complete() {
                ex.run_quantum(8, 25);
            }
            let bound = d.work() / 8 + 16 * d.span();
            assert!(
                ex.elapsed_steps() <= bound,
                "seed {seed}: {} > {bound}",
                ex.elapsed_steps()
            );
        }
    }

    #[test]
    fn steal_cycles_accumulate_on_imbalance() {
        // One long chain on 8 processors: 7 of them steal (and fail)
        // every step.
        let d = chain(64);
        let mut ex = StealExecutor::new(&d, 1);
        while !ex.is_complete() {
            ex.run_quantum(8, 16);
        }
        assert!(
            ex.steal_cycles() >= 7 * 60,
            "expected ≥ {} steal cycles, saw {}",
            7 * 60,
            ex.steal_cycles()
        );
    }

    #[test]
    fn quantum_span_accumulates_to_total() {
        let d = chain_bundle(6, 30);
        let mut ex = StealExecutor::new(&d, 9);
        let mut span = 0.0;
        while !ex.is_complete() {
            span += ex.run_quantum(4, 10).span;
        }
        assert!((span - d.span() as f64).abs() < 1e-9);
    }

    #[test]
    fn allotment_shrink_redistributes_orphans() {
        let d = chain_bundle(16, 20);
        let mut ex = StealExecutor::new(&d, 3);
        ex.run_quantum(16, 4); // spread work over 16 deques
        let before = ex.completed_work();
        let s = ex.run_quantum(2, 10); // shrink to 2 processors
        assert!(s.work > 0, "orphaned tasks must remain reachable");
        assert!(ex.completed_work() > before);
        // Run to completion on the small allotment.
        while !ex.is_complete() {
            ex.run_quantum(2, 10);
        }
        assert_eq!(ex.completed_work(), d.work());
    }

    #[test]
    fn zero_allotment_is_noop() {
        let d = chain(5);
        let mut ex = StealExecutor::new(&d, 1);
        let s = ex.run_quantum(0, 100);
        assert_eq!(s.work, 0);
        assert!(!ex.is_complete());
    }

    #[test]
    fn deterministic_for_seed() {
        let d = chain_bundle(8, 40);
        let run = |seed| {
            let mut ex = StealExecutor::new(&d, seed);
            let mut trace = Vec::new();
            while !ex.is_complete() {
                trace.push(ex.run_quantum(5, 8).work);
            }
            (trace, ex.steal_cycles())
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).1, run(43).1, "different seeds steal differently");
    }

    #[test]
    fn reset_replays_the_identical_run() {
        let d = chain_bundle(8, 40);
        let trace = |ex: &mut StealExecutor<&ExplicitDag>| {
            let mut t = Vec::new();
            while !ex.is_complete() {
                t.push(ex.run_quantum(5, 8).work);
            }
            (t, ex.steal_cycles())
        };
        let mut ex = StealExecutor::new(&d, 42);
        let first = trace(&mut ex);
        assert!(ex.try_reset());
        let second = trace(&mut ex);
        assert_eq!(first, second, "reset must replay the exact steal stream");
    }

    fn weighted_bundle(chains: u32, len: u32, cost: f64) -> ExplicitDag {
        chain_bundle(chains, len)
            .with_uniform_weight(cost)
            .expect("valid weight")
    }

    #[test]
    fn weighted_chain_serialises_costs() {
        use abg_dag::DagBuilder;
        // t0(2) -> t1(3) -> t2(1): 6 units, no parallelism to exploit.
        let mut b = DagBuilder::new();
        let t0 = b.add_weighted_task(2.0).unwrap();
        let t1 = b.add_weighted_task(3.0).unwrap();
        let t2 = b.add_task();
        b.add_edge(t0, t1).unwrap();
        b.add_edge(t1, t2).unwrap();
        let d = b.build().unwrap();
        let mut ex = StealExecutor::new(&d, 1);
        while !ex.is_complete() {
            ex.run_quantum(4, 8);
        }
        assert_eq!(ex.completed_work(), 6, "units, not tasks");
        assert_eq!(ex.total_work(), 6);
        assert_eq!(ex.total_span(), 6);
        assert_eq!(ex.elapsed_steps(), 6, "a chain admits no parallelism");
    }

    #[test]
    fn weighted_quantum_span_accumulates_to_weighted_span() {
        let d = weighted_bundle(6, 10, 3.0);
        let mut ex = StealExecutor::new(&d, 9);
        let mut span = 0.0;
        while !ex.is_complete() {
            span += ex.run_quantum(4, 10).span;
        }
        assert_eq!(ex.total_span(), 30);
        assert!((span - 30.0).abs() < 1e-9, "span = {span}");
        assert_eq!(ex.completed_work(), d.work());
    }

    #[test]
    fn weighted_shrink_pauses_residual_work() {
        let d = weighted_bundle(8, 6, 5.0);
        let mut ex = StealExecutor::new(&d, 3);
        ex.run_quantum(8, 2); // 8 tasks mid-flight, each with residual
        let before = ex.completed_work();
        while !ex.is_complete() {
            ex.run_quantum(2, 10); // shrink: 6 residuals go to `paused`
        }
        assert!(ex.completed_work() > before);
        assert_eq!(ex.completed_work(), d.work(), "no residual unit lost");
    }

    #[test]
    fn weighted_reset_replays_the_identical_run() {
        let d = weighted_bundle(8, 10, 2.0);
        let trace = |ex: &mut StealExecutor<&ExplicitDag>| {
            let mut t = Vec::new();
            while !ex.is_complete() {
                let s = ex.run_quantum(5, 8);
                t.push((s.work, s.span.to_bits()));
            }
            (t, ex.steal_cycles())
        };
        let mut ex = StealExecutor::new(&d, 42);
        let first = trace(&mut ex);
        assert!(ex.try_reset());
        assert_eq!(first, trace(&mut ex), "reset must replay the run");
    }

    #[test]
    fn unit_weight_table_routes_the_unit_path() {
        let d = chain_bundle(8, 40);
        let tabled = chain_bundle(8, 40)
            .with_uniform_weight(1.0)
            .expect("unit weight is valid");
        assert!(tabled.is_unit_weight());
        let run = |dag: &ExplicitDag| {
            let mut ex = StealExecutor::new(dag, 42);
            let mut t = Vec::new();
            while !ex.is_complete() {
                let s = ex.run_quantum(5, 8);
                t.push((s.work, s.span.to_bits()));
            }
            (t, ex.steal_cycles())
        };
        assert_eq!(run(&d), run(&tabled), "all-unit table must be a no-op");
    }

    #[test]
    fn abp_requests_whole_machine() {
        use abg_control::RequestCalculator;
        let r = abp_request(64);
        assert_eq!(r.initial_request(), 64.0);
    }

    #[test]
    fn asteal_is_the_agreedy_rule() {
        use abg_control::RequestCalculator;
        let mut a = ASteal::paper_default();
        let q = QuantumStats {
            allotment: 1,
            quantum_len: 10,
            steps_worked: 10,
            work: 10,
            span: 10.0,
            completed: false,
        };
        assert_eq!(
            a.observe(&q),
            2.0,
            "efficient satisfied quantum doubles desire"
        );
    }
}
