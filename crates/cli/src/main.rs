//! `abg-cli` — regenerates every figure and theorem check of the ABG
//! paper as plain-text tables (or CSV).
//!
//! ```text
//! abg-cli <command> [--full] [--csv] [--seed N]
//!
//! commands:
//!   fig1      A-Greedy request instability (Figure 1)
//!   fig2      B-Greedy fractional quantum statistics (Figure 2)
//!   fig4      ABG vs A-Greedy transient trajectories (Figure 4)
//!   fig5      single-job sweep over transition factors (Figure 5)
//!   fig6      multiprogrammed load sweep (Figure 6)
//!   thm1      control-theoretic metrics grid (Theorem 1)
//!   lemma2    request/parallelism envelope check (Lemma 2)
//!   thm3      running-time bound under adversarial availability (Theorem 3)
//!   thm4      waste bound check (Theorem 4)
//!   thm5      makespan / response-time bound check (Theorem 5)
//!   ablate    design-choice ablations (rate|quantum|agreedy|scheduler|semantics|all)
//!   steal     ABG vs A-Steal vs ABP on the work-stealing substrate
//!   adaptive  adaptive quantum length (the paper's future work)
//!   robustness irregular parallelism profiles
//!   open      open-system ρ sweep (sustained Poisson arrivals)
//!   all       every experiment at scaled size
//! ```
//!
//! `--full` switches `fig5`/`fig6` to the paper's full scale (still
//! sub-second thanks to the fast-forward executors); the default is a
//! smaller sweep that preserves the shape.

mod commands;
mod options;

use options::Options;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", Options::USAGE);
            return ExitCode::FAILURE;
        }
    };
    let Some(command) = opts.command.clone() else {
        println!("{}", Options::USAGE);
        return ExitCode::SUCCESS;
    };
    if let Some(n) = opts.threads {
        // The harness reads ABG_THREADS through
        // `abg::experiments::configured_threads`; the flag is a per-run
        // override of that variable. Results are thread-count
        // independent — this pins wall-clock behaviour only.
        std::env::set_var("ABG_THREADS", n.to_string());
    }
    match commands::run(&command, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
