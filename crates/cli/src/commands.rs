//! Subcommand implementations: each regenerates one figure or analysis
//! and prints it through [`abg::report::Table`].

use crate::options::Options;
use abg::experiments::{
    self, AblationConfig, AdaptiveQuantumConfig, AllocatorPolicyConfig, MultiprogrammedConfig,
    OpenSystemConfig, OpenSystemRow, OpenWorkload, OverheadConfig, RobustnessConfig,
    SchedulerOpenPoint, SingleJobSweepConfig, StealingConfig, TransientConfig,
};
use abg::report::{f3, mark, Chart, Table};
use abg_sched::JobExecutor as _;

/// Dispatches a subcommand.
pub fn run(command: &str, opts: &Options) -> Result<(), String> {
    match command {
        "fig1" => fig1(opts),
        "fig2" => fig2(opts),
        "fig4" => fig4(opts),
        "fig5" => fig5(opts),
        "fig6" => fig6(opts),
        "thm1" => thm1(opts),
        "lemma2" => lemma2(opts),
        "thm3" => thm3(opts),
        "thm4" => thm4(opts),
        "thm5" => thm5(opts),
        "ablate" => ablate(opts)?,
        "steal" => steal(opts),
        "adaptive" => adaptive(opts),
        "robustness" => robustness(opts),
        "allocators" => allocators(opts),
        "overhead" => overhead(opts),
        "bench" => bench(opts)?,
        "open" => open(opts)?,
        "all" => all(opts),
        other => return Err(format!("unknown command '{other}' (try --help)")),
    }
    Ok(())
}

fn emit(title: &str, table: &Table, opts: &Options) {
    if opts.csv {
        print!("{}", table.render_csv());
    } else {
        println!("== {title} ==");
        print!("{}", table.render());
        println!();
    }
}

fn fig1(opts: &Options) {
    let mut cfg = TransientConfig::paper();
    cfg.quanta = 16; // the figure shows the sustained oscillation
    let res = experiments::transient_comparison(&cfg);
    let mut t = Table::new(&["quantum", "agreedy_request", "parallelism"]);
    for p in &res.agreedy {
        t.row_owned(vec![
            p.quantum.to_string(),
            f3(p.request),
            res.parallelism.to_string(),
        ]);
    }
    emit(
        "Figure 1: request instability of A-Greedy (constant parallelism)",
        &t,
        opts,
    );
}

fn fig2(_opts: &Options) {
    // The worked example of Section 2: exact numbers, not a sweep.
    let dag = abg_dag::generate::figure2_job();
    let mut ex = abg_sched::BGreedyExecutor::new(&dag);
    let warmup = ex.run_quantum(1, 2);
    let q = ex.run_quantum(4, 3);
    println!("== Figure 2: B-Greedy fractional quantum statistics ==");
    println!("job: 1 source forking into 5 chains of 3 tasks (levels [1, 5, 5, 5])");
    println!(
        "warm-up quantum (a=1, 2 steps): T1 = {}, T∞ = {:.1}",
        warmup.work, warmup.span
    );
    println!(
        "measured quantum (a=4, 3 steps): T1(q) = {}, T∞(q) = {:.1}, A(q) = {:.0}",
        q.work,
        q.span,
        q.average_parallelism().expect("work was done")
    );
    println!("paper's Figure 2 values:         T1(q) = 12, T∞(q) = 2.4, A(q) = 5");
    println!();
}

fn fig4(opts: &Options) {
    let cfg = TransientConfig::paper();
    let res = experiments::transient_comparison(&cfg);
    let mut t = Table::new(&["quantum", "abg_request", "agreedy_request", "parallelism"]);
    for (a, g) in res.abg.iter().zip(&res.agreedy) {
        t.row_owned(vec![
            a.quantum.to_string(),
            f3(a.request),
            f3(g.request),
            res.parallelism.to_string(),
        ]);
    }
    emit(
        "Figure 4: transient and steady-state behaviour (r = 0.2, ρ = 2)",
        &t,
        opts,
    );
    if opts.plot && !opts.csv {
        let abg: Vec<f64> = res.abg.iter().map(|p| p.request).collect();
        let agreedy: Vec<f64> = res.agreedy.iter().map(|p| p.request).collect();
        let target = vec![res.parallelism as f64; abg.len()];
        let mut c = Chart::new(10);
        c.series("parallelism A", '-', &target)
            .series("A-Greedy d(q)", '*', &agreedy)
            .series("ABG d(q)", '#', &abg);
        print!("{}", c.render());
        println!();
    }
}

fn fig5(opts: &Options) {
    let mut cfg = if opts.full {
        SingleJobSweepConfig::paper()
    } else {
        let mut c = SingleJobSweepConfig::scaled();
        c.factors = vec![2, 5, 10, 20, 30, 40, 60, 80, 100];
        c.jobs_per_factor = 16;
        c.quantum_len = 200;
        c
    };
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    let points = experiments::single_job_sweep(&cfg);
    let mut t = Table::new(&[
        "factor",
        "measured_cl",
        "abg_t/tinf",
        "agreedy_t/tinf",
        "abg_w/t1",
        "agreedy_w/t1",
        "time_ratio",
        "waste_ratio",
    ]);
    for p in &points {
        t.row_owned(vec![
            p.factor.to_string(),
            f3(p.measured_factor),
            f3(p.abg_time_norm),
            f3(p.agreedy_time_norm),
            f3(p.abg_waste_norm),
            f3(p.agreedy_waste_norm),
            f3(p.time_ratio),
            f3(p.waste_ratio),
        ]);
    }
    emit(
        "Figure 5: single-job running time and waste vs transition factor",
        &t,
        opts,
    );
    let n = points.len() as f64;
    let tr: f64 = points.iter().map(|p| p.time_ratio).sum::<f64>() / n;
    let wr: f64 = points.iter().map(|p| p.waste_ratio).sum::<f64>() / n;
    if !opts.csv {
        println!(
            "mean A-Greedy/ABG ratios: time {:.3} (paper ≈ 1.2), waste {:.3} (paper ≈ 2)",
            tr, wr
        );
        println!();
    }
    if opts.plot && !opts.csv {
        let abg: Vec<f64> = points.iter().map(|p| p.abg_time_norm).collect();
        let agreedy: Vec<f64> = points.iter().map(|p| p.agreedy_time_norm).collect();
        let mut c = Chart::new(8);
        c.series("A-Greedy T/T∞ per factor", '*', &agreedy).series(
            "ABG T/T∞ per factor",
            '#',
            &abg,
        );
        print!("{}", c.render());
        println!();
    }
}

fn fig6(opts: &Options) {
    let mut cfg = if opts.full {
        MultiprogrammedConfig::paper()
    } else {
        let mut c = MultiprogrammedConfig::scaled();
        c.loads = vec![0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0];
        c.sets_per_load = 12;
        c.processors = 128;
        c.quantum_len = 200;
        c.max_factor = 100;
        c.pairs = 3;
        c
    };
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    let points = experiments::multiprogrammed_sweep(&cfg);
    let mut t = Table::new(&[
        "load",
        "jobs",
        "abg_m/m*",
        "agreedy_m/m*",
        "abg_r/r*",
        "agreedy_r/r*",
        "makespan_ratio",
        "response_ratio",
    ]);
    for p in &points {
        t.row_owned(vec![
            f3(p.measured_load),
            f3(p.mean_jobs),
            f3(p.abg_makespan_norm),
            f3(p.agreedy_makespan_norm),
            f3(p.abg_response_norm),
            f3(p.agreedy_response_norm),
            f3(p.makespan_ratio),
            f3(p.response_ratio),
        ]);
    }
    emit(
        "Figure 6: multiprogrammed makespan and mean response time vs load",
        &t,
        opts,
    );
}

fn thm1(opts: &Options) {
    let rows =
        experiments::theorem1_grid(&[2.0, 10.0, 32.0, 128.0], &[0.0, 0.2, 0.4, 0.6, 0.8], 64);
    let mut t = Table::new(&[
        "parallelism",
        "rate",
        "pole",
        "bibo",
        "sse",
        "overshoot",
        "measured_rate",
    ]);
    for r in &rows {
        t.row_owned(vec![
            f3(r.parallelism),
            f3(r.rate),
            f3(r.pole),
            mark(r.bibo_stable).to_string(),
            format!("{:.2e}", r.steady_state_error),
            format!("{:.2e}", r.max_overshoot),
            f3(r.measured_rate),
        ]);
    }
    emit(
        "Theorem 1: BIBO stability, zero SSE, zero overshoot, convergence rate r",
        &t,
        opts,
    );
}

fn seed_of(opts: &Options) -> u64 {
    opts.seed.unwrap_or(2008)
}

fn lemma2(opts: &Options) {
    let mut t = Table::new(&["factor", "rate", "check", "measured", "bound", "holds"]);
    for &factor in &[2u64, 4, 8, 16] {
        for &rate in &[0.05, 0.2] {
            for c in experiments::lemma2_check(factor, rate, 200, 3, 128, seed_of(opts)) {
                t.row_owned(vec![
                    factor.to_string(),
                    f3(rate),
                    c.quantity.to_string(),
                    f3(c.measured),
                    f3(c.bound),
                    mark(c.holds).to_string(),
                ]);
            }
        }
    }
    emit("Lemma 2: request / parallelism envelope", &t, opts);
}

fn thm3(opts: &Options) {
    let mut t = Table::new(&["factor", "rate", "measured_T", "bound", "holds"]);
    for &factor in &[2u64, 5, 10, 20, 50] {
        for &rate in &[0.0, 0.2, 0.5] {
            let c = experiments::theorem3_check(factor, rate, 200, 3, 64, seed_of(opts));
            t.row_owned(vec![
                factor.to_string(),
                f3(rate),
                f3(c.measured),
                f3(c.bound),
                mark(c.holds).to_string(),
            ]);
        }
    }
    emit(
        "Theorem 3: running time under adversarial availability (trim analysis)",
        &t,
        opts,
    );
}

fn thm4(opts: &Options) {
    let mut t = Table::new(&["factor", "rate", "measured_W", "bound", "holds"]);
    for &factor in &[2u64, 3, 4, 8, 16] {
        for &rate in &[0.05, 0.2] {
            match experiments::theorem4_check(factor, rate, 200, 3, 128, seed_of(opts)) {
                Some(c) => {
                    t.row_owned(vec![
                        factor.to_string(),
                        f3(rate),
                        f3(c.measured),
                        f3(c.bound),
                        mark(c.holds).to_string(),
                    ]);
                }
                None => {
                    t.row_owned(vec![
                        factor.to_string(),
                        f3(rate),
                        "-".into(),
                        "-".into(),
                        "n/a (r ≥ 1/C_L)".into(),
                    ]);
                }
            }
        }
    }
    emit("Theorem 4: processor waste bound", &t, opts);
}

fn thm5(opts: &Options) {
    let mut t = Table::new(&["load", "check", "measured", "bound", "holds"]);
    for &load in &[0.5, 1.0, 2.0] {
        match experiments::theorem5_check(load, 4, 0.2, 100, 2, 64, seed_of(opts)) {
            Some(checks) => {
                for c in checks {
                    t.row_owned(vec![
                        f3(load),
                        c.quantity.to_string(),
                        f3(c.measured),
                        f3(c.bound),
                        mark(c.holds).to_string(),
                    ]);
                }
            }
            None => {
                t.row_owned(vec![
                    f3(load),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "n/a".into(),
                ]);
            }
        }
    }
    emit(
        "Theorem 5: makespan and mean response time bounds (ABG + DEQ)",
        &t,
        opts,
    );
}

fn ablate(opts: &Options) -> Result<(), String> {
    let which = opts.positional.first().map(String::as_str).unwrap_or("all");
    let mut cfg = AblationConfig::default_probe();
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    let run_rate = |opts: &Options| {
        let rows = experiments::rate_ablation(&cfg, &[0.0, 0.2, 0.4, 0.6, 0.8]);
        let mut t = Table::new(&["rate", "time/tinf", "waste/t1"]);
        for r in &rows {
            t.row_owned(vec![
                f3(r.rate),
                f3(r.quality.time_norm),
                f3(r.quality.waste_norm),
            ]);
        }
        let governed = experiments::governed_rate_quality(&cfg, 0.2);
        t.row_owned(vec![
            "governed (r ≤ 0.9/Ĉ_L)".into(),
            f3(governed.time_norm),
            f3(governed.waste_norm),
        ]);
        emit("Ablation: ABG convergence rate r", &t, opts);
    };
    let run_quantum = |opts: &Options| {
        let rows = experiments::quantum_ablation(&cfg, &[50, 100, 200, 400, 800]);
        let mut t = Table::new(&["L", "abg_t", "abg_w", "agreedy_t", "agreedy_w"]);
        for r in &rows {
            t.row_owned(vec![
                r.quantum_len.to_string(),
                f3(r.abg.time_norm),
                f3(r.abg.waste_norm),
                f3(r.agreedy.time_norm),
                f3(r.agreedy.waste_norm),
            ]);
        }
        emit("Ablation: quantum length L", &t, opts);
    };
    let run_agreedy = |opts: &Options| {
        let rows = experiments::agreedy_ablation(&cfg, &[1.5, 2.0, 4.0], &[0.5, 0.8, 0.95]);
        let mut t = Table::new(&["rho", "delta", "time/tinf", "waste/t1"]);
        for r in &rows {
            t.row_owned(vec![
                f3(r.responsiveness),
                f3(r.utilization),
                f3(r.quality.time_norm),
                f3(r.quality.waste_norm),
            ]);
        }
        emit("Ablation: A-Greedy ρ × δ", &t, opts);
    };
    let run_scheduler = |opts: &Options| {
        let rows = experiments::scheduler_ablation(&cfg);
        let mut t = Table::new(&["scheduler", "time/tinf", "waste/t1"]);
        for r in &rows {
            t.row_owned(vec![
                r.scheduler.clone(),
                f3(r.quality.time_norm),
                f3(r.quality.waste_norm),
            ]);
        }
        emit("Ablation: task-scheduler priority rule", &t, opts);
    };
    let run_semantics = |opts: &Options| {
        let rows = experiments::semantics_ablation(&cfg);
        let mut t = Table::new(&["model", "scheduler", "time/tinf", "waste/t1"]);
        for r in &rows {
            t.row_owned(vec![
                r.model.clone(),
                r.scheduler.clone(),
                f3(r.quality.time_norm),
                f3(r.quality.waste_norm),
            ]);
        }
        emit("Ablation: pipelined vs barrier phase semantics", &t, opts);
    };
    match which {
        "rate" => run_rate(opts),
        "quantum" => run_quantum(opts),
        "agreedy" => run_agreedy(opts),
        "scheduler" => run_scheduler(opts),
        "semantics" => run_semantics(opts),
        "all" => {
            run_rate(opts);
            run_quantum(opts);
            run_agreedy(opts);
            run_scheduler(opts);
            run_semantics(opts);
        }
        other => {
            return Err(format!(
                "unknown ablation '{other}' (rate|quantum|agreedy|scheduler|semantics|all)"
            ));
        }
    }
    Ok(())
}

fn steal(opts: &Options) {
    let mut cfg = StealingConfig::default_probe();
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    let rows = experiments::stealing_comparison(&cfg);
    let mut t = Table::new(&["scheduler", "time/tinf", "waste/t1"]);
    for r in &rows {
        t.row_owned(vec![r.scheduler.clone(), f3(r.time_norm), f3(r.waste_norm)]);
    }
    emit(
        "Work stealing: ABG vs A-Steal vs ABP vs A-Control-over-stealing",
        &t,
        opts,
    );
}

fn adaptive(opts: &Options) {
    let mut cfg = AdaptiveQuantumConfig::default_probe();
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    let rows = experiments::adaptive_quantum_comparison(&cfg);
    let mut t = Table::new(&["policy", "time/tinf", "waste/t1", "quanta", "reallocations"]);
    for r in &rows {
        t.row_owned(vec![
            r.policy.clone(),
            f3(r.time_norm),
            f3(r.waste_norm),
            f3(r.mean_quanta),
            f3(r.mean_reallocations),
        ]);
    }
    emit("Future work: adaptive quantum length under ABG", &t, opts);
}

fn robustness(opts: &Options) {
    let mut cfg = RobustnessConfig::default_probe();
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    let rows = experiments::robustness_comparison(&cfg);
    let mut t = Table::new(&[
        "profile",
        "c_l",
        "cv",
        "changes/klvl",
        "abg_t",
        "agreedy_t",
        "abg_w",
        "agreedy_w",
    ]);
    for r in &rows {
        t.row_owned(vec![
            r.class.clone(),
            f3(r.transition_factor),
            f3(r.coefficient_of_variation),
            f3(r.changes_per_kilolevel),
            f3(r.abg_time_norm),
            f3(r.agreedy_time_norm),
            f3(r.abg_waste_norm),
            f3(r.agreedy_waste_norm),
        ]);
    }
    emit(
        "Robustness: irregular parallelism profiles and alternative job characteristics",
        &t,
        opts,
    );
}

fn allocators(opts: &Options) {
    let mut cfg = AllocatorPolicyConfig::default_probe();
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    let rows = experiments::allocator_policy_comparison(&cfg);
    let mut t = Table::new(&["policy", "load", "m/m*", "r/r*", "waste/work"]);
    for r in &rows {
        t.row_owned(vec![
            r.policy.clone(),
            f3(r.load),
            f3(r.makespan_norm),
            f3(r.response_norm),
            f3(r.waste_norm),
        ]);
    }
    emit(
        "OS allocator policies: DEQ vs round-robin vs proportional (ABG jobs)",
        &t,
        opts,
    );
}

fn overhead(opts: &Options) {
    let mut cfg = OverheadConfig::default_probe();
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    let rows = experiments::overhead_sweep(&cfg);
    let mut t = Table::new(&[
        "overhead/L",
        "abg_t",
        "agreedy_t",
        "abg_w",
        "agreedy_w",
        "abg_reallocs",
        "agreedy_reallocs",
    ]);
    for r in &rows {
        t.row_owned(vec![
            f3(r.overhead_fraction),
            f3(r.abg_time_norm),
            f3(r.agreedy_time_norm),
            f3(r.abg_waste_norm),
            f3(r.agreedy_waste_norm),
            f3(r.abg_reallocations),
            f3(r.agreedy_reallocations),
        ]);
    }
    emit(
        "Reallocation overhead: pricing request instability",
        &t,
        opts,
    );
}

/// Renders the kernel suite as a JSON document (hand-rolled: the
/// workspace deliberately has no JSON dependency).
fn bench_json(
    mode: &str,
    cfg: &abg::experiments::KernelBenchConfig,
    results: &[abg::experiments::KernelResult],
    speedup: Option<f64>,
) -> String {
    let num = |x: f64| {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "null".to_string()
        }
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"abg-bench-kernels/v2\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    s.push_str(&format!("  \"min_wall_ms\": {},\n", cfg.min_wall_ms));
    s.push_str("  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"iters\": {}, \"ops\": {}, \"steps\": {}, \
             \"wall_ms\": {}, \"ops_per_sec\": {}, \"steps_per_sec\": {}, \
             \"peak_jobs_in_system\": {}, \"bytes_per_live_job\": {}}}{}\n",
            r.kernel,
            r.iters,
            r.ops,
            r.steps,
            num(r.wall_ms),
            num(r.ops_per_sec),
            num(r.steps_per_sec),
            r.peak_jobs_in_system,
            r.bytes_per_live_job,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"derived\": {\"chain_macro_over_reference_steps_per_sec\": ");
    match speedup {
        Some(x) => s.push_str(&num(x)),
        None => s.push_str("null"),
    }
    s.push_str("}\n}\n");
    s
}

/// Extracts the named kernel's `steps_per_sec` from a baseline JSON
/// document produced by [`bench_json`] (hand-rolled scan; the workspace
/// deliberately has no JSON dependency).
fn baseline_steps_per_sec(json: &str, kernel: &str) -> Option<f64> {
    let marker = format!("\"kernel\": \"{kernel}\"");
    let rest = &json[json.find(&marker)?..];
    let row = &rest[..rest.find('}')?];
    let key = "\"steps_per_sec\": ";
    let val = &row[row.find(key)? + key.len()..];
    // Tolerate trailing fields after the value (v2 rows carry the
    // memory-scale figures behind it) as well as end-of-row.
    val.split(',').next()?.trim().parse().ok()
}

/// Kernels the `--check` regression gate covers: the hot-loop kernels
/// whose throughput exercises each simulation regime — the serial
/// macro-stepping chain, the wide-frontier bulk paths (tree and
/// bundle), the event-driven open-system driver at moderate load
/// (`open_system`) and in its high-load macro-stepping regime
/// (`open_event`), the sharded open-system engine whose aggregate
/// committed quanta price the per-shard population win
/// (`open_sharded`), the hierarchical two-level driver whose epoch
/// barriers and desire feedback ride on the same decomposition
/// (`open_hier`), the completion-heavy churn kernel that prices the
/// slab live-set storage (`open_churn`), the monomorphized unified
/// quantum core in mixed closed+open use, the weighted-residual frontier
/// path (`weighted_frontier`), and the open system fed by generated
/// weighted workflows (`workflow_open`). All are stable well within
/// the 30% band on an otherwise idle machine, so a trip means a real
/// regression, not noise.
const GATED_KERNELS: [&str; 11] = [
    "chain_macro",
    "forkjoin_tree",
    "forkjoin_bundle",
    "weighted_frontier",
    "open_system",
    "open_event",
    "open_sharded",
    "open_hier",
    "open_churn",
    "workflow_open",
    "unified_engine",
];

/// The `--check` regression gate: every gated kernel's fresh throughput
/// must stay above 70% of the committed baseline.
fn bench_check(path: &str, results: &[abg::experiments::KernelResult]) -> Result<(), String> {
    let baseline =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read baseline {path}: {e}"))?;
    for kernel in GATED_KERNELS {
        let base = baseline_steps_per_sec(&baseline, kernel)
            .ok_or_else(|| format!("no {kernel} steps_per_sec in {path}"))?;
        let cur = results
            .iter()
            .find(|r| r.kernel == kernel)
            .map(|r| r.steps_per_sec)
            .ok_or_else(|| format!("suite did not run {kernel}"))?;
        let floor = base * 0.7;
        if cur < floor {
            return Err(format!(
                "{kernel} regression: {cur:.0} steps/s is below 70% of baseline {base:.0} \
                 (floor {floor:.0}, from {path})"
            ));
        }
        println!(
            "bench check ok: {kernel} {cur:.0} steps/s vs baseline {base:.0} (floor {floor:.0})"
        );
    }
    Ok(())
}

fn bench(opts: &Options) -> Result<(), String> {
    let mode = match opts.positional.first().map(String::as_str) {
        None => "full",
        Some("smoke") => "smoke",
        Some(other) => return Err(format!("unknown bench size '{other}' (expected 'smoke')")),
    };
    let mut cfg = if mode == "smoke" {
        experiments::KernelBenchConfig::smoke()
    } else {
        experiments::KernelBenchConfig::full()
    };
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    if opts.check.is_some() {
        // The smoke suite's few-ms windows are fine for "does every
        // kernel run" but far too jittery to gate on: back-to-back
        // 2 ms chain_macro samples vary by 4× on a shared machine.
        // Gated runs measure long enough to amortize scheduler noise.
        cfg.min_wall_ms = cfg.min_wall_ms.max(100);
    }
    let results = experiments::run_kernel_suite(&cfg);
    let speedup = experiments::kernel_speedup(&results, "chain_macro", "chain_reference");
    let mut t = Table::new(&[
        "kernel",
        "iters",
        "ops",
        "steps",
        "wall_ms",
        "ops/s",
        "steps/s",
        "peak_jobs",
        "B/job",
    ]);
    for r in &results {
        let dash_zero = |v: u64| {
            if v == 0 {
                "-".to_string()
            } else {
                v.to_string()
            }
        };
        t.row_owned(vec![
            r.kernel.clone(),
            r.iters.to_string(),
            r.ops.to_string(),
            r.steps.to_string(),
            format!("{:.2}", r.wall_ms),
            format!("{:.0}", r.ops_per_sec),
            format!("{:.0}", r.steps_per_sec),
            dash_zero(r.peak_jobs_in_system),
            dash_zero(r.bytes_per_live_job),
        ]);
    }
    emit(
        "Kernel benchmark suite (wall-clock; machine-dependent)",
        &t,
        opts,
    );
    if !opts.csv {
        match speedup {
            Some(s) => println!(
                "macro-stepping kernel vs clone-and-rescan reference on the serial chain: {s:.2}x steps/s"
            ),
            None => println!("chain speedup unavailable (reference kernel did no steps)"),
        }
        println!();
    }
    if opts.json {
        let path = "BENCH_kernels.json";
        std::fs::write(path, bench_json(mode, &cfg, &results, speedup))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &opts.check {
        bench_check(path, &results)?;
    }
    Ok(())
}

/// Renders one scheduler's fields of an open-system row for the table:
/// statistics when stable, a dash otherwise.
fn open_cells(p: &SchedulerOpenPoint) -> Vec<String> {
    if p.stable {
        vec![
            format!("{:.1}±{:.1}", p.mean_response, p.response_half_width),
            f3(p.slowdown_p50),
            f3(p.slowdown_p95),
            f3(p.slowdown_p99),
        ]
    } else {
        vec!["unstable".into(), "-".into(), "-".into(), "-".into()]
    }
}

/// Renders the open-system sweep as a JSON document (hand-rolled: the
/// workspace deliberately has no JSON dependency). `NaN` statistics of
/// unstable points become `null`.
fn open_json(mode: &str, cfg: &OpenSystemConfig, rows: &[OpenSystemRow]) -> String {
    let num = |x: f64| {
        if x.is_finite() {
            format!("{x:.6}")
        } else {
            "null".to_string()
        }
    };
    let point = |p: &SchedulerOpenPoint| {
        format!(
            "{{\"stable\": {}, \"mean_response\": {}, \"response_half_width\": {}, \
             \"slowdown_p50\": {}, \"slowdown_p95\": {}, \"slowdown_p99\": {}, \
             \"mean_jobs_in_system\": {}, \"measured_utilization\": {}, \
             \"quanta\": {}, \"arrivals\": {}}}",
            p.stable,
            num(p.mean_response),
            num(p.response_half_width),
            num(p.slowdown_p50),
            num(p.slowdown_p95),
            num(p.slowdown_p99),
            num(p.mean_jobs_in_system),
            num(p.measured_utilization),
            p.quanta,
            p.arrivals,
        )
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"abg-open-system/v1\",\n");
    s.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    s.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    s.push_str(&format!(
        "  \"processors\": {}, \"quantum_len\": {}, \"shards\": {},\n",
        cfg.processors, cfg.quantum_len, cfg.shards
    ));
    s.push_str(&format!(
        "  \"groups\": {}, \"group_alloc\": \"{}\", \"realloc_epoch\": {},\n",
        cfg.groups,
        cfg.group_alloc.name(),
        cfg.realloc_epoch
    ));
    s.push_str(&format!(
        "  \"fingerprint\": \"{:#018x}\",\n",
        experiments::open_fingerprint(rows)
    ));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"rho\": {}, \"mean_gap\": {}, \"expected_work\": {}, \"abg\": {}, \
             \"agreedy\": {}}}{}\n",
            num(r.rho),
            num(r.mean_gap),
            num(r.expected_work),
            point(&r.abg),
            point(&r.agreedy),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

fn open(opts: &Options) -> Result<(), String> {
    let mut cfg = if opts.smoke {
        OpenSystemConfig::smoke()
    } else {
        OpenSystemConfig::paper()
    };
    if let Some(seed) = opts.seed {
        cfg.seed = seed;
    }
    if let Some(rho) = opts.rho {
        cfg.rhos = vec![rho];
    }
    if let Some(shards) = opts.shards {
        cfg.shards = shards;
    }
    if let Some(groups) = opts.groups {
        cfg.groups = groups;
    }
    if let Some(name) = &opts.group_alloc {
        cfg.group_alloc = name.parse()?;
    }
    if let Some(epoch) = opts.realloc_epoch {
        cfg.realloc_epoch = epoch;
    }
    if opts.workflow.is_some() && opts.dag_file.is_some() {
        return Err("--workflow and --dag-file are mutually exclusive".into());
    }
    if let Some(name) = &opts.workflow {
        let kind: abg_workload::WorkflowKind = name.parse()?;
        // Smoke keeps arrivals small enough for the CI step; the full
        // sweep uses a wider stage fan-out.
        let scale = if opts.smoke { 8 } else { 16 };
        cfg.workload = OpenWorkload::Workflow { kind, scale };
    }
    if let Some(path) = &opts.dag_file {
        let dag = abg_workload::load_dag(path).map_err(|e| e.to_string())?;
        cfg.workload = OpenWorkload::Trace(std::sync::Arc::new(dag));
    }
    // Reject an inconsistent measurement setup with a message instead
    // of letting the sweep panic mid-run.
    cfg.validate()
        .map_err(|e| format!("invalid open-system configuration: {e}"))?;
    let rows = experiments::open_system_sweep(&cfg);
    if opts.json {
        print!(
            "{}",
            open_json(if opts.smoke { "smoke" } else { "paper" }, &cfg, &rows)
        );
        return Ok(());
    }
    let mut t = Table::new(&[
        "rho",
        "abg_mrt",
        "abg_sd50",
        "abg_sd95",
        "abg_sd99",
        "agreedy_mrt",
        "ag_sd50",
        "ag_sd95",
        "ag_sd99",
    ]);
    for r in &rows {
        let mut cells = vec![f3(r.rho)];
        cells.extend(open_cells(&r.abg));
        cells.extend(open_cells(&r.agreedy));
        t.row_owned(cells);
    }
    emit(
        "Open system: steady-state response time and slowdown vs offered load (DEQ)",
        &t,
        opts,
    );
    if !opts.csv {
        let sharding = if cfg.groups > 1 {
            format!(
                " across {} groups ({} reallocation every {} quanta)",
                cfg.groups,
                cfg.group_alloc.name(),
                cfg.realloc_epoch
            )
        } else if cfg.shards > 1 {
            format!(" across {} shards", cfg.shards)
        } else {
            String::new()
        };
        println!(
            "E[T1] = {:.1} steps/job on P = {}{sharding}; unstable points tripped saturation \
             detection",
            rows.first().map(|r| r.expected_work).unwrap_or(f64::NAN),
            cfg.processors,
        );
        println!();
    }
    Ok(())
}

fn all(opts: &Options) {
    fig1(opts);
    fig2(opts);
    fig4(opts);
    fig5(opts);
    fig6(opts);
    thm1(opts);
    lemma2(opts);
    thm3(opts);
    thm4(opts);
    thm5(opts);
    let _ = ablate(opts);
    steal(opts);
    adaptive(opts);
    robustness(opts);
    allocators(opts);
    overhead(opts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg::experiments::KernelResult;

    fn fake_result(kernel: &str, steps_per_sec: f64) -> KernelResult {
        KernelResult {
            kernel: kernel.to_string(),
            iters: 1,
            ops: 100,
            steps: 100,
            wall_ms: 1.0,
            ops_per_sec: steps_per_sec,
            steps_per_sec,
            peak_jobs_in_system: 42,
            bytes_per_live_job: 128,
        }
    }

    #[test]
    fn baseline_parser_round_trips_bench_json() {
        let cfg = abg::experiments::KernelBenchConfig::smoke();
        let results = vec![
            fake_result("chain_macro", 123456.789),
            fake_result("chain_reference", 500.0),
        ];
        let json = bench_json("smoke", &cfg, &results, Some(2.0));
        let got = baseline_steps_per_sec(&json, "chain_macro").unwrap();
        assert!((got - 123456.789).abs() < 1e-2);
        assert!(baseline_steps_per_sec(&json, "no_such_kernel").is_none());
    }

    /// A full result set for every gated kernel at the given fraction of
    /// a 1000 steps/s baseline, except `slow_kernel` (if any), which
    /// runs at `slow_frac`.
    fn gated_results(frac: f64, slow_kernel: Option<(&str, f64)>) -> Vec<KernelResult> {
        GATED_KERNELS
            .iter()
            .map(|&k| {
                let f = match slow_kernel {
                    Some((s, sf)) if s == k => sf,
                    _ => frac,
                };
                fake_result(k, 1000.0 * f)
            })
            .collect()
    }

    #[test]
    fn bench_check_trips_only_below_the_floor() {
        let cfg = abg::experiments::KernelBenchConfig::smoke();
        let baseline = gated_results(1.0, None);
        let dir = std::env::temp_dir().join("abg_bench_check_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        std::fs::write(&path, bench_json("smoke", &cfg, &baseline, None)).unwrap();
        let path = path.to_str().unwrap();

        // At 71% of baseline: passes. At 69%: trips.
        assert!(bench_check(path, &gated_results(0.71, None)).is_ok());
        let err = bench_check(path, &gated_results(0.69, None)).unwrap_err();
        assert!(err.contains("regression"), "{err}");
        // Every gated kernel trips the gate individually, even with the
        // others comfortably above the floor.
        for kernel in GATED_KERNELS {
            let err = bench_check(path, &gated_results(1.0, Some((kernel, 0.69)))).unwrap_err();
            assert!(
                err.contains(kernel) && err.contains("regression"),
                "{kernel}: {err}"
            );
        }
        // Missing baseline file or kernel is an error, not a silent pass.
        assert!(bench_check("/no/such/file.json", &baseline).is_err());
        assert!(bench_check(path, &[fake_result("other", 1.0)]).is_err());
        let mut missing = gated_results(1.0, None);
        missing.retain(|r| r.kernel != "open_system");
        let err = bench_check(path, &missing).unwrap_err();
        assert!(err.contains("did not run open_system"), "{err}");
    }

    /// `open` with an impossible shard count surfaces the typed
    /// [`abg_queue::ConfigError`] message through the CLI's own error
    /// path (the validation runs before any simulation, so these fail
    /// fast).
    #[test]
    fn open_rejects_bad_shard_counts_with_the_typed_messages() {
        let base = Options {
            command: Some("open".into()),
            smoke: true,
            ..Options::default()
        };
        let err = open(&Options {
            shards: Some(0),
            ..base.clone()
        })
        .unwrap_err();
        assert_eq!(
            err,
            "invalid open-system configuration: need at least one shard"
        );
        // The smoke machine has 16 processors; 17 shards cannot all own
        // one.
        let err = open(&Options {
            shards: Some(17),
            ..base
        })
        .unwrap_err();
        assert_eq!(
            err,
            "invalid open-system configuration: need at least one processor per shard \
             (17 shards > 16 processors)"
        );
    }

    /// `open` with impossible hierarchical knobs surfaces the typed
    /// [`abg_queue::ConfigError`] messages (and the policy-name parse
    /// error) before any simulation runs.
    #[test]
    fn open_rejects_bad_group_configs_with_the_typed_messages() {
        let base = Options {
            command: Some("open".into()),
            smoke: true,
            ..Options::default()
        };
        let err = open(&Options {
            groups: Some(0),
            ..base.clone()
        })
        .unwrap_err();
        assert_eq!(
            err,
            "invalid open-system configuration: need at least one processor group"
        );
        let err = open(&Options {
            groups: Some(4),
            realloc_epoch: Some(0),
            ..base.clone()
        })
        .unwrap_err();
        assert_eq!(
            err,
            "invalid open-system configuration: need a positive reallocation epoch"
        );
        // The smoke machine has 16 processors; 17 groups cannot all
        // hold the floor of one processor.
        let err = open(&Options {
            groups: Some(17),
            ..base.clone()
        })
        .unwrap_err();
        assert_eq!(
            err,
            "invalid open-system configuration: per-group floor must be between 1 and P/G \
             (1 with 16 processors over 17 groups)"
        );
        let err = open(&Options {
            groups: Some(4),
            group_alloc: Some("greedy".into()),
            ..base
        })
        .unwrap_err();
        assert_eq!(
            err,
            "unknown group allocator 'greedy' (expected static, desire or conservative)"
        );
    }

    /// The workload flags fail fast: conflicting flags, unknown family
    /// names and unreadable dag files all surface their typed messages
    /// before any simulation runs.
    #[test]
    fn open_rejects_bad_workload_flags_with_the_typed_messages() {
        let base = Options {
            command: Some("open".into()),
            smoke: true,
            ..Options::default()
        };
        let err = open(&Options {
            workflow: Some("mapreduce".into()),
            dag_file: Some("x.dag".into()),
            ..base.clone()
        })
        .unwrap_err();
        assert_eq!(err, "--workflow and --dag-file are mutually exclusive");
        let err = open(&Options {
            workflow: Some("cyclone".into()),
            ..base.clone()
        })
        .unwrap_err();
        assert_eq!(
            err,
            "unknown workflow 'cyclone' (expected one of: diamond, mapreduce, montage, \
             epigenomics)"
        );
        let err = open(&Options {
            dag_file: Some("/no/such/file.dag".into()),
            ..base
        })
        .unwrap_err();
        assert!(err.starts_with("dag file i/o error:"), "{err}");
    }
}
