//! Minimal flag parsing for `abg-cli` (no external dependency).

/// Parsed command line.
#[derive(Debug, Clone, Default)]
pub struct Options {
    /// The subcommand (first positional argument).
    pub command: Option<String>,
    /// Extra positional arguments after the command (e.g. the ablation
    /// name).
    pub positional: Vec<String>,
    /// Run at the paper's full scale.
    pub full: bool,
    /// Run at CI smoke scale (the `open` subcommand).
    pub smoke: bool,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
    /// Override the experiment seed.
    pub seed: Option<u64>,
    /// Restrict the `open` sweep to a single offered utilization.
    pub rho: Option<f64>,
    /// Processor groups for the sharded open-system engine (the `open`
    /// subcommand). Parsed as any integer; the experiment config's
    /// typed validation rejects impossible counts (zero, or more shards
    /// than processors) with its own error message.
    pub shards: Option<u32>,
    /// Processor groups for the hierarchical two-level open-system
    /// driver (the `open` subcommand). Like `--shards`, any integer
    /// parses; the typed config validation owns the rejection of
    /// impossible counts.
    pub groups: Option<u32>,
    /// Top-level reallocation policy name (the `open` subcommand);
    /// resolved against [`abg_control::GroupPolicy`] when the command
    /// runs so the error message lists the valid names.
    pub group_alloc: Option<String>,
    /// Reallocation epoch in quanta (the `open` subcommand). Zero
    /// parses; the typed config validation rejects it.
    pub realloc_epoch: Option<u64>,
    /// Workflow family for open-system arrivals (the `open`
    /// subcommand); resolved against
    /// [`abg_workload::WorkflowKind`] when the command runs so the
    /// error message lists the valid names.
    pub workflow: Option<String>,
    /// Dag-file path whose dag every open-system arrival replays (the
    /// `open` subcommand); mutually exclusive with `--workflow`.
    pub dag_file: Option<String>,
    /// Append ASCII charts after the tables.
    pub plot: bool,
    /// Write machine-readable JSON output (the `bench` subcommand).
    pub json: bool,
    /// Compare bench results against a committed baseline JSON and fail
    /// on regression (the `bench` subcommand).
    pub check: Option<String>,
    /// Override the harness worker count (mirrors the `ABG_THREADS`
    /// environment variable; the flag wins when both are set).
    pub threads: Option<usize>,
}

impl Options {
    /// Usage text shown for `--help` and errors.
    pub const USAGE: &'static str = "\
usage: abg-cli <command> [args] [--full] [--csv] [--seed N]

commands:
  fig1                 A-Greedy request instability (Figure 1)
  fig2                 B-Greedy fractional quantum statistics (Figure 2)
  fig4                 ABG vs A-Greedy transient trajectories (Figure 4)
  fig5                 single-job sweep over transition factors (Figure 5)
  fig6                 multiprogrammed load sweep (Figure 6)
  thm1                 control-theoretic metrics grid (Theorem 1)
  lemma2               request/parallelism envelope check (Lemma 2)
  thm3                 time bound under adversarial availability (Theorem 3)
  thm4                 waste bound check (Theorem 4)
  thm5                 makespan / response-time bound check (Theorem 5)
  ablate <which>       rate | quantum | agreedy | scheduler | semantics | all
  steal                ABG vs A-Steal vs ABP (work-stealing substrate)
  adaptive             adaptive quantum length (paper future work)
  robustness           irregular parallelism profiles
  allocators           DEQ vs round-robin vs proportional share
  overhead             reallocation-overhead sensitivity sweep
  bench [smoke]        kernel benchmark suite (smoke = CI-sized run)
  open                 open-system rho sweep: steady-state response time
                       and slowdown under sustained Poisson arrivals
  all                  every experiment at scaled size

flags:
  --full               paper-scale fig5/fig6 (sub-second; the fast paths are cheap)
  --smoke              open: CI-sized sweep instead of the full-scale one
  --csv                CSV output instead of aligned tables
  --plot               append ASCII charts after the tables
  --json               bench: also write BENCH_kernels.json
                       open: print the sweep as JSON (with its fingerprint)
  --check PATH         bench: fail if any gated kernel's throughput regresses
                       more than 30% below the baseline JSON at PATH
  --seed N             override the experiment seed
  --rho R              open: sweep only the given offered utilization
  --shards G           open: split the machine into G independent processor
                       groups (sharded engine; 1 = the unsharded driver)
  --groups G           open: run the hierarchical two-level driver over G
                       processor groups (1 = no top level; overrides --shards)
  --group-alloc P      open: top-level reallocation policy — static, desire
                       or conservative (default static)
  --realloc-epoch Q    open: reallocate group capacities every Q quanta
                       (default 50)
  --workflow W         open: weighted workflow arrivals — diamond, mapreduce,
                       montage or epigenomics (default: mixed-factor jobs)
  --dag-file PATH      open: every arrival replays the dag loaded from the
                       text dag file at PATH (excludes --workflow)
  --threads N          harness worker count (overrides ABG_THREADS; results
                       are identical for any count, only wall-clock changes)
  -h, --help           this text";

    /// Parses raw arguments.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut opts = Options::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--full" => opts.full = true,
                "--smoke" => opts.smoke = true,
                "--csv" => opts.csv = true,
                "--plot" => opts.plot = true,
                "--json" => opts.json = true,
                "--check" => {
                    let v = it.next().ok_or("--check needs a baseline path")?;
                    opts.check = Some(v.clone());
                }
                "--seed" => {
                    let v = it.next().ok_or("--seed needs a value")?;
                    opts.seed = Some(v.parse().map_err(|_| format!("invalid seed '{v}'"))?);
                }
                "--rho" => {
                    let v = it.next().ok_or("--rho needs a value")?;
                    let rho: f64 = v
                        .parse()
                        .map_err(|_| format!("invalid utilization '{v}'"))?;
                    if !rho.is_finite() || rho <= 0.0 {
                        return Err("--rho must be a positive utilization".into());
                    }
                    opts.rho = Some(rho);
                }
                "--shards" => {
                    let v = it.next().ok_or("--shards needs a value")?;
                    let n: u32 = v
                        .parse()
                        .map_err(|_| format!("invalid shard count '{v}'"))?;
                    opts.shards = Some(n);
                }
                "--groups" => {
                    let v = it.next().ok_or("--groups needs a value")?;
                    let n: u32 = v
                        .parse()
                        .map_err(|_| format!("invalid group count '{v}'"))?;
                    opts.groups = Some(n);
                }
                "--group-alloc" => {
                    let v = it.next().ok_or("--group-alloc needs a policy name")?;
                    opts.group_alloc = Some(v.clone());
                }
                "--realloc-epoch" => {
                    let v = it.next().ok_or("--realloc-epoch needs a value")?;
                    let n: u64 = v
                        .parse()
                        .map_err(|_| format!("invalid reallocation epoch '{v}'"))?;
                    opts.realloc_epoch = Some(n);
                }
                "--workflow" => {
                    let v = it.next().ok_or("--workflow needs a family name")?;
                    opts.workflow = Some(v.clone());
                }
                "--dag-file" => {
                    let v = it.next().ok_or("--dag-file needs a path")?;
                    opts.dag_file = Some(v.clone());
                }
                "--threads" => {
                    let v = it.next().ok_or("--threads needs a value")?;
                    let n: usize = v
                        .parse()
                        .map_err(|_| format!("invalid thread count '{v}'"))?;
                    if n == 0 {
                        return Err("--threads must be at least 1".into());
                    }
                    opts.threads = Some(n);
                }
                "-h" | "--help" => {
                    opts.command = None;
                    return Ok(opts);
                }
                flag if flag.starts_with('-') => {
                    return Err(format!("unknown flag '{flag}'"));
                }
                positional => {
                    if opts.command.is_none() {
                        opts.command = Some(positional.to_string());
                    } else {
                        opts.positional.push(positional.to_string());
                    }
                }
            }
        }
        Ok(opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_command_and_flags() {
        let o = parse(&["fig5", "--full", "--seed", "42"]).unwrap();
        assert_eq!(o.command.as_deref(), Some("fig5"));
        assert!(o.full);
        assert!(!o.csv);
        assert_eq!(o.seed, Some(42));
    }

    #[test]
    fn collects_positional_args() {
        let o = parse(&["ablate", "rate", "--csv"]).unwrap();
        assert_eq!(o.command.as_deref(), Some("ablate"));
        assert_eq!(o.positional, vec!["rate"]);
        assert!(o.csv);
    }

    #[test]
    fn parses_smoke_flag() {
        let o = parse(&["open", "--smoke", "--json"]).unwrap();
        assert_eq!(o.command.as_deref(), Some("open"));
        assert!(o.smoke);
        assert!(o.json);
        assert!(!parse(&["open"]).unwrap().smoke);
    }

    #[test]
    fn parses_plot_flag() {
        let o = parse(&["fig4", "--plot"]).unwrap();
        assert!(o.plot);
    }

    #[test]
    fn parses_json_flag() {
        let o = parse(&["bench", "smoke", "--json"]).unwrap();
        assert_eq!(o.command.as_deref(), Some("bench"));
        assert_eq!(o.positional, vec!["smoke"]);
        assert!(o.json);
    }

    #[test]
    fn parses_check_flag() {
        let o = parse(&["bench", "smoke", "--check", "BENCH_kernels.json"]).unwrap();
        assert_eq!(o.check.as_deref(), Some("BENCH_kernels.json"));
        assert!(parse(&["bench", "--check"]).is_err());
    }

    #[test]
    fn parses_threads_flag() {
        let o = parse(&["bench", "--threads", "4"]).unwrap();
        assert_eq!(o.threads, Some(4));
        assert!(parse(&["sweep"]).unwrap().threads.is_none());
        assert!(parse(&["bench", "--threads"]).is_err());
        assert!(parse(&["bench", "--threads", "zero"]).is_err());
        assert!(parse(&["bench", "--threads", "0"]).is_err());
    }

    #[test]
    fn parses_rho_flag() {
        let o = parse(&["open", "--smoke", "--rho", "0.9"]).unwrap();
        assert_eq!(o.rho, Some(0.9));
        assert!(parse(&["open"]).unwrap().rho.is_none());
        assert!(parse(&["open", "--rho"]).is_err());
        assert!(parse(&["open", "--rho", "high"]).is_err());
        assert!(parse(&["open", "--rho", "-0.5"]).is_err());
        assert!(parse(&["open", "--rho", "0"]).is_err());
    }

    #[test]
    fn parses_shards_flag() {
        let o = parse(&["open", "--smoke", "--shards", "4"]).unwrap();
        assert_eq!(o.shards, Some(4));
        assert!(parse(&["open"]).unwrap().shards.is_none());
        assert!(parse(&["open", "--shards"]).is_err());
        assert!(parse(&["open", "--shards", "many"]).is_err());
        // Zero parses: the typed config validation owns that rejection,
        // so the CLI surfaces its message rather than a parse error.
        assert_eq!(parse(&["open", "--shards", "0"]).unwrap().shards, Some(0));
    }

    #[test]
    fn parses_group_flags() {
        let o = parse(&[
            "open",
            "--smoke",
            "--groups",
            "4",
            "--group-alloc",
            "desire",
            "--realloc-epoch",
            "25",
        ])
        .unwrap();
        assert_eq!(o.groups, Some(4));
        assert_eq!(o.group_alloc.as_deref(), Some("desire"));
        assert_eq!(o.realloc_epoch, Some(25));
        let o = parse(&["open"]).unwrap();
        assert!(o.groups.is_none() && o.group_alloc.is_none() && o.realloc_epoch.is_none());
        assert!(parse(&["open", "--groups"]).is_err());
        assert!(parse(&["open", "--groups", "many"]).is_err());
        assert!(parse(&["open", "--group-alloc"]).is_err());
        assert!(parse(&["open", "--realloc-epoch"]).is_err());
        assert!(parse(&["open", "--realloc-epoch", "soon"]).is_err());
        // Zero group counts and epochs parse: the typed config
        // validation owns those rejections, so the CLI surfaces its
        // message rather than a parse error.
        assert_eq!(parse(&["open", "--groups", "0"]).unwrap().groups, Some(0));
        assert_eq!(
            parse(&["open", "--realloc-epoch", "0"])
                .unwrap()
                .realloc_epoch,
            Some(0)
        );
    }

    #[test]
    fn parses_workflow_and_dag_file_flags() {
        let o = parse(&["open", "--smoke", "--workflow", "mapreduce"]).unwrap();
        assert_eq!(o.workflow.as_deref(), Some("mapreduce"));
        assert!(o.dag_file.is_none());
        let o = parse(&["open", "--dag-file", "trace.dag"]).unwrap();
        assert_eq!(o.dag_file.as_deref(), Some("trace.dag"));
        assert!(o.workflow.is_none());
        let o = parse(&["open"]).unwrap();
        assert!(o.workflow.is_none() && o.dag_file.is_none());
        assert!(parse(&["open", "--workflow"]).is_err());
        assert!(parse(&["open", "--dag-file"]).is_err());
        // An unknown family name parses: the command resolves it
        // against WorkflowKind and surfaces that error message.
        assert_eq!(
            parse(&["open", "--workflow", "mosaic"]).unwrap().workflow,
            Some("mosaic".to_string())
        );
    }

    #[test]
    fn rejects_unknown_flag() {
        assert!(parse(&["fig1", "--what"]).is_err());
    }

    #[test]
    fn rejects_bad_seed() {
        assert!(parse(&["fig1", "--seed", "abc"]).is_err());
        assert!(parse(&["fig1", "--seed"]).is_err());
    }

    #[test]
    fn help_clears_command() {
        let o = parse(&["fig1", "--help"]).unwrap();
        assert!(o.command.is_none());
    }

    #[test]
    fn empty_args_ok() {
        let o = parse(&[]).unwrap();
        assert!(o.command.is_none());
    }
}
