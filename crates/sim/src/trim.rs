//! Trim analysis (Section 6.1).
//!
//! An adversarial OS allocator can offer many processors exactly when a
//! job's parallelism is low, denying any non-clairvoyant task scheduler
//! linear speedup with respect to the *mean* availability. Trim analysis
//! bounds the adversary's power: discard ("trim") the `R` time steps
//! with the highest processor availability and measure speedup against
//! the average availability of the remaining steps — the **`R`-trimmed
//! availability**.
//!
//! Theorem 3 states ABG completes in
//! `T ≤ 2·T1/P̃ + (C_L + 1 − 2r)/(1 − r)·T∞ + L`
//! where `P̃` is the `((C_L + 1 − 2r)/(1 − r)·T∞ + L)`-trimmed
//! availability.

/// Computes the `R`-trimmed availability from per-quantum availabilities.
///
/// Availability is constant within a quantum of `quantum_len` steps, so
/// trimming `trim_steps` steps means discarding the
/// `ceil(trim_steps / quantum_len)` quanta with the highest availability
/// and averaging what remains. Returns `None` when every quantum is
/// trimmed (the bound is vacuous there).
///
/// ```
/// use abg_sim::trimmed_availability;
///
/// // An adversary that is generous exactly once.
/// let availability = [2, 2, 100, 2, 2];
/// assert_eq!(trimmed_availability(&availability, 10, 0), Some(21.6));
/// // Trimming one quantum's worth of steps removes the spike.
/// assert_eq!(trimmed_availability(&availability, 10, 10), Some(2.0));
/// ```
///
/// # Panics
///
/// Panics if `quantum_len == 0`.
pub fn trimmed_availability(
    availabilities: &[u32],
    quantum_len: u64,
    trim_steps: u64,
) -> Option<f64> {
    assert!(quantum_len > 0, "quantum length must be positive");
    if availabilities.is_empty() {
        return None;
    }
    let trim_quanta = (trim_steps.div_ceil(quantum_len)) as usize;
    if trim_quanta >= availabilities.len() {
        return None;
    }
    let mut sorted: Vec<u32> = availabilities.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a)); // descending
    let kept = &sorted[trim_quanta..];
    Some(kept.iter().map(|&p| p as f64).sum::<f64>() / kept.len() as f64)
}

/// The untrimmed mean availability (the `R = 0` special case).
pub fn mean_availability(availabilities: &[u32]) -> Option<f64> {
    trimmed_availability(availabilities, 1, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_trim_is_plain_mean() {
        let a = [2, 4, 6];
        assert_eq!(trimmed_availability(&a, 10, 0), Some(4.0));
        assert_eq!(mean_availability(&a), Some(4.0));
    }

    #[test]
    fn trims_highest_quanta_first() {
        let a = [1, 100, 1, 100, 1];
        // Trim up to 2 quanta worth of steps: both 100s go.
        assert_eq!(trimmed_availability(&a, 10, 20), Some(1.0));
    }

    #[test]
    fn partial_quantum_trims_whole_quantum() {
        let a = [1, 100, 1];
        // 5 steps with L = 10 still rounds up to one quantum.
        assert_eq!(trimmed_availability(&a, 10, 5), Some(1.0));
    }

    #[test]
    fn trimming_everything_is_vacuous() {
        let a = [5, 5];
        assert_eq!(trimmed_availability(&a, 10, 20), None);
        assert_eq!(trimmed_availability(&[], 10, 0), None);
    }

    #[test]
    fn trimmed_is_never_above_untrimmed_mean_quantile() {
        let a = [3, 9, 4, 8, 2, 7];
        let untrimmed = trimmed_availability(&a, 10, 0).unwrap();
        let trimmed = trimmed_availability(&a, 10, 10).unwrap();
        assert!(trimmed <= untrimmed);
    }

    #[test]
    fn adversarial_spike_is_neutralised() {
        // Availability spikes to 1000 in one quantum of a hundred
        // otherwise-austere quanta: the spike distorts the mean but not
        // the 1-quantum-trimmed availability.
        let mut a = vec![2u32; 100];
        a[50] = 1000;
        let mean = mean_availability(&a).unwrap();
        let trimmed = trimmed_availability(&a, 10, 10).unwrap();
        assert!(mean > 11.0);
        assert_eq!(trimmed, 2.0);
    }
}
