//! Per-quantum trace records.

use abg_sched::QuantumStats;
use serde::{Deserialize, Serialize};

/// Everything the two-level scheduler saw and did in one quantum of one
/// job: the standing request, the grant, the availability under the
/// policy, and the measured statistics.
///
/// Traces are the raw material for the paper's trajectory figures
/// (Figures 1 and 4) and for the quantum classification of the trim
/// analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantumRecord {
    /// Quantum index `q`, 1-based as in the paper.
    pub index: u32,
    /// Absolute step at which the quantum started.
    pub start_step: u64,
    /// The request `d(q)` standing when the quantum was allocated.
    pub request: f64,
    /// The allotment `a(q)` granted by the allocator.
    pub allotment: u32,
    /// The availability `p(q)` under the allocator's policy, if the
    /// engine recorded it (`a(q) = min(ceil d(q), p(q))`).
    pub availability: Option<u32>,
    /// The statistics measured by the task scheduler.
    pub stats: QuantumStats,
}

impl QuantumRecord {
    /// Whether the job was *deprived* in this quantum: granted less than
    /// it requested (`a(q) < d(q)`).
    pub fn deprived(&self) -> bool {
        (self.allotment as f64) < self.request
    }

    /// Whether the request was *satisfied* (not deprived).
    pub fn satisfied(&self) -> bool {
        !self.deprived()
    }
}

/// Renders a trace as CSV (header + one line per quantum) for offline
/// analysis or plotting outside this crate.
pub fn trace_to_csv(records: &[QuantumRecord]) -> String {
    let mut out = String::from(
        "quantum,start_step,request,allotment,availability,work,span,steps_worked,completed\n",
    );
    for r in records {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            r.index,
            r.start_step,
            r.request,
            r.allotment,
            r.availability.map_or(String::new(), |p| p.to_string()),
            r.stats.work,
            r.stats.span,
            r.stats.steps_worked,
            r.stats.completed,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(request: f64, allotment: u32) -> QuantumRecord {
        QuantumRecord {
            index: 1,
            start_step: 0,
            request,
            allotment,
            availability: None,
            stats: QuantumStats {
                allotment,
                quantum_len: 10,
                steps_worked: 10,
                work: 10,
                span: 1.0,
                completed: false,
            },
        }
    }

    #[test]
    fn deprived_iff_granted_less_than_requested() {
        assert!(record(5.0, 4).deprived());
        assert!(record(5.0, 5).satisfied());
        // Integral grant of a fractional request satisfies it.
        assert!(record(4.2, 5).satisfied());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = trace_to_csv(&[record(5.0, 4), record(3.0, 3)]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("quantum,start_step,request"));
        assert!(lines[1].starts_with("1,0,5,4,"));
        // Unrecorded availability renders as an empty cell.
        assert!(lines[1].contains(",,") || lines[1].split(',').nth(4) == Some(""));
    }

    #[test]
    fn csv_of_empty_trace_is_header_only() {
        assert_eq!(trace_to_csv(&[]).lines().count(), 1);
    }

    /// The exported fields of one record, in column order — what a CSV
    /// consumer can reconstruct.
    type CsvFields = (u32, u64, f64, u32, Option<u32>, u64, f64, u64, bool);

    fn exported(r: &QuantumRecord) -> CsvFields {
        (
            r.index,
            r.start_step,
            r.request,
            r.allotment,
            r.availability,
            r.stats.work,
            r.stats.span,
            r.stats.steps_worked,
            r.stats.completed,
        )
    }

    fn parse_line(line: &str) -> CsvFields {
        let cells: Vec<&str> = line.split(',').collect();
        assert_eq!(cells.len(), 9, "column count drifted: {line}");
        (
            cells[0].parse().unwrap(),
            cells[1].parse().unwrap(),
            cells[2].parse().unwrap(),
            cells[3].parse().unwrap(),
            (!cells[4].is_empty()).then(|| cells[4].parse().unwrap()),
            cells[5].parse().unwrap(),
            cells[6].parse().unwrap(),
            cells[7].parse().unwrap(),
            cells[8].parse().unwrap(),
        )
    }

    #[test]
    fn csv_round_trips_every_exported_field() {
        let mut with_availability = record(6.5, 6);
        with_availability.availability = Some(12);
        with_availability.index = 7;
        with_availability.start_step = 640;
        with_availability.stats.span = 2.25; // dyadic: exact through {}
        with_availability.stats.completed = true;
        let records = [record(5.0, 4), with_availability, record(0.0, 0)];

        let csv = trace_to_csv(&records);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 9, "header/field count drifted");
        let parsed: Vec<CsvFields> = lines.map(parse_line).collect();
        assert_eq!(parsed.len(), records.len());
        for (got, want) in parsed.iter().zip(records.iter().map(exported)) {
            assert_eq!(*got, want);
        }
    }

    #[test]
    fn deprivation_boundary_cases() {
        // Exactly the requested grant: satisfied, not deprived.
        assert!(record(4.0, 4).satisfied());
        // One processor short of an integral request: deprived.
        assert!(record(4.0, 3).deprived());
        // Any fractional request above the grant is deprivation...
        assert!(record(4.000001, 4).deprived());
        // ...while the integral grant covering the fraction satisfies.
        assert!(record(3.999999, 4).satisfied());
        // A zero request can never be deprived, even by a zero grant.
        assert!(record(0.0, 0).satisfied());
        // deprived/satisfied partition every record.
        for r in [record(4.0, 4), record(4.5, 4), record(0.0, 1)] {
            assert_ne!(r.deprived(), r.satisfied());
        }
    }
}
