//! Single-job simulation: one job alone under a (possibly adversarial)
//! allocator.

use crate::probe::TraceProbe;
use crate::quantum_core::QuantumCore;
use crate::trace::QuantumRecord;
use abg_alloc::Allocator;
use abg_control::Controller;
use abg_sched::JobExecutor;
use serde::{Deserialize, Serialize};

/// Configuration of a single-job run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SingleJobConfig {
    /// Quantum length `L` in steps.
    pub quantum_len: u64,
    /// Record a [`QuantumRecord`] per quantum (needed for trajectory
    /// figures and trim analysis; costs memory on long runs).
    pub record_trace: bool,
    /// Also query the allocator for the availability `p(q)` each quantum
    /// (requires trace recording; some allocators compute this by
    /// re-running their policy).
    pub record_availability: bool,
    /// Steps lost at the start of every quantum whose allotment differs
    /// from the previous quantum's (processor migration, cache warm-up
    /// — the overhead the paper's simulations ignore but its motivation
    /// cites against unstable schedulers). The lost cycles count as
    /// waste; an overhead of `quantum_len` or more makes a reallocation
    /// quantum entirely unproductive.
    pub reallocation_overhead: u64,
    /// Safety valve: abort if the job has not finished after this many
    /// quanta (guards against a zero-availability livelock in
    /// misconfigured experiments, e.g. a scripted allocator stuck at
    /// zero). Defaults to 100 million quanta — far beyond any real
    /// experiment; `u64::MAX` disables the check.
    pub max_quanta: u64,
}

impl SingleJobConfig {
    /// A configuration with the given quantum length, tracing disabled.
    pub fn new(quantum_len: u64) -> Self {
        assert!(quantum_len > 0, "quantum length must be positive");
        Self {
            quantum_len,
            record_trace: false,
            record_availability: false,
            reallocation_overhead: 0,
            max_quanta: 100_000_000,
        }
    }

    /// Enables per-quantum tracing (with availability recording).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self.record_availability = true;
        self
    }

    /// Sets the per-reallocation overhead in steps.
    pub fn with_reallocation_overhead(mut self, steps: u64) -> Self {
        self.reallocation_overhead = steps;
        self
    }
}

/// The outcome of a single-job run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SingleJobRun {
    /// Running time `T` in steps: completion happens `steps_worked` into
    /// the final quantum; earlier quanta each contribute `L` steps of
    /// wall-clock even if the allotment was zero.
    pub running_time: u64,
    /// Total processor cycles wasted, `Σ_q (a(q)·L − T1(q))`: the job
    /// holds its allotment until each quantum boundary (so the final
    /// quantum can waste up to `a·L`, matching the paper's `P·L` term).
    pub waste: u64,
    /// Number of quanta used (the last one counted even if cut short).
    pub quanta: u64,
    /// Quanta whose allotment differed from the previous quantum's —
    /// each one costs [`SingleJobConfig::reallocation_overhead`] steps.
    pub reallocations: u64,
    /// Work `T1` of the job (sanity echo from the executor).
    pub work: u64,
    /// Critical-path length `T∞` of the job.
    pub span: u64,
    /// Per-quantum trace, if requested.
    pub trace: Vec<QuantumRecord>,
}

impl SingleJobRun {
    /// Speedup `T1 / T` achieved by the run.
    pub fn speedup(&self) -> f64 {
        self.work as f64 / self.running_time as f64
    }

    /// Running time normalized by the optimal `T∞` (the paper's Figure
    /// 5(a) y-axis: in an unconstrained environment the critical path is
    /// the optimal running time).
    pub fn time_over_span(&self) -> f64 {
        self.running_time as f64 / self.span as f64
    }

    /// Waste normalized by total work (the paper's Figure 5(c) y-axis).
    pub fn waste_over_work(&self) -> f64 {
        self.waste as f64 / self.work as f64
    }
}

/// Lends a `Clone` allocator to the quantum core while teaching it the
/// clone-probing [`Allocator::availabilities`] — so single-job traces
/// carry `p(q)` for *any* cloneable allocator, not just the policies
/// that override [`Allocator::try_availabilities`] themselves.
struct CloneProbing<'a, A: Allocator + Clone>(&'a mut A);

impl<A: Allocator + Clone> Allocator for CloneProbing<'_, A> {
    fn allocate_into(&mut self, requests: &[f64], out: &mut Vec<u32>) {
        self.0.allocate_into(requests, out)
    }
    fn try_availabilities(&mut self, requests: &[f64], out: &mut Vec<u32>) -> bool {
        out.clear();
        out.append(&mut self.0.availabilities(requests));
        true
    }
    fn total_processors(&self) -> u32 {
        self.0.total_processors()
    }
    fn name(&self) -> &'static str {
        self.0.name()
    }
}

/// Runs one job to completion under the given controller and allocator.
///
/// Implements the paper's loop: `d(1)` comes from the controller's
/// initial request; each quantum the allocator grants
/// `a(q) = min(ceil d(q), p(q))`, the executor runs `L` steps (or to
/// completion), and the controller observes the statistics to produce
/// `d(q+1)`. A paced controller (see
/// [`Paced`](crate::Paced)) may also vary the quantum length between
/// `observe` calls; plain request calculators run on the configured `L`.
///
/// This is a monomorphized single-slot configuration of
/// [`QuantumCore`]: no boxing, with a [`TraceProbe`] collecting the
/// per-quantum records when the config asks for them.
///
/// # Panics
///
/// Panics if the configured `max_quanta` safety valve trips.
pub fn run_single_job<E, C, A>(
    executor: &mut E,
    calculator: &mut C,
    allocator: &mut A,
    config: SingleJobConfig,
) -> SingleJobRun
where
    E: JobExecutor,
    C: Controller,
    A: Allocator + Clone,
{
    if executor.is_complete() {
        // Zero-work job: the loop below would panic on an empty live
        // set; the pre-core driver simply never entered its loop.
        return SingleJobRun {
            running_time: 0,
            waste: 0,
            quanta: 0,
            reallocations: 0,
            work: executor.total_work(),
            span: executor.total_span(),
            trace: Vec::new(),
        };
    }
    let probe = if config.record_trace {
        let p = TraceProbe::new();
        if config.record_availability {
            p.with_availability()
        } else {
            p
        }
    } else {
        TraceProbe::disabled()
    };
    let mut core = QuantumCore::new(CloneProbing(allocator), config.quantum_len, probe)
        .with_reallocation_overhead(config.reallocation_overhead);
    core.admit(executor, calculator, 0);
    let mut done = Vec::with_capacity(1);
    while core.jobs_in_system() > 0 {
        assert!(
            core.quanta() < config.max_quanta,
            "job did not finish within {} quanta (livelock?)",
            config.max_quanta
        );
        core.step_quantum(&mut done);
    }
    let job = done.pop().expect("the admitted job drains on completion");
    SingleJobRun {
        // Release step 0: completion and running time coincide.
        running_time: job.completion,
        waste: job.waste,
        quanta: job.quanta,
        reallocations: job.reallocations,
        work: job.work,
        span: job.span,
        trace: job.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_alloc::Scripted;
    use abg_control::{AControl, AGreedy, ConstantRequest};
    use abg_dag::LeveledJob;
    use abg_sched::LeveledExecutor;

    fn constant_job(width: u64, levels: u64) -> LeveledExecutor {
        LeveledExecutor::new(LeveledJob::constant(width, levels))
    }

    #[test]
    fn abg_converges_and_wastes_little_on_constant_job() {
        let mut ex = constant_job(10, 400);
        let mut ctl = AControl::new(0.2);
        let mut alloc = Scripted::ample(128);
        let run = run_single_job(&mut ex, &mut ctl, &mut alloc, SingleJobConfig::new(20));
        assert_eq!(run.work, 4000);
        assert_eq!(run.span, 400);
        // Requests converge to 10 quickly; waste is a small fraction of work.
        assert!(
            run.waste_over_work() < 0.2,
            "waste/work = {}",
            run.waste_over_work()
        );
        // Once converged, one quantum advances ~20 levels: near-optimal time.
        assert!(
            run.time_over_span() < 1.5,
            "T/T∞ = {}",
            run.time_over_span()
        );
    }

    #[test]
    fn trace_captures_request_trajectory() {
        let mut ex = constant_job(10, 100);
        let mut ctl = AControl::new(0.2);
        let mut alloc = Scripted::ample(128);
        let run = run_single_job(
            &mut ex,
            &mut ctl,
            &mut alloc,
            SingleJobConfig::new(10).with_trace(),
        );
        assert_eq!(run.trace.len() as u64, run.quanta);
        assert_eq!(run.trace[0].request, 1.0);
        // Monotone non-decreasing approach to 10 with no overshoot.
        for w in run.trace.windows(2) {
            assert!(w[1].request >= w[0].request - 1e-9);
            assert!(w[1].request <= 10.0 + 1e-9);
        }
        assert_eq!(run.trace[0].availability, Some(128));
    }

    #[test]
    fn agreedy_oscillates_in_trace() {
        let mut ex = constant_job(10, 2000);
        let mut ctl = AGreedy::paper_default();
        let mut alloc = Scripted::ample(128);
        let run = run_single_job(
            &mut ex,
            &mut ctl,
            &mut alloc,
            SingleJobConfig::new(10).with_trace(),
        );
        let requests: Vec<f64> = run.trace.iter().map(|r| r.request).collect();
        let tail = &requests[requests.len() / 2..];
        let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = tail.iter().cloned().fold(0.0f64, f64::max);
        assert!(max > min, "A-Greedy should not settle: {min}..{max}");
    }

    #[test]
    fn constrained_availability_slows_the_job() {
        let mut ex = constant_job(8, 64);
        let mut ctl = ConstantRequest::new(8.0);
        // Only 2 processors ever available.
        let mut alloc = Scripted::new(128, vec![2]);
        let run = run_single_job(&mut ex, &mut ctl, &mut alloc, SingleJobConfig::new(16));
        // 8 wide on 2 processors: 4 steps per level → T = 4·64 = 256.
        assert_eq!(run.running_time, 256);
        assert_eq!(run.waste, 0);
    }

    #[test]
    fn oracle_on_exact_width_has_zero_waste() {
        let mut ex = constant_job(6, 60);
        let mut ctl = ConstantRequest::new(6.0);
        let mut alloc = Scripted::ample(64);
        let run = run_single_job(&mut ex, &mut ctl, &mut alloc, SingleJobConfig::new(10));
        assert_eq!(run.waste, 0);
        assert_eq!(run.running_time, 60);
        assert_eq!(run.quanta, 6);
    }

    #[test]
    fn final_quantum_counts_partial_time_but_full_hold() {
        // 25 levels, width 1, request 1, L = 10: 2 full quanta + 5 steps.
        let mut ex = constant_job(1, 25);
        let mut ctl = ConstantRequest::new(1.0);
        let mut alloc = Scripted::ample(4);
        let run = run_single_job(&mut ex, &mut ctl, &mut alloc, SingleJobConfig::new(10));
        assert_eq!(run.running_time, 25);
        assert_eq!(run.quanta, 3);
        // Final quantum holds 1 processor for 10 steps but works 5.
        assert_eq!(run.waste, 5);
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn livelock_guard_trips() {
        let mut ex = constant_job(1, 10);
        let mut ctl = ConstantRequest::new(1.0);
        let mut alloc = Scripted::new(8, vec![0]);
        let mut cfg = SingleJobConfig::new(10);
        cfg.max_quanta = 100;
        let _ = run_single_job(&mut ex, &mut ctl, &mut alloc, cfg);
    }
}
