//! The boxed, heterogeneous configuration of the generic quantum core.
//!
//! [`QuantumEngine`] is the dynamic-dispatch face of
//! [`QuantumCore`]: jobs are `Box<dyn JobExecutor +
//! Send>` / `Box<dyn Controller + Send>` pairs, so one engine can hold a
//! heterogeneous job set — the shape both
//! [`MultiJobSim`](crate::MultiJobSim) (closed system, run to drain) and
//! the open-system driver in `abg-queue` (unbounded arrival stream)
//! need. Jobs are admitted at any time (including mid-run), each
//! quantum is stepped explicitly, and completed jobs are drained out so
//! a sustained-arrival simulation runs in memory proportional to the
//! number of jobs *in the system*, not the number ever submitted.
//!
//! The engine preserves the paper's accounting exactly: time is
//! quantum-synchronous, a job released mid-quantum joins at the next
//! boundary, and a job finishing mid-quantum holds its allotment until
//! the boundary (counted as waste). The sweep-fingerprint suite pins
//! the delegation to the core bit-identical to the pre-refactor loop.

use crate::probe::TraceProbe;
pub use crate::quantum_core::CompletedJob;
use crate::quantum_core::QuantumCore;
use abg_alloc::Allocator;
use abg_control::RequestCalculator;
use abg_sched::JobExecutor;

/// The quantum-synchronous stepping engine over boxed jobs: a
/// machine-wide allocator, a set of in-system jobs, and one
/// explicit-step API.
///
/// Drivers call [`admit`](QuantumEngine::admit) whenever a job enters
/// the system and [`step_quantum`](QuantumEngine::step_quantum) once per
/// quantum; completed jobs are moved out into the caller's buffer, so
/// the engine only ever holds the jobs currently in the system.
///
/// This is a thin shell over [`QuantumCore`] instantiated with boxed
/// executors/controllers and a [`TraceProbe`] (disabled unless
/// [`with_traces`](QuantumEngine::with_traces) is called, in which case
/// each drained job carries its per-quantum trace).
pub struct QuantumEngine<A: Allocator> {
    core:
        QuantumCore<Box<dyn JobExecutor + Send>, Box<dyn RequestCalculator + Send>, A, TraceProbe>,
}

impl<A: Allocator> QuantumEngine<A> {
    /// Creates an engine over the given allocator and quantum length.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_len == 0`.
    pub fn new(allocator: A, quantum_len: u64) -> Self {
        Self {
            core: QuantumCore::new(allocator, quantum_len, TraceProbe::disabled()),
        }
    }

    /// Records a [`QuantumRecord`](crate::QuantumRecord) per job per
    /// quantum (returned in [`CompletedJob::trace`]). Costs memory
    /// proportional to in-system jobs × their live quanta.
    pub fn with_traces(mut self) -> Self {
        *self.core.probe_mut() = TraceProbe::new();
        self
    }

    /// Admits a job released at `release_step`, returning its admission
    /// id. The job participates from the first quantum boundary at or
    /// after its release.
    pub fn admit(
        &mut self,
        executor: Box<dyn JobExecutor + Send>,
        calculator: Box<dyn RequestCalculator + Send>,
        release_step: u64,
    ) -> u64 {
        self.core.admit(executor, calculator, release_step)
    }

    /// The current quantum boundary (absolute step).
    pub fn now(&self) -> u64 {
        self.core.now()
    }

    /// Quanta executed so far (idle skips do not count).
    pub fn quanta(&self) -> u64 {
        self.core.quanta()
    }

    /// The configured quantum length `L`.
    pub fn quantum_len(&self) -> u64 {
        self.core.quantum_len()
    }

    /// Jobs currently in the system (released or pending release).
    pub fn jobs_in_system(&self) -> usize {
        self.core.jobs_in_system()
    }

    /// Whether any in-system job is live at the current boundary.
    pub fn any_live(&self) -> bool {
        self.core.any_live()
    }

    /// Earliest release step among in-system jobs, if any.
    pub fn next_release(&self) -> Option<u64> {
        self.core.next_release()
    }

    /// Advances the clock over an idle machine: jumps to the first
    /// quantum boundary at or after `release` that is strictly after the
    /// current boundary.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a job is already live — skipping over runnable
    /// work would corrupt the schedule.
    pub fn skip_idle_until(&mut self, release: u64) {
        self.core.skip_idle_until(release)
    }

    /// Runs one quantum at the current boundary over every live job:
    /// gathers requests, allocates, steps each job's task scheduler, and
    /// feeds the measured statistics back through its request
    /// calculator. Jobs that completed during the quantum are drained
    /// into `completed` in admission order; the clock advances one
    /// quantum.
    ///
    /// # Panics
    ///
    /// Panics if no job is live — callers decide how to skip idle time
    /// (see [`skip_idle_until`](QuantumEngine::skip_idle_until)).
    pub fn step_quantum(&mut self, completed: &mut Vec<CompletedJob>) {
        self.core.step_quantum(completed)
    }

    /// [`step_quantum`](QuantumEngine::step_quantum), but hands the
    /// executor boxes of drained jobs back to the caller instead of
    /// dropping them. An open-system driver over a homogeneous workload
    /// can [`try_reset`](JobExecutor::try_reset) and re-admit them, so a
    /// steady-state run recycles a bounded pool of executors instead of
    /// allocating one per arrival. Purely an allocation-lifetime change:
    /// the simulated schedule is identical to the dropping variant.
    pub fn step_quantum_reclaiming(
        &mut self,
        completed: &mut Vec<CompletedJob>,
        reclaimed: &mut Vec<Box<dyn JobExecutor + Send>>,
    ) {
        self.core.step_quantum_reclaiming(completed, reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_alloc::DynamicEquiPartition;
    use abg_control::ConstantRequest;
    use abg_dag::LeveledJob;
    use abg_sched::LeveledExecutor;

    fn boxed_job(width: u64, levels: u64) -> Box<dyn JobExecutor + Send> {
        Box::new(LeveledExecutor::new(LeveledJob::constant(width, levels)))
    }

    #[test]
    fn mid_run_admission_joins_next_boundary() {
        let mut engine = QuantumEngine::new(DynamicEquiPartition::new(8), 10);
        engine.admit(boxed_job(2, 40), Box::new(ConstantRequest::new(2.0)), 0);
        let mut done = Vec::new();
        engine.step_quantum(&mut done); // [0, 10)
        assert_eq!(engine.now(), 10);
        // Admitted at step 10: live from the very next quantum.
        engine.admit(boxed_job(2, 20), Box::new(ConstantRequest::new(2.0)), 10);
        while engine.jobs_in_system() > 0 {
            engine.step_quantum(&mut done);
        }
        done.sort_by_key(|c| c.id);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].completion, 40);
        assert_eq!(done[1].completion, 30);
        assert_eq!(done[1].response_time(), 20);
    }

    #[test]
    fn completed_jobs_are_drained_not_retained() {
        let mut engine = QuantumEngine::new(DynamicEquiPartition::new(4), 5);
        for i in 0..3 {
            engine.admit(
                boxed_job(1, 5 * (i + 1)),
                Box::new(ConstantRequest::new(1.0)),
                0,
            );
        }
        let mut done = Vec::new();
        engine.step_quantum(&mut done);
        assert_eq!(done.len(), 1, "shortest job drains after one quantum");
        assert_eq!(engine.jobs_in_system(), 2);
        engine.step_quantum(&mut done);
        engine.step_quantum(&mut done);
        assert_eq!(engine.jobs_in_system(), 0);
        assert_eq!(done.len(), 3);
        // Admission ids survive the drains.
        let ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn skip_idle_until_lands_on_boundary_after_now() {
        let mut engine =
            QuantumEngine::<DynamicEquiPartition>::new(DynamicEquiPartition::new(4), 10);
        engine.skip_idle_until(34);
        assert_eq!(engine.now(), 40);
        // Already past: still advances at least one quantum.
        engine.skip_idle_until(5);
        assert_eq!(engine.now(), 50);
        assert_eq!(engine.quanta(), 0, "idle skips execute no quanta");
    }

    #[test]
    #[should_panic(expected = "no live jobs")]
    fn stepping_an_idle_machine_panics() {
        let mut engine = QuantumEngine::new(DynamicEquiPartition::new(4), 10);
        engine.admit(boxed_job(1, 5), Box::new(ConstantRequest::new(1.0)), 100);
        engine.step_quantum(&mut Vec::new());
    }
}
