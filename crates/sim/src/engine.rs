//! The reusable quantum-synchronous stepping core of the two-level
//! simulator.
//!
//! [`MultiJobSim`](crate::MultiJobSim) historically owned the whole
//! per-quantum loop (live-set selection, request gathering, allocation,
//! task-scheduler stepping, waste/trace accounting), which welded it to
//! a *closed* system: a fixed job vector, run to drain. The open-system
//! driver in `abg-queue` needs the same loop over an *unbounded* arrival
//! stream, so the loop lives here as [`QuantumEngine`]: jobs are
//! admitted at any time (including mid-run), each quantum is stepped
//! explicitly, and completed jobs are drained out of the engine so a
//! sustained-arrival simulation runs in memory proportional to the
//! number of jobs *in the system*, not the number ever submitted.
//!
//! The engine preserves the paper's accounting exactly: time is
//! quantum-synchronous, a job released mid-quantum joins at the next
//! boundary, and a job finishing mid-quantum holds its allotment until
//! the boundary (counted as waste). `MultiJobSim` is now a thin
//! closed-system shell over this engine; the sweep-fingerprint suite
//! pins the delegation bit-identical to the pre-refactor loop.

use crate::trace::QuantumRecord;
use abg_alloc::Allocator;
use abg_control::RequestCalculator;
use abg_sched::JobExecutor;

/// One admitted job inside the engine.
struct Slot {
    id: u64,
    executor: Box<dyn JobExecutor + Send>,
    calculator: Box<dyn RequestCalculator + Send>,
    release_step: u64,
    request: f64,
    completion: Option<u64>,
    waste: u64,
    quanta: u64,
    trace: Vec<QuantumRecord>,
}

/// A job drained from the engine after completing, with everything a
/// driver needs to account for it.
#[derive(Debug)]
pub struct CompletedJob {
    /// Admission-order identifier (0-based, monotone across the run).
    pub id: u64,
    /// Release (arrival) step as submitted.
    pub release: u64,
    /// Absolute completion step.
    pub completion: u64,
    /// Work `T1` of the job.
    pub work: u64,
    /// Critical-path length `T∞` of the job.
    pub span: u64,
    /// Processor cycles wasted on this job.
    pub waste: u64,
    /// Quanta in which the job was live.
    pub quanta: u64,
    /// Per-quantum trace (empty unless tracing is on).
    pub trace: Vec<QuantumRecord>,
}

impl CompletedJob {
    /// Response time: completion minus release.
    pub fn response_time(&self) -> u64 {
        self.completion - self.release
    }
}

/// The quantum-synchronous stepping core: a machine-wide allocator, a
/// set of in-system jobs, and one explicit-step API.
///
/// Drivers call [`admit`](QuantumEngine::admit) whenever a job enters
/// the system and [`step_quantum`](QuantumEngine::step_quantum) once per
/// quantum; completed jobs are moved out into the caller's buffer, so
/// the engine only ever holds the jobs currently in the system.
pub struct QuantumEngine<A: Allocator> {
    allocator: A,
    quantum_len: u64,
    now: u64,
    quanta: u64,
    record_traces: bool,
    next_id: u64,
    slots: Vec<Slot>,
    // Scratch buffers reused across quanta: the steady-state loop does
    // no heap allocation beyond executor internals.
    live: Vec<usize>,
    requests: Vec<f64>,
    allotments: Vec<u32>,
    retained: Vec<Slot>,
}

impl<A: Allocator> QuantumEngine<A> {
    /// Creates an engine over the given allocator and quantum length.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_len == 0`.
    pub fn new(allocator: A, quantum_len: u64) -> Self {
        assert!(quantum_len > 0, "quantum length must be positive");
        Self {
            allocator,
            quantum_len,
            now: 0,
            quanta: 0,
            record_traces: false,
            next_id: 0,
            slots: Vec::new(),
            live: Vec::new(),
            requests: Vec::new(),
            allotments: Vec::new(),
            retained: Vec::new(),
        }
    }

    /// Records a [`QuantumRecord`] per job per quantum (returned in
    /// [`CompletedJob::trace`]). Costs memory proportional to in-system
    /// jobs × their live quanta.
    pub fn with_traces(mut self) -> Self {
        self.record_traces = true;
        self
    }

    /// Admits a job released at `release_step`, returning its admission
    /// id. The job participates from the first quantum boundary at or
    /// after its release.
    pub fn admit(
        &mut self,
        executor: Box<dyn JobExecutor + Send>,
        calculator: Box<dyn RequestCalculator + Send>,
        release_step: u64,
    ) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let request = calculator.initial_request();
        self.slots.push(Slot {
            id,
            executor,
            calculator,
            release_step,
            request,
            completion: None,
            waste: 0,
            quanta: 0,
            trace: Vec::new(),
        });
        id
    }

    /// The current quantum boundary (absolute step).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Quanta executed so far (idle skips do not count).
    pub fn quanta(&self) -> u64 {
        self.quanta
    }

    /// The configured quantum length `L`.
    pub fn quantum_len(&self) -> u64 {
        self.quantum_len
    }

    /// Jobs currently in the system (released or pending release).
    pub fn jobs_in_system(&self) -> usize {
        self.slots.len()
    }

    /// Whether any in-system job is live at the current boundary.
    pub fn any_live(&self) -> bool {
        self.slots.iter().any(|s| s.release_step <= self.now)
    }

    /// Earliest release step among in-system jobs, if any.
    pub fn next_release(&self) -> Option<u64> {
        self.slots.iter().map(|s| s.release_step).min()
    }

    /// Advances the clock over an idle machine: jumps to the first
    /// quantum boundary at or after `release` that is strictly after the
    /// current boundary.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a job is already live — skipping over runnable
    /// work would corrupt the schedule.
    pub fn skip_idle_until(&mut self, release: u64) {
        debug_assert!(!self.any_live(), "skip_idle_until with live jobs");
        let l = self.quantum_len;
        self.now = release.div_ceil(l).max(self.now / l + 1) * l;
    }

    /// Runs one quantum at the current boundary over every live job:
    /// gathers requests, allocates, steps each job's task scheduler, and
    /// feeds the measured statistics back through its request
    /// calculator. Jobs that completed during the quantum are drained
    /// into `completed` in admission order; the clock advances one
    /// quantum.
    ///
    /// # Panics
    ///
    /// Panics if no job is live — callers decide how to skip idle time
    /// (see [`skip_idle_until`](QuantumEngine::skip_idle_until)).
    pub fn step_quantum(&mut self, completed: &mut Vec<CompletedJob>) {
        self.step_quantum_inner(completed, None);
    }

    /// [`step_quantum`](QuantumEngine::step_quantum), but hands the
    /// executor boxes of drained jobs back to the caller instead of
    /// dropping them. An open-system driver over a homogeneous workload
    /// can [`try_reset`](JobExecutor::try_reset) and re-admit them, so a
    /// steady-state run recycles a bounded pool of executors instead of
    /// allocating one per arrival. Purely an allocation-lifetime change:
    /// the simulated schedule is identical to the dropping variant.
    pub fn step_quantum_reclaiming(
        &mut self,
        completed: &mut Vec<CompletedJob>,
        reclaimed: &mut Vec<Box<dyn JobExecutor + Send>>,
    ) {
        self.step_quantum_inner(completed, Some(reclaimed));
    }

    fn step_quantum_inner(
        &mut self,
        completed: &mut Vec<CompletedJob>,
        mut reclaimed: Option<&mut Vec<Box<dyn JobExecutor + Send>>>,
    ) {
        let l = self.quantum_len;
        let now = self.now;
        self.live.clear();
        self.live.extend(
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.release_step <= now)
                .map(|(i, _)| i),
        );
        assert!(
            !self.live.is_empty(),
            "step_quantum with no live jobs (use skip_idle_until)"
        );
        self.requests.clear();
        for k in 0..self.live.len() {
            let i = self.live[k];
            self.requests.push(self.slots[i].request);
        }
        self.allocator
            .allocate_into(&self.requests, &mut self.allotments);
        debug_assert_eq!(self.allotments.len(), self.live.len());
        let mut finished = 0usize;
        for k in 0..self.live.len() {
            let i = self.live[k];
            let allotment = self.allotments[k];
            let job = &mut self.slots[i];
            let stats = job.executor.run_quantum(allotment, l);
            job.quanta += 1;
            job.waste += stats.waste();
            if stats.completed {
                job.completion = Some(now + stats.steps_worked);
                finished += 1;
            }
            if self.record_traces {
                job.trace.push(QuantumRecord {
                    index: job.quanta as u32,
                    start_step: now,
                    request: job.request,
                    allotment,
                    availability: None,
                    stats,
                });
            }
            job.request = job.calculator.observe(&stats);
        }
        if finished > 0 {
            // Selective drain preserving admission order (allocation
            // order — and with it DEQ's rotating tie-break state — must
            // not depend on who finished).
            self.retained.clear();
            for slot in self.slots.drain(..) {
                match slot.completion {
                    Some(step) => {
                        completed.push(CompletedJob {
                            id: slot.id,
                            release: slot.release_step,
                            completion: step,
                            work: slot.executor.total_work(),
                            span: slot.executor.total_span(),
                            waste: slot.waste,
                            quanta: slot.quanta,
                            trace: slot.trace,
                        });
                        if let Some(pool) = reclaimed.as_deref_mut() {
                            pool.push(slot.executor);
                        }
                    }
                    None => self.retained.push(slot),
                }
            }
            std::mem::swap(&mut self.slots, &mut self.retained);
        }
        self.now = now + l;
        self.quanta += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_alloc::DynamicEquiPartition;
    use abg_control::ConstantRequest;
    use abg_dag::LeveledJob;
    use abg_sched::LeveledExecutor;

    fn boxed_job(width: u64, levels: u64) -> Box<dyn JobExecutor + Send> {
        Box::new(LeveledExecutor::new(LeveledJob::constant(width, levels)))
    }

    #[test]
    fn mid_run_admission_joins_next_boundary() {
        let mut engine = QuantumEngine::new(DynamicEquiPartition::new(8), 10);
        engine.admit(boxed_job(2, 40), Box::new(ConstantRequest::new(2.0)), 0);
        let mut done = Vec::new();
        engine.step_quantum(&mut done); // [0, 10)
        assert_eq!(engine.now(), 10);
        // Admitted at step 10: live from the very next quantum.
        engine.admit(boxed_job(2, 20), Box::new(ConstantRequest::new(2.0)), 10);
        while engine.jobs_in_system() > 0 {
            engine.step_quantum(&mut done);
        }
        done.sort_by_key(|c| c.id);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].completion, 40);
        assert_eq!(done[1].completion, 30);
        assert_eq!(done[1].response_time(), 20);
    }

    #[test]
    fn completed_jobs_are_drained_not_retained() {
        let mut engine = QuantumEngine::new(DynamicEquiPartition::new(4), 5);
        for i in 0..3 {
            engine.admit(
                boxed_job(1, 5 * (i + 1)),
                Box::new(ConstantRequest::new(1.0)),
                0,
            );
        }
        let mut done = Vec::new();
        engine.step_quantum(&mut done);
        assert_eq!(done.len(), 1, "shortest job drains after one quantum");
        assert_eq!(engine.jobs_in_system(), 2);
        engine.step_quantum(&mut done);
        engine.step_quantum(&mut done);
        assert_eq!(engine.jobs_in_system(), 0);
        assert_eq!(done.len(), 3);
        // Admission ids survive the drains.
        let ids: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn skip_idle_until_lands_on_boundary_after_now() {
        let mut engine =
            QuantumEngine::<DynamicEquiPartition>::new(DynamicEquiPartition::new(4), 10);
        engine.skip_idle_until(34);
        assert_eq!(engine.now(), 40);
        // Already past: still advances at least one quantum.
        engine.skip_idle_until(5);
        assert_eq!(engine.now(), 50);
        assert_eq!(engine.quanta(), 0, "idle skips execute no quanta");
    }

    #[test]
    #[should_panic(expected = "no live jobs")]
    fn stepping_an_idle_machine_panics() {
        let mut engine = QuantumEngine::new(DynamicEquiPartition::new(4), 10);
        engine.admit(boxed_job(1, 5), Box::new(ConstantRequest::new(1.0)), 100);
        engine.step_quantum(&mut Vec::new());
    }
}
