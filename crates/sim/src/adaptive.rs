//! Adaptive quantum length — the paper's first future-work item
//! (Section 9: "dynamically adjusting the quantum length and other
//! parameters to achieve better system wide adaptivity").
//!
//! The quantum length trades reaction speed against reallocation
//! overhead: short quanta track parallelism changes quickly but
//! renegotiate processors constantly; long quanta amortize the
//! renegotiation but stretch the one-quantum lag a feedback scheduler
//! pays at every parallelism transition.
//!
//! Pacing rides on the unified [`Controller`] trait: a controller's
//! [`next_quantum_len`](Controller::next_quantum_len) hook lets it pick
//! each quantum's length online, so the *same* generic core drives
//! fixed and adaptive quanta. [`Paced`] wraps any request calculator
//! with an [`AdaptiveQuantum`] pacer implementing the natural rule —
//! lengthen while the request is stable, shrink as soon as it moves —
//! and [`FixedQuantum`] is the degenerate pacer that never moves.
//!
//! (The pre-unification `QuantumPolicy` trait, which duplicated the
//! request bookkeeping outside the controller, is gone; `Paced`
//! subsumes it.)

use crate::single::{SingleJobConfig, SingleJobRun};
use abg_alloc::Allocator;
use abg_control::Controller;
use abg_sched::{JobExecutor, QuantumStats};
use serde::{Deserialize, Serialize};

/// The conventional fixed-length quantum, as a pacer: wrap a controller
/// with [`FixedQuantum::pace`] to run it at this length regardless of
/// the engine default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedQuantum(pub u64);

impl FixedQuantum {
    /// Wraps a request calculator into a controller running every
    /// quantum at this fixed length.
    ///
    /// # Panics
    ///
    /// Panics if the length is zero.
    pub fn pace<C: Controller>(self, inner: C) -> Paced<C> {
        AdaptiveQuantum::from(self).pace(inner)
    }
}

impl From<FixedQuantum> for AdaptiveQuantum {
    /// The degenerate pacer `min = max = L`: the band never matters and
    /// the length never moves.
    fn from(fixed: FixedQuantum) -> Self {
        assert!(fixed.0 > 0, "quantum length must be positive");
        Self {
            min: fixed.0,
            max: fixed.0,
            stability_band: f64::INFINITY,
            len: fixed.0,
        }
    }
}

/// Multiplicative adaptive quantum sizing.
///
/// If the feedback update moved the request by less than
/// `stability_band` (relative), the job's parallelism is steady and the
/// quantum doubles (capped at `max`); otherwise it halves (floored at
/// `min`). On a constant-parallelism job the steady-state quantum is
/// `max`, cutting reallocation events by `max/min`; at every phase
/// transition the quantum collapses to react quickly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveQuantum {
    /// Smallest quantum length.
    pub min: u64,
    /// Largest quantum length.
    pub max: u64,
    /// Relative request-change threshold for "stable".
    pub stability_band: f64,
    len: u64,
}

impl AdaptiveQuantum {
    /// Creates a pacer starting from `min`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min ≤ max` and the band is positive.
    pub fn new(min: u64, max: u64, stability_band: f64) -> Self {
        assert!(min > 0 && min <= max, "need 0 < min ≤ max");
        assert!(
            stability_band > 0.0 && stability_band.is_finite(),
            "stability band must be positive"
        );
        Self {
            min,
            max,
            stability_band,
            len: min,
        }
    }

    /// The current quantum length.
    pub fn current_len(&self) -> u64 {
        self.len
    }

    /// Feeds one feedback update — the request that drove the quantum
    /// and the request the controller produced from it — and returns the
    /// next quantum's length: doubled if the relative change stayed
    /// within the stability band, halved otherwise.
    pub fn update(&mut self, prev_request: f64, next_request: f64) -> u64 {
        let relative_change = (next_request - prev_request).abs() / prev_request.max(1.0);
        if relative_change <= self.stability_band {
            self.len = (self.len * 2).min(self.max);
        } else {
            self.len = (self.len / 2).max(self.min);
        }
        self.len
    }

    /// Wraps a request calculator into a [`Paced`] controller driven by
    /// this pacer.
    pub fn pace<C: Controller>(self, inner: C) -> Paced<C> {
        Paced { inner, pacer: self }
    }
}

/// A request calculator paced by an [`AdaptiveQuantum`]: the unified
/// [`Controller`] that merges the old request/quantum-length split.
///
/// The request side forwards to the wrapped calculator untouched; after
/// every observation the pacer sees the (previous, next) request pair
/// and resizes the quantum, which the engine picks up through
/// [`Controller::next_quantum_len`]. Works in every driver — single
/// job, closed multi-job, open system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Paced<C> {
    inner: C,
    pacer: AdaptiveQuantum,
}

impl<C> Paced<C> {
    /// The wrapped request calculator.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The pacer state (current quantum length, bounds, band).
    pub fn pacer(&self) -> &AdaptiveQuantum {
        &self.pacer
    }
}

impl<C: Controller> Controller for Paced<C> {
    fn initial_request(&self) -> f64 {
        self.inner.initial_request()
    }

    fn observe(&mut self, stats: &QuantumStats) -> f64 {
        // `current_request` is the request that drove this quantum —
        // exactly the "previous" side of the pacer's stability test.
        let prev = self.inner.current_request();
        let next = self.inner.observe(stats);
        self.pacer.update(prev, next);
        next
    }

    fn current_request(&self) -> f64 {
        self.inner.current_request()
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn initial_quantum_len(&self, _default_len: u64) -> u64 {
        self.pacer.len
    }

    fn next_quantum_len(&mut self, _default_len: u64) -> u64 {
        self.pacer.len
    }
}

/// Like [`crate::run_single_job`] (and now a trivial delegation to it —
/// the controller itself carries the pacing), returning the run plus the
/// number of quanta whose allotment differed from the previous one (a
/// proxy for reallocation overhead, which the paper's simulations ignore
/// but its motivation cares about).
///
/// Pass a [`Paced`] controller (e.g.
/// `AdaptiveQuantum::new(25, 400, 0.05).pace(AControl::new(0.2))`) for
/// adaptive quanta, or any plain calculator for the fixed-length
/// behaviour of the configured `L`.
///
/// # Panics
///
/// Panics if the `max_quanta` safety valve (from `config`) trips.
pub fn run_single_job_adaptive<E, C, A>(
    executor: &mut E,
    controller: &mut C,
    allocator: &mut A,
    config: SingleJobConfig,
) -> (SingleJobRun, u64)
where
    E: JobExecutor,
    C: Controller,
    A: Allocator + Clone,
{
    let run = crate::run_single_job(executor, controller, allocator, config);
    let reallocations = run.reallocations;
    (run, reallocations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_alloc::Scripted;
    use abg_control::AControl;
    use abg_dag::{Phase, PhasedJob};
    use abg_sched::PipelinedExecutor;

    fn forkjoin() -> PhasedJob {
        PhasedJob::new(vec![
            Phase::new(1, 100),
            Phase::new(12, 600),
            Phase::new(1, 100),
            Phase::new(12, 600),
            Phase::new(1, 100),
        ])
    }

    #[test]
    fn fixed_pacer_reproduces_fixed_engine() {
        let job = forkjoin();
        let mut a = PipelinedExecutor::new(&job);
        let mut c = AControl::new(0.2);
        let mut al = Scripted::ample(64);
        let fixed = crate::run_single_job(&mut a, &mut c, &mut al, SingleJobConfig::new(50));

        let mut b = PipelinedExecutor::new(&job);
        let mut c2 = FixedQuantum(50).pace(AControl::new(0.2));
        let mut al2 = Scripted::ample(64);
        let (adaptive, _) =
            run_single_job_adaptive(&mut b, &mut c2, &mut al2, SingleJobConfig::new(50));
        assert_eq!(fixed.running_time, adaptive.running_time);
        assert_eq!(fixed.waste, adaptive.waste);
        assert_eq!(fixed.quanta, adaptive.quanta);
    }

    #[test]
    fn adaptive_pacer_uses_fewer_quanta_on_stable_jobs() {
        let job = PhasedJob::constant(8, 4000);
        let run_with = |adaptive: bool| {
            let mut ex = PipelinedExecutor::new(&job);
            let mut al = Scripted::ample(64);
            let pacer = if adaptive {
                AdaptiveQuantum::new(25, 400, 0.05)
            } else {
                AdaptiveQuantum::from(FixedQuantum(25))
            };
            let mut c = pacer.pace(AControl::new(0.2));
            run_single_job_adaptive(&mut ex, &mut c, &mut al, SingleJobConfig::new(25))
        };
        let (fixed_run, _) = run_with(false);
        let (adaptive_run, _) = run_with(true);
        assert!(
            adaptive_run.quanta * 2 < fixed_run.quanta,
            "adaptive {} quanta vs fixed {}",
            adaptive_run.quanta,
            fixed_run.quanta
        );
        // And it must not meaningfully slow the job down.
        assert!(adaptive_run.running_time as f64 <= fixed_run.running_time as f64 * 1.2);
    }

    #[test]
    fn adaptive_pacer_shrinks_on_transitions() {
        let mut p = AdaptiveQuantum::new(10, 160, 0.05);
        // Stable feedback: grows 10 -> 20 -> 40.
        assert_eq!(p.update(8.0, 8.0), 20);
        assert_eq!(p.update(8.0, 8.1), 40);
        // A big request move: collapses 40 -> 20 -> 10 -> 10.
        assert_eq!(p.update(8.0, 2.0), 20);
        assert_eq!(p.update(2.0, 8.0), 10);
        assert_eq!(p.update(8.0, 2.0), 10);
    }

    #[test]
    fn reallocation_count_tracks_allotment_changes() {
        let job = PhasedJob::constant(4, 200);
        let mut ex = PipelinedExecutor::new(job);
        // Rate 0: one-step convergence, requests 1 then 4.
        let mut c = FixedQuantum(20).pace(AControl::new(0.0));
        let mut al = Scripted::ample(16);
        let (_, reallocs) =
            run_single_job_adaptive(&mut ex, &mut c, &mut al, SingleJobConfig::new(20));
        assert_eq!(reallocs, 1, "only the 1 -> 4 jump changes the allotment");
    }

    #[test]
    fn paced_controller_works_in_the_multi_job_engine() {
        // The merged trait means pacing is no longer single-job only:
        // a paced job shortens shared quanta (the engine runs at the
        // minimum any live controller asks for).
        use abg_alloc::DynamicEquiPartition;
        let mut sim = crate::MultiJobSim::new(DynamicEquiPartition::new(32), 40);
        sim.add_job(
            Box::new(PipelinedExecutor::new(forkjoin())),
            Box::new(AdaptiveQuantum::new(10, 160, 0.05).pace(AControl::new(0.2))),
            0,
        );
        sim.add_job(
            Box::new(PipelinedExecutor::new(forkjoin())),
            Box::new(AControl::new(0.2)),
            0,
        );
        let out = sim.run();
        assert_eq!(out.jobs.len(), 2);
        let total_work: u64 = out.jobs.iter().map(|j| j.work).sum();
        assert_eq!(total_work, 2 * forkjoin().work());
    }

    #[test]
    #[should_panic(expected = "min ≤ max")]
    fn bad_bounds_rejected() {
        let _ = AdaptiveQuantum::new(100, 10, 0.05);
    }
}
