//! Adaptive quantum length — the paper's first future-work item
//! (Section 9: "dynamically adjusting the quantum length and other
//! parameters to achieve better system wide adaptivity").
//!
//! The quantum length trades reaction speed against reallocation
//! overhead: short quanta track parallelism changes quickly but
//! renegotiate processors constantly; long quanta amortize the
//! renegotiation but stretch the one-quantum lag a feedback scheduler
//! pays at every parallelism transition. A [`QuantumPolicy`] lets the
//! engine pick each quantum's length online; [`AdaptiveQuantum`]
//! implements the natural rule: lengthen while the request is stable,
//! shrink as soon as it moves.

use crate::single::{SingleJobConfig, SingleJobRun};
use crate::trace::QuantumRecord;
use abg_alloc::Allocator;
use abg_control::RequestCalculator;
use abg_sched::JobExecutor;
use serde::{Deserialize, Serialize};

/// Chooses the length of each scheduling quantum.
pub trait QuantumPolicy {
    /// Length of the first quantum.
    fn initial_len(&self) -> u64;

    /// Observes the quantum that just ended (its statistics plus the
    /// standing request before and after the feedback update) and
    /// returns the next quantum's length.
    fn observe(&mut self, record: &QuantumRecord, next_request: f64) -> u64;
}

/// The conventional fixed-length quantum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FixedQuantum(pub u64);

impl QuantumPolicy for FixedQuantum {
    fn initial_len(&self) -> u64 {
        self.0
    }
    fn observe(&mut self, _record: &QuantumRecord, _next_request: f64) -> u64 {
        self.0
    }
}

/// Multiplicative adaptive quantum sizing.
///
/// If the feedback update moved the request by less than
/// `stability_band` (relative), the job's parallelism is steady and the
/// quantum doubles (capped at `max`); otherwise it halves (floored at
/// `min`). On a constant-parallelism job the steady-state quantum is
/// `max`, cutting reallocation events by `max/min`; at every phase
/// transition the quantum collapses to react quickly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveQuantum {
    /// Smallest quantum length.
    pub min: u64,
    /// Largest quantum length.
    pub max: u64,
    /// Relative request-change threshold for "stable".
    pub stability_band: f64,
    len: u64,
}

impl AdaptiveQuantum {
    /// Creates a policy starting from `min`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min ≤ max` and the band is positive.
    pub fn new(min: u64, max: u64, stability_band: f64) -> Self {
        assert!(min > 0 && min <= max, "need 0 < min ≤ max");
        assert!(
            stability_band > 0.0 && stability_band.is_finite(),
            "stability band must be positive"
        );
        Self {
            min,
            max,
            stability_band,
            len: min,
        }
    }
}

impl QuantumPolicy for AdaptiveQuantum {
    fn initial_len(&self) -> u64 {
        self.len
    }

    fn observe(&mut self, record: &QuantumRecord, next_request: f64) -> u64 {
        let prev = record.request.max(1.0);
        let relative_change = (next_request - record.request).abs() / prev;
        if relative_change <= self.stability_band {
            self.len = (self.len * 2).min(self.max);
        } else {
            self.len = (self.len / 2).max(self.min);
        }
        self.len
    }
}

/// Like [`crate::run_single_job`], but the quantum length follows a
/// [`QuantumPolicy`]. Returns the run plus the number of quanta whose
/// allotment differed from the previous one (a proxy for reallocation
/// overhead, which the paper's simulations ignore but its motivation
/// cares about).
///
/// # Panics
///
/// Panics if the policy's `max_quanta` safety valve (from `config`)
/// trips.
pub fn run_single_job_adaptive<E, C, A, Q>(
    executor: &mut E,
    calculator: &mut C,
    allocator: &mut A,
    policy: &mut Q,
    config: SingleJobConfig,
) -> (SingleJobRun, u64)
where
    E: JobExecutor,
    C: RequestCalculator,
    A: Allocator + Clone,
    Q: QuantumPolicy,
{
    let mut request = calculator.initial_request();
    let mut len = policy.initial_len();
    let mut running_time = 0u64;
    let mut waste = 0u64;
    let mut quanta = 0u64;
    let mut reallocations = 0u64;
    let mut prev_allotment: Option<u32> = None;
    let mut trace = Vec::new();
    // Reused across quanta; keeps the loop allocation-free at steady
    // state like `run_single_job`.
    let mut allotments: Vec<u32> = Vec::with_capacity(1);

    while !executor.is_complete() {
        assert!(
            quanta < config.max_quanta,
            "job did not finish within {} quanta (livelock?)",
            config.max_quanta
        );
        allocator.allocate_into(std::slice::from_ref(&request), &mut allotments);
        let allotment = allotments[0];
        if prev_allotment.is_some_and(|p| p != allotment) {
            reallocations += 1;
        }
        prev_allotment = Some(allotment);
        let stats = executor.run_quantum(allotment, len);
        quanta += 1;
        waste += stats.waste();
        running_time += if stats.completed {
            stats.steps_worked
        } else {
            len
        };
        let record = QuantumRecord {
            index: quanta as u32,
            start_step: running_time.saturating_sub(len),
            request,
            allotment,
            availability: None,
            stats,
        };
        request = calculator.observe(&stats);
        len = policy.observe(&record, request);
        if config.record_trace {
            trace.push(record);
        }
    }

    (
        SingleJobRun {
            running_time,
            waste,
            quanta,
            reallocations,
            work: executor.total_work(),
            span: executor.total_span(),
            trace,
        },
        reallocations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_alloc::Scripted;
    use abg_control::AControl;
    use abg_dag::{Phase, PhasedJob};
    use abg_sched::PipelinedExecutor;

    fn forkjoin() -> PhasedJob {
        PhasedJob::new(vec![
            Phase::new(1, 100),
            Phase::new(12, 600),
            Phase::new(1, 100),
            Phase::new(12, 600),
            Phase::new(1, 100),
        ])
    }

    #[test]
    fn fixed_policy_reproduces_fixed_engine() {
        let job = forkjoin();
        let mut a = PipelinedExecutor::new(&job);
        let mut c = AControl::new(0.2);
        let mut al = Scripted::ample(64);
        let fixed = crate::run_single_job(&mut a, &mut c, &mut al, SingleJobConfig::new(50));

        let mut b = PipelinedExecutor::new(&job);
        let mut c2 = AControl::new(0.2);
        let mut al2 = Scripted::ample(64);
        let (adaptive, _) = run_single_job_adaptive(
            &mut b,
            &mut c2,
            &mut al2,
            &mut FixedQuantum(50),
            SingleJobConfig::new(50),
        );
        assert_eq!(fixed.running_time, adaptive.running_time);
        assert_eq!(fixed.waste, adaptive.waste);
        assert_eq!(fixed.quanta, adaptive.quanta);
    }

    #[test]
    fn adaptive_policy_uses_fewer_quanta_on_stable_jobs() {
        let job = PhasedJob::constant(8, 4000);
        let run_with = |adaptive: bool| {
            let mut ex = PipelinedExecutor::new(&job);
            let mut c = AControl::new(0.2);
            let mut al = Scripted::ample(64);
            if adaptive {
                let mut p = AdaptiveQuantum::new(25, 400, 0.05);
                run_single_job_adaptive(&mut ex, &mut c, &mut al, &mut p, SingleJobConfig::new(25))
            } else {
                let mut p = FixedQuantum(25);
                run_single_job_adaptive(&mut ex, &mut c, &mut al, &mut p, SingleJobConfig::new(25))
            }
        };
        let (fixed_run, _) = run_with(false);
        let (adaptive_run, _) = run_with(true);
        assert!(
            adaptive_run.quanta * 2 < fixed_run.quanta,
            "adaptive {} quanta vs fixed {}",
            adaptive_run.quanta,
            fixed_run.quanta
        );
        // And it must not meaningfully slow the job down.
        assert!(adaptive_run.running_time as f64 <= fixed_run.running_time as f64 * 1.2);
    }

    #[test]
    fn adaptive_policy_shrinks_on_transitions() {
        let mut p = AdaptiveQuantum::new(10, 160, 0.05);
        let record = |request: f64| QuantumRecord {
            index: 1,
            start_step: 0,
            request,
            allotment: 8,
            availability: None,
            stats: abg_sched::QuantumStats {
                allotment: 8,
                quantum_len: 10,
                steps_worked: 10,
                work: 80,
                span: 10.0,
                completed: false,
            },
        };
        // Stable feedback: grows 10 -> 20 -> 40.
        assert_eq!(p.observe(&record(8.0), 8.0), 20);
        assert_eq!(p.observe(&record(8.0), 8.1), 40);
        // A big request move: collapses 40 -> 20 -> 10 -> 10.
        assert_eq!(p.observe(&record(8.0), 2.0), 20);
        assert_eq!(p.observe(&record(2.0), 8.0), 10);
        assert_eq!(p.observe(&record(8.0), 2.0), 10);
    }

    #[test]
    fn reallocation_count_tracks_allotment_changes() {
        let job = PhasedJob::constant(4, 200);
        let mut ex = PipelinedExecutor::new(job);
        let mut c = AControl::new(0.0); // one-step convergence: 1 then 4
        let mut al = Scripted::ample(16);
        let (_, reallocs) = run_single_job_adaptive(
            &mut ex,
            &mut c,
            &mut al,
            &mut FixedQuantum(20),
            SingleJobConfig::new(20),
        );
        assert_eq!(reallocs, 1, "only the 1 -> 4 jump changes the allotment");
    }

    #[test]
    #[should_panic(expected = "min ≤ max")]
    fn bad_bounds_rejected() {
        let _ = AdaptiveQuantum::new(100, 10, 0.05);
    }
}
