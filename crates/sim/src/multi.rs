//! Multi-job simulation: a job set space-sharing the machine.

use crate::engine::{CompletedJob, QuantumEngine};
use crate::trace::QuantumRecord;
use abg_alloc::Allocator;
use abg_control::RequestCalculator;
use abg_sched::JobExecutor;
use serde::{Deserialize, Serialize};

/// One job waiting to be admitted into the engine when `run` starts.
struct PendingJob {
    executor: Box<dyn JobExecutor + Send>,
    calculator: Box<dyn RequestCalculator + Send>,
    release_step: u64,
}

/// Final per-job measurements of a multiprogrammed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Release step of the job (as submitted; participation starts at
    /// the first quantum boundary at or after it).
    pub release: u64,
    /// Absolute completion step.
    pub completion: u64,
    /// Work `T1` of the job.
    pub work: u64,
    /// Critical-path length `T∞` of the job.
    pub span: u64,
    /// Processor cycles wasted on this job.
    pub waste: u64,
    /// Quanta in which the job was live.
    pub quanta: u64,
}

impl JobOutcome {
    /// Response time: completion minus release.
    pub fn response_time(&self) -> u64 {
        self.completion - self.release
    }
}

/// Global measurements of a multiprogrammed run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiJobOutcome {
    /// Per-job outcomes in submission order.
    pub jobs: Vec<JobOutcome>,
    /// Makespan: the step at which the last job completed.
    pub makespan: u64,
    /// Total processor cycles wasted across the set.
    pub total_waste: u64,
    /// Total quanta simulated.
    pub quanta: u64,
    /// Per-job quantum traces (same indexing as `jobs`); empty unless
    /// the simulator was built with [`MultiJobSim::with_traces`].
    pub traces: Vec<Vec<QuantumRecord>>,
}

impl MultiJobOutcome {
    /// Mean response time `R` over the job set.
    ///
    /// An empty job set has no responses to average; the mean is defined
    /// as `0.0` (never `NaN`), so downstream ratios and fingerprints stay
    /// finite.
    pub fn mean_response_time(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.jobs
            .iter()
            .map(|j| j.response_time() as f64)
            .sum::<f64>()
            / self.jobs.len() as f64
    }

    /// Total work of the job set.
    pub fn total_work(&self) -> u64 {
        self.jobs.iter().map(|j| j.work).sum()
    }
}

/// A two-level multiprogrammed simulation: jobs (each with its own task
/// scheduler and request calculator) space-share a machine through one
/// OS allocator.
///
/// Time is quantum-synchronous: all jobs share quantum boundaries, a job
/// released mid-quantum joins at the next boundary, and a job finishing
/// mid-quantum holds its allotment until the boundary (counted as
/// waste), which matches the paper's accounting.
///
/// This is the *closed-system* shell over the reusable
/// [`QuantumEngine`]: the whole job set is admitted up front and the
/// machine runs until it drains. The open-system (sustained-arrival)
/// driver in `abg-queue` shares the same engine.
///
/// ```
/// use abg_alloc::DynamicEquiPartition;
/// use abg_control::AControl;
/// use abg_dag::PhasedJob;
/// use abg_sched::PipelinedExecutor;
/// use abg_sim::MultiJobSim;
///
/// let mut sim = MultiJobSim::new(DynamicEquiPartition::new(16), 10);
/// for _ in 0..4 {
///     sim.add_job(
///         Box::new(PipelinedExecutor::new(PhasedJob::constant(4, 50))),
///         Box::new(AControl::new(0.2)),
///         0,
///     );
/// }
/// let out = sim.run();
/// assert_eq!(out.jobs.len(), 4);
/// assert!(out.makespan >= 50);
/// ```
pub struct MultiJobSim<A: Allocator> {
    allocator: A,
    quantum_len: u64,
    jobs: Vec<PendingJob>,
    /// Abort threshold (quanta); guards misconfigured livelocks.
    max_quanta: u64,
    record_traces: bool,
}

impl<A: Allocator> MultiJobSim<A> {
    /// Creates a simulator over the given allocator and quantum length.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_len == 0`.
    pub fn new(allocator: A, quantum_len: u64) -> Self {
        assert!(quantum_len > 0, "quantum length must be positive");
        Self {
            allocator,
            quantum_len,
            jobs: Vec::new(),
            max_quanta: u64::MAX,
            record_traces: false,
        }
    }

    /// Records a [`QuantumRecord`] per job per quantum; the traces come
    /// back in [`MultiJobOutcome::traces`]. Costs memory proportional
    /// to jobs × quanta.
    pub fn with_traces(mut self) -> Self {
        self.record_traces = true;
        self
    }

    /// Sets the livelock guard: `run` panics if the set is unfinished
    /// after this many quanta.
    pub fn with_max_quanta(mut self, max_quanta: u64) -> Self {
        self.max_quanta = max_quanta;
        self
    }

    /// Adds a job released at `release_step`.
    pub fn add_job(
        &mut self,
        executor: Box<dyn JobExecutor + Send>,
        calculator: Box<dyn RequestCalculator + Send>,
        release_step: u64,
    ) {
        self.jobs.push(PendingJob {
            executor,
            calculator,
            release_step,
        });
    }

    /// Number of jobs added.
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// Runs the set to completion and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if no jobs were added, or the `max_quanta` guard trips.
    pub fn run(self) -> MultiJobOutcome {
        assert!(!self.jobs.is_empty(), "no jobs to simulate");
        let mut engine = QuantumEngine::new(self.allocator, self.quantum_len);
        if self.record_traces {
            engine = engine.with_traces();
        }
        for job in self.jobs {
            engine.admit(job.executor, job.calculator, job.release_step);
        }

        let mut done: Vec<CompletedJob> = Vec::new();
        while engine.jobs_in_system() > 0 {
            assert!(
                engine.quanta() < self.max_quanta,
                "job set did not finish within {} quanta (livelock?)",
                self.max_quanta
            );
            if !engine.any_live() {
                // Machine idle: jump to the first quantum boundary at or
                // after the earliest pending release.
                let next_release = engine
                    .next_release()
                    .expect("loop guard ensures an in-system job exists");
                engine.skip_idle_until(next_release);
                continue;
            }
            engine.step_quantum(&mut done);
        }
        let quanta = engine.quanta();

        // The engine drains jobs in completion order; the outcome
        // promises submission order.
        done.sort_by_key(|c| c.id);
        let jobs: Vec<JobOutcome> = done
            .iter()
            .map(|c| JobOutcome {
                release: c.release,
                completion: c.completion,
                work: c.work,
                span: c.span,
                waste: c.waste,
                quanta: c.quanta,
            })
            .collect();
        let makespan = jobs.iter().map(|j| j.completion).max().unwrap_or(0);
        let total_waste = jobs.iter().map(|j| j.waste).sum();
        let traces = done.into_iter().map(|c| c.trace).collect();
        MultiJobOutcome {
            jobs,
            makespan,
            total_waste,
            quanta,
            traces,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_alloc::DynamicEquiPartition;
    use abg_control::{AControl, AGreedy, ConstantRequest};
    use abg_dag::LeveledJob;
    use abg_sched::LeveledExecutor;

    fn boxed_job(width: u64, levels: u64) -> Box<dyn JobExecutor + Send> {
        Box::new(LeveledExecutor::new(LeveledJob::constant(width, levels)))
    }

    #[test]
    fn batched_set_completes_with_sane_metrics() {
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(16), 10);
        for _ in 0..4 {
            sim.add_job(boxed_job(4, 100), Box::new(AControl::new(0.2)), 0);
        }
        let out = sim.run();
        assert_eq!(out.jobs.len(), 4);
        assert_eq!(out.total_work(), 4 * 400);
        // 4 jobs × width 4 = 16 = machine size: after convergence every
        // quantum is fully productive.
        let lower = 100u64; // T∞ per job
        assert!(out.makespan >= lower);
        assert!(
            out.makespan < 4 * lower,
            "makespan {} too large",
            out.makespan
        );
        for j in &out.jobs {
            assert_eq!(j.response_time(), j.completion);
            assert_eq!(j.work, 400);
        }
    }

    #[test]
    fn staggered_releases_round_to_boundaries() {
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(8), 10);
        sim.add_job(boxed_job(2, 40), Box::new(ConstantRequest::new(2.0)), 0);
        // Released mid-quantum: joins at step 20.
        sim.add_job(boxed_job(2, 40), Box::new(ConstantRequest::new(2.0)), 15);
        let out = sim.run();
        // Job 1 runs alone from 20: completes at 20 + 40 = 60.
        assert_eq!(out.jobs[1].completion, 60);
        assert_eq!(out.jobs[1].response_time(), 45);
        assert_eq!(out.jobs[0].completion, 40);
        assert_eq!(out.makespan, 60);
    }

    #[test]
    fn idle_gap_before_late_release_is_skipped() {
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(8), 10);
        sim.add_job(boxed_job(1, 10), Box::new(ConstantRequest::new(1.0)), 100);
        let out = sim.run();
        assert_eq!(out.jobs[0].completion, 110);
    }

    #[test]
    fn oversubscribed_machine_still_progresses() {
        // More jobs than processors: DEQ hands out rotating single
        // processors; everything must still finish.
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(2), 5);
        for _ in 0..5 {
            sim.add_job(boxed_job(1, 10), Box::new(ConstantRequest::new(1.0)), 0);
        }
        let out = sim.with_max_quanta(10_000).run();
        assert_eq!(out.jobs.len(), 5);
        assert!(out.makespan >= 25, "2 processors, 50 work: ≥ 25 steps");
    }

    #[test]
    fn heterogeneous_calculators_coexist() {
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(32), 10);
        sim.add_job(boxed_job(8, 200), Box::new(AControl::new(0.2)), 0);
        sim.add_job(boxed_job(8, 200), Box::new(AGreedy::paper_default()), 0);
        let out = sim.run();
        assert_eq!(out.jobs.len(), 2);
        // Both finish; ABG should not waste more than A-Greedy here.
        assert!(out.jobs[0].completion > 0 && out.jobs[1].completion > 0);
    }

    #[test]
    fn mean_response_time_averages() {
        let out = MultiJobOutcome {
            jobs: vec![
                JobOutcome {
                    release: 0,
                    completion: 10,
                    work: 1,
                    span: 1,
                    waste: 0,
                    quanta: 1,
                },
                JobOutcome {
                    release: 5,
                    completion: 25,
                    work: 1,
                    span: 1,
                    waste: 0,
                    quanta: 1,
                },
            ],
            makespan: 25,
            total_waste: 0,
            quanta: 3,
            traces: Vec::new(),
        };
        assert_eq!(out.mean_response_time(), 15.0);
    }

    #[test]
    fn empty_job_set_mean_response_is_zero_not_nan() {
        let out = MultiJobOutcome {
            jobs: Vec::new(),
            makespan: 0,
            total_waste: 0,
            quanta: 0,
            traces: Vec::new(),
        };
        let mean = out.mean_response_time();
        assert_eq!(mean, 0.0, "empty set must not average to NaN");
        assert!(!mean.is_nan());
    }

    #[test]
    fn traces_record_every_live_quantum() {
        let mut sim = MultiJobSim::new(DynamicEquiPartition::new(8), 10).with_traces();
        sim.add_job(boxed_job(2, 40), Box::new(AControl::new(0.2)), 0);
        sim.add_job(boxed_job(2, 40), Box::new(AControl::new(0.2)), 25);
        let out = sim.run();
        assert_eq!(out.traces.len(), 2);
        for (j, trace) in out.jobs.iter().zip(&out.traces) {
            assert_eq!(trace.len() as u64, j.quanta);
            let work: u64 = trace.iter().map(|r| r.stats.work).sum();
            assert_eq!(work, j.work);
            // First record starts at the job's first boundary ≥ release.
            assert!(trace[0].start_step >= j.release);
            assert_eq!(trace[0].request, 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "no jobs")]
    fn empty_set_rejected() {
        let sim = MultiJobSim::new(DynamicEquiPartition::new(2), 5);
        let _ = sim.run();
    }
}
