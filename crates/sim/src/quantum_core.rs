//! The one generic quantum core behind every simulation driver.
//!
//! The paper's single-job runs, the adaptive-quantum variant, the
//! closed multiprogrammed sets and the open-system arrival stream are
//! all the *same* two-level loop — at every quantum boundary each live
//! job's controller reports `d(q)`, the OS allocator grants
//! `a(q) = min(ceil d(q), p(q))`, and each job's task scheduler burns
//! the quantum and measures the statistics that drive the feedback.
//! [`QuantumCore`] is that loop, written once and made generic over all
//! four roles:
//!
//! * `E`: the per-job task scheduler ([`JobExecutor`]) — a concrete
//!   executor for monomorphized single-job runs, `Box<dyn JobExecutor +
//!   Send>` for heterogeneous job sets;
//! * `C`: the per-job [`Controller`] — request feedback plus an
//!   optional say in the quantum length (paced controllers);
//! * `A`: the machine-wide [`Allocator`];
//! * `P`: a [`Probe`](crate::Probe) observing the loop —
//!   [`NullProbe`](crate::NullProbe) compiles the instrumentation away
//!   entirely.
//!
//! The four public drivers — [`run_single_job`](crate::run_single_job),
//! [`run_single_job_adaptive`](crate::run_single_job_adaptive),
//! [`MultiJobSim`](crate::MultiJobSim) via
//! [`QuantumEngine`](crate::QuantumEngine), and `abg_queue`'s
//! `run_open_system` — are thin configurations of this core; the
//! sweep/open fingerprint suites pin each of them bit-identical to the
//! pre-unification loops.
//!
//! Accounting rules (all preserved from the paper): time is
//! quantum-synchronous; a job released mid-quantum joins at the next
//! boundary; a job finishing mid-quantum holds its allotment to the
//! boundary (counted as waste); a quantum whose allotment differs from
//! the job's previous one burns
//! [`reallocation_overhead`](QuantumCore::with_reallocation_overhead)
//! steps off the front (held cycles count as waste). Each quantum runs
//! at the *minimum* length any live controller asks for, so paced and
//! fixed-quantum jobs can share a machine.

use crate::trace::QuantumRecord;
use abg_alloc::{ceil_request, AllocationStability, Allocator};
use abg_control::Controller;
use abg_sched::{JobExecutor, QuantumStats};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Sentinel for "no slot" in the intrusive live list.
const NIL: usize = usize::MAX;

/// One admitted job inside the core.
///
/// Slots live in a slab: once admitted a job keeps its index until it
/// completes, so per-quantum bookkeeping never moves slots and
/// reclamation frees exactly the finished ones. `prev`/`next` chain the
/// *live* jobs (released, not completed) in admission order — the
/// iteration order every allocation sees, which DEQ's rotating
/// tie-break depends on.
struct Slot<E, C> {
    id: u64,
    executor: E,
    controller: C,
    release_step: u64,
    request: f64,
    next_len: u64,
    completion: Option<u64>,
    waste: u64,
    quanta: u64,
    reallocations: u64,
    prev_allotment: Option<u32>,
    prev: usize,
    next: usize,
}

/// A job drained from the core after completing, with everything a
/// driver needs to account for it.
#[derive(Debug)]
pub struct CompletedJob {
    /// Admission-order identifier (0-based, monotone across the run).
    pub id: u64,
    /// Release (arrival) step as submitted.
    pub release: u64,
    /// Absolute completion step.
    pub completion: u64,
    /// Work `T1` of the job.
    pub work: u64,
    /// Critical-path length `T∞` of the job.
    pub span: u64,
    /// Processor cycles wasted on this job.
    pub waste: u64,
    /// Quanta in which the job was live.
    pub quanta: u64,
    /// Quanta whose allotment differed from the job's previous one.
    pub reallocations: u64,
    /// Per-quantum trace (empty unless a trace-collecting probe filled
    /// it in, e.g. [`TraceProbe`](crate::TraceProbe)).
    pub trace: Vec<QuantumRecord>,
}

impl CompletedJob {
    /// Response time: completion minus release.
    pub fn response_time(&self) -> u64 {
        self.completion - self.release
    }
}

/// Estimated core-side bytes per in-system job for a core over executor
/// type `E` and controller type `C`: the job's slot plus its share of
/// the per-live scratch arrays (live indices, requests, allotments,
/// availabilities, cached stats, steadiness flags, frozen ceilings).
/// Heap state owned by the executor or controller themselves (job
/// structure, phase lists) is *not* counted — for boxed jobs this is
/// the footprint of the core's bookkeeping, not of the job. The bench
/// harness reports this next to the peak in-system population as the
/// memory-scale figure of the open kernels.
pub fn live_job_footprint<E, C>() -> usize {
    use std::mem::size_of;
    size_of::<Option<Slot<E, C>>>()      // slab slot
        + size_of::<(u64, u64, usize)>() // pending-release heap entry
        + size_of::<usize>()             // live index scratch
        + size_of::<f64>()               // request scratch
        + size_of::<u32>() * 2           // allotment + availability scratch
        + size_of::<QuantumStats>()      // cached last-quantum stats
        + size_of::<bool>()              // steadiness flag
        + size_of::<u32>() // frozen ceiling
}

/// The generic quantum-synchronous stepping core: a machine-wide
/// allocator, a set of in-system jobs (each an executor + controller
/// pair), a probe, and one explicit-step API.
///
/// Drivers call [`admit`](QuantumCore::admit) whenever a job enters the
/// system and [`step_quantum`](QuantumCore::step_quantum) once per
/// quantum; completed jobs are moved out into the caller's buffer, so
/// the core only ever holds the jobs currently in the system.
///
/// In-system jobs sit in a slab: slots never move, freed indices go on
/// a free list for the next admission, released-but-unfinished jobs
/// are chained through an intrusive admission-ordered live list, and
/// admitted-but-not-yet-released jobs wait in a release-ordered heap.
/// A quantum therefore costs `O(live jobs)` and reclamation
/// `O(completions)`, independent of how many pending jobs the system
/// holds — the regime where the whole arrival calendar is admitted up
/// front stays cheap.
pub struct QuantumCore<E, C, A, P> {
    allocator: A,
    probe: P,
    default_len: u64,
    now: u64,
    quanta: u64,
    record_availability: bool,
    reallocation_overhead: u64,
    next_id: u64,
    // Slab storage: `slots[i]` is `None` while `i` is on the free list.
    slots: Vec<Option<Slot<E, C>>>,
    free: Vec<usize>,
    // Intrusive live list (admission order) and the pending-release
    // min-heap keyed on `(release_step, id)`; `in_system` counts both.
    live_head: usize,
    live_tail: usize,
    pending: BinaryHeap<Reverse<(u64, u64, usize)>>,
    in_system: usize,
    // Scratch buffers reused across quanta: the steady-state loop does
    // no heap allocation beyond executor internals.
    live: Vec<usize>,
    requests: Vec<f64>,
    allotments: Vec<u32>,
    availabilities: Vec<u32>,
    finished_idx: Vec<usize>,
    // Frozen-quantum cache: the full grant picture of the last real
    // quantum (`live`/`allotments`/`availabilities` above stay intact
    // between steps and complete it). Valid only while replaying that
    // quantum verbatim would be correct — see `advance_frozen`.
    last_stats: Vec<QuantumStats>,
    last_len: u64,
    last_have_avail: bool,
    frozen_valid: bool,
    // advance_frozen scratch.
    steady: Vec<bool>,
    frozen_ceils: Vec<u32>,
}

impl<E, C, A, P> QuantumCore<E, C, A, P>
where
    E: JobExecutor,
    C: Controller,
    A: Allocator,
    P: crate::Probe,
{
    /// Creates a core over the given allocator, default quantum length
    /// and probe. Controllers may shorten or lengthen individual quanta
    /// via [`Controller::next_quantum_len`]; `quantum_len` is the
    /// default they are offered and the grid idle skips land on.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_len == 0`.
    pub fn new(allocator: A, quantum_len: u64, probe: P) -> Self {
        assert!(quantum_len > 0, "quantum length must be positive");
        Self {
            allocator,
            probe,
            default_len: quantum_len,
            now: 0,
            quanta: 0,
            record_availability: false,
            reallocation_overhead: 0,
            next_id: 0,
            slots: Vec::new(),
            free: Vec::new(),
            live_head: NIL,
            live_tail: NIL,
            pending: BinaryHeap::new(),
            in_system: 0,
            live: Vec::new(),
            requests: Vec::new(),
            allotments: Vec::new(),
            availabilities: Vec::new(),
            finished_idx: Vec::new(),
            last_stats: Vec::new(),
            last_len: 0,
            last_have_avail: false,
            frozen_valid: false,
            steady: Vec::new(),
            frozen_ceils: Vec::new(),
        }
    }

    /// Charges this many steps off the front of every quantum whose
    /// allotment differs from the job's previous one (capped at the
    /// quantum length); the held cycles count as waste.
    pub fn with_reallocation_overhead(mut self, steps: u64) -> Self {
        self.reallocation_overhead = steps;
        self
    }

    /// Queries the allocator for per-job availabilities `p(q)` each
    /// quantum (before allocating, as stateful policies require) and
    /// passes them to the probe. Equivalent to a probe whose
    /// [`wants_availability`](crate::Probe::wants_availability) is true.
    pub fn with_availability_recording(mut self) -> Self {
        self.record_availability = true;
        self
    }

    /// Admits a job released at `release_step`, returning its admission
    /// id. The job participates from the first quantum boundary at or
    /// after its release.
    pub fn admit(&mut self, executor: E, controller: C, release_step: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        // The cached quantum no longer describes the full live set.
        self.frozen_valid = false;
        let request = controller.initial_request();
        let next_len = controller.initial_quantum_len(self.default_len);
        let slot = Slot {
            id,
            executor,
            controller,
            release_step,
            request,
            next_len,
            completion: None,
            waste: 0,
            quanta: 0,
            reallocations: 0,
            prev_allotment: None,
            prev: NIL,
            next: NIL,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.in_system += 1;
        if release_step <= self.now {
            self.link_live(idx);
        } else {
            self.pending.push(Reverse((release_step, id, idx)));
        }
        id
    }

    fn slot(&self, idx: usize) -> &Slot<E, C> {
        self.slots[idx].as_ref().expect("freed slab slot")
    }

    fn slot_mut(&mut self, idx: usize) -> &mut Slot<E, C> {
        self.slots[idx].as_mut().expect("freed slab slot")
    }

    /// Links `idx` into the live list at its admission-order position —
    /// a backward walk from the tail, since a job released now is
    /// almost always the youngest live one.
    fn link_live(&mut self, idx: usize) {
        let id = self.slot(idx).id;
        let mut after = self.live_tail;
        while after != NIL && self.slot(after).id > id {
            after = self.slot(after).prev;
        }
        let before = if after == NIL {
            self.live_head
        } else {
            self.slot(after).next
        };
        {
            let s = self.slot_mut(idx);
            s.prev = after;
            s.next = before;
        }
        if after == NIL {
            self.live_head = idx;
        } else {
            self.slot_mut(after).next = idx;
        }
        if before == NIL {
            self.live_tail = idx;
        } else {
            self.slot_mut(before).prev = idx;
        }
    }

    fn unlink_live(&mut self, idx: usize) {
        let (prev, next) = {
            let s = self.slot(idx);
            (s.prev, s.next)
        };
        if prev == NIL {
            self.live_head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NIL {
            self.live_tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
        let s = self.slot_mut(idx);
        s.prev = NIL;
        s.next = NIL;
    }

    /// Moves every pending job whose release step has been reached onto
    /// the live list — called whenever the clock advances, so the live
    /// list always holds exactly the jobs live at the current boundary.
    /// The frozen-quantum cache is left alone: releases landing inside
    /// a frozen window were never part of its cached grant picture (the
    /// window's live snapshot predates them), exactly as the compacting
    /// core behaved.
    fn process_releases(&mut self) {
        while let Some(&Reverse((release, _, idx))) = self.pending.peek() {
            if release > self.now {
                break;
            }
            self.pending.pop();
            self.link_live(idx);
        }
    }

    /// The current quantum boundary (absolute step).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Quanta executed so far (idle skips do not count).
    pub fn quanta(&self) -> u64 {
        self.quanta
    }

    /// The default quantum length `L`.
    pub fn quantum_len(&self) -> u64 {
        self.default_len
    }

    /// Jobs currently in the system (released or pending release).
    pub fn jobs_in_system(&self) -> usize {
        self.in_system
    }

    /// Capacity of the slab — slots ever allocated, whether currently
    /// occupied or on the free list. Storage introspection for tests
    /// and diagnostics: the slab never shrinks, and never grows while a
    /// freed slot is available for reuse.
    pub fn slab_slots(&self) -> usize {
        self.slots.len()
    }

    /// The length the next quantum would run at if it can be frozen —
    /// i.e. the length of the last executed quantum while the
    /// frozen-window cache is valid. `None` when the cache was
    /// invalidated (completion, admission, idle skip, or reallocation
    /// overhead), in which case [`advance_frozen`] would decline
    /// anyway. Event-driven drivers use this to convert time horizons
    /// (the next arrival) into quantum counts.
    ///
    /// [`advance_frozen`]: QuantumCore::advance_frozen
    pub fn frozen_quantum_len(&self) -> Option<u64> {
        self.frozen_valid.then_some(self.last_len)
    }

    /// Whether any in-system job is live at the current boundary.
    pub fn any_live(&self) -> bool {
        self.live_head != NIL
    }

    /// Sum of the standing requests `d(q)` of the jobs live at the
    /// current boundary — the aggregate processor desire this core
    /// would report to a higher-level allocator. Pending (not yet
    /// released) jobs do not count.
    pub fn live_request_sum(&self) -> f64 {
        let mut sum = 0.0;
        let mut i = self.live_head;
        while i != NIL {
            let s = self.slot(i);
            sum += s.request;
            i = s.next;
        }
        sum
    }

    /// Replaces the machine-wide allocator mid-run — the mechanism a
    /// top-level allocator uses to grow or shrink this core's machine
    /// at a reallocation epoch. Takes effect from the next quantum; the
    /// frozen-quantum cache is invalidated because the cached grant
    /// picture was computed against the old machine.
    pub fn set_allocator(&mut self, allocator: A) {
        self.allocator = allocator;
        self.frozen_valid = false;
    }

    /// Earliest release step among in-system jobs, if any — pending
    /// jobs from the heap peek, live jobs (whose releases are in the
    /// past) from a walk of the live list.
    pub fn next_release(&self) -> Option<u64> {
        let mut min = self.pending.peek().map(|&Reverse((r, _, _))| r);
        let mut i = self.live_head;
        while i != NIL {
            let s = self.slot(i);
            min = Some(min.map_or(s.release_step, |m| m.min(s.release_step)));
            i = s.next;
        }
        min
    }

    /// Shared view of the probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable view of the probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the core, returning the probe with everything it
    /// collected.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Advances the clock over an idle machine: jumps to the first
    /// default-length quantum boundary at or after `release` that is
    /// strictly after the current boundary.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a job is already live — skipping over runnable
    /// work would corrupt the schedule.
    pub fn skip_idle_until(&mut self, release: u64) {
        debug_assert!(!self.any_live(), "skip_idle_until with live jobs");
        self.frozen_valid = false;
        let l = self.default_len;
        self.now = release.div_ceil(l).max(self.now / l + 1) * l;
        self.process_releases();
    }

    /// Runs one quantum at the current boundary over every live job:
    /// gathers requests, allocates, steps each job's task scheduler, and
    /// feeds the measured statistics back through its controller. Jobs
    /// that completed during the quantum are drained into `completed` in
    /// admission order; the clock advances one quantum.
    ///
    /// # Panics
    ///
    /// Panics if no job is live — callers decide how to skip idle time
    /// (see [`skip_idle_until`](QuantumCore::skip_idle_until)).
    pub fn step_quantum(&mut self, completed: &mut Vec<CompletedJob>) {
        self.step_quantum_inner(completed, None);
    }

    /// [`step_quantum`](QuantumCore::step_quantum), but hands the
    /// executors of drained jobs back to the caller instead of dropping
    /// them. An open-system driver over a homogeneous workload can
    /// [`try_reset`](JobExecutor::try_reset) and re-admit them, so a
    /// steady-state run recycles a bounded pool of executors instead of
    /// allocating one per arrival. Purely an allocation-lifetime change:
    /// the simulated schedule is identical to the dropping variant.
    pub fn step_quantum_reclaiming(
        &mut self,
        completed: &mut Vec<CompletedJob>,
        reclaimed: &mut Vec<E>,
    ) {
        self.step_quantum_inner(completed, Some(reclaimed));
    }

    fn step_quantum_inner(
        &mut self,
        completed: &mut Vec<CompletedJob>,
        mut reclaimed: Option<&mut Vec<E>>,
    ) {
        let now = self.now;
        // The live scratch mirrors the intrusive list — admission order,
        // the order the frozen-window cache keys its parallel arrays on.
        self.live.clear();
        let mut walk = self.live_head;
        while walk != NIL {
            self.live.push(walk);
            walk = self.slots[walk].as_ref().expect("freed slab slot").next;
        }
        assert!(
            !self.live.is_empty(),
            "step_quantum with no live jobs (use skip_idle_until)"
        );
        // The quantum runs at the shortest length any live controller
        // asks for; fixed-quantum controllers all ask for the default,
        // so homogeneous sets step on the configured grid.
        let mut len = u64::MAX;
        self.requests.clear();
        for k in 0..self.live.len() {
            let slot = self.slots[self.live[k]].as_ref().expect("freed slab slot");
            len = len.min(slot.next_len);
            self.requests.push(slot.request);
        }
        self.probe.on_quantum_start(now, len, self.live.len());
        let want_avail = self.record_availability || self.probe.wants_availability();
        let have_avail = want_avail
            && self
                .allocator
                .try_availabilities(&self.requests, &mut self.availabilities);
        self.allocator
            .allocate_into(&self.requests, &mut self.allotments);
        debug_assert_eq!(self.allotments.len(), self.live.len());
        let mut had_overhead = false;
        self.last_stats.clear();
        self.finished_idx.clear();
        for k in 0..self.live.len() {
            let i = self.live[k];
            let allotment = self.allotments[k];
            let availability = if have_avail {
                Some(self.availabilities[k])
            } else {
                None
            };
            let job = self.slots[i].as_mut().expect("freed slab slot");
            // A changed allotment burns the first `reallocation_overhead`
            // steps of the quantum before any task runs.
            let overhead = if job.prev_allotment.is_some_and(|p| p != allotment) {
                job.reallocations += 1;
                self.reallocation_overhead.min(len)
            } else {
                0
            };
            had_overhead |= overhead > 0;
            job.prev_allotment = Some(allotment);
            self.probe
                .on_grant(job.id, job.request, allotment, availability);
            let stats = job.executor.run_quantum(allotment, len - overhead);
            job.quanta += 1;
            // Held cycles cover the whole quantum, overhead included.
            job.waste += stats.waste() + allotment as u64 * overhead;
            if stats.completed {
                job.completion = Some(now + overhead + stats.steps_worked);
                self.finished_idx.push(i);
            }
            let record = QuantumRecord {
                index: job.quanta as u32,
                start_step: now,
                request: job.request,
                allotment,
                availability,
                stats,
            };
            self.probe.on_quantum_end(job.id, &record);
            job.request = job.controller.observe(&stats);
            job.next_len = job.controller.next_quantum_len(self.default_len);
            self.last_stats.push(stats);
        }
        // Drain the finished slots only — collected in live-list order,
        // i.e. admission order (allocation order, and with it DEQ's
        // rotating tie-break state, must not depend on who finished).
        // Unfinished jobs are untouched: reclamation is O(completions).
        let finished = self.finished_idx.len();
        let mut finished_idx = std::mem::take(&mut self.finished_idx);
        for &i in &finished_idx {
            self.unlink_live(i);
            let slot = self.slots[i].take().expect("freed slab slot");
            let mut done = CompletedJob {
                id: slot.id,
                release: slot.release_step,
                completion: slot.completion.expect("finished job has a completion"),
                work: slot.executor.total_work(),
                span: slot.executor.total_span(),
                waste: slot.waste,
                quanta: slot.quanta,
                reallocations: slot.reallocations,
                trace: Vec::new(),
            };
            self.probe.on_job_complete(&mut done);
            completed.push(done);
            if let Some(pool) = reclaimed.as_deref_mut() {
                pool.push(slot.executor);
            }
            self.free.push(i);
            self.in_system -= 1;
        }
        finished_idx.clear();
        self.finished_idx = finished_idx;
        self.now = now + len;
        self.quanta += 1;
        // The cached quantum can only be replayed if the live set is
        // unchanged (no completions) and the quantum ran full-length for
        // everyone (no reallocation overhead, which a frozen repeat
        // would not burn).
        self.frozen_valid = finished == 0 && !had_overhead;
        self.last_len = len;
        self.last_have_avail = have_avail;
        self.process_releases();
    }

    /// Bulk-advances up to `max_quanta` *frozen* quanta — quanta that
    /// would be bit-for-bit repeats of the last real quantum — and
    /// returns how many were advanced (possibly 0).
    ///
    /// A quantum is frozen when replaying it changes nothing the next
    /// allocation could see: the live set is unchanged (the caller
    /// guarantees no arrival is due within the window; completions are
    /// excluded by the executors' own lookahead), every executor
    /// certifies via [`JobExecutor::steady_quanta`] that it would
    /// reproduce its statistics, the allocator certifies via
    /// [`Allocator::allocation_stability`] that re-running it would
    /// reproduce the allotments, and every controller opts in via
    /// [`Controller::supports_frozen_stepping`]. Controllers whose state
    /// still drifts (`is_steady` false) are replayed per-quantum in a
    /// micro-loop — bit-identical to stepping — and the window closes
    /// early if a drift would change an integerized request or a quantum
    /// length; fully steady windows skip even that loop and cost `O(live
    /// jobs)` regardless of length.
    ///
    /// Probes observe the window according to
    /// [`Probe::wants_frozen_replay`](crate::Probe::wants_frozen_replay):
    /// a replaying probe receives exactly the hook sequence
    /// quantum-by-quantum stepping would have produced; a declining
    /// probe (e.g. [`NullProbe`](crate::NullProbe)) sees nothing and the
    /// window costs no per-quantum work at all.
    ///
    /// Executor state, span/waste accounting, per-job quantum counts and
    /// the clock all advance exactly as `k` calls of
    /// [`step_quantum`](QuantumCore::step_quantum) would have advanced
    /// them; fingerprint suites pin the equivalence.
    pub fn advance_frozen(&mut self, max_quanta: u64) -> u64 {
        if !self.frozen_valid || max_quanta == 0 || self.live.is_empty() {
            return 0;
        }
        let stability = self.allocator.allocation_stability();
        if stability == AllocationStability::Unstable {
            return 0;
        }
        let len = self.last_len;
        // The next quantum must run at the cached length.
        let mut next_len = u64::MAX;
        for &i in &self.live {
            next_len = next_len.min(self.slot(i).next_len);
        }
        if next_len != len {
            return 0;
        }
        // Every controller must opt in; record which are already at a
        // bitwise fixed point.
        self.steady.clear();
        let mut all_steady = true;
        for (idx, &i) in self.live.iter().enumerate() {
            let slot = self.slots[i].as_ref().expect("freed slab slot");
            if !slot.controller.supports_frozen_stepping() {
                return 0;
            }
            let steady = slot.controller.is_steady(&self.last_stats[idx]);
            all_steady &= steady;
            self.steady.push(steady);
        }
        // Exact-request allocations (and recorded availabilities, whose
        // probes see raw requests under any policy) tolerate no drift.
        let want_avail = self.record_availability || self.probe.wants_availability();
        if !all_steady && (stability == AllocationStability::ByExactRequests || want_avail) {
            return 0;
        }
        // The window replays the allotments the last real quantum
        // computed from its *pre-observe* requests; the next quantum
        // would allocate from the *post-observe* ones. They must still
        // produce the same grants: same ceilings for ceiling-driven
        // policies, bitwise-same requests for exact-request policies and
        // for replaying cached availabilities.
        for (idx, &i) in self.live.iter().enumerate() {
            let cur = self.slot(i).request;
            let prev = self.requests[idx];
            let raw_equal = cur.to_bits() == prev.to_bits();
            let stable = match stability {
                AllocationStability::Unstable => unreachable!("filtered above"),
                AllocationStability::ByCeilings => ceil_request(cur) == ceil_request(prev),
                AllocationStability::ByExactRequests => raw_equal,
            };
            if !stable || (want_avail && !raw_equal) {
                return 0;
            }
        }
        // The executors bound the window: none may leave its steady
        // regime (phase boundary / completion) inside it.
        let mut k_max = max_quanta;
        for (idx, &i) in self.live.iter().enumerate() {
            let slot = self.slots[i].as_ref().expect("freed slab slot");
            let m = slot
                .executor
                .steady_quanta(self.allotments[idx], len, &self.last_stats[idx]);
            k_max = k_max.min(m);
        }
        if k_max == 0 {
            return 0;
        }
        let replay = self.probe.wants_frozen_replay();
        let k = if !replay && all_steady {
            // Fast path: nothing inside the window can change any state
            // the window itself consults, so its length is known now.
            k_max
        } else {
            // Micro-loop: replay the probe hooks and/or the drifting
            // controllers quantum by quantum, closing the window if a
            // drift would change an integerized request or quantum
            // length (the next allocation could then differ).
            self.frozen_ceils.clear();
            for k in 0..self.live.len() {
                let req = self.slot(self.live[k]).request;
                self.frozen_ceils.push(ceil_request(req));
            }
            let mut k = 0;
            let mut stop_after = false;
            while k < k_max && !stop_after {
                let now_q = self.now + k * len;
                if replay {
                    self.probe.on_quantum_start(now_q, len, self.live.len());
                }
                for idx in 0..self.live.len() {
                    let i = self.live[idx];
                    let allotment = self.allotments[idx];
                    let availability = if self.last_have_avail {
                        Some(self.availabilities[idx])
                    } else {
                        None
                    };
                    let job = self.slots[i].as_mut().expect("freed slab slot");
                    if replay {
                        self.probe
                            .on_grant(job.id, job.request, allotment, availability);
                        let record = QuantumRecord {
                            index: (job.quanta + k + 1) as u32,
                            start_step: now_q,
                            request: job.request,
                            allotment,
                            availability,
                            stats: self.last_stats[idx],
                        };
                        self.probe.on_quantum_end(job.id, &record);
                    }
                    if !self.steady[idx] {
                        let prev_next_len = job.next_len;
                        job.request = job.controller.observe(&self.last_stats[idx]);
                        job.next_len = job.controller.next_quantum_len(self.default_len);
                        if ceil_request(job.request) != self.frozen_ceils[idx]
                            || job.next_len != prev_next_len
                        {
                            stop_after = true;
                        }
                        self.steady[idx] = job.controller.is_steady(&self.last_stats[idx]);
                    }
                }
                k += 1;
            }
            if stop_after {
                // The quantum after this window differs; force the
                // caller back through a real step.
                self.frozen_valid = false;
            }
            k
        };
        // Catch every executor and counter up in one shot; the
        // steady_quanta contract makes the bulk call state-equivalent
        // to `k` per-quantum calls.
        for (idx, &i) in self.live.iter().enumerate() {
            let job = self.slots[i].as_mut().expect("freed slab slot");
            job.executor.run_quantum(self.allotments[idx], k * len);
            job.quanta += k;
            job.waste += k * self.last_stats[idx].waste();
        }
        self.now += k * len;
        self.quanta += k;
        self.process_releases();
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{NullProbe, Probe, TraceProbe};
    use abg_alloc::DynamicEquiPartition;
    use abg_control::ConstantRequest;
    use abg_dag::LeveledJob;
    use abg_sched::LeveledExecutor;

    fn job(width: u64, levels: u64) -> LeveledExecutor {
        LeveledExecutor::new(LeveledJob::constant(width, levels))
    }

    #[test]
    fn monomorphized_core_matches_engine_semantics() {
        let mut core = QuantumCore::new(DynamicEquiPartition::new(8), 10, NullProbe);
        core.admit(job(2, 40), ConstantRequest::new(2.0), 0);
        let mut done = Vec::new();
        core.step_quantum(&mut done);
        assert_eq!(core.now(), 10);
        core.admit(job(2, 20), ConstantRequest::new(2.0), 10);
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        done.sort_by_key(|c| c.id);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].completion, 40);
        assert_eq!(done[1].completion, 30);
        assert_eq!(done[1].response_time(), 20);
    }

    #[test]
    fn trace_probe_delivers_traces_through_completed_jobs() {
        let mut core = QuantumCore::new(
            DynamicEquiPartition::new(8),
            10,
            TraceProbe::new().with_availability(),
        );
        core.admit(job(2, 40), ConstantRequest::new(2.0), 0);
        let mut done = Vec::new();
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        let trace = &done[0].trace;
        assert_eq!(trace.len() as u64, done[0].quanta);
        assert_eq!(trace[0].start_step, 0);
        assert_eq!(trace[0].availability, Some(8), "alone on the machine");
        let work: u64 = trace.iter().map(|r| r.stats.work).sum();
        assert_eq!(work, done[0].work);
    }

    #[test]
    fn retaining_probe_keeps_traces_out_of_the_job() {
        let mut core = QuantumCore::new(
            DynamicEquiPartition::new(8),
            10,
            TraceProbe::new().retaining(),
        );
        core.admit(job(2, 20), ConstantRequest::new(2.0), 0);
        let mut done = Vec::new();
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        assert!(done[0].trace.is_empty(), "retained, not delivered");
        let kept = core.into_probe().into_completed_traces();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0, done[0].id);
        assert_eq!(kept[0].1.len() as u64, done[0].quanta);
    }

    #[test]
    fn custom_probe_sees_every_hook_in_order() {
        #[derive(Default)]
        struct Counting {
            starts: u64,
            grants: u64,
            ends: u64,
            completions: u64,
        }
        impl Probe for Counting {
            fn on_quantum_start(&mut self, _now: u64, _len: u64, live: usize) {
                assert!(live > 0);
                self.starts += 1;
            }
            fn on_grant(&mut self, _id: u64, request: f64, allotment: u32, _p: Option<u32>) {
                assert!(allotment as f64 <= request.ceil());
                self.grants += 1;
            }
            fn on_quantum_end(&mut self, _id: u64, record: &QuantumRecord) {
                assert!(record.stats.quantum_len > 0);
                self.ends += 1;
            }
            fn on_job_complete(&mut self, job: &mut CompletedJob) {
                assert!(job.completion > 0);
                self.completions += 1;
            }
        }
        let mut core = QuantumCore::new(DynamicEquiPartition::new(4), 10, Counting::default());
        core.admit(job(2, 30), ConstantRequest::new(2.0), 0);
        core.admit(job(2, 30), ConstantRequest::new(2.0), 0);
        let mut done = Vec::new();
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        let probe = core.into_probe();
        assert_eq!(probe.completions, 2);
        assert_eq!(probe.grants, probe.ends);
        assert_eq!(probe.ends, done.iter().map(|c| c.quanta).sum::<u64>());
        assert!(probe.starts > 0);
    }

    #[test]
    fn frozen_advance_matches_stepping_with_trace_replay() {
        // Two pipelined jobs under DEQ with constant requests: after one
        // real quantum the rest of the run is frozen. Advancing the
        // frozen window in bulk must leave clock, counters, completions
        // and the full per-quantum trace bit-identical to stepping.
        use abg_dag::PhasedJob;
        use abg_sched::PipelinedExecutor;
        let build = || {
            let mut core = QuantumCore::new(
                DynamicEquiPartition::new(8),
                10,
                TraceProbe::new().retaining().with_availability(),
            );
            core.admit(
                PipelinedExecutor::new(PhasedJob::constant(3, 200)),
                ConstantRequest::new(3.0),
                0,
            );
            core.admit(
                PipelinedExecutor::new(PhasedJob::constant(4, 300)),
                ConstantRequest::new(4.0),
                0,
            );
            core
        };
        let mut stepped = build();
        let mut done_stepped = Vec::new();
        while stepped.jobs_in_system() > 0 {
            stepped.step_quantum(&mut done_stepped);
        }

        let mut frozen = build();
        let mut done_frozen = Vec::new();
        let mut bulk_advanced = 0u64;
        while frozen.jobs_in_system() > 0 {
            frozen.step_quantum(&mut done_frozen);
            bulk_advanced += frozen.advance_frozen(u64::MAX / 1024);
        }
        assert!(bulk_advanced > 0, "the frozen path never engaged");
        assert_eq!(frozen.now(), stepped.now());
        assert_eq!(frozen.quanta(), stepped.quanta());
        assert_eq!(done_frozen.len(), done_stepped.len());
        for (f, s) in done_frozen.iter().zip(&done_stepped) {
            assert_eq!(
                (f.id, f.completion, f.waste, f.quanta),
                (s.id, s.completion, s.waste, s.quanta)
            );
        }
        let t_f = frozen.into_probe().into_completed_traces();
        let t_s = stepped.into_probe().into_completed_traces();
        assert_eq!(t_f.len(), t_s.len());
        for ((id_f, tr_f), (id_s, tr_s)) in t_f.iter().zip(&t_s) {
            assert_eq!(id_f, id_s);
            assert_eq!(tr_f.len(), tr_s.len(), "job {id_f}: trace length");
            for (a, b) in tr_f.iter().zip(tr_s) {
                assert_eq!(a.index, b.index);
                assert_eq!(a.start_step, b.start_step);
                assert_eq!(a.request.to_bits(), b.request.to_bits());
                assert_eq!(a.allotment, b.allotment);
                assert_eq!(a.availability, b.availability);
                assert_eq!(a.stats.work, b.stats.work);
                assert_eq!(a.stats.span.to_bits(), b.stats.span.to_bits());
            }
        }
    }

    #[test]
    fn frozen_advance_declines_without_opt_ins() {
        // AdaptiveRateControl does not declare frozen support, so the
        // core must refuse to macro-step it even when nothing moves.
        let mut core = QuantumCore::new(DynamicEquiPartition::new(8), 10, NullProbe);
        core.admit(
            job(2, 400),
            abg_control::AdaptiveRateControl::new(0.5, 0.1),
            0,
        );
        let mut done = Vec::new();
        core.step_quantum(&mut done);
        assert_eq!(core.advance_frozen(1000), 0);
    }

    #[test]
    fn live_request_sum_counts_only_released_jobs() {
        let mut core = QuantumCore::new(DynamicEquiPartition::new(8), 10, NullProbe);
        assert_eq!(core.live_request_sum(), 0.0);
        core.admit(job(2, 40), ConstantRequest::new(2.0), 0);
        core.admit(job(2, 40), ConstantRequest::new(3.0), 0);
        // Released in the future: desire must not count it yet.
        core.admit(job(2, 40), ConstantRequest::new(5.0), 25);
        assert_eq!(core.live_request_sum(), 5.0);
        let mut done = Vec::new();
        core.step_quantum(&mut done);
        core.step_quantum(&mut done);
        core.step_quantum(&mut done);
        assert_eq!(core.now(), 30);
        assert_eq!(core.live_request_sum(), 10.0, "pending job now released");
    }

    #[test]
    fn set_allocator_resizes_the_machine_and_thaws_the_frozen_cache() {
        // A width-4 job on 8 processors: after one real quantum the run
        // is frozen. Swapping in a 2-processor machine must invalidate
        // the cached grant picture and halve the allotment from the
        // next quantum on (visible as one extra reallocation).
        let mut core = QuantumCore::new(DynamicEquiPartition::new(8), 10, NullProbe);
        core.admit(job(4, 400), ConstantRequest::new(4.0), 0);
        let mut done = Vec::new();
        core.step_quantum(&mut done);
        assert!(core.frozen_quantum_len().is_some());
        core.set_allocator(DynamicEquiPartition::new(2));
        assert_eq!(core.frozen_quantum_len(), None, "cache must thaw");
        assert_eq!(core.advance_frozen(1000), 0);
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        // Width 4 on 2 processors: each level costs 2 steps from the
        // swap on, so the job finishes later than the 100-step ideal.
        assert_eq!(done[0].reallocations, 1, "the shrink, 4 -> 2");
        assert!(done[0].completion > 100);
    }

    #[test]
    fn slab_reuses_freed_slots_without_reordering() {
        let mut core = QuantumCore::new(DynamicEquiPartition::new(8), 10, NullProbe);
        core.admit(job(2, 20), ConstantRequest::new(2.0), 0); // id 0
        core.admit(job(2, 60), ConstantRequest::new(2.0), 0); // id 1
        let mut done = Vec::new();
        while done.is_empty() {
            core.step_quantum(&mut done);
        }
        assert_eq!(done[0].id, 0);
        assert_eq!(core.jobs_in_system(), 1);
        assert_eq!(core.slab_slots(), 2, "slot freed in place, not compacted");
        // The freed slot is reused by the next admission instead of
        // growing the slab, and the newcomer schedules after the older
        // live job regardless of which physical slot it landed in.
        core.admit(job(2, 20), ConstantRequest::new(2.0), core.now()); // id 2
        assert_eq!(core.slab_slots(), 2, "admission reuses the freed slot");
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        done.sort_by_key(|c| c.id);
        assert_eq!(done.len(), 3);
        assert_eq!(done[1].completion, 60, "older job untouched by reuse");
        assert_eq!(done[2].completion, 40, "reused slot ran the new job");
    }

    #[test]
    fn pending_releases_surface_as_jobs_become_live() {
        // Pre-admitted future releases: the pending heap feeds the live
        // list as the clock crosses each release, including across an
        // idle skip, and `next_release` sees live and pending jobs.
        let mut core = QuantumCore::new(DynamicEquiPartition::new(8), 10, NullProbe);
        core.admit(job(2, 20), ConstantRequest::new(2.0), 0);
        core.admit(job(2, 20), ConstantRequest::new(2.0), 55);
        assert_eq!(core.next_release(), Some(0));
        let mut done = Vec::new();
        core.step_quantum(&mut done);
        core.step_quantum(&mut done);
        assert_eq!(done.len(), 1);
        assert!(!core.any_live(), "second job still pending at step 20");
        assert_eq!(core.next_release(), Some(55));
        core.skip_idle_until(55);
        assert_eq!(core.now(), 60);
        assert!(core.any_live(), "idle skip crossed the release");
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        assert_eq!(done[1].completion, 80);
        assert_eq!(done[1].response_time(), 25);
    }

    #[test]
    fn reallocations_travel_with_the_completed_job() {
        // Request 1 then 4 under an ample allocator: exactly one
        // allotment change over the whole run.
        let mut core = QuantumCore::new(DynamicEquiPartition::new(16), 20, NullProbe);
        core.admit(job(4, 200), abg_control::AControl::new(0.0), 0);
        let mut done = Vec::new();
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        assert_eq!(done[0].reallocations, 1);
    }
}
