//! The one generic quantum core behind every simulation driver.
//!
//! The paper's single-job runs, the adaptive-quantum variant, the
//! closed multiprogrammed sets and the open-system arrival stream are
//! all the *same* two-level loop — at every quantum boundary each live
//! job's controller reports `d(q)`, the OS allocator grants
//! `a(q) = min(ceil d(q), p(q))`, and each job's task scheduler burns
//! the quantum and measures the statistics that drive the feedback.
//! [`QuantumCore`] is that loop, written once and made generic over all
//! four roles:
//!
//! * `E`: the per-job task scheduler ([`JobExecutor`]) — a concrete
//!   executor for monomorphized single-job runs, `Box<dyn JobExecutor +
//!   Send>` for heterogeneous job sets;
//! * `C`: the per-job [`Controller`] — request feedback plus an
//!   optional say in the quantum length (paced controllers);
//! * `A`: the machine-wide [`Allocator`];
//! * `P`: a [`Probe`](crate::Probe) observing the loop —
//!   [`NullProbe`](crate::NullProbe) compiles the instrumentation away
//!   entirely.
//!
//! The four public drivers — [`run_single_job`](crate::run_single_job),
//! [`run_single_job_adaptive`](crate::run_single_job_adaptive),
//! [`MultiJobSim`](crate::MultiJobSim) via
//! [`QuantumEngine`](crate::QuantumEngine), and `abg_queue`'s
//! `run_open_system` — are thin configurations of this core; the
//! sweep/open fingerprint suites pin each of them bit-identical to the
//! pre-unification loops.
//!
//! Accounting rules (all preserved from the paper): time is
//! quantum-synchronous; a job released mid-quantum joins at the next
//! boundary; a job finishing mid-quantum holds its allotment to the
//! boundary (counted as waste); a quantum whose allotment differs from
//! the job's previous one burns
//! [`reallocation_overhead`](QuantumCore::with_reallocation_overhead)
//! steps off the front (held cycles count as waste). Each quantum runs
//! at the *minimum* length any live controller asks for, so paced and
//! fixed-quantum jobs can share a machine.

use crate::trace::QuantumRecord;
use abg_alloc::Allocator;
use abg_control::Controller;
use abg_sched::JobExecutor;

/// One admitted job inside the core.
struct Slot<E, C> {
    id: u64,
    executor: E,
    controller: C,
    release_step: u64,
    request: f64,
    next_len: u64,
    completion: Option<u64>,
    waste: u64,
    quanta: u64,
    reallocations: u64,
    prev_allotment: Option<u32>,
}

/// A job drained from the core after completing, with everything a
/// driver needs to account for it.
#[derive(Debug)]
pub struct CompletedJob {
    /// Admission-order identifier (0-based, monotone across the run).
    pub id: u64,
    /// Release (arrival) step as submitted.
    pub release: u64,
    /// Absolute completion step.
    pub completion: u64,
    /// Work `T1` of the job.
    pub work: u64,
    /// Critical-path length `T∞` of the job.
    pub span: u64,
    /// Processor cycles wasted on this job.
    pub waste: u64,
    /// Quanta in which the job was live.
    pub quanta: u64,
    /// Quanta whose allotment differed from the job's previous one.
    pub reallocations: u64,
    /// Per-quantum trace (empty unless a trace-collecting probe filled
    /// it in, e.g. [`TraceProbe`](crate::TraceProbe)).
    pub trace: Vec<QuantumRecord>,
}

impl CompletedJob {
    /// Response time: completion minus release.
    pub fn response_time(&self) -> u64 {
        self.completion - self.release
    }
}

/// The generic quantum-synchronous stepping core: a machine-wide
/// allocator, a set of in-system jobs (each an executor + controller
/// pair), a probe, and one explicit-step API.
///
/// Drivers call [`admit`](QuantumCore::admit) whenever a job enters the
/// system and [`step_quantum`](QuantumCore::step_quantum) once per
/// quantum; completed jobs are moved out into the caller's buffer, so
/// the core only ever holds the jobs currently in the system.
pub struct QuantumCore<E, C, A, P> {
    allocator: A,
    probe: P,
    default_len: u64,
    now: u64,
    quanta: u64,
    record_availability: bool,
    reallocation_overhead: u64,
    next_id: u64,
    slots: Vec<Slot<E, C>>,
    // Scratch buffers reused across quanta: the steady-state loop does
    // no heap allocation beyond executor internals.
    live: Vec<usize>,
    requests: Vec<f64>,
    allotments: Vec<u32>,
    availabilities: Vec<u32>,
    retained: Vec<Slot<E, C>>,
}

impl<E, C, A, P> QuantumCore<E, C, A, P>
where
    E: JobExecutor,
    C: Controller,
    A: Allocator,
    P: crate::Probe,
{
    /// Creates a core over the given allocator, default quantum length
    /// and probe. Controllers may shorten or lengthen individual quanta
    /// via [`Controller::next_quantum_len`]; `quantum_len` is the
    /// default they are offered and the grid idle skips land on.
    ///
    /// # Panics
    ///
    /// Panics if `quantum_len == 0`.
    pub fn new(allocator: A, quantum_len: u64, probe: P) -> Self {
        assert!(quantum_len > 0, "quantum length must be positive");
        Self {
            allocator,
            probe,
            default_len: quantum_len,
            now: 0,
            quanta: 0,
            record_availability: false,
            reallocation_overhead: 0,
            next_id: 0,
            slots: Vec::new(),
            live: Vec::new(),
            requests: Vec::new(),
            allotments: Vec::new(),
            availabilities: Vec::new(),
            retained: Vec::new(),
        }
    }

    /// Charges this many steps off the front of every quantum whose
    /// allotment differs from the job's previous one (capped at the
    /// quantum length); the held cycles count as waste.
    pub fn with_reallocation_overhead(mut self, steps: u64) -> Self {
        self.reallocation_overhead = steps;
        self
    }

    /// Queries the allocator for per-job availabilities `p(q)` each
    /// quantum (before allocating, as stateful policies require) and
    /// passes them to the probe. Equivalent to a probe whose
    /// [`wants_availability`](crate::Probe::wants_availability) is true.
    pub fn with_availability_recording(mut self) -> Self {
        self.record_availability = true;
        self
    }

    /// Admits a job released at `release_step`, returning its admission
    /// id. The job participates from the first quantum boundary at or
    /// after its release.
    pub fn admit(&mut self, executor: E, controller: C, release_step: u64) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        let request = controller.initial_request();
        let next_len = controller.initial_quantum_len(self.default_len);
        self.slots.push(Slot {
            id,
            executor,
            controller,
            release_step,
            request,
            next_len,
            completion: None,
            waste: 0,
            quanta: 0,
            reallocations: 0,
            prev_allotment: None,
        });
        id
    }

    /// The current quantum boundary (absolute step).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Quanta executed so far (idle skips do not count).
    pub fn quanta(&self) -> u64 {
        self.quanta
    }

    /// The default quantum length `L`.
    pub fn quantum_len(&self) -> u64 {
        self.default_len
    }

    /// Jobs currently in the system (released or pending release).
    pub fn jobs_in_system(&self) -> usize {
        self.slots.len()
    }

    /// Whether any in-system job is live at the current boundary.
    pub fn any_live(&self) -> bool {
        self.slots.iter().any(|s| s.release_step <= self.now)
    }

    /// Earliest release step among in-system jobs, if any.
    pub fn next_release(&self) -> Option<u64> {
        self.slots.iter().map(|s| s.release_step).min()
    }

    /// Shared view of the probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable view of the probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the core, returning the probe with everything it
    /// collected.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// Advances the clock over an idle machine: jumps to the first
    /// default-length quantum boundary at or after `release` that is
    /// strictly after the current boundary.
    ///
    /// # Panics
    ///
    /// Panics (debug) if a job is already live — skipping over runnable
    /// work would corrupt the schedule.
    pub fn skip_idle_until(&mut self, release: u64) {
        debug_assert!(!self.any_live(), "skip_idle_until with live jobs");
        let l = self.default_len;
        self.now = release.div_ceil(l).max(self.now / l + 1) * l;
    }

    /// Runs one quantum at the current boundary over every live job:
    /// gathers requests, allocates, steps each job's task scheduler, and
    /// feeds the measured statistics back through its controller. Jobs
    /// that completed during the quantum are drained into `completed` in
    /// admission order; the clock advances one quantum.
    ///
    /// # Panics
    ///
    /// Panics if no job is live — callers decide how to skip idle time
    /// (see [`skip_idle_until`](QuantumCore::skip_idle_until)).
    pub fn step_quantum(&mut self, completed: &mut Vec<CompletedJob>) {
        self.step_quantum_inner(completed, None);
    }

    /// [`step_quantum`](QuantumCore::step_quantum), but hands the
    /// executors of drained jobs back to the caller instead of dropping
    /// them. An open-system driver over a homogeneous workload can
    /// [`try_reset`](JobExecutor::try_reset) and re-admit them, so a
    /// steady-state run recycles a bounded pool of executors instead of
    /// allocating one per arrival. Purely an allocation-lifetime change:
    /// the simulated schedule is identical to the dropping variant.
    pub fn step_quantum_reclaiming(
        &mut self,
        completed: &mut Vec<CompletedJob>,
        reclaimed: &mut Vec<E>,
    ) {
        self.step_quantum_inner(completed, Some(reclaimed));
    }

    fn step_quantum_inner(
        &mut self,
        completed: &mut Vec<CompletedJob>,
        mut reclaimed: Option<&mut Vec<E>>,
    ) {
        let now = self.now;
        self.live.clear();
        self.live.extend(
            self.slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.release_step <= now)
                .map(|(i, _)| i),
        );
        assert!(
            !self.live.is_empty(),
            "step_quantum with no live jobs (use skip_idle_until)"
        );
        // The quantum runs at the shortest length any live controller
        // asks for; fixed-quantum controllers all ask for the default,
        // so homogeneous sets step on the configured grid.
        let mut len = u64::MAX;
        self.requests.clear();
        for k in 0..self.live.len() {
            let slot = &self.slots[self.live[k]];
            len = len.min(slot.next_len);
            self.requests.push(slot.request);
        }
        self.probe.on_quantum_start(now, len, self.live.len());
        let want_avail = self.record_availability || self.probe.wants_availability();
        let have_avail = want_avail
            && self
                .allocator
                .try_availabilities(&self.requests, &mut self.availabilities);
        self.allocator
            .allocate_into(&self.requests, &mut self.allotments);
        debug_assert_eq!(self.allotments.len(), self.live.len());
        let mut finished = 0usize;
        for k in 0..self.live.len() {
            let i = self.live[k];
            let allotment = self.allotments[k];
            let availability = if have_avail {
                Some(self.availabilities[k])
            } else {
                None
            };
            let job = &mut self.slots[i];
            // A changed allotment burns the first `reallocation_overhead`
            // steps of the quantum before any task runs.
            let overhead = if job.prev_allotment.is_some_and(|p| p != allotment) {
                job.reallocations += 1;
                self.reallocation_overhead.min(len)
            } else {
                0
            };
            job.prev_allotment = Some(allotment);
            self.probe
                .on_grant(job.id, job.request, allotment, availability);
            let stats = job.executor.run_quantum(allotment, len - overhead);
            job.quanta += 1;
            // Held cycles cover the whole quantum, overhead included.
            job.waste += stats.waste() + allotment as u64 * overhead;
            if stats.completed {
                job.completion = Some(now + overhead + stats.steps_worked);
                finished += 1;
            }
            let record = QuantumRecord {
                index: job.quanta as u32,
                start_step: now,
                request: job.request,
                allotment,
                availability,
                stats,
            };
            self.probe.on_quantum_end(job.id, &record);
            job.request = job.controller.observe(&stats);
            job.next_len = job.controller.next_quantum_len(self.default_len);
        }
        if finished > 0 {
            // Selective drain preserving admission order (allocation
            // order — and with it DEQ's rotating tie-break state — must
            // not depend on who finished).
            self.retained.clear();
            for slot in self.slots.drain(..) {
                match slot.completion {
                    Some(step) => {
                        let mut done = CompletedJob {
                            id: slot.id,
                            release: slot.release_step,
                            completion: step,
                            work: slot.executor.total_work(),
                            span: slot.executor.total_span(),
                            waste: slot.waste,
                            quanta: slot.quanta,
                            reallocations: slot.reallocations,
                            trace: Vec::new(),
                        };
                        self.probe.on_job_complete(&mut done);
                        completed.push(done);
                        if let Some(pool) = reclaimed.as_deref_mut() {
                            pool.push(slot.executor);
                        }
                    }
                    None => self.retained.push(slot),
                }
            }
            std::mem::swap(&mut self.slots, &mut self.retained);
        }
        self.now = now + len;
        self.quanta += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{NullProbe, Probe, TraceProbe};
    use abg_alloc::DynamicEquiPartition;
    use abg_control::ConstantRequest;
    use abg_dag::LeveledJob;
    use abg_sched::LeveledExecutor;

    fn job(width: u64, levels: u64) -> LeveledExecutor {
        LeveledExecutor::new(LeveledJob::constant(width, levels))
    }

    #[test]
    fn monomorphized_core_matches_engine_semantics() {
        let mut core = QuantumCore::new(DynamicEquiPartition::new(8), 10, NullProbe);
        core.admit(job(2, 40), ConstantRequest::new(2.0), 0);
        let mut done = Vec::new();
        core.step_quantum(&mut done);
        assert_eq!(core.now(), 10);
        core.admit(job(2, 20), ConstantRequest::new(2.0), 10);
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        done.sort_by_key(|c| c.id);
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].completion, 40);
        assert_eq!(done[1].completion, 30);
        assert_eq!(done[1].response_time(), 20);
    }

    #[test]
    fn trace_probe_delivers_traces_through_completed_jobs() {
        let mut core = QuantumCore::new(
            DynamicEquiPartition::new(8),
            10,
            TraceProbe::new().with_availability(),
        );
        core.admit(job(2, 40), ConstantRequest::new(2.0), 0);
        let mut done = Vec::new();
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        let trace = &done[0].trace;
        assert_eq!(trace.len() as u64, done[0].quanta);
        assert_eq!(trace[0].start_step, 0);
        assert_eq!(trace[0].availability, Some(8), "alone on the machine");
        let work: u64 = trace.iter().map(|r| r.stats.work).sum();
        assert_eq!(work, done[0].work);
    }

    #[test]
    fn retaining_probe_keeps_traces_out_of_the_job() {
        let mut core = QuantumCore::new(
            DynamicEquiPartition::new(8),
            10,
            TraceProbe::new().retaining(),
        );
        core.admit(job(2, 20), ConstantRequest::new(2.0), 0);
        let mut done = Vec::new();
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        assert!(done[0].trace.is_empty(), "retained, not delivered");
        let kept = core.into_probe().into_completed_traces();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].0, done[0].id);
        assert_eq!(kept[0].1.len() as u64, done[0].quanta);
    }

    #[test]
    fn custom_probe_sees_every_hook_in_order() {
        #[derive(Default)]
        struct Counting {
            starts: u64,
            grants: u64,
            ends: u64,
            completions: u64,
        }
        impl Probe for Counting {
            fn on_quantum_start(&mut self, _now: u64, _len: u64, live: usize) {
                assert!(live > 0);
                self.starts += 1;
            }
            fn on_grant(&mut self, _id: u64, request: f64, allotment: u32, _p: Option<u32>) {
                assert!(allotment as f64 <= request.ceil());
                self.grants += 1;
            }
            fn on_quantum_end(&mut self, _id: u64, record: &QuantumRecord) {
                assert!(record.stats.quantum_len > 0);
                self.ends += 1;
            }
            fn on_job_complete(&mut self, job: &mut CompletedJob) {
                assert!(job.completion > 0);
                self.completions += 1;
            }
        }
        let mut core = QuantumCore::new(DynamicEquiPartition::new(4), 10, Counting::default());
        core.admit(job(2, 30), ConstantRequest::new(2.0), 0);
        core.admit(job(2, 30), ConstantRequest::new(2.0), 0);
        let mut done = Vec::new();
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        let probe = core.into_probe();
        assert_eq!(probe.completions, 2);
        assert_eq!(probe.grants, probe.ends);
        assert_eq!(probe.ends, done.iter().map(|c| c.quanta).sum::<u64>());
        assert!(probe.starts > 0);
    }

    #[test]
    fn reallocations_travel_with_the_completed_job() {
        // Request 1 then 4 under an ample allocator: exactly one
        // allotment change over the whole run.
        let mut core = QuantumCore::new(DynamicEquiPartition::new(16), 20, NullProbe);
        core.admit(job(4, 200), abg_control::AControl::new(0.0), 0);
        let mut done = Vec::new();
        while core.jobs_in_system() > 0 {
            core.step_quantum(&mut done);
        }
        assert_eq!(done[0].reallocations, 1);
    }
}
