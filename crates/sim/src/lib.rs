//! Discrete-time simulation engine for the ABG reproduction.
//!
//! The simulator realises the paper's two-level scheduling framework:
//! time advances in unit steps grouped into quanta of `L` steps; at every
//! quantum boundary each live job's request calculator reports `d(q)` to
//! the OS allocator, the allocator grants allotments `a(q)`, and each
//! job's task scheduler runs the quantum and measures its statistics.
//!
//! Two entry points cover the paper's two simulation sets:
//!
//! * [`run_single_job`] — one job alone on the machine (Figures 1, 4, 5
//!   and the trim-analysis experiments), with optional per-quantum
//!   tracing;
//! * [`MultiJobSim`] — a job set space-sharing the machine through a
//!   shared allocator such as DEQ (Figure 6), with release times and
//!   global metrics (makespan, mean response time).
//!
//! Every driver is a thin configuration of one generic loop:
//! [`quantum_core::QuantumCore`], parameterized over the executor,
//! controller, allocator and a monomorphized [`probe::Probe`] observer
//! ([`NullProbe`] compiles the instrumentation away). The boxed
//! heterogeneous face is [`engine::QuantumEngine`], which admits jobs at
//! any time and drains them as they complete — the open-system
//! (sustained-arrival) driver in `abg-queue` runs indefinitely on the
//! same core, probes included.
//!
//! [`trim`] implements the paper's trim analysis (Section 6.1),
//! [`metrics`] the derived per-run measurements, and [`adaptive`] the
//! paced controllers of the paper's future-work section (plus the
//! reallocation-overhead accounting its motivation calls for).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod engine;
pub mod metrics;
pub mod multi;
pub mod probe;
pub mod quantum_core;
pub mod single;
pub mod trace;
pub mod trim;

pub use adaptive::{run_single_job_adaptive, AdaptiveQuantum, FixedQuantum, Paced};
pub use engine::QuantumEngine;
pub use metrics::{JobMetrics, QuantumClass};
pub use multi::{JobOutcome, MultiJobOutcome, MultiJobSim};
pub use probe::{NullProbe, Probe, TraceProbe};
pub use quantum_core::{live_job_footprint, CompletedJob, QuantumCore};
pub use single::{run_single_job, SingleJobConfig, SingleJobRun};
pub use trace::{trace_to_csv, QuantumRecord};
pub use trim::{mean_availability, trimmed_availability};
