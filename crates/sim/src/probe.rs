//! Zero-cost observation of the quantum core.
//!
//! Every driver used to hand-roll its own instrumentation: the
//! single-job loop built traces inline, the multi-job engine kept a
//! per-slot trace vector behind a flag, and the open-system driver had
//! no instrumentation at all. A [`Probe`] decouples observation from
//! stepping: the generic [`QuantumCore`](crate::QuantumCore) calls the
//! probe at four points of every quantum and the probe decides what to
//! keep. Probes are monomorphized type parameters, so [`NullProbe`] —
//! every hook an empty default — compiles to nothing and the
//! uninstrumented hot path pays zero cost for the abstraction.
//!
//! [`TraceProbe`] is the workhorse consumer: it rebuilds the
//! per-quantum [`QuantumRecord`] traces that `trim`, `metrics` and the
//! Gantt renderer consume, for *any* driver — including the open-system
//! driver, where trim/deprivation analysis was previously impossible.

use crate::quantum_core::CompletedJob;
use crate::trace::QuantumRecord;

/// Observer threaded through the quantum core's stepping loop.
///
/// All hooks default to no-ops, so a probe only implements the events it
/// cares about. The core invokes them in a fixed order each quantum:
/// one [`on_quantum_start`], then per live job (in admission order) one
/// [`on_grant`] before the executor runs and one [`on_quantum_end`]
/// after, then one [`on_job_complete`] per job drained at the boundary.
///
/// [`on_quantum_start`]: Probe::on_quantum_start
/// [`on_grant`]: Probe::on_grant
/// [`on_quantum_end`]: Probe::on_quantum_end
/// [`on_job_complete`]: Probe::on_job_complete
pub trait Probe {
    /// A quantum is about to run at absolute step `now`, with length
    /// `quantum_len` and `live_jobs` participating jobs.
    fn on_quantum_start(&mut self, now: u64, quantum_len: u64, live_jobs: usize) {
        let _ = (now, quantum_len, live_jobs);
    }

    /// The allocator granted `allotment` processors to job `job_id`
    /// requesting `request`; `availability` is `p(q)` when the core was
    /// asked to record it (and the allocator can answer).
    fn on_grant(&mut self, job_id: u64, request: f64, allotment: u32, availability: Option<u32>) {
        let _ = (job_id, request, allotment, availability);
    }

    /// Job `job_id` finished running the quantum; `record` carries the
    /// measured statistics (the request is the pre-feedback `d(q)`).
    fn on_quantum_end(&mut self, job_id: u64, record: &QuantumRecord) {
        let _ = (job_id, record);
    }

    /// A job completed and is being drained out of the core. The probe
    /// may enrich it — [`TraceProbe`] moves the job's collected trace
    /// into [`CompletedJob::trace`] here.
    fn on_job_complete(&mut self, job: &mut CompletedJob) {
        let _ = job;
    }

    /// Whether the core should query the allocator for per-job
    /// availabilities each quantum so [`on_grant`] /
    /// [`on_quantum_end`] see `p(q)`. Availability probing re-runs the
    /// allocation policy, so it is strictly opt-in.
    ///
    /// [`on_grant`]: Probe::on_grant
    /// [`on_quantum_end`]: Probe::on_quantum_end
    fn wants_availability(&self) -> bool {
        false
    }

    /// Whether the core must replay the per-quantum hook sequence
    /// ([`on_quantum_start`], [`on_grant`], [`on_quantum_end`]) for every
    /// quantum covered by a frozen-quantum bulk advance, so this probe
    /// sees records indistinguishable from quantum-by-quantum stepping.
    /// Defaults to `true` — an unknown probe gets the faithful replay;
    /// probes that keep nothing ([`NullProbe`], a disabled
    /// [`TraceProbe`]) decline and let the core skip the loop entirely.
    ///
    /// [`on_quantum_start`]: Probe::on_quantum_start
    /// [`on_grant`]: Probe::on_grant
    /// [`on_quantum_end`]: Probe::on_quantum_end
    fn wants_frozen_replay(&self) -> bool {
        true
    }
}

/// The do-nothing probe: every hook is the empty default, so a core
/// instantiated with `NullProbe` monomorphizes to the uninstrumented
/// loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    fn wants_frozen_replay(&self) -> bool {
        false
    }
}

/// Collects per-job [`QuantumRecord`] traces from any driver.
///
/// Records accumulate per job while it is live. On completion the trace
/// is either moved into [`CompletedJob::trace`] (the default — how the
/// closed-system engine returns traces to its caller) or, in
/// [`retaining`](TraceProbe::retaining) mode, kept inside the probe so
/// drivers that consume and drop their `CompletedJob`s — the open-system
/// driver — can still hand the traces back afterwards.
///
/// The probe carries a runtime `enabled` switch so engines can expose
/// tracing as a run-time flag over a single monomorphization; a disabled
/// `TraceProbe` costs one branch per hook.
#[derive(Debug, Clone, Default)]
pub struct TraceProbe {
    enabled: bool,
    want_availability: bool,
    retain: bool,
    open: Vec<(u64, Vec<QuantumRecord>)>,
    completed: Vec<(u64, Vec<QuantumRecord>)>,
}

impl TraceProbe {
    /// An enabled probe (availability off, traces delivered through
    /// [`CompletedJob::trace`]).
    pub fn new() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// A disabled probe: hooks return immediately and no trace is kept.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Also record the allocator availability `p(q)` in every record.
    pub fn with_availability(mut self) -> Self {
        self.want_availability = true;
        self
    }

    /// Keep completed jobs' traces inside the probe (see
    /// [`completed_traces`](TraceProbe::completed_traces)) instead of
    /// moving them into [`CompletedJob::trace`].
    pub fn retaining(mut self) -> Self {
        self.retain = true;
        self
    }

    /// Whether the probe is recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Traces of completed jobs, in completion order, keyed by the
    /// core's admission id. Empty unless the probe is in
    /// [`retaining`](TraceProbe::retaining) mode.
    pub fn completed_traces(&self) -> &[(u64, Vec<QuantumRecord>)] {
        &self.completed
    }

    /// Consumes the probe, returning the retained completed-job traces.
    pub fn into_completed_traces(self) -> Vec<(u64, Vec<QuantumRecord>)> {
        self.completed
    }
}

impl Probe for TraceProbe {
    fn on_quantum_end(&mut self, job_id: u64, record: &QuantumRecord) {
        if !self.enabled {
            return;
        }
        match self.open.iter_mut().find(|(id, _)| *id == job_id) {
            Some((_, trace)) => trace.push(*record),
            None => self.open.push((job_id, vec![*record])),
        }
    }

    fn on_job_complete(&mut self, job: &mut CompletedJob) {
        if !self.enabled {
            return;
        }
        let Some(pos) = self.open.iter().position(|(id, _)| *id == job.id) else {
            return;
        };
        let (id, trace) = self.open.swap_remove(pos);
        if self.retain {
            self.completed.push((id, trace));
        } else {
            job.trace = trace;
        }
    }

    fn wants_availability(&self) -> bool {
        self.enabled && self.want_availability
    }

    fn wants_frozen_replay(&self) -> bool {
        self.enabled
    }
}
