//! Quantum classification and derived per-run metrics.

use crate::trace::QuantumRecord;
use serde::{Deserialize, Serialize};

/// The trim-analysis classification of a quantum (Section 6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantumClass {
    /// A full quantum that counts toward speedup: the request was
    /// deprived (`a(q) < d(q)`) **and** the allotment was below the
    /// measured parallelism (`a(q) < A(q)`).
    Accounted,
    /// A full quantum that the analysis trims: the request was satisfied
    /// (`a(q) = d(q)`) or the allotment reached the parallelism
    /// (`a(q) ≥ A(q)`).
    Deductible,
    /// A non-full quantum (work missing on some step) — only the job's
    /// last quantum can be one under a positive allotment.
    NonFull,
}

/// Classifies a traced quantum per the paper's definitions.
pub fn classify(record: &QuantumRecord) -> QuantumClass {
    if !record.stats.is_full() {
        return QuantumClass::NonFull;
    }
    let deprived = record.deprived();
    let below_parallelism = match record.stats.average_parallelism() {
        Some(a) => (record.allotment as f64) < a,
        None => false,
    };
    if deprived && below_parallelism {
        QuantumClass::Accounted
    } else {
        QuantumClass::Deductible
    }
}

/// Aggregate classification counts and availability data for one job's
/// trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobMetrics {
    /// Number of accounted quanta, `|A|`.
    pub accounted: u64,
    /// Number of deductible quanta, `|D|`.
    pub deductible: u64,
    /// Number of non-full quanta, `|N|` (≤ 1 under positive allotments).
    pub non_full: u64,
    /// Availability per quantum, where recorded (for trim analysis).
    pub availabilities: Vec<u32>,
    /// Mean availability over accounted quanta (the `P` of Theorem 3's
    /// proof), if any quantum was accounted and availability recorded.
    pub mean_accounted_availability: Option<f64>,
}

impl JobMetrics {
    /// Computes metrics from a quantum trace.
    pub fn from_trace(trace: &[QuantumRecord]) -> Self {
        let mut accounted = 0u64;
        let mut deductible = 0u64;
        let mut non_full = 0u64;
        let mut availabilities = Vec::with_capacity(trace.len());
        let mut acc_avail_sum = 0u64;
        let mut acc_avail_n = 0u64;
        for r in trace {
            let class = classify(r);
            match class {
                QuantumClass::Accounted => accounted += 1,
                QuantumClass::Deductible => deductible += 1,
                QuantumClass::NonFull => non_full += 1,
            }
            if let Some(p) = r.availability {
                availabilities.push(p);
                if class == QuantumClass::Accounted {
                    acc_avail_sum += p as u64;
                    acc_avail_n += 1;
                }
            }
        }
        JobMetrics {
            accounted,
            deductible,
            non_full,
            availabilities,
            mean_accounted_availability: (acc_avail_n > 0)
                .then(|| acc_avail_sum as f64 / acc_avail_n as f64),
        }
    }

    /// Total quanta classified.
    pub fn total(&self) -> u64 {
        self.accounted + self.deductible + self.non_full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_sched::QuantumStats;

    fn record(request: f64, allotment: u32, work: u64, span: f64, full: bool) -> QuantumRecord {
        let quantum_len = 10;
        QuantumRecord {
            index: 1,
            start_step: 0,
            request,
            allotment,
            availability: Some(allotment),
            stats: QuantumStats {
                allotment,
                quantum_len,
                steps_worked: if full { quantum_len } else { quantum_len / 2 },
                work,
                span,
                completed: !full,
            },
        }
    }

    #[test]
    fn deprived_below_parallelism_is_accounted() {
        // d = 8, a = 4, A = 40/5 = 8 > 4.
        let r = record(8.0, 4, 40, 5.0, true);
        assert_eq!(classify(&r), QuantumClass::Accounted);
    }

    #[test]
    fn satisfied_quantum_is_deductible() {
        let r = record(4.0, 4, 40, 5.0, true);
        assert_eq!(classify(&r), QuantumClass::Deductible);
    }

    #[test]
    fn deprived_but_at_parallelism_is_deductible() {
        // a = 8 ≥ A = 8 even though deprived (d = 16).
        let r = record(16.0, 8, 40, 5.0, true);
        assert_eq!(classify(&r), QuantumClass::Deductible);
    }

    #[test]
    fn non_full_quantum_detected() {
        let r = record(4.0, 4, 10, 2.0, false);
        assert_eq!(classify(&r), QuantumClass::NonFull);
    }

    #[test]
    fn from_trace_aggregates() {
        let trace = vec![
            record(8.0, 4, 40, 5.0, true),  // accounted
            record(4.0, 4, 40, 5.0, true),  // deductible
            record(4.0, 4, 10, 2.0, false), // non-full
        ];
        let m = JobMetrics::from_trace(&trace);
        assert_eq!(m.accounted, 1);
        assert_eq!(m.deductible, 1);
        assert_eq!(m.non_full, 1);
        assert_eq!(m.total(), 3);
        assert_eq!(m.availabilities.len(), 3);
        assert_eq!(m.mean_accounted_availability, Some(4.0));
    }

    #[test]
    fn empty_trace_is_empty_metrics() {
        let m = JobMetrics::from_trace(&[]);
        assert_eq!(m.total(), 0);
        assert_eq!(m.mean_accounted_availability, None);
    }
}
