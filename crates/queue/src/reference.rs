//! The quantum-by-quantum open-system driver, kept as a reference
//! implementation.
//!
//! [`run_open_system`](crate::run_open_system) used to execute this
//! exact loop: one allocate/step/observe round per quantum, every
//! quantum, with no event awareness. The event-driven driver replaced
//! it for speed, under the contract that every observable —
//! fingerprints, completion order, steady-state statistics, saturation
//! reports — stays **bit-identical**. This module preserves the old
//! loop verbatim so that contract is checkable by differential tests
//! and benchmarkable by the `open_event_kernel` Criterion group, rather
//! than an article of faith.
//!
//! Compiled only for tests and under the `test-support` feature; it is
//! not part of the production API.

use crate::driver::{measured_utilization, OpenConfig, OpenOutcome, SteadyStats, UnstableReport};
use crate::saturation::{SaturationDetector, SaturationReason};
use crate::stats::{batch_means, percentiles};
use abg_alloc::Allocator;
use abg_control::RequestCalculator;
use abg_sched::JobExecutor;
use abg_sim::{CompletedJob, NullProbe, Probe, QuantumCore};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The pre-event-driven open-system driver: steps the core one quantum
/// at a time with no frozen windows and no arrival calendar.
///
/// Exists solely as the ground truth the event-driven driver is
/// differentially tested (and benchmarked) against.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReferenceOpenDriver;

impl ReferenceOpenDriver {
    /// Reference counterpart of [`run_open_system`].
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration (see
    /// [`OpenConfig::validate`]).
    ///
    /// [`run_open_system`]: crate::run_open_system
    pub fn run<A, E, C>(
        cfg: &OpenConfig,
        allocator: A,
        make_executor: E,
        make_calculator: C,
    ) -> OpenOutcome
    where
        A: Allocator,
        E: FnMut(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send>,
        C: FnMut() -> Box<dyn RequestCalculator + Send>,
    {
        Self::run_probed(cfg, allocator, make_executor, make_calculator, NullProbe).0
    }

    /// Reference counterpart of [`run_open_system_probed`] — the legacy
    /// loop with a probe threaded through.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent configuration (see
    /// [`OpenConfig::validate`]).
    ///
    /// [`run_open_system_probed`]: crate::run_open_system_probed
    pub fn run_probed<A, E, C, P>(
        cfg: &OpenConfig,
        allocator: A,
        mut make_executor: E,
        mut make_calculator: C,
        probe: P,
    ) -> (OpenOutcome, P)
    where
        A: Allocator,
        E: FnMut(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send>,
        C: FnMut() -> Box<dyn RequestCalculator + Send>,
        P: Probe,
    {
        cfg.assert_valid();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut stream = cfg.arrivals.stream();
        let mut engine = QuantumCore::new(allocator, cfg.quantum_len, probe);
        let mut detector = SaturationDetector::new(cfg.saturation);

        let warmup = cfg.warmup_jobs;
        let measured = cfg.measured_jobs;
        let mut responses = vec![f64::NAN; measured as usize];
        let mut slowdowns = vec![f64::NAN; measured as usize];
        let mut outstanding = measured;

        let mut arrivals = 0u64;
        let mut next_arrival = stream.next_arrival(&mut rng);
        let mut completed_work = 0u64;
        let mut done: Vec<CompletedJob> = Vec::new();
        let mut pool: Vec<Box<dyn JobExecutor + Send>> = Vec::new();

        let outcome = loop {
            while next_arrival <= engine.now() {
                let executor = make_executor(&mut rng, pool.pop());
                engine.admit(executor, make_calculator(), next_arrival);
                arrivals += 1;
                next_arrival = stream.next_arrival(&mut rng);
            }
            if !engine.any_live() {
                engine.skip_idle_until(next_arrival);
                continue;
            }

            done.clear();
            engine.step_quantum_reclaiming(&mut done, &mut pool);
            detector.record(engine.jobs_in_system());

            for job in &done {
                completed_work += job.work;
                if job.id < warmup || job.id >= warmup + measured {
                    continue;
                }
                let slot = (job.id - warmup) as usize;
                let response = job.response_time() as f64;
                let lower = (job.span as f64).max(job.work as f64 / cfg.processors as f64);
                responses[slot] = response;
                slowdowns[slot] = response / lower.max(1.0);
                outstanding -= 1;
            }

            if outstanding == 0 {
                let response = batch_means(&responses, cfg.batches)
                    .expect("validate() guarantees one observation per batch");
                let slowdown = percentiles(&slowdowns).expect("measured_jobs > 0");
                let horizon = engine.now();
                break OpenOutcome::Steady(SteadyStats {
                    response,
                    slowdown,
                    completed: measured,
                    arrivals,
                    quanta: engine.quanta(),
                    horizon,
                    mean_jobs_in_system: detector.mean_jobs_in_system(),
                    peak_jobs_in_system: detector.peak_jobs_in_system(),
                    measured_utilization: measured_utilization(
                        completed_work,
                        cfg.processors,
                        horizon,
                    ),
                });
            }

            let reason = detector.check().or_else(|| {
                (engine.quanta() >= cfg.max_quanta).then_some(SaturationReason::HorizonExhausted {
                    quanta: cfg.max_quanta,
                })
            });
            if let Some(reason) = reason {
                break OpenOutcome::Unstable(UnstableReport {
                    reason,
                    quanta: engine.quanta(),
                    horizon: engine.now(),
                    jobs_in_system: engine.jobs_in_system() as u64,
                    completed: measured - outstanding,
                    arrivals,
                });
            }
        };
        (outcome, engine.into_probe())
    }
}
