//! The sharded open-system engine: per-shard quantum cores on a worker
//! pool with a deterministic merge.
//!
//! A single [`run_open_system`](crate::run_open_system) run pushes every in-flight job through
//! one admission-ordered [`QuantumCore`] on one thread, which caps both
//! the machine size and the in-system population a run can carry. This
//! module partitions the machine into `G` processor groups — the
//! two-level structure of hierarchical scheduling schemes for malleable
//! jobs, with an adaptive scheduler under a top-level splitter — and
//! runs one *independent* open-system simulation per group:
//!
//! * **partitioning** — shard `k` owns `P/G` processors (the first
//!   `P mod G` shards own one more), its own [`QuantumCore`],
//!   [`ArrivalCalendar`](crate::ArrivalCalendar)-equivalent arrival source, and
//!   [`SaturationDetector`];
//! * **routing** — every shard replays the *same* aggregate arrival
//!   path (all shards seed the router RNG identically from the run
//!   seed via SplitMix64) and keeps the arrivals a deterministic
//!   [`ShardRouting`] policy assigns to it, so the split never depends
//!   on thread count or schedule;
//! * **job identity** — the job structure of global arrival `g` is
//!   sampled from its own SplitMix64-derived RNG, so the simulated job
//!   population is a function of the run seed alone: identical across
//!   shard counts and routing policies;
//! * **merge** — per-shard measured samples carry their global
//!   measurement slot, and the merge recombines them in slot order
//!   (aggregate arrival order) through the pure helpers in
//!   [`stats`](crate::stats), in stable shard-index order for every
//!   summed diagnostic. The result is one [`OpenOutcome`] whatever the
//!   pool's schedule was.
//!
//! A `shards = 1` configuration delegates to [`run_open_system`](crate::run_open_system)
//! verbatim — bit-identical to the unsharded driver, pinned
//! fingerprints included. With `G ≥ 2` the engine is a *different*
//! (but equally deterministic) simulation: arrival gap draws no longer
//! interleave with job-structure draws, and each shard schedules its
//! own population on its own sub-machine.
//!
//! Why this scales: the per-event cost of the quantum core grows with
//! the live population, so `G` shards each carrying `~N/G` jobs commit
//! simulated time cheaper than one core carrying `N` — on top of the
//! wall-clock parallelism of the worker pool (which honors
//! `ABG_THREADS`, like every harness pool in the workspace).

use crate::driver::{ConfigError, OpenConfig, OpenOutcome, SteadyStats, UnstableReport};
use crate::saturation::{SaturationDetector, SaturationReason};
use crate::stats::{merge_shard_samples, merged_batch_means, percentiles, weighted_mean};
use abg_alloc::Allocator;
use abg_control::RequestCalculator;
use abg_sched::JobExecutor;
use abg_sim::{NullProbe, QuantumCore};
use abg_workload::{splitmix_seed, ArrivalStream};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How arrivals are assigned to shards. Both policies are pure
/// functions of the run seed and the global arrival index, so the
/// split is reproducible whatever the pool does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardRouting {
    /// Global arrival `g` goes to shard `g mod G` — a perfectly even
    /// split of the arrival count.
    RoundRobin,
    /// Global arrival `g` goes to the shard selected by a SplitMix64
    /// hash of its job seed — an i.i.d. uniform split, the statistical
    /// model of load-oblivious dispatching.
    HashJobSeed,
    /// Deterministic skew: the first `hot` arrivals of every
    /// `hot + (G - 1)`-arrival cycle go to group 0, the rest
    /// round-robin over groups `1..G` — a `hot : 1` load concentration
    /// on group 0. The hierarchical experiments use it to stress
    /// feedback repartitioning; under the *static* engine it simply
    /// overloads group 0. With `G = 1` everything lands on group 0.
    Skewed {
        /// Arrivals routed to group 0 per cycle (`hot = 1` is uniform;
        /// `hot = G` gives group 0 a `G : 1` share).
        hot: u32,
    },
}

/// Configuration of a sharded open-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedOpenConfig {
    /// The aggregate open-system configuration: total machine size,
    /// aggregate arrival process, aggregate warmup/measured counts.
    /// `max_quanta` and the saturation tuning apply *per shard*.
    pub open: OpenConfig,
    /// Processor groups `G`.
    pub shards: u32,
    /// The arrival-routing policy.
    pub routing: ShardRouting,
}

impl ShardedOpenConfig {
    /// Checks internal consistency, reporting the first violation as a
    /// typed [`ConfigError`]: the aggregate config must be valid, and
    /// the shard count must be at least one and at most one shard per
    /// processor.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.open.validate()?;
        if self.shards == 0 {
            return Err(ConfigError::NoShards);
        }
        if self.shards > self.open.processors {
            return Err(ConfigError::TooManyShards {
                shards: self.shards,
                processors: self.open.processors,
            });
        }
        Ok(())
    }

    /// Panicking form of [`validate`](ShardedOpenConfig::validate),
    /// used by the driver to fail fast with the [`ConfigError`] display
    /// message.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] display message on the first
    /// violation.
    pub fn assert_valid(&self) {
        if let Err(err) = self.validate() {
            panic!("{err}");
        }
    }
}

/// Processors owned by shard `k` of `g`: an equi-partition with the
/// remainder spread over the lowest-index shards.
pub(crate) fn shard_processors(processors: u32, shards: u32, shard: u32) -> u32 {
    processors / shards + u32::from(shard < processors % shards)
}

/// The RNG seed every shard's arrival replay starts from — shared, so
/// all shards decimate one common aggregate path.
fn router_seed(seed: u64) -> u64 {
    splitmix_seed(seed, 0, 1)
}

/// The RNG seed global arrival `g` samples its job structure from.
pub(crate) fn job_seed(seed: u64, global: u64) -> u64 {
    splitmix_seed(seed, global, 2)
}

/// The shard the routing policy assigns global arrival `g` to.
pub(crate) fn route(cfg: &ShardedOpenConfig, global: u64) -> u32 {
    match cfg.routing {
        ShardRouting::RoundRobin => (global % cfg.shards as u64) as u32,
        ShardRouting::HashJobSeed => {
            (splitmix_seed(job_seed(cfg.open.seed, global), 0, 3) % cfg.shards as u64) as u32
        }
        ShardRouting::Skewed { hot } => {
            let cycle = hot as u64 + cfg.shards as u64 - 1;
            if cycle == 0 {
                return 0; // hot = 0 with one group: everything is group 0.
            }
            let r = global % cycle;
            if r < hot as u64 {
                0
            } else {
                (r - hot as u64 + 1) as u32
            }
        }
    }
}

/// Measured global arrival indices the routing policy assigns to
/// `shard` — computable up front (routing is a pure function of seed
/// and index), so each shard knows its measurement target before
/// simulating anything.
pub(crate) fn measured_assigned(cfg: &ShardedOpenConfig, shard: u32) -> u64 {
    let warmup = cfg.open.warmup_jobs;
    (warmup..warmup + cfg.open.measured_jobs)
        .filter(|&g| route(cfg, g) == shard)
        .count() as u64
}

/// One shard's pending-arrival source: replays the aggregate arrival
/// path from the shared router seed and yields `(global index, time)`
/// for the arrivals routed to this shard. Skipped arrivals still
/// consume their draws, so every shard sees the identical aggregate
/// path.
pub(crate) struct ShardArrivals {
    stream: ArrivalStream,
    rng: StdRng,
    /// Global index of the next aggregate arrival to draw.
    next_global: u64,
    shard: u32,
}

impl ShardArrivals {
    pub(crate) fn new(cfg: &ShardedOpenConfig, shard: u32) -> Self {
        Self {
            stream: cfg.open.arrivals.stream(),
            rng: StdRng::seed_from_u64(router_seed(cfg.open.seed)),
            next_global: 0,
            shard,
        }
    }

    /// The next arrival routed to this shard.
    pub(crate) fn next(&mut self, cfg: &ShardedOpenConfig) -> (u64, u64) {
        loop {
            let time = self.stream.next_arrival(&mut self.rng);
            let global = self.next_global;
            self.next_global += 1;
            if route(cfg, global) == self.shard {
                return (global, time);
            }
        }
    }
}

/// Everything a shard (or hierarchical processor group) hands back for
/// the deterministic merge.
pub(crate) struct ShardReport {
    pub(crate) processors: u32,
    /// Measured samples: `(global slot, response, slowdown)`.
    pub(crate) samples: Vec<(u64, f64, f64)>,
    pub(crate) arrivals: u64,
    pub(crate) completed_measured: u64,
    pub(crate) completed_work: u64,
    pub(crate) quanta: u64,
    pub(crate) horizon: u64,
    pub(crate) jobs_in_system: u64,
    pub(crate) mean_jobs_in_system: f64,
    pub(crate) peak_jobs_in_system: u64,
    pub(crate) tripped: Option<SaturationReason>,
}

/// Runs shard `shard`'s independent open-system simulation to its own
/// completion (all measured arrivals routed here have completed) or
/// saturation trip. The loop is the event-driven loop of
/// [`run_open_system`](crate::run_open_system), with measurement keyed by *global* arrival
/// index and the slowdown lower bound taken against the shard's own
/// sub-machine (the processors the job could actually have used).
///
/// The loop itself lives in [`GroupSim`](crate::hier::GroupSim) — the
/// resumable per-group simulation of the hierarchical driver — run
/// here with an unbounded epoch, which disables every pause point and
/// reduces it to the original single-pass shard loop.
fn run_shard<A, E, C>(
    cfg: &ShardedOpenConfig,
    shard: u32,
    allocator: A,
    make_executor: &E,
    make_calculator: &C,
) -> ShardReport
where
    A: Allocator,
    E: Fn(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send> + Sync,
    C: Fn() -> Box<dyn RequestCalculator + Send> + Sync,
{
    let mut sim = crate::hier::GroupSim::new(cfg, shard, allocator);
    sim.advance_until(cfg, u64::MAX, make_executor, make_calculator);
    sim.into_report()
}

/// Saturation/budget evaluation per shard — the detector's verdict, or
/// the per-shard quanta budget.
pub(crate) fn shard_trip<A: Allocator>(
    open: &OpenConfig,
    engine: &QuantumCore<
        Box<dyn JobExecutor + Send>,
        Box<dyn RequestCalculator + Send>,
        A,
        NullProbe,
    >,
    detector: &SaturationDetector,
) -> Option<SaturationReason> {
    detector.check().or_else(|| {
        (engine.quanta() >= open.max_quanta).then_some(SaturationReason::HorizonExhausted {
            quanta: open.max_quanta,
        })
    })
}

/// Worker count for the shard pool: the `ABG_THREADS` environment
/// variable when set to a positive integer, the machine's available
/// parallelism otherwise — the same contract as the sweep harness's
/// `parallel_map`. Results never depend on this; only wall-clock does.
pub(crate) fn pool_threads() -> usize {
    if let Ok(s) = std::env::var("ABG_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

/// Runs `run` for every shard index on a contention-free scoped-thread
/// pool (workers claim shard indices off one atomic cursor) and
/// returns the reports in shard-index order — the stable order the
/// merge folds in, whatever schedule the pool produced.
fn run_on_pool<F>(shards: u32, threads: usize, run: F) -> Vec<ShardReport>
where
    F: Fn(u32) -> ShardReport + Sync,
{
    let n = shards as usize;
    let threads = threads.clamp(1, n);
    if threads == 1 {
        return (0..shards).map(run).collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let run = &run;
    let mut reports: Vec<(usize, ShardReport)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if k >= n {
                            return mine;
                        }
                        mine.push((k, run(k as u32)));
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("shard worker panicked"))
            .collect()
    });
    reports.sort_unstable_by_key(|(k, _)| *k);
    reports.into_iter().map(|(_, r)| r).collect()
}

/// Folds the per-shard (or per-group) reports into one
/// [`OpenOutcome`], in stable shard-index order.
///
/// Any tripped shard makes the merged outcome [`OpenOutcome::Unstable`]
/// (reason from the lowest-index tripped shard; diagnostics summed,
/// horizon the maximum). Otherwise the measured samples recombine in
/// global slot order through [`merged_batch_means`] /
/// [`merge_shard_samples`]; `quanta` and `arrivals` sum; `horizon` is
/// the largest shard horizon; the mean in-system count is the
/// quanta-weighted mean of the shard means; and the served utilization
/// is total completed work over `capacity` — the caller's
/// processor-steps integral (`Σ Pₖ · horizonₖ` for fixed shards, the
/// epoch-by-epoch sum under a capacity-reallocating top level).
pub(crate) fn merge_reports(
    open: &OpenConfig,
    reports: &[ShardReport],
    capacity: f64,
) -> OpenOutcome {
    let quanta: u64 = reports.iter().map(|r| r.quanta).sum();
    let arrivals: u64 = reports.iter().map(|r| r.arrivals).sum();
    let horizon: u64 = reports.iter().map(|r| r.horizon).max().unwrap_or(0);
    let completed: u64 = reports.iter().map(|r| r.completed_measured).sum();

    if let Some(tripped) = reports.iter().find(|r| r.tripped.is_some()) {
        return OpenOutcome::Unstable(UnstableReport {
            reason: tripped.tripped.expect("found a tripped shard"),
            quanta,
            horizon,
            jobs_in_system: reports.iter().map(|r| r.jobs_in_system).sum(),
            completed,
            arrivals,
        });
    }

    let slots = open.measured_jobs as usize;
    let responses: Vec<Vec<(u64, f64)>> = reports
        .iter()
        .map(|r| r.samples.iter().map(|&(s, resp, _)| (s, resp)).collect())
        .collect();
    let slowdowns: Vec<Vec<(u64, f64)>> = reports
        .iter()
        .map(|r| r.samples.iter().map(|&(s, _, sd)| (s, sd)).collect())
        .collect();
    let response = merged_batch_means(&responses, slots, open.batches)
        .expect("steady shards tile the measurement slots");
    let slowdown_samples =
        merge_shard_samples(&slowdowns, slots).expect("steady shards tile the measurement slots");
    let slowdown = percentiles(&slowdown_samples).expect("measured_jobs > 0");

    let weights: Vec<(f64, f64)> = reports
        .iter()
        .map(|r| (r.mean_jobs_in_system, r.quanta as f64))
        .collect();
    let completed_work: u64 = reports.iter().map(|r| r.completed_work).sum();
    let utilization = if capacity == 0.0 {
        0.0
    } else {
        completed_work as f64 / capacity
    };
    OpenOutcome::Steady(SteadyStats {
        response,
        slowdown,
        completed: open.measured_jobs,
        arrivals,
        quanta,
        horizon,
        mean_jobs_in_system: weighted_mean(&weights),
        // Summed per-group peaks: an aggregate-footprint upper bound
        // (the groups need not peak at the same instant).
        peak_jobs_in_system: reports.iter().map(|r| r.peak_jobs_in_system).sum(),
        measured_utilization: utilization,
    })
}

/// Runs one sharded open-system simulation on the worker pool sized by
/// `ABG_THREADS` (see [`run_open_sharded_with_threads`] for an explicit
/// count).
///
/// `make_allocator` builds each shard's allocator from the shard's
/// processor count; `make_executor` and `make_calculator` are the
/// factories of [`run_open_system`](crate::run_open_system), shared by every shard (`Fn`, not
/// `FnMut`, so the pool can call them concurrently). With `shards = 1`
/// this *is* [`run_open_system`](crate::run_open_system) on `cfg.open` — bit-identical,
/// pinned fingerprints included.
///
/// # Panics
///
/// Panics on an inconsistent configuration (see
/// [`ShardedOpenConfig::validate`]).
pub fn run_open_sharded<A, FA, E, C>(
    cfg: &ShardedOpenConfig,
    make_allocator: FA,
    make_executor: E,
    make_calculator: C,
) -> OpenOutcome
where
    A: Allocator,
    FA: Fn(u32) -> A + Sync,
    E: Fn(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send> + Sync,
    C: Fn() -> Box<dyn RequestCalculator + Send> + Sync,
{
    run_open_sharded_with_threads(
        cfg,
        make_allocator,
        make_executor,
        make_calculator,
        pool_threads(),
    )
}

/// [`run_open_sharded`] with an explicit worker count. Tests drive this
/// directly to check thread-count invariance without racing on the
/// process environment; the outcome is identical for every `threads`
/// value by construction (shards are independent and the merge folds
/// in shard-index order).
///
/// # Panics
///
/// Panics on an inconsistent configuration (see
/// [`ShardedOpenConfig::validate`]).
pub fn run_open_sharded_with_threads<A, FA, E, C>(
    cfg: &ShardedOpenConfig,
    make_allocator: FA,
    make_executor: E,
    make_calculator: C,
    threads: usize,
) -> OpenOutcome
where
    A: Allocator,
    FA: Fn(u32) -> A + Sync,
    E: Fn(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send> + Sync,
    C: Fn() -> Box<dyn RequestCalculator + Send> + Sync,
{
    cfg.assert_valid();
    if cfg.shards == 1 {
        // The single-shard configuration is the unsharded driver,
        // delegated verbatim so it stays bit-identical to
        // `run_open_system` (same RNG stream, same loop).
        return crate::driver::run_open_system(
            &cfg.open,
            make_allocator(cfg.open.processors),
            make_executor,
            make_calculator,
        );
    }
    let reports = run_on_pool(cfg.shards, threads, |shard| {
        run_shard(
            cfg,
            shard,
            make_allocator(shard_processors(cfg.open.processors, cfg.shards, shard)),
            &make_executor,
            &make_calculator,
        )
    });
    // Fixed groups: each shard's capacity integral is its processor
    // count times its own horizon.
    let capacity: f64 = reports
        .iter()
        .map(|r| r.processors as f64 * r.horizon as f64)
        .sum();
    merge_reports(&cfg.open, &reports, capacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_open_system;
    use crate::saturation::SaturationConfig;
    use abg_alloc::DynamicEquiPartition;
    use abg_control::AControl;
    use abg_dag::PhasedJob;
    use abg_sched::PipelinedExecutor;
    use abg_workload::{mean_gap_for_utilization, ArrivalProcess};

    fn config(rho: f64, shards: u32, routing: ShardRouting) -> ShardedOpenConfig {
        ShardedOpenConfig {
            open: OpenConfig {
                processors: 16,
                quantum_len: 10,
                arrivals: ArrivalProcess::Poisson {
                    // Constant width-2, 40-level jobs: T1 = 80.
                    mean_gap: mean_gap_for_utilization(rho, 16, 80.0),
                },
                warmup_jobs: 40,
                measured_jobs: 160,
                batches: 8,
                max_quanta: 2_000_000,
                saturation: SaturationConfig::default(),
                seed: 0x5AAD,
            },
            shards,
            routing,
        }
    }

    fn run(cfg: &ShardedOpenConfig, threads: usize) -> OpenOutcome {
        run_open_sharded_with_threads(
            cfg,
            DynamicEquiPartition::new,
            |_rng, _recycled| Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 40))),
            || Box::new(AControl::new(0.2)),
            threads,
        )
    }

    #[test]
    fn shard_processor_partition_spreads_the_remainder() {
        let split: Vec<u32> = (0..3).map(|k| shard_processors(16, 3, k)).collect();
        assert_eq!(split, vec![6, 5, 5]);
        assert_eq!(split.iter().sum::<u32>(), 16);
        assert_eq!(shard_processors(16, 16, 15), 1);
        assert_eq!(shard_processors(16, 1, 0), 16);
    }

    #[test]
    fn routing_policies_cover_every_shard_and_are_deterministic() {
        for routing in [ShardRouting::RoundRobin, ShardRouting::HashJobSeed] {
            let cfg = config(0.5, 4, routing);
            let total: u64 = (0..4).map(|k| measured_assigned(&cfg, k)).sum();
            assert_eq!(total, cfg.open.measured_jobs, "{routing:?}");
            for k in 0..4 {
                assert!(
                    measured_assigned(&cfg, k) > 0,
                    "{routing:?}: shard {k} starved"
                );
            }
        }
        // Round-robin is an exact split of the measured window.
        let cfg = config(0.5, 4, ShardRouting::RoundRobin);
        for k in 0..4 {
            assert_eq!(measured_assigned(&cfg, k), 40);
        }
    }

    #[test]
    fn every_shard_replays_the_same_aggregate_path() {
        let cfg = config(0.5, 4, ShardRouting::RoundRobin);
        // Collect (global, time) from every shard's source; the union
        // must be one consistent aggregate path.
        let mut seen: Vec<(u64, u64)> = Vec::new();
        for k in 0..4 {
            let mut src = ShardArrivals::new(&cfg, k);
            for _ in 0..25 {
                seen.push(src.next(&cfg));
            }
        }
        seen.sort_unstable();
        for pair in seen.windows(2) {
            assert_ne!(pair[0].0, pair[1].0, "global index claimed twice");
            assert!(pair[0].1 <= pair[1].1, "aggregate path not monotone");
        }
        // Round-robin: shard k owns exactly the indices ≡ k (mod 4).
        let mut src = ShardArrivals::new(&cfg, 2);
        for j in 0..10 {
            assert_eq!(src.next(&cfg).0, 2 + 4 * j);
        }
    }

    #[test]
    fn single_shard_is_bit_identical_to_the_unsharded_driver() {
        let cfg = config(0.5, 1, ShardRouting::RoundRobin);
        let sharded = run(&cfg, 1);
        let direct = run_open_system(
            &cfg.open,
            DynamicEquiPartition::new(cfg.open.processors),
            |_rng, _recycled| Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 40))),
            || Box::new(AControl::new(0.2)),
        );
        assert_eq!(sharded, direct);
    }

    #[test]
    fn outcome_is_independent_of_thread_count_and_schedule() {
        for routing in [ShardRouting::RoundRobin, ShardRouting::HashJobSeed] {
            let cfg = config(0.5, 4, routing);
            let baseline = run(&cfg, 1);
            assert!(baseline.is_steady(), "{routing:?}");
            for threads in 2..=8 {
                assert_eq!(
                    run(&cfg, threads),
                    baseline,
                    "{routing:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn sharded_steady_statistics_are_sane() {
        let cfg = config(0.4, 4, ShardRouting::RoundRobin);
        let out = run(&cfg, 2);
        let stats = out.steady().expect("rho = 0.4 must be stable");
        assert_eq!(stats.completed, 160);
        assert!(stats.response.mean.is_finite() && stats.response.mean >= 40.0);
        assert!(stats.slowdown.p50 >= 1.0);
        assert!(stats.slowdown.p50 <= stats.slowdown.p95);
        assert!(stats.measured_utilization > 0.05 && stats.measured_utilization < 1.0);
        assert!(stats.mean_jobs_in_system > 0.0);
        assert!(stats.arrivals >= 160);
    }

    #[test]
    fn sharded_overload_is_flagged_unstable() {
        let cfg = config(1.5, 4, ShardRouting::RoundRobin);
        match run(&cfg, 2) {
            OpenOutcome::Unstable(report) => {
                assert!(matches!(
                    report.reason,
                    SaturationReason::QueueGrowth { .. } | SaturationReason::InSystemCap { .. }
                ));
                assert!(report.jobs_in_system > 0);
            }
            OpenOutcome::Steady(s) => panic!("rho = 1.5 reported steady: {s:?}"),
        }
    }

    #[test]
    fn job_population_is_identical_across_routings() {
        // Same seed, different routing: the same global arrival samples
        // the same job structure (it is keyed by the global index), so
        // both runs measure the same population — the split, not the
        // jobs, is what changes.
        let rr = run(&config(0.4, 4, ShardRouting::RoundRobin), 2);
        let hash = run(&config(0.4, 4, ShardRouting::HashJobSeed), 2);
        let (rr, hash) = (rr.steady().unwrap(), hash.steady().unwrap());
        // Constant jobs here, so responses differ only through queueing;
        // both must be steady with the full measured count.
        assert_eq!(rr.completed, hash.completed);
    }

    #[test]
    fn validate_reports_typed_shard_errors() {
        let mut cfg = config(0.5, 0, ShardRouting::RoundRobin);
        assert_eq!(cfg.validate(), Err(ConfigError::NoShards));
        assert_eq!(
            cfg.validate().unwrap_err().to_string(),
            "need at least one shard"
        );
        cfg.shards = 17;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::TooManyShards {
                shards: 17,
                processors: 16
            })
        );
        assert_eq!(
            cfg.validate().unwrap_err().to_string(),
            "need at least one processor per shard (17 shards > 16 processors)"
        );
        cfg.shards = 16;
        assert_eq!(cfg.validate(), Ok(()));
        // Aggregate-config violations surface through the same path.
        cfg.open.batches = 1;
        assert_eq!(cfg.validate(), Err(ConfigError::TooFewBatches));
    }

    #[test]
    #[should_panic(expected = "need at least one shard")]
    fn zero_shards_fail_fast_in_the_driver() {
        let cfg = config(0.5, 0, ShardRouting::RoundRobin);
        let _ = run(&cfg, 1);
    }
}
