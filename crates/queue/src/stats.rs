//! Steady-state output analysis: batch-means confidence intervals and
//! percentile summaries.
//!
//! A single open-system run produces one long, autocorrelated sequence
//! of per-job response times; the sample variance of that sequence
//! wildly underestimates the variance of its mean. The standard fix
//! (Law & Kelton's method of batch means) groups consecutive
//! observations into `B` batches, treats the batch means as
//! approximately independent, and builds a Student-t interval from
//! their spread.

use serde::{Deserialize, Serialize};

/// A mean with a symmetric confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Point estimate: the grand mean over every batched observation.
    pub mean: f64,
    /// Half-width of the ~95% interval (`mean ± half_width`).
    pub half_width: f64,
    /// Batches the interval was built from.
    pub batches: u32,
    /// Observations per batch (the trailing remainder is dropped).
    pub batch_size: u64,
}

impl ConfidenceInterval {
    /// Relative half-width `half_width / mean` (`f64::INFINITY` for a
    /// zero mean) — the usual run-length quality criterion.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.half_width / self.mean.abs()
        }
    }
}

/// Two-sided 97.5% Student-t quantile (95% interval) for `df` degrees
/// of freedom; the asymptotic normal quantile beyond the table.
fn t_quantile_975(df: u32) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[(df - 1) as usize],
        _ => 1.96,
    }
}

/// Batch-means confidence interval for the mean of an autocorrelated
/// sequence (observations in collection order).
///
/// Splits `samples` into `batches` equal consecutive batches (dropping
/// the trailing remainder), and returns the grand mean of the batched
/// observations with a ~95% Student-t half-width computed from the
/// batch-mean spread. Returns `None` when there are not enough
/// observations for every batch to hold at least one (`len < batches`)
/// or fewer than two batches were requested.
pub fn batch_means(samples: &[f64], batches: u32) -> Option<ConfidenceInterval> {
    if batches < 2 {
        return None;
    }
    let batch_size = (samples.len() / batches as usize) as u64;
    if batch_size == 0 {
        return None;
    }
    let used = batch_size as usize * batches as usize;
    let means: Vec<f64> = samples[..used]
        .chunks_exact(batch_size as usize)
        .map(|b| b.iter().sum::<f64>() / batch_size as f64)
        .collect();
    let grand = means.iter().sum::<f64>() / means.len() as f64;
    let var =
        means.iter().map(|m| (m - grand) * (m - grand)).sum::<f64>() / (means.len() - 1) as f64;
    let half_width = t_quantile_975(batches - 1) * (var / means.len() as f64).sqrt();
    Some(ConfidenceInterval {
        mean: grand,
        half_width,
        batches,
        batch_size,
    })
}

/// Nearest-rank percentile summary of a sample set (order-free input).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PercentileSummary {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest observation.
    pub max: f64,
}

/// Computes the summary by sorting a copy of the samples (nearest-rank
/// definition: the smallest observation with at least `q·n` at or below
/// it). Returns `None` for an empty sample set.
pub fn percentiles(samples: &[f64]) -> Option<PercentileSummary> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("percentiles need orderable samples")
    });
    let rank = |q: f64| {
        let n = sorted.len();
        let k = ((q * n as f64).ceil() as usize).clamp(1, n);
        sorted[k - 1]
    };
    Some(PercentileSummary {
        p50: rank(0.50),
        p95: rank(0.95),
        p99: rank(0.99),
        max: *sorted.last().expect("non-empty"),
    })
}

/// Merges per-shard measured samples — each a list of
/// `(slot, value)` pairs keyed by the global measurement slot — into
/// one dense, slot-ordered sequence of length `slots`.
///
/// Shard order does not matter (each sample carries its own slot), so
/// the merge is deterministic however the shards were scheduled. Empty
/// shards are fine: they simply contribute nothing. Returns `None`
/// when the shards do not tile the slot range exactly — a slot left
/// unfilled, filled twice, or carrying a `NaN` value (the guard that
/// keeps a malformed shard report from silently poisoning the batch
/// means downstream).
pub fn merge_shard_samples(shards: &[Vec<(u64, f64)>], slots: usize) -> Option<Vec<f64>> {
    let mut merged = vec![f64::NAN; slots];
    let mut filled = 0usize;
    for shard in shards {
        for &(slot, value) in shard {
            if value.is_nan() {
                return None;
            }
            let cell = merged.get_mut(slot as usize)?;
            if !cell.is_nan() {
                return None; // duplicate slot
            }
            *cell = value;
            filled += 1;
        }
    }
    (filled == slots).then_some(merged)
}

/// The batch-means recombination behind sharded steady-state merges:
/// merges per-shard `(slot, value)` samples into slot order (the
/// aggregate arrival order) via [`merge_shard_samples`] and builds the
/// batch-means interval over the merged sequence — exactly the interval
/// a single-shard run collecting the same samples would report.
///
/// Returns `None` when the shards do not tile the slot range (see
/// [`merge_shard_samples`]) or the merged sequence cannot support
/// `batches` (see [`batch_means`]).
pub fn merged_batch_means(
    shards: &[Vec<(u64, f64)>],
    slots: usize,
    batches: u32,
) -> Option<ConfidenceInterval> {
    batch_means(&merge_shard_samples(shards, slots)?, batches)
}

/// Weighted mean of `(value, weight)` pairs, guarded so an all-zero
/// weight total (e.g. averaging per-shard statistics when no shard
/// executed a quantum) yields `0.0` instead of `0/0 = NaN`.
pub fn weighted_mean(pairs: &[(f64, f64)]) -> f64 {
    let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
    if total == 0.0 {
        return 0.0;
    }
    pairs.iter().map(|&(v, w)| v * w).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_means_of_constant_sequence_has_zero_width() {
        let ci = batch_means(&[4.0; 100], 10).unwrap();
        assert_eq!(ci.mean, 4.0);
        assert_eq!(ci.half_width, 0.0);
        assert_eq!(ci.batches, 10);
        assert_eq!(ci.batch_size, 10);
        assert_eq!(ci.relative_half_width(), 0.0);
    }

    #[test]
    fn batch_means_drops_the_trailing_remainder() {
        // 23 samples into 4 batches: size 5, the last 3 ignored.
        let samples: Vec<f64> = (0..23).map(|i| i as f64).collect();
        let ci = batch_means(&samples, 4).unwrap();
        assert_eq!(ci.batch_size, 5);
        // Grand mean over the first 20 naturals: 9.5.
        assert!((ci.mean - 9.5).abs() < 1e-12);
        assert!(ci.half_width > 0.0);
    }

    #[test]
    fn batch_means_covers_a_known_mean() {
        // Deterministic pseudo-noise around 10: the interval must cover 10.
        let samples: Vec<f64> = (0..1000)
            .map(|i| 10.0 + ((i * 2654435761u64 % 97) as f64 - 48.0) / 48.0)
            .collect();
        let ci = batch_means(&samples, 20).unwrap();
        assert!((ci.mean - 10.0).abs() < ci.half_width.max(0.2), "{ci:?}");
    }

    #[test]
    fn batch_means_needs_enough_samples_and_batches() {
        assert!(batch_means(&[1.0, 2.0, 3.0], 4).is_none());
        assert!(batch_means(&[1.0, 2.0, 3.0], 1).is_none());
        assert!(batch_means(&[], 2).is_none());
        assert!(batch_means(&[1.0, 2.0], 2).is_some());
    }

    #[test]
    fn wider_intervals_for_fewer_batches() {
        // Same data; 2 batches pay t(1) = 12.7 vs t(9) = 2.26.
        let samples: Vec<f64> = (0..100).map(|i| (i / 10) as f64).collect();
        let wide = batch_means(&samples, 2).unwrap();
        let narrow = batch_means(&samples, 10).unwrap();
        assert!(wide.half_width > narrow.half_width);
    }

    #[test]
    fn percentiles_nearest_rank_on_small_sets() {
        let s = percentiles(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.p95, 3.0);
        assert_eq!(s.p99, 3.0);
        assert_eq!(s.max, 3.0);
        assert!(percentiles(&[]).is_none());
    }

    #[test]
    fn percentiles_on_a_uniform_ramp() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = percentiles(&samples).unwrap();
        assert_eq!(s.p50, 50.0);
        assert_eq!(s.p95, 95.0);
        assert_eq!(s.p99, 99.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn merge_recombines_shard_samples_in_slot_order() {
        // Three shards covering slots 0..6 round-robin, presented out of
        // shard order — the merge keys on slots, not shard layout.
        let shards = vec![
            vec![(2, 20.0), (5, 50.0)],
            vec![(0, 0.0), (3, 30.0)],
            vec![(1, 10.0), (4, 40.0)],
        ];
        let merged = merge_shard_samples(&shards, 6).unwrap();
        assert_eq!(merged, vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0]);
        // The recombined interval equals batch means over the dense
        // sequence a single-shard run would have collected.
        let direct = batch_means(&merged, 3).unwrap();
        assert_eq!(merged_batch_means(&shards, 6, 3), Some(direct));
    }

    #[test]
    fn merge_tolerates_empty_shards() {
        // Shards that measured nothing (no measured arrival was routed
        // to them) contribute nothing and break nothing.
        let shards = vec![vec![], vec![(0, 1.0), (1, 2.0)], vec![]];
        assert_eq!(merge_shard_samples(&shards, 2), Some(vec![1.0, 2.0]));
        // All shards empty over an empty slot range: a valid (empty)
        // merge, which batch means then rejects for want of samples.
        assert_eq!(merge_shard_samples(&[], 0), Some(vec![]));
        assert_eq!(merged_batch_means(&[], 0, 2), None);
    }

    #[test]
    fn merge_handles_single_batch_shards() {
        // Each shard contributes exactly one batch worth of samples;
        // the recombined interval spans shards.
        let shards: Vec<Vec<(u64, f64)>> = (0u64..4)
            .map(|s| (0u64..5).map(|i| (s * 5 + i, (s * 5 + i) as f64)).collect())
            .collect();
        let ci = merged_batch_means(&shards, 20, 4).unwrap();
        assert_eq!(ci.batches, 4);
        assert_eq!(ci.batch_size, 5);
        assert!((ci.mean - 9.5).abs() < 1e-12);
        // A single-batch *request* is still rejected (batch means needs
        // at least two batches to estimate spread).
        assert_eq!(merged_batch_means(&shards, 20, 1), None);
    }

    #[test]
    fn merge_guards_against_malformed_shard_reports() {
        // Missing slot.
        assert_eq!(merge_shard_samples(&[vec![(0, 1.0)]], 2), None);
        // Duplicate slot.
        assert_eq!(
            merge_shard_samples(&[vec![(0, 1.0)], vec![(0, 2.0), (1, 3.0)]], 2),
            None
        );
        // Out-of-range slot.
        assert_eq!(merge_shard_samples(&[vec![(7, 1.0)]], 2), None);
        // NaN sample: rejected outright rather than masquerading as an
        // unfilled slot.
        assert_eq!(
            merge_shard_samples(&[vec![(0, f64::NAN), (1, 1.0)]], 2),
            None
        );
        assert_eq!(merged_batch_means(&[vec![(0, 1.0)]], 2, 2), None);
    }

    #[test]
    fn weighted_mean_guards_zero_total_weight() {
        assert_eq!(weighted_mean(&[]), 0.0);
        assert_eq!(weighted_mean(&[(5.0, 0.0), (9.0, 0.0)]), 0.0);
        assert_eq!(weighted_mean(&[(2.0, 1.0), (6.0, 3.0)]), 5.0);
        assert!(weighted_mean(&[(4.0, 0.0)]).to_bits() == 0.0_f64.to_bits());
    }

    #[test]
    fn t_table_decreases_toward_normal() {
        assert!(t_quantile_975(1) > t_quantile_975(5));
        assert!(t_quantile_975(5) > t_quantile_975(30));
        assert_eq!(t_quantile_975(1000), 1.96);
        assert_eq!(t_quantile_975(0), f64::INFINITY);
    }
}
