//! Saturation detection: abort open-system runs that will never reach
//! steady state.
//!
//! An open system is stable only when the offered load is below the
//! machine's effective capacity; at ρ ≥ 1 the number of jobs in the
//! system grows without bound and a run-until-N-completions driver
//! would simply never terminate. The detector watches the in-system
//! job count at every quantum boundary and trips on a sustained upward
//! trend (or a hard cap), so unstable points are *reported*, not hung
//! on.

use serde::{Deserialize, Serialize};

/// Tuning of the queue-length trend test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaturationConfig {
    /// Samples (executed quanta) before the trend test activates —
    /// keeps the empty-system ramp-up from tripping it.
    pub min_samples: usize,
    /// Quanta between trend evaluations.
    pub check_every: u64,
    /// The late-window mean must exceed `growth_factor` × the early
    /// mean...
    pub growth_factor: f64,
    /// ...plus this absolute margin (jobs), so near-empty systems do
    /// not trip on ratios of small numbers.
    pub margin: f64,
    /// Hard cap on in-system jobs: trips immediately when crossed.
    pub max_in_system: usize,
}

impl Default for SaturationConfig {
    fn default() -> Self {
        Self {
            min_samples: 256,
            check_every: 64,
            growth_factor: 1.5,
            margin: 8.0,
            max_in_system: 100_000,
        }
    }
}

/// Why a run was declared unstable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SaturationReason {
    /// The in-system job count trends upward: the late-window mean
    /// exceeds the early-window mean beyond the configured factor and
    /// margin.
    QueueGrowth {
        /// Mean in-system jobs over the early half of the test window.
        early_mean: f64,
        /// Mean in-system jobs over the late half of the test window.
        late_mean: f64,
    },
    /// The in-system job count crossed the hard cap.
    InSystemCap {
        /// The count at the moment the cap tripped.
        jobs_in_system: u64,
    },
    /// The run hit its quanta budget before collecting every measured
    /// completion (conservatively treated as unstable).
    HorizonExhausted {
        /// The exhausted budget.
        quanta: u64,
    },
}

/// Incremental queue-length trend test over in-system job counts.
#[derive(Debug, Clone)]
pub struct SaturationDetector {
    cfg: SaturationConfig,
    samples: Vec<u64>,
}

impl SaturationDetector {
    /// A fresh detector.
    pub fn new(cfg: SaturationConfig) -> Self {
        Self {
            cfg,
            samples: Vec::new(),
        }
    }

    /// Records the in-system job count at a quantum boundary.
    pub fn record(&mut self, jobs_in_system: usize) {
        self.samples.push(jobs_in_system as u64);
    }

    /// Records the same in-system count at `n` consecutive quantum
    /// boundaries — the population is constant across a frozen-quantum
    /// window, and replicating the sample keeps the history (and with it
    /// every future trend evaluation and the reported mean) identical
    /// to quantum-by-quantum recording.
    pub fn record_n(&mut self, jobs_in_system: usize, n: u64) {
        let target = self.samples.len() + n as usize;
        self.samples.resize(target, jobs_in_system as u64);
    }

    /// Additional samples until the next trend evaluation would fire
    /// (`u64::MAX` if the cadence is zero, i.e. never). Event-driven
    /// drivers end bulk windows at this horizon so a mid-window trend
    /// trip cannot be skipped over: between evaluation points only the
    /// hard cap is live, and a constant population cannot newly cross
    /// it.
    pub fn quanta_until_trend_check(&self) -> u64 {
        let every = self.cfg.check_every;
        if every == 0 {
            return u64::MAX;
        }
        let n = self.samples.len() as u64;
        let min = self.cfg.min_samples.max(8) as u64;
        let mut next = (n / every + 1) * every;
        if next < min {
            next = min.div_ceil(every) * every;
        }
        next - n
    }

    /// Samples recorded so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Peak in-system jobs over every recorded sample (0 before any
    /// sample) — the memory-scale figure the bench harness reports per
    /// open kernel.
    pub fn peak_jobs_in_system(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Mean in-system jobs over every recorded sample.
    pub fn mean_jobs_in_system(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
    }

    /// Evaluates the detector. The hard cap is checked on every call;
    /// the trend test only at the configured cadence once the minimum
    /// sample count is reached.
    ///
    /// The trend test discards the earliest quarter of the history
    /// (transient ramp-up from an empty system), splits the remainder
    /// into an early and a late half, and trips when the late mean
    /// exceeds `growth_factor · early + margin` — a load with ρ ≥ 1
    /// grows linearly and crosses that line quickly, while a stable
    /// queue fluctuates around its steady-state mean and never does.
    pub fn check(&self) -> Option<SaturationReason> {
        if let Some(&last) = self.samples.last() {
            if last as usize >= self.cfg.max_in_system {
                return Some(SaturationReason::InSystemCap {
                    jobs_in_system: last,
                });
            }
        }
        let n = self.samples.len();
        if n < self.cfg.min_samples.max(8) || !(n as u64).is_multiple_of(self.cfg.check_every) {
            return None;
        }
        let window = &self.samples[n / 4..];
        let half = window.len() / 2;
        let mean = |s: &[u64]| s.iter().sum::<u64>() as f64 / s.len() as f64;
        let early = mean(&window[..half]);
        let late = mean(&window[half..]);
        if late > self.cfg.growth_factor * early + self.cfg.margin {
            Some(SaturationReason::QueueGrowth {
                early_mean: early,
                late_mean: late,
            })
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector(min_samples: usize, check_every: u64) -> SaturationDetector {
        SaturationDetector::new(SaturationConfig {
            min_samples,
            check_every,
            ..SaturationConfig::default()
        })
    }

    #[test]
    fn linear_growth_trips_the_trend_test() {
        let mut d = detector(64, 16);
        let mut tripped = None;
        for t in 0..4096u64 {
            d.record(t as usize / 4);
            if let Some(reason) = d.check() {
                tripped = Some((t, reason));
                break;
            }
        }
        let (t, reason) = tripped.expect("linear queue growth must trip");
        assert!(t < 2048, "tripped too late: {t}");
        assert!(
            matches!(reason, SaturationReason::QueueGrowth { early_mean, late_mean }
            if late_mean > early_mean)
        );
    }

    #[test]
    fn stable_fluctuation_never_trips() {
        let mut d = detector(64, 16);
        for t in 0..8192u64 {
            // Bounded oscillation around 10 jobs.
            d.record(10 + (t % 7) as usize);
            assert!(d.check().is_none(), "stable queue flagged at t={t}");
        }
        assert!((d.mean_jobs_in_system() - 13.0).abs() < 0.5);
    }

    #[test]
    fn ramp_to_steady_state_does_not_trip() {
        // Converging systems look like growth early on; the discarded
        // first quarter and the margin must absorb it.
        let mut d = detector(64, 16);
        for t in 0..8192u64 {
            let level = (t / 4).min(30) as usize + (t % 3) as usize;
            d.record(level);
            assert!(d.check().is_none(), "converging queue flagged at t={t}");
        }
    }

    #[test]
    fn hard_cap_trips_immediately_regardless_of_cadence() {
        let mut d = SaturationDetector::new(SaturationConfig {
            max_in_system: 50,
            ..SaturationConfig::default()
        });
        d.record(49);
        assert!(d.check().is_none());
        d.record(50);
        assert!(matches!(
            d.check(),
            Some(SaturationReason::InSystemCap { jobs_in_system: 50 })
        ));
    }

    #[test]
    fn record_n_is_identical_to_repeated_record() {
        let mut bulk = detector(64, 16);
        let mut serial = detector(64, 16);
        for t in 0..40u64 {
            bulk.record(t as usize);
            serial.record(t as usize);
        }
        bulk.record_n(7, 100);
        for _ in 0..100 {
            serial.record(7);
        }
        assert_eq!(bulk.len(), serial.len());
        assert_eq!(
            bulk.mean_jobs_in_system().to_bits(),
            serial.mean_jobs_in_system().to_bits()
        );
        assert_eq!(bulk.check(), serial.check());
    }

    #[test]
    fn trend_check_horizon_lands_on_evaluation_points() {
        let mut d = detector(64, 16);
        // Empty history: first evaluation at max(min_samples, multiple).
        assert_eq!(d.quanta_until_trend_check(), 64);
        d.record_n(3, 64);
        assert_eq!(d.quanta_until_trend_check(), 16);
        d.record(3);
        // 65 samples: next multiple of 16 is 80.
        assert_eq!(d.quanta_until_trend_check(), 15);
        // Walking exactly to the horizon always lands where the trend
        // test actually evaluates.
        for _ in 0..5 {
            let h = d.quanta_until_trend_check();
            d.record_n(3, h);
            assert!((d.len() as u64).is_multiple_of(16) && d.len() >= 64);
        }
    }

    #[test]
    fn trend_test_waits_for_minimum_samples() {
        let mut d = detector(512, 16);
        for t in 0..511u64 {
            d.record(t as usize); // violent growth, but below min_samples
            assert!(d.check().is_none());
        }
    }
}
