//! Hierarchical two-level scheduling: a feedback-driven top-level
//! allocator over the sharded open-system engine.
//!
//! The sharded engine ([`run_open_sharded`](crate::run_open_sharded))
//! fixes each processor group's capacity at `P/G` forever; under
//! skewed arrivals one group drowns while its neighbors idle. This
//! module adds the missing layer of the hierarchical schemes for
//! malleable jobs (Cao–Sun–Qian–Wu's desire-feedback partitioning,
//! with the policy made pluggable in the spirit of the
//! control-theoretic framing): each group still runs its own
//! [`QuantumCore`] + [`SaturationDetector`]
//! over the deterministic router-replay arrival split, but now reports
//! a per-epoch **group desire** — aggregated job requests, in-system
//! population, and served utilization — to a top-level
//! [`GroupAllocator`] that recomputes every group's capacity at fixed
//! reallocation epochs.
//!
//! **Execution model.** The driver advances all groups in lockstep
//! over reallocation epochs of `realloc_epoch` quanta. Within an epoch
//! each group runs its ordinary event-driven loop (admissions, real
//! quanta, frozen-window macro-steps) and pauses at the first quantum
//! boundary at or after the epoch edge — the *epoch invariant*:
//! capacity changes take effect at quantum granularity, never inside a
//! quantum. At the barrier the driver folds every group's desire (in
//! group-index order, on one thread), asks the policy for the next
//! partition, and swaps each resized group's allocator in place.
//!
//! **Determinism.** Everything the sharded engine guarantees carries
//! over: arrivals replay the shared router path, job structures are
//! keyed by global arrival index, and the merge folds in group-index
//! order — the outcome is a pure function of the configuration,
//! bit-independent of the worker pool's size and schedule. Epoch
//! segmentation itself is invisible to a group that is never resized:
//! frozen windows may be split at any quantum boundary
//! ([`advance_frozen`](QuantumCore::advance_frozen) is bit-equivalent
//! to stepping, and the detector's `record_n` is linear in its
//! sample count), and an idle group *pauses* at the epoch edge rather
//! than capping its idle skip (a capped skip plus a later one could
//! land a full quantum later than the single direct skip). That is why
//! [`StaticEqui`](abg_control::StaticEqui) — which never resizes
//! anyone — reproduces [`run_open_sharded`](crate::run_open_sharded)
//! bit-for-bit, pinned fingerprints included, whatever the epoch
//! length: the compatibility anchor the tests pin.
//!
//! `groups = 1` delegates to [`run_open_system`](crate::run_open_system)
//! verbatim (with one group the sum invariant forbids any capacity
//! change), mirroring the sharded engine's `shards = 1` rule.

use crate::driver::{ConfigError, OpenConfig, OpenOutcome};
use crate::events::frozen_window_bound;
use crate::saturation::{SaturationDetector, SaturationReason};
use crate::shard::{
    job_seed, measured_assigned, merge_reports, pool_threads, shard_processors, shard_trip,
    ShardArrivals, ShardReport, ShardRouting, ShardedOpenConfig,
};
use abg_alloc::Allocator;
use abg_control::{GroupAllocator, GroupDesire, RequestCalculator};
use abg_sched::JobExecutor;
use abg_sim::{CompletedJob, NullProbe, QuantumCore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of a hierarchical open-system run: the sharded
/// decomposition plus the top level's reallocation cadence and
/// capacity floor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HierOpenConfig {
    /// The aggregate open-system configuration (total machine size,
    /// aggregate arrival process and measurement window; `max_quanta`
    /// and the saturation tuning apply per group).
    pub open: OpenConfig,
    /// Processor groups `G` under the top-level allocator.
    pub groups: u32,
    /// The arrival-routing policy (shared with the sharded engine).
    pub routing: ShardRouting,
    /// Reallocation epoch in quanta: the top-level allocator runs at
    /// every multiple of `realloc_epoch * quantum_len` steps.
    pub realloc_epoch: u64,
    /// Per-group capacity floor the allocator must always honor (at
    /// least 1, at most `P/G`).
    pub group_floor: u32,
}

impl HierOpenConfig {
    /// Checks internal consistency, reporting the first violation as a
    /// typed [`ConfigError`]: the aggregate config must be valid, the
    /// group count positive, the reallocation epoch positive, and the
    /// per-group floor grantable to every group at once
    /// (`1 <= floor <= P/G` — which also rejects more groups than
    /// processors).
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.open.validate()?;
        if self.groups == 0 {
            return Err(ConfigError::ZeroGroups);
        }
        if self.realloc_epoch == 0 {
            return Err(ConfigError::BadReallocEpoch);
        }
        if self.group_floor == 0 || self.group_floor > self.open.processors / self.groups {
            return Err(ConfigError::BadGroupFloor {
                floor: self.group_floor,
                processors: self.open.processors,
                groups: self.groups,
            });
        }
        Ok(())
    }

    /// Panicking form of [`validate`](HierOpenConfig::validate), used
    /// by the driver to fail fast with the [`ConfigError`] display
    /// message.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] display message on the first
    /// violation.
    pub fn assert_valid(&self) {
        if let Err(err) = self.validate() {
            panic!("{err}");
        }
    }

    /// The per-group decomposition this run starts from: the sharded
    /// configuration with one shard per group. The routing helpers,
    /// arrival replay and initial equi-partition are all defined
    /// against this view.
    pub fn as_sharded(&self) -> ShardedOpenConfig {
        ShardedOpenConfig {
            open: self.open.clone(),
            shards: self.groups,
            routing: self.routing,
        }
    }
}

/// Per-group accounting of one hierarchical run: where the top level
/// left each group's capacity and how the group spent it. The merged
/// [`OpenOutcome`] aggregates across groups; this is the view that
/// shows the reallocation at work (a hot group under skewed routing
/// should end with more processors and every group's served
/// utilization should level out).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupSummary {
    /// Group index.
    pub group: u32,
    /// Capacity the group held when the run ended.
    pub final_processors: u32,
    /// Arrivals routed to (and admitted by) the group.
    pub arrivals: u64,
    /// Served utilization: the group's completed work over its own
    /// capacity integral ∫ capacity dt (which reflects every resize).
    pub utilization: f64,
}

/// Where a group's simulation currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupStatus {
    /// Paused at an epoch edge with work (or arrivals) still pending.
    Running,
    /// Every measured arrival routed to this group has completed.
    Finished,
    /// The group's detector (or quanta budget) declared it unstable.
    Tripped,
}

/// One resumable per-group open-system simulation: the event-driven
/// shard loop of the sharded engine, pausable at any quantum boundary
/// so a top-level allocator can resize the group between epochs.
///
/// `run_shard` runs one of these with an unbounded epoch (`until =
/// u64::MAX`), which disables every pause point — the hierarchical
/// driver and the static sharded engine share this loop, so their
/// equivalence under a never-resizing policy is structural, not
/// coincidental.
pub(crate) struct GroupSim<A: Allocator> {
    /// Current capacity (processors owned by this group).
    processors: u32,
    engine:
        QuantumCore<Box<dyn JobExecutor + Send>, Box<dyn RequestCalculator + Send>, A, NullProbe>,
    detector: SaturationDetector,
    arrivals: ShardArrivals,
    /// Local admission id → global arrival index (admission order).
    globals: Vec<u64>,
    /// Measured arrivals routed here that have not completed yet.
    outstanding: u64,
    pool: Vec<Box<dyn JobExecutor + Send>>,
    done: Vec<CompletedJob>,
    next_global: u64,
    next_time: u64,
    status: GroupStatus,
    samples: Vec<(u64, f64, f64)>,
    arrivals_seen: u64,
    completed_measured: u64,
    completed_work: u64,
    tripped: Option<SaturationReason>,
    /// Integral of capacity over simulated time, folded at each epoch
    /// barrier — the group's contribution to the merged utilization
    /// denominator.
    capacity_steps: u64,
    accounted_now: u64,
    accounted_work: u64,
}

impl<A: Allocator> GroupSim<A> {
    /// A fresh group simulation at its equi-partition capacity. A
    /// group with no measured arrivals routed to it starts (and stays)
    /// finished — it could not influence any merged statistic.
    pub(crate) fn new(cfg: &ShardedOpenConfig, shard: u32, allocator: A) -> Self {
        let open = &cfg.open;
        let processors = shard_processors(open.processors, cfg.shards, shard);
        let assigned = measured_assigned(cfg, shard);
        let mut arrivals = ShardArrivals::new(cfg, shard);
        let engine = QuantumCore::new(allocator, open.quantum_len, NullProbe);
        let detector = SaturationDetector::new(open.saturation);
        let (status, next_global, next_time) = if assigned == 0 {
            (GroupStatus::Finished, 0, 0)
        } else {
            let (global, time) = arrivals.next(cfg);
            (GroupStatus::Running, global, time)
        };
        Self {
            processors,
            engine,
            detector,
            arrivals,
            globals: Vec::new(),
            outstanding: assigned,
            pool: Vec::new(),
            done: Vec::new(),
            next_global,
            next_time,
            status,
            samples: Vec::with_capacity(assigned as usize),
            arrivals_seen: 0,
            completed_measured: 0,
            completed_work: 0,
            tripped: None,
            capacity_steps: 0,
            accounted_now: 0,
            accounted_work: 0,
        }
    }

    /// Whether the group still has measured work pending.
    pub(crate) fn is_running(&self) -> bool {
        self.status == GroupStatus::Running
    }

    /// Resizes the group: the next quantum allocates against the new
    /// machine. Only called at epoch barriers, and only when the
    /// capacity actually changed — an untouched group keeps its
    /// allocator state (DEQ rotation included) bit-intact.
    pub(crate) fn set_capacity(&mut self, processors: u32, allocator: A) {
        self.processors = processors;
        self.engine.set_allocator(allocator);
    }

    /// Advances the simulation to the first quantum boundary at or
    /// after `until` (or to completion / saturation trip, whichever
    /// comes first). `until = u64::MAX` never pauses: the loop then
    /// *is* the sharded engine's single-pass shard loop.
    ///
    /// Pause points are chosen to keep segmentation invisible:
    ///
    /// * between quanta (`now >= until` before a real step);
    /// * inside a frozen window, by bounding the window at the epoch
    ///   edge — bit-equal by the frozen-window splitting invariant;
    /// * while idle, by *returning* when the next arrival lies beyond
    ///   the epoch instead of capping the skip (`skip_idle_until`
    ///   always advances at least one quantum, so skip-then-skip can
    ///   overshoot the single direct skip).
    pub(crate) fn advance_until<E, C>(
        &mut self,
        cfg: &ShardedOpenConfig,
        until: u64,
        make_executor: &E,
        make_calculator: &C,
    ) where
        E: Fn(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send>
            + Sync,
        C: Fn() -> Box<dyn RequestCalculator + Send> + Sync,
    {
        if self.status != GroupStatus::Running {
            return;
        }
        let open = &cfg.open;
        let warmup = open.warmup_jobs;
        let measured = open.measured_jobs;

        loop {
            while self.next_time <= self.engine.now() {
                // Job structures are sampled from the arrival's own
                // derived RNG, so the population is a function of the
                // run seed alone — identical across group counts,
                // routings and reallocation policies.
                let mut job_rng = StdRng::seed_from_u64(job_seed(open.seed, self.next_global));
                let executor = make_executor(&mut job_rng, self.pool.pop());
                let id = self
                    .engine
                    .admit(executor, make_calculator(), self.next_time);
                debug_assert_eq!(id as usize, self.globals.len());
                self.globals.push(self.next_global);
                self.arrivals_seen += 1;
                (self.next_global, self.next_time) = self.arrivals.next(cfg);
            }
            if !self.engine.any_live() {
                if self.next_time > until {
                    return; // Paused idle at the epoch edge.
                }
                self.engine.skip_idle_until(self.next_time);
                continue;
            }
            if self.engine.now() >= until {
                return; // Paused between quanta at the epoch edge.
            }

            self.done.clear();
            self.engine
                .step_quantum_reclaiming(&mut self.done, &mut self.pool);
            self.detector.record(self.engine.jobs_in_system());

            for job in &self.done {
                self.completed_work += job.work;
                let global = self.globals[job.id as usize];
                if global < warmup || global >= warmup + measured {
                    continue;
                }
                let response = job.response_time() as f64;
                // Solo lower bound on response against the group's
                // *current* machine: the job cannot beat its span nor
                // perfect speedup on the processors its group owns at
                // completion time (constant under a static top level).
                let lower = (job.span as f64).max(job.work as f64 / self.processors as f64);
                self.samples
                    .push((global - warmup, response, response / lower.max(1.0)));
                self.completed_measured += 1;
                self.outstanding -= 1;
            }

            if self.outstanding == 0 {
                self.status = GroupStatus::Finished;
                return;
            }
            if let Some(reason) = shard_trip(open, &self.engine, &self.detector) {
                self.tripped = Some(reason);
                self.status = GroupStatus::Tripped;
                return;
            }

            while let Some(len) = self.engine.frozen_quantum_len() {
                let now = self.engine.now();
                if now >= until {
                    break; // The outer loop pauses after admissions.
                }
                // The epoch edge bounds the window like any other
                // event horizon; `u64::MAX` must stay un-bounded so
                // the unsegmented path is literally the original.
                let epoch_bound = if until == u64::MAX {
                    u64::MAX
                } else {
                    (until - now).div_ceil(len)
                };
                let bound = frozen_window_bound(
                    now,
                    len,
                    self.next_time,
                    self.detector.quanta_until_trend_check(),
                    self.engine.quanta(),
                    open.max_quanta,
                )
                .min(epoch_bound);
                let advanced = self.engine.advance_frozen(bound);
                if advanced == 0 {
                    break;
                }
                self.detector
                    .record_n(self.engine.jobs_in_system(), advanced);
                if let Some(reason) = shard_trip(open, &self.engine, &self.detector) {
                    self.tripped = Some(reason);
                    self.status = GroupStatus::Tripped;
                    return;
                }
            }
        }
    }

    /// Folds the epoch that just ended into the capacity integral and
    /// returns the group's desire report: standing request sum and
    /// population at the barrier, and the fraction of the epoch's
    /// capacity spent on completed work. Finished and tripped groups
    /// report zero desire — granting them capacity would waste it.
    pub(crate) fn fold_epoch(&mut self) -> GroupDesire {
        let now = self.engine.now();
        let elapsed = now - self.accounted_now;
        self.capacity_steps = self
            .capacity_steps
            .saturating_add((self.processors as u64).saturating_mul(elapsed));
        let work = self.completed_work - self.accounted_work;
        let utilization = if elapsed == 0 {
            0.0
        } else {
            work as f64 / (self.processors as f64 * elapsed as f64)
        };
        self.accounted_now = now;
        self.accounted_work = self.completed_work;
        if self.is_running() {
            GroupDesire {
                requests: self.engine.live_request_sum(),
                population: self.engine.jobs_in_system() as u64,
                utilization,
            }
        } else {
            GroupDesire {
                requests: 0.0,
                population: 0,
                utilization,
            }
        }
    }

    /// The group's capacity integral (processor-steps) folded so far.
    pub(crate) fn capacity_steps(&self) -> u64 {
        self.capacity_steps
    }

    /// The group's standing in the run's [`GroupSummary`] table.
    /// Meaningful once the run has ended (the capacity integral is
    /// folded up to the final barrier).
    fn summary(&self, group: u32) -> GroupSummary {
        GroupSummary {
            group,
            final_processors: self.processors,
            arrivals: self.arrivals_seen,
            utilization: if self.capacity_steps == 0 {
                0.0
            } else {
                self.completed_work as f64 / self.capacity_steps as f64
            },
        }
    }

    /// Hands the group's accumulated statistics to the merge.
    pub(crate) fn into_report(self) -> ShardReport {
        ShardReport {
            processors: self.processors,
            samples: self.samples,
            arrivals: self.arrivals_seen,
            completed_measured: self.completed_measured,
            completed_work: self.completed_work,
            quanta: self.engine.quanta(),
            horizon: self.engine.now(),
            jobs_in_system: self.engine.jobs_in_system() as u64,
            mean_jobs_in_system: self.detector.mean_jobs_in_system(),
            peak_jobs_in_system: self.detector.peak_jobs_in_system(),
            tripped: self.tripped,
        }
    }
}

/// Advances every group on a scoped-thread pool (static chunk
/// partition — groups are independent, so the schedule can never show
/// through) and returns once all of them have paused at the barrier.
fn advance_groups<A, F>(sims: &mut [GroupSim<A>], threads: usize, advance: F)
where
    A: Allocator + Send,
    F: Fn(&mut GroupSim<A>) + Sync,
{
    let n = sims.len();
    let threads = threads.clamp(1, n.max(1));
    if threads <= 1 {
        for sim in sims.iter_mut() {
            advance(sim);
        }
        return;
    }
    let chunk = n.div_ceil(threads);
    let advance = &advance;
    std::thread::scope(|scope| {
        for group_chunk in sims.chunks_mut(chunk) {
            scope.spawn(move || {
                for sim in group_chunk {
                    advance(sim);
                }
            });
        }
    });
}

/// Runs one hierarchical open-system simulation on the worker pool
/// sized by `ABG_THREADS` (see [`run_open_hierarchical_with_threads`]
/// for an explicit count).
///
/// `make_allocator` builds a group's *within-group* allocator from its
/// current capacity (called again whenever the top level resizes the
/// group); `make_executor` / `make_calculator` are the factories of
/// [`run_open_system`](crate::run_open_system); `group_alloc` is the
/// top-level policy consulted at every reallocation epoch. With
/// `groups = 1` this *is* [`run_open_system`](crate::run_open_system)
/// on `cfg.open` — the sum invariant forbids any capacity change, so
/// the top level is inert by construction.
///
/// # Panics
///
/// Panics on an inconsistent configuration (see
/// [`HierOpenConfig::validate`]) or a policy that violates the
/// partition invariants (wrong length, sum ≠ P, below the floor).
pub fn run_open_hierarchical<A, FA, E, C, G>(
    cfg: &HierOpenConfig,
    make_allocator: FA,
    make_executor: E,
    make_calculator: C,
    group_alloc: G,
) -> OpenOutcome
where
    A: Allocator + Send,
    FA: Fn(u32) -> A + Sync,
    E: Fn(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send> + Sync,
    C: Fn() -> Box<dyn RequestCalculator + Send> + Sync,
    G: GroupAllocator,
{
    run_open_hierarchical_with_threads(
        cfg,
        make_allocator,
        make_executor,
        make_calculator,
        group_alloc,
        pool_threads(),
    )
}

/// [`run_open_hierarchical`] with an explicit worker count. The
/// outcome is identical for every `threads` value by construction:
/// groups only interact at the epoch barrier, where desires are folded
/// in group-index order on the calling thread.
///
/// # Panics
///
/// Panics on an inconsistent configuration (see
/// [`HierOpenConfig::validate`]) or a policy that violates the
/// partition invariants (wrong length, sum ≠ P, below the floor).
pub fn run_open_hierarchical_with_threads<A, FA, E, C, G>(
    cfg: &HierOpenConfig,
    make_allocator: FA,
    make_executor: E,
    make_calculator: C,
    group_alloc: G,
    threads: usize,
) -> OpenOutcome
where
    A: Allocator + Send,
    FA: Fn(u32) -> A + Sync,
    E: Fn(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send> + Sync,
    C: Fn() -> Box<dyn RequestCalculator + Send> + Sync,
    G: GroupAllocator,
{
    run_open_hierarchical_detailed(
        cfg,
        make_allocator,
        make_executor,
        make_calculator,
        group_alloc,
        threads,
    )
    .0
}

/// [`run_open_hierarchical_with_threads`] returning the per-group
/// [`GroupSummary`] table alongside the merged outcome — the view the
/// skew experiments and examples use to show capacity following load.
///
/// # Panics
///
/// Panics on an inconsistent configuration (see
/// [`HierOpenConfig::validate`]) or a policy that violates the
/// partition invariants (wrong length, sum ≠ P, below the floor).
pub fn run_open_hierarchical_detailed<A, FA, E, C, G>(
    cfg: &HierOpenConfig,
    make_allocator: FA,
    make_executor: E,
    make_calculator: C,
    mut group_alloc: G,
    threads: usize,
) -> (OpenOutcome, Vec<GroupSummary>)
where
    A: Allocator + Send,
    FA: Fn(u32) -> A + Sync,
    E: Fn(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send> + Sync,
    C: Fn() -> Box<dyn RequestCalculator + Send> + Sync,
    G: GroupAllocator,
{
    cfg.assert_valid();
    if cfg.groups == 1 {
        // One group owns the whole machine forever: delegate verbatim
        // to the unsharded driver, bit-identical (same RNG stream,
        // same loop) — mirroring the sharded engine's `shards = 1`.
        let outcome = crate::driver::run_open_system(
            &cfg.open,
            make_allocator(cfg.open.processors),
            make_executor,
            make_calculator,
        );
        let (arrivals, utilization) = match &outcome {
            OpenOutcome::Steady(s) => (s.arrivals, s.measured_utilization),
            OpenOutcome::Unstable(u) => (u.arrivals, f64::NAN),
        };
        let summary = GroupSummary {
            group: 0,
            final_processors: cfg.open.processors,
            arrivals,
            utilization,
        };
        return (outcome, vec![summary]);
    }

    let sharded = cfg.as_sharded();
    let processors = cfg.open.processors;
    let mut caps: Vec<u32> = (0..cfg.groups)
        .map(|k| shard_processors(processors, cfg.groups, k))
        .collect();
    let mut sims: Vec<GroupSim<A>> = caps
        .iter()
        .enumerate()
        .map(|(k, &cap)| GroupSim::new(&sharded, k as u32, make_allocator(cap)))
        .collect();

    let epoch_steps = cfg.realloc_epoch.saturating_mul(cfg.open.quantum_len);
    let mut epoch: u64 = 1;
    loop {
        let until = epoch.saturating_mul(epoch_steps);
        advance_groups(&mut sims, threads, |sim| {
            sim.advance_until(&sharded, until, &make_executor, &make_calculator)
        });
        // Desire collection and reallocation happen on this thread, in
        // group-index order: the one serial point of each epoch.
        let desires: Vec<GroupDesire> = sims.iter_mut().map(GroupSim::fold_epoch).collect();
        if !sims.iter().any(GroupSim::is_running) {
            break;
        }
        let next = group_alloc.reallocate(processors, cfg.group_floor, &caps, &desires);
        assert_eq!(
            next.len(),
            cfg.groups as usize,
            "group allocator '{}' returned {} capacities for {} groups",
            group_alloc.name(),
            next.len(),
            cfg.groups
        );
        assert_eq!(
            next.iter().sum::<u32>(),
            processors,
            "group allocator '{}' must partition all {} processors: {next:?}",
            group_alloc.name(),
            processors
        );
        assert!(
            next.iter().all(|&cap| cap >= cfg.group_floor),
            "group allocator '{}' dropped below the floor {}: {next:?}",
            group_alloc.name(),
            cfg.group_floor
        );
        for (k, sim) in sims.iter_mut().enumerate() {
            if next[k] != caps[k] && sim.is_running() {
                sim.set_capacity(next[k], make_allocator(next[k]));
            }
        }
        caps = next;
        epoch += 1;
    }

    let capacity: f64 = sims.iter().map(|s| s.capacity_steps() as f64).sum();
    let summaries: Vec<GroupSummary> = sims
        .iter()
        .enumerate()
        .map(|(k, sim)| sim.summary(k as u32))
        .collect();
    let reports: Vec<ShardReport> = sims.into_iter().map(GroupSim::into_report).collect();
    (merge_reports(&cfg.open, &reports, capacity), summaries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_open_system;
    use crate::saturation::SaturationConfig;
    use crate::shard::{route, run_open_sharded_with_threads};
    use abg_alloc::DynamicEquiPartition;
    use abg_control::{AControl, ConservativeTwoLevel, DesireProportional, StaticEqui};
    use abg_dag::PhasedJob;
    use abg_sched::PipelinedExecutor;
    use abg_workload::{mean_gap_for_utilization, ArrivalProcess};

    fn config(rho: f64, groups: u32, routing: ShardRouting, realloc_epoch: u64) -> HierOpenConfig {
        HierOpenConfig {
            open: OpenConfig {
                processors: 16,
                quantum_len: 10,
                arrivals: ArrivalProcess::Poisson {
                    // Constant width-2, 40-level jobs: T1 = 80.
                    mean_gap: mean_gap_for_utilization(rho, 16, 80.0),
                },
                warmup_jobs: 40,
                measured_jobs: 160,
                batches: 8,
                max_quanta: 2_000_000,
                saturation: SaturationConfig::default(),
                seed: 0x5AAD,
            },
            groups,
            routing,
            realloc_epoch,
            group_floor: 1,
        }
    }

    fn run<G: GroupAllocator>(cfg: &HierOpenConfig, policy: G, threads: usize) -> OpenOutcome {
        run_open_hierarchical_with_threads(
            cfg,
            DynamicEquiPartition::new,
            |_rng, _recycled| Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 40))),
            || Box::new(AControl::new(0.2)),
            policy,
            threads,
        )
    }

    fn run_sharded(cfg: &HierOpenConfig, threads: usize) -> OpenOutcome {
        run_open_sharded_with_threads(
            &cfg.as_sharded(),
            DynamicEquiPartition::new,
            |_rng, _recycled| Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 40))),
            || Box::new(AControl::new(0.2)),
            threads,
        )
    }

    #[test]
    fn static_equi_is_bit_identical_to_the_sharded_engine() {
        // The compatibility anchor, at the module level: a top level
        // that never resizes anyone must leave every group's
        // simulation — and thus the merged outcome — bit-identical to
        // the fixed-partition sharded engine, whatever the epoch
        // length slices the groups' loops into.
        for groups in [2u32, 4, 8] {
            let baseline = run_sharded(&config(0.5, groups, ShardRouting::RoundRobin, 1), 1);
            for realloc_epoch in [1u64, 8, 64, 1000] {
                let cfg = config(0.5, groups, ShardRouting::RoundRobin, realloc_epoch);
                assert_eq!(
                    run(&cfg, StaticEqui, 1),
                    baseline,
                    "groups={groups} epoch={realloc_epoch}"
                );
            }
        }
    }

    #[test]
    fn one_group_delegates_to_the_unsharded_driver() {
        let cfg = config(0.5, 1, ShardRouting::RoundRobin, 16);
        let direct = run_open_system(
            &cfg.open,
            DynamicEquiPartition::new(cfg.open.processors),
            |_rng, _recycled| Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 40))),
            || Box::new(AControl::new(0.2)),
        );
        assert_eq!(run(&cfg, DesireProportional::new(), 1), direct);
    }

    #[test]
    fn outcome_is_independent_of_thread_count_and_schedule() {
        for routing in [ShardRouting::RoundRobin, ShardRouting::Skewed { hot: 4 }] {
            let cfg = config(0.35, 4, routing, 16);
            let baseline = run(&cfg, DesireProportional::new(), 1);
            for threads in 2..=8 {
                assert_eq!(
                    run(&cfg, DesireProportional::new(), threads),
                    baseline,
                    "{routing:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn skewed_routing_concentrates_arrivals_on_group_zero() {
        let cfg = config(0.5, 4, ShardRouting::Skewed { hot: 4 }, 16).as_sharded();
        // Cycle of hot + shards - 1 = 7: four arrivals to group 0,
        // then one each to groups 1..3 — an exact 4:1:1:1 split.
        let groups: Vec<u32> = (0..14).map(|g| route(&cfg, g)).collect();
        assert_eq!(groups, vec![0, 0, 0, 0, 1, 2, 3, 0, 0, 0, 0, 1, 2, 3]);
        // Every measured arrival lands on exactly one group.
        let assigned: u64 = (0..4).map(|k| measured_assigned(&cfg, k)).sum();
        assert_eq!(assigned, cfg.open.measured_jobs);
        let hot = measured_assigned(&cfg, 0);
        assert!(
            hot * 2 > assigned,
            "hot group got {hot} of {assigned} measured arrivals"
        );
    }

    #[test]
    fn desire_feedback_beats_static_partitioning_under_skew() {
        // 4:1 skew at aggregate rho = 0.35: group 0's local load under
        // the fixed equi-partition is 0.35 * 16/7 = 0.8 (queued but
        // stable), while desire-proportional rebalances capacity until
        // every group's local load is back near 0.35. Mean response
        // must improve; both runs must stay steady.
        let cfg = config(0.35, 4, ShardRouting::Skewed { hot: 4 }, 16);
        let stat = run(&cfg, StaticEqui, 2);
        let desire = run(&cfg, DesireProportional::new(), 2);
        let stat = stat.steady().expect("static stays stable at 0.8 local");
        let desire = desire.steady().expect("desire must remain stable");
        assert!(
            desire.response.mean < stat.response.mean,
            "desire {} !< static {}",
            desire.response.mean,
            stat.response.mean
        );
    }

    #[test]
    fn group_summaries_show_capacity_following_load() {
        let cfg = config(0.35, 4, ShardRouting::Skewed { hot: 4 }, 16);
        let (outcome, groups) = run_open_hierarchical_detailed(
            &cfg,
            DynamicEquiPartition::new,
            |_rng, _recycled| Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 40))),
            || Box::new(AControl::new(0.2)),
            DesireProportional::new(),
            1,
        );
        assert!(outcome.is_steady());
        assert_eq!(groups.len(), 4);
        assert_eq!(groups.iter().map(|g| g.final_processors).sum::<u32>(), 16);
        // The hot group sees ~4x the arrivals of any other group, and
        // the feedback loop should have granted it extra capacity.
        assert!(groups[0].arrivals > groups[1].arrivals);
        assert!(
            groups[0].final_processors > 4,
            "hot group ended at {} processors",
            groups[0].final_processors
        );
        for g in &groups {
            assert!(g.utilization.is_finite() && g.utilization >= 0.0);
        }
    }

    #[test]
    fn conservative_policy_stays_steady_and_deterministic() {
        let cfg = config(0.35, 4, ShardRouting::Skewed { hot: 4 }, 16);
        let a = run(&cfg, ConservativeTwoLevel::new(2.0, 0.8), 1);
        let b = run(&cfg, ConservativeTwoLevel::new(2.0, 0.8), 4);
        assert_eq!(a, b);
        assert!(a.is_steady(), "conservative policy tripped: {a:?}");
    }

    #[test]
    fn validate_reports_typed_hier_errors() {
        let mut cfg = config(0.5, 0, ShardRouting::RoundRobin, 16);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroGroups));
        assert_eq!(
            cfg.validate().unwrap_err().to_string(),
            "need at least one processor group"
        );
        cfg.groups = 4;
        cfg.realloc_epoch = 0;
        assert_eq!(cfg.validate(), Err(ConfigError::BadReallocEpoch));
        assert_eq!(
            cfg.validate().unwrap_err().to_string(),
            "need a positive reallocation epoch"
        );
        cfg.realloc_epoch = 16;
        cfg.group_floor = 5;
        assert_eq!(
            cfg.validate(),
            Err(ConfigError::BadGroupFloor {
                floor: 5,
                processors: 16,
                groups: 4
            })
        );
        assert_eq!(
            cfg.validate().unwrap_err().to_string(),
            "per-group floor must be between 1 and P/G (5 with 16 processors over 4 groups)"
        );
        cfg.group_floor = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadGroupFloor { floor: 0, .. })
        ));
        // More groups than processors is a floor violation too.
        cfg.group_floor = 1;
        cfg.groups = 17;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::BadGroupFloor { .. })
        ));
        cfg.groups = 4;
        assert_eq!(cfg.validate(), Ok(()));
        // Aggregate-config violations surface through the same path.
        cfg.open.batches = 1;
        assert_eq!(cfg.validate(), Err(ConfigError::TooFewBatches));
    }

    #[test]
    #[should_panic(expected = "need a positive reallocation epoch")]
    fn zero_epoch_fails_fast_in_the_driver() {
        let cfg = config(0.5, 4, ShardRouting::RoundRobin, 0);
        let _ = run(&cfg, StaticEqui, 1);
    }
}
