//! Pending-event layer for the event-driven open-system driver.
//!
//! The quantum-by-quantum open loop burned a full allocate/step/observe
//! round on every quantum even when provably nothing could change. The
//! event-driven driver instead treats the run as a sequence of
//! *events* — the next arrival, the next saturation-trend evaluation,
//! the quanta-budget edge, and (inside the core) the earliest possible
//! completion or request change — and jumps between them with
//! [`QuantumCore::advance_frozen`](abg_sim::QuantumCore::advance_frozen).
//!
//! This module supplies the two driver-level pieces:
//!
//! * [`ArrivalCalendar`] — the pending-arrival queue fed by
//!   [`ArrivalStream::next_batch`], so trace-driven streams refill in
//!   blocks instead of one stream call per arrival;
//! * [`frozen_window_bound`] — the arithmetic folding the driver-level
//!   event horizons into the largest quantum count the next frozen
//!   window may cover without skipping an observable event.
//!
//! The split keeps the driver loop free of event bookkeeping and makes
//! the bounds unit-testable against the legacy loop's admission and
//! check points.

use abg_workload::{ArrivalProcess, ArrivalStream};
use rand::Rng;
use std::collections::VecDeque;

/// How many arrivals a trace-driven calendar pre-draws per refill.
const TRACE_BATCH: usize = 64;

/// A pending-event queue of upcoming arrival times.
///
/// Wraps an [`ArrivalStream`] and hands out arrival times one at a
/// time, refilling an internal buffer in batches via
/// [`ArrivalStream::next_batch`]. The batch size is chosen per process
/// so the RNG consumption order is *identical* to calling
/// [`ArrivalStream::next_arrival`] once per arrival:
///
/// * **Trace** streams consume no randomness, so the calendar pre-draws
///   `TRACE_BATCH` (64) gaps per refill;
/// * **Poisson** streams draw one `f64` per gap from the same RNG the
///   driver's job generator samples from, interleaved
///   gap/job/gap/job… — batching those draws would reorder the stream
///   and move every pinned `open_fingerprint`, so the calendar keeps a
///   lookahead of exactly one.
#[derive(Debug, Clone)]
pub struct ArrivalCalendar {
    stream: ArrivalStream,
    pending: VecDeque<u64>,
    batch: usize,
    /// Refill scratch reused across batches, so the steady-state loop
    /// allocates nothing per refill.
    refill: Vec<u64>,
}

impl ArrivalCalendar {
    /// Starts a calendar over a fresh stream of `process` from time 0.
    ///
    /// # Panics
    ///
    /// Panics on an invalid process (see [`ArrivalProcess::stream`]).
    pub fn new(process: &ArrivalProcess) -> Self {
        let batch = match process {
            ArrivalProcess::Poisson { .. } => 1,
            ArrivalProcess::Trace { .. } => TRACE_BATCH,
        };
        Self {
            stream: process.stream(),
            pending: VecDeque::new(),
            batch,
            refill: Vec::new(),
        }
    }

    /// Consumes and returns the next arrival time (absolute step).
    ///
    /// Bit-identical to [`ArrivalStream::next_arrival`] on the same
    /// stream and RNG, draw for draw.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u64 {
        if self.pending.is_empty() {
            // `next_batch` appends, so the scratch is cleared first; the
            // buffer itself persists across refills.
            self.refill.clear();
            self.stream.next_batch(self.batch, rng, &mut self.refill);
            self.pending.extend(self.refill.iter().copied());
        }
        self.pending.pop_front().expect("batch refill is non-empty")
    }
}

/// The largest number of quanta the next frozen window may cover
/// without stepping over a driver-level event, given the current
/// boundary `now` and quantum length `len`:
///
/// * **arrival** — the window must close before the quantum boundary at
///   which `next_arrival` would be admitted (the first boundary at or
///   after it), so a frozen quantum may start at `now + j·len` only
///   while that is strictly before the arrival;
/// * **trend check** — `trend_horizon` quanta until the saturation
///   detector's next trend evaluation (between evaluations only the
///   hard population cap is live, and a constant population cannot
///   newly cross it);
/// * **budget** — the window may reach, but never pass, `max_quanta`
///   total executed quanta, so the horizon-exhausted report carries the
///   same numbers the per-quantum loop would have reported.
///
/// The core further bounds the window by completion and
/// request-stability lookahead; this function only folds the horizons
/// the driver owns.
pub fn frozen_window_bound(
    now: u64,
    len: u64,
    next_arrival: u64,
    trend_horizon: u64,
    quanta: u64,
    max_quanta: u64,
) -> u64 {
    let arrival = if next_arrival <= now {
        0
    } else {
        (next_arrival - now).div_ceil(len)
    };
    let budget = max_quanta.saturating_sub(quanta);
    arrival.min(trend_horizon).min(budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn calendar_matches_the_raw_stream_for_both_processes() {
        for process in [
            ArrivalProcess::Poisson { mean_gap: 25.0 },
            ArrivalProcess::Trace {
                gaps: vec![7, 0, 3, 12],
            },
        ] {
            let mut raw_rng = StdRng::seed_from_u64(0xCA1);
            let mut cal_rng = StdRng::seed_from_u64(0xCA1);
            let mut raw = process.stream();
            let mut cal = ArrivalCalendar::new(&process);
            for i in 0..200 {
                assert_eq!(
                    cal.next_arrival(&mut cal_rng),
                    raw.next_arrival(&mut raw_rng),
                    "arrival {i} diverged for {process:?}"
                );
            }
        }
    }

    #[test]
    fn poisson_calendar_keeps_lookahead_one() {
        // Interleave arrival draws with unrelated draws from the same
        // RNG — the pattern of the fingerprint-pinned sweeps. The
        // calendar must consume exactly one draw per arrival, in order.
        let process = ArrivalProcess::Poisson { mean_gap: 25.0 };
        let mut raw_rng = StdRng::seed_from_u64(0xCA2);
        let mut cal_rng = StdRng::seed_from_u64(0xCA2);
        let mut raw = process.stream();
        let mut cal = ArrivalCalendar::new(&process);
        for _ in 0..100 {
            assert_eq!(
                cal.next_arrival(&mut cal_rng),
                raw.next_arrival(&mut raw_rng)
            );
            let a: u64 = cal_rng.random();
            let b: u64 = raw_rng.random();
            assert_eq!(a, b, "RNG interleave broken");
        }
    }

    #[test]
    fn window_bound_respects_each_horizon() {
        // Arrival strictly inside the window: ceil((95-40)/10) = 6
        // quanta may start before the boundary at 100 admits it.
        assert_eq!(frozen_window_bound(40, 10, 95, 1000, 0, 1000), 6);
        // Arrival exactly on a boundary: that quantum is not frozen.
        assert_eq!(frozen_window_bound(40, 10, 50, 1000, 0, 1000), 1);
        // Arrival due now (or overdue): no window at all.
        assert_eq!(frozen_window_bound(40, 10, 40, 1000, 0, 1000), 0);
        assert_eq!(frozen_window_bound(40, 10, 12, 1000, 0, 1000), 0);
        // Trend evaluation closer than the arrival.
        assert_eq!(frozen_window_bound(40, 10, 9999, 3, 0, 1000), 3);
        // Budget edge: may reach max_quanta but not pass it.
        assert_eq!(frozen_window_bound(40, 10, 9999, 1000, 998, 1000), 2);
        assert_eq!(frozen_window_bound(40, 10, 9999, 1000, 1000, 1000), 0);
    }
}
