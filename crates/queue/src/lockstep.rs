//! Lockstep differential tests: the event-driven driver must be
//! **bit-identical** to the reference quantum-by-quantum loop.
//!
//! Frozen-quantum macro-stepping is only a performance optimisation if
//! nothing observable moves: steady statistics, saturation reports,
//! completion order, and per-quantum traces all have to come out
//! bit-for-bit the same whether the driver stepped every quantum or
//! jumped between events. The property tests here run both drivers
//! over randomized loads (ρ ∈ {0.2, 0.7, 0.95}), arrival processes
//! (Poisson and trace), allocators (DEQ and proportional), and
//! controllers (ABG and A-Greedy), with a heterogeneous job population
//! sampled from the shared driver RNG — the exact interleaving the
//! pinned sweep fingerprints depend on.

use crate::reference::ReferenceOpenDriver;
use crate::{run_open_system_probed, OpenConfig, OpenOutcome, SaturationConfig};
use abg_alloc::{Allocator, DynamicEquiPartition, Proportional};
use abg_control::{AControl, AGreedy, RequestCalculator};
use abg_sched::{JobExecutor, PipelinedExecutor};
use abg_sim::TraceProbe;
use abg_workload::{mean_gap_for_utilization, mixed_factor_job, ArrivalProcess};
use proptest::prelude::*;
use rand::rngs::StdRng;

const PROCESSORS: u32 = 8;
const QUANTUM_LEN: u64 = 10;
/// Rough `E[T₁]` of the `mixed_factor_job(8, 10, 2, _)` population —
/// only used to translate ρ into a mean gap; bit-identity holds for
/// any load, so precision is irrelevant here.
const APPROX_T1: f64 = 200.0;
/// Rough `E[T₁]` of the short `mixed_factor_job(4, 10, 1, _)`
/// population the high-churn cases arrive at.
const APPROX_SHORT_T1: f64 = 50.0;

fn config_with(rho: f64, poisson: bool, seed: u64, approx_t1: f64) -> OpenConfig {
    let gap = mean_gap_for_utilization(rho, PROCESSORS, approx_t1);
    let arrivals = if poisson {
        ArrivalProcess::Poisson { mean_gap: gap }
    } else {
        // A repeating deterministic pattern with the same mean gap,
        // including back-to-back arrivals (gap 0) and long lulls that
        // exercise the idle fast-forward.
        let g = gap.max(2.0) as u64;
        ArrivalProcess::Trace {
            gaps: vec![g, 0, 2 * g, g / 2, 3 * g],
        }
    };
    OpenConfig {
        processors: PROCESSORS,
        quantum_len: QUANTUM_LEN,
        arrivals,
        warmup_jobs: 10,
        measured_jobs: 40,
        batches: 4,
        // Small enough that overloaded cases exhaust the budget quickly;
        // the HorizonExhausted report must then match bit-for-bit too.
        max_quanta: 20_000,
        saturation: SaturationConfig::default(),
        seed,
    }
}

fn config(rho: f64, poisson: bool, seed: u64) -> OpenConfig {
    config_with(rho, poisson, seed, APPROX_T1)
}

/// Heterogeneous population sampled from the driver's RNG — every
/// arrival consumes structure draws interleaved with the Poisson gap
/// draws, pinning the calendar's lookahead-of-one RNG discipline.
fn make_executor(
    rng: &mut StdRng,
    _recycled: Option<Box<dyn JobExecutor + Send>>,
) -> Box<dyn JobExecutor + Send> {
    Box::new(PipelinedExecutor::new(mixed_factor_job(
        8,
        QUANTUM_LEN,
        2,
        rng,
    )))
}

/// Short-job population for the high-churn cases: most jobs span only
/// a handful of quanta, so completions (and with them the slab core's
/// reclamation path) land in nearly every quantum.
fn make_short_executor(
    rng: &mut StdRng,
    _recycled: Option<Box<dyn JobExecutor + Send>>,
) -> Box<dyn JobExecutor + Send> {
    Box::new(PipelinedExecutor::new(mixed_factor_job(
        4,
        QUANTUM_LEN,
        1,
        rng,
    )))
}

/// The job-population factory a lockstep case arrives jobs from.
type ExecFactory =
    fn(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send>;

fn make_controller(abg: bool) -> Box<dyn RequestCalculator + Send> {
    if abg {
        Box::new(AControl::new(0.2))
    } else {
        Box::new(AGreedy::new(2.0, 0.8))
    }
}

fn assert_outcome_bits_eq(reference: &OpenOutcome, event: &OpenOutcome) {
    match (reference, event) {
        (OpenOutcome::Steady(r), OpenOutcome::Steady(e)) => {
            assert_eq!(r.response.mean.to_bits(), e.response.mean.to_bits());
            assert_eq!(
                r.response.half_width.to_bits(),
                e.response.half_width.to_bits()
            );
            assert_eq!(r.response.batches, e.response.batches);
            assert_eq!(r.response.batch_size, e.response.batch_size);
            assert_eq!(r.slowdown.p50.to_bits(), e.slowdown.p50.to_bits());
            assert_eq!(r.slowdown.p95.to_bits(), e.slowdown.p95.to_bits());
            assert_eq!(r.slowdown.p99.to_bits(), e.slowdown.p99.to_bits());
            assert_eq!(r.slowdown.max.to_bits(), e.slowdown.max.to_bits());
            assert_eq!(
                (r.completed, r.arrivals, r.quanta, r.horizon),
                (e.completed, e.arrivals, e.quanta, e.horizon)
            );
            assert_eq!(
                r.mean_jobs_in_system.to_bits(),
                e.mean_jobs_in_system.to_bits()
            );
            assert_eq!(r.peak_jobs_in_system, e.peak_jobs_in_system);
            assert_eq!(
                r.measured_utilization.to_bits(),
                e.measured_utilization.to_bits()
            );
        }
        (OpenOutcome::Unstable(r), OpenOutcome::Unstable(e)) => {
            assert_eq!(r, e, "unstable reports diverged");
        }
        (r, e) => panic!("outcome kinds diverged:\n  reference: {r:?}\n  event:     {e:?}"),
    }
}

fn run_case<A: Allocator, F: Fn() -> A>(alloc: F, cfg: &OpenConfig, exec: ExecFactory, abg: bool) {
    let cfg = cfg.clone();

    // Uninstrumented fast path: NullProbe declines the replay, so
    // frozen windows cost O(live) — and the outcome must still match.
    let reference = ReferenceOpenDriver::run(&cfg, alloc(), exec, || make_controller(abg));
    let event = crate::run_open_system(&cfg, alloc(), exec, || make_controller(abg));
    assert_outcome_bits_eq(&reference, &event);

    // Probed path: the replay must reproduce the reference hook
    // sequence exactly — completion order and every per-quantum record.
    let (ref_out, ref_probe) = ReferenceOpenDriver::run_probed(
        &cfg,
        alloc(),
        exec,
        || make_controller(abg),
        TraceProbe::new().retaining(),
    );
    let (ev_out, ev_probe) = run_open_system_probed(
        &cfg,
        alloc(),
        exec,
        || make_controller(abg),
        TraceProbe::new().retaining(),
    );
    assert_outcome_bits_eq(&ref_out, &ev_out);
    let ref_traces = ref_probe.completed_traces();
    let ev_traces = ev_probe.completed_traces();
    assert_eq!(
        ref_traces.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        ev_traces.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
        "completion order diverged"
    );
    for ((id, r), (_, e)) in ref_traces.iter().zip(ev_traces.iter()) {
        assert_eq!(r, e, "trace of job {id} diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn event_driver_matches_reference_bit_for_bit(
        rho in prop_oneof![Just(0.2), Just(0.7), Just(0.95)],
        poisson in (0u8..2).prop_map(|b| b == 1),
        deq in (0u8..2).prop_map(|b| b == 1),
        abg in (0u8..2).prop_map(|b| b == 1),
        seed in 0u64..u64::MAX,
    ) {
        let cfg = config(rho, poisson, seed);
        if deq {
            run_case(|| DynamicEquiPartition::new(PROCESSORS), &cfg, make_executor, abg);
        } else {
            run_case(|| Proportional::new(PROCESSORS), &cfg, make_executor, abg);
        }
    }

    /// High-churn regime: near-saturation load over short jobs, so the
    /// slab core admits and reclaims slots in nearly every quantum —
    /// the storage rewrite's stress case. Saturated seeds compare their
    /// `Unstable` reports bit-for-bit instead.
    #[test]
    fn high_churn_slab_core_matches_reference_bit_for_bit(
        rho in prop_oneof![Just(0.9), Just(0.97)],
        poisson in (0u8..2).prop_map(|b| b == 1),
        deq in (0u8..2).prop_map(|b| b == 1),
        abg in (0u8..2).prop_map(|b| b == 1),
        seed in 0u64..u64::MAX,
    ) {
        let cfg = config_with(rho, poisson, seed, APPROX_SHORT_T1);
        if deq {
            run_case(|| DynamicEquiPartition::new(PROCESSORS), &cfg, make_short_executor, abg);
        } else {
            run_case(|| Proportional::new(PROCESSORS), &cfg, make_short_executor, abg);
        }
    }
}
