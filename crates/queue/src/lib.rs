//! Open-system queueing subsystem for the ABG reproduction.
//!
//! The paper's experiments are *closed*: a fixed job set is released,
//! the machine runs to drain, and makespan/waste are compared. Real
//! schedulers also face the *open* regime — jobs arrive indefinitely
//! from a stationary process and the question becomes whether the
//! system is stable at a given offered load ρ and, when it is, what
//! mean response time and slowdown jobs see in steady state.
//!
//! This crate supplies that regime on top of the shared
//! [`abg_sim::QuantumEngine`] stepping core:
//!
//! * [`driver`] — [`run_open_system`]: sustained-arrival simulation
//!   whose memory footprint tracks the in-system population, not the
//!   total number of arrivals. The driver is *event-driven*: between
//!   arrivals, completions, request changes, and saturation checks it
//!   macro-steps the core across frozen quanta in bulk
//!   ([`abg_sim::QuantumCore::advance_frozen`]) instead of burning an
//!   allocate/step/observe round per quantum, with bit-identical
//!   observables;
//! * [`events`] — the pending-event layer behind the driver: the
//!   batched [`ArrivalCalendar`] and the frozen-window bound
//!   arithmetic;
//! * [`stats`] — [`batch_means`] confidence intervals and nearest-rank
//!   [`percentiles`] for steady-state output analysis;
//! * [`saturation`] — the [`SaturationDetector`] queue-length trend
//!   test that aborts never-steady runs (ρ ≥ 1) instead of hanging;
//! * [`shard`] — [`run_open_sharded`]: the machine partitioned into
//!   processor groups, one independent per-shard core per group on a
//!   worker pool (honoring `ABG_THREADS`), with deterministic arrival
//!   routing and a stable-order merge so the outcome never depends on
//!   thread count or schedule; `shards = 1` is [`run_open_system`]
//!   bit-for-bit;
//! * [`hier`] — [`run_open_hierarchical`]: the two-level extension of
//!   the sharded engine, where a feedback-driven
//!   [`abg_control::GroupAllocator`] repartitions the machine among
//!   the groups at fixed reallocation epochs from per-group desire
//!   reports; the never-resizing [`abg_control::StaticEqui`] policy
//!   reproduces [`run_open_sharded`] bit-for-bit;
//! * `reference` (tests / `test-support` feature only) — the legacy
//!   quantum-by-quantum loop, kept as the differential-testing ground
//!   truth for the event-driven driver.
//!
//! Offered load is set through
//! [`abg_workload::mean_gap_for_utilization`]: ρ = E\[T₁\] / (gap · P),
//! so solving for the Poisson mean gap pins the sweep points.
//!
//! ```
//! use abg_alloc::DynamicEquiPartition;
//! use abg_control::AControl;
//! use abg_dag::PhasedJob;
//! use abg_queue::{run_open_system, OpenConfig, SaturationConfig};
//! use abg_sched::PipelinedExecutor;
//! use abg_workload::{mean_gap_for_utilization, ArrivalProcess};
//!
//! let cfg = OpenConfig {
//!     processors: 8,
//!     quantum_len: 10,
//!     arrivals: ArrivalProcess::Poisson {
//!         // T1 = 2 * 30 = 60 steps per job, offered at rho = 0.4.
//!         mean_gap: mean_gap_for_utilization(0.4, 8, 60.0),
//!     },
//!     warmup_jobs: 20,
//!     measured_jobs: 60,
//!     batches: 6,
//!     max_quanta: 1_000_000,
//!     saturation: SaturationConfig::default(),
//!     seed: 42,
//! };
//! let outcome = run_open_system(
//!     &cfg,
//!     DynamicEquiPartition::new(cfg.processors),
//!     |_rng, _recycled| Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 30))),
//!     || Box::new(AControl::new(0.2)),
//! );
//! let stats = outcome.steady().expect("light load is stable");
//! assert!(stats.response.mean.is_finite());
//! assert!(stats.slowdown.p50 >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod events;
pub mod hier;
#[cfg(test)]
mod lockstep;
#[cfg(any(test, feature = "test-support"))]
pub mod reference;
pub mod saturation;
pub mod shard;
pub mod stats;

pub use driver::{
    run_open_system, run_open_system_probed, ConfigError, OpenConfig, OpenOutcome, SteadyStats,
    UnstableReport,
};
pub use events::ArrivalCalendar;
pub use hier::{
    run_open_hierarchical, run_open_hierarchical_detailed, run_open_hierarchical_with_threads,
    GroupSummary, HierOpenConfig,
};
#[cfg(any(test, feature = "test-support"))]
pub use reference::ReferenceOpenDriver;
pub use saturation::{SaturationConfig, SaturationDetector, SaturationReason};
pub use shard::{run_open_sharded, run_open_sharded_with_threads, ShardRouting, ShardedOpenConfig};
pub use stats::{
    batch_means, merge_shard_samples, merged_batch_means, percentiles, weighted_mean,
    ConfidenceInterval, PercentileSummary,
};
