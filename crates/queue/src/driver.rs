//! The open-system simulation driver: sustained arrivals through the
//! shared quantum engine.
//!
//! Jobs arrive indefinitely from a stationary [`ArrivalProcess`]; each
//! arrival is admitted into the generic [`QuantumCore`] (the same
//! stepping core behind every closed driver in `abg-sim`, here with a
//! caller-chosen [`Probe`]) and drained when it completes. The driver
//! never materializes the job population: memory is proportional to the
//! number of jobs *in the system*, so it can push millions of jobs
//! through a run if the statistics call for it.
//!
//! Measurement protocol (see `EXPERIMENTS.md` for the methodology):
//!
//! 1. the first `warmup_jobs` arrivals are warmup — they run normally
//!    but their responses are discarded (initial-transient truncation);
//! 2. the next `measured_jobs` arrivals are the measurement population:
//!    the run continues (arrivals never stop) until every one of them
//!    has completed;
//! 3. mean response time gets a batch-means confidence interval and
//!    slowdowns (response over the job's solo lower bound
//!    `max(T∞, T1/P)`) get nearest-rank percentiles;
//! 4. a [`SaturationDetector`] watches the in-system job count and
//!    aborts runs that will never reach steady state (ρ ≥ 1), reporting
//!    them as [`OpenOutcome::Unstable`] instead of hanging.

use crate::events::{frozen_window_bound, ArrivalCalendar};
use crate::saturation::{SaturationConfig, SaturationDetector, SaturationReason};
use crate::stats::{batch_means, percentiles, ConfidenceInterval, PercentileSummary};
use abg_alloc::Allocator;
use abg_control::RequestCalculator;
use abg_sched::JobExecutor;
use abg_sim::{CompletedJob, NullProbe, Probe, QuantumCore};
use abg_workload::ArrivalProcess;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of one open-system run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenConfig {
    /// Machine size `P`.
    pub processors: u32,
    /// Quantum length `L` in steps.
    pub quantum_len: u64,
    /// The arrival process (absolute times are drawn from its stream).
    pub arrivals: ArrivalProcess,
    /// Arrivals discarded as warmup before measurement starts.
    pub warmup_jobs: u64,
    /// Arrivals measured after warmup; the run ends when all of them
    /// completed (arrivals continue throughout).
    pub measured_jobs: u64,
    /// Batches for the response-time confidence interval.
    pub batches: u32,
    /// Hard quanta budget; exhausting it marks the run unstable.
    pub max_quanta: u64,
    /// Saturation-detector tuning.
    pub saturation: SaturationConfig,
    /// Seed driving the arrival stream and the job generator.
    pub seed: u64,
}

/// Why an [`OpenConfig`] is internally inconsistent.
///
/// Returned by [`OpenConfig::validate`] so front ends (the CLI `open`
/// subcommand) can report the problem instead of aborting the process;
/// the drivers still fail fast via [`OpenConfig::assert_valid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `processors == 0`: the machine has nothing to allocate.
    NoProcessors,
    /// `measured_jobs == 0`: the run could never end.
    NothingToMeasure,
    /// `batches < 2`: batch means needs at least two batches.
    TooFewBatches,
    /// Fewer measured jobs than batches — some batch would be empty.
    TooFewObservations {
        /// The configured measurement population.
        measured_jobs: u64,
        /// The configured batch count.
        batches: u32,
    },
    /// `max_quanta == 0`: no quanta budget to run under.
    NoQuantaBudget,
    /// `shards == 0` in a sharded configuration: the engine needs at
    /// least one processor group.
    NoShards,
    /// More shards than processors — some shard would get an empty
    /// machine.
    TooManyShards {
        /// The configured shard count.
        shards: u32,
        /// The configured machine size.
        processors: u32,
    },
    /// `groups == 0` in a hierarchical configuration: the top-level
    /// allocator needs at least one processor group.
    ZeroGroups,
    /// `realloc_epoch == 0`: the desire feedback loop would never run.
    BadReallocEpoch,
    /// The per-group capacity floor is zero or cannot be granted to
    /// every group at once (`floor > P / G`) — the top-level allocator
    /// could not honor its floor invariant.
    BadGroupFloor {
        /// The configured per-group floor.
        floor: u32,
        /// The configured machine size.
        processors: u32,
        /// The configured group count.
        groups: u32,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NoProcessors => write!(f, "machine must have processors"),
            ConfigError::NothingToMeasure => write!(f, "nothing to measure"),
            ConfigError::TooFewBatches => write!(f, "batch means needs at least two batches"),
            ConfigError::TooFewObservations {
                measured_jobs,
                batches,
            } => write!(
                f,
                "need at least one observation per batch ({measured_jobs} jobs < {batches} batches)"
            ),
            ConfigError::NoQuantaBudget => write!(f, "need a positive quanta budget"),
            ConfigError::NoShards => write!(f, "need at least one shard"),
            ConfigError::TooManyShards { shards, processors } => write!(
                f,
                "need at least one processor per shard ({shards} shards > {processors} processors)"
            ),
            ConfigError::ZeroGroups => write!(f, "need at least one processor group"),
            ConfigError::BadReallocEpoch => {
                write!(f, "need a positive reallocation epoch")
            }
            ConfigError::BadGroupFloor {
                floor,
                processors,
                groups,
            } => write!(
                f,
                "per-group floor must be between 1 and P/G \
                 ({floor} with {processors} processors over {groups} groups)"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl OpenConfig {
    /// Checks internal consistency (the engine checks `quantum_len`),
    /// reporting the first violation as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.processors == 0 {
            return Err(ConfigError::NoProcessors);
        }
        if self.measured_jobs == 0 {
            return Err(ConfigError::NothingToMeasure);
        }
        if self.batches < 2 {
            return Err(ConfigError::TooFewBatches);
        }
        if self.measured_jobs < self.batches as u64 {
            return Err(ConfigError::TooFewObservations {
                measured_jobs: self.measured_jobs,
                batches: self.batches,
            });
        }
        if self.max_quanta == 0 {
            return Err(ConfigError::NoQuantaBudget);
        }
        Ok(())
    }

    /// Panicking form of [`validate`](OpenConfig::validate), used by the
    /// drivers (whose signatures predate the typed error) to fail fast
    /// with the same messages the old asserts produced.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] display message on the first
    /// violation.
    pub fn assert_valid(&self) {
        if let Err(err) = self.validate() {
            panic!("{err}");
        }
    }
}

/// Completed work over machine capacity `P · horizon`, guarded so a run
/// aborted before executing a single quantum (`horizon == 0`) reports a
/// utilization of zero instead of `0/0 = NaN`.
pub(crate) fn measured_utilization(completed_work: u64, processors: u32, horizon: u64) -> f64 {
    if horizon == 0 {
        return 0.0;
    }
    completed_work as f64 / (processors as f64 * horizon as f64)
}

/// Steady-state measurements of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyStats {
    /// Mean response time (steps) with its batch-means interval.
    pub response: ConfidenceInterval,
    /// Slowdown percentiles (response over `max(T∞, T1/P)`).
    pub slowdown: PercentileSummary,
    /// Measured completions (equals the configured `measured_jobs`).
    pub completed: u64,
    /// Total arrivals admitted over the run (warmup + measured + tail).
    pub arrivals: u64,
    /// Quanta executed.
    pub quanta: u64,
    /// Final simulation step (the horizon the run covered).
    pub horizon: u64,
    /// Time-average in-system job count over executed quanta.
    pub mean_jobs_in_system: f64,
    /// Peak in-system job count over executed quanta — the memory
    /// high-water mark of the run (the live-set storage scales with this
    /// figure, not with total arrivals). Sharded and hierarchical runs
    /// report the sum of the per-group peaks: an upper bound on the
    /// aggregate footprint (the groups need not peak simultaneously).
    pub peak_jobs_in_system: u64,
    /// Completed work over machine capacity `P · horizon` — the
    /// utilization the machine actually served (sanity check against
    /// the offered ρ).
    pub measured_utilization: f64,
}

/// Diagnostics of a run aborted as unstable.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnstableReport {
    /// What tripped.
    pub reason: SaturationReason,
    /// Quanta executed before aborting.
    pub quanta: u64,
    /// Simulation step at abort.
    pub horizon: u64,
    /// Jobs still in the system at abort.
    pub jobs_in_system: u64,
    /// Measured completions collected before aborting.
    pub completed: u64,
    /// Arrivals admitted before aborting.
    pub arrivals: u64,
}

/// The outcome of an open-system run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OpenOutcome {
    /// The run reached its measurement target; steady-state statistics.
    Steady(SteadyStats),
    /// The run was aborted by saturation detection (or budget
    /// exhaustion) — the configuration is reported unstable.
    Unstable(UnstableReport),
}

impl OpenOutcome {
    /// Whether the run completed its measurement.
    pub fn is_steady(&self) -> bool {
        matches!(self, OpenOutcome::Steady(_))
    }

    /// The steady statistics, if any.
    pub fn steady(&self) -> Option<&SteadyStats> {
        match self {
            OpenOutcome::Steady(s) => Some(s),
            OpenOutcome::Unstable(_) => None,
        }
    }
}

/// Runs one open-system simulation.
///
/// `make_executor` builds the task-scheduler side of each arriving job
/// (it receives the driver's RNG, so job populations are sampled
/// deterministically from `cfg.seed`); `make_calculator` builds its
/// request calculator. The allocator is shared by every job in the
/// system — [`abg_alloc::DynamicEquiPartition`] reproduces the paper's
/// two-level setup.
///
/// The factory's second argument is an executor **recycled** from an
/// earlier completed job, if one is pooled: homogeneous workloads can
/// [`try_reset`](JobExecutor::try_reset) and return it, making the
/// steady-state loop allocation-free per arrival; heterogeneous
/// workloads simply drop it and build afresh. Either choice must yield
/// an executor observationally equal to a newly constructed one — the
/// recycled path is a pure allocation-lifetime optimisation and the
/// simulated outcome is identical.
///
/// # Panics
///
/// Panics on an inconsistent configuration (see [`OpenConfig`]).
pub fn run_open_system<A, E, C>(
    cfg: &OpenConfig,
    allocator: A,
    make_executor: E,
    make_calculator: C,
) -> OpenOutcome
where
    A: Allocator,
    E: FnMut(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send>,
    C: FnMut() -> Box<dyn RequestCalculator + Send>,
{
    run_open_system_probed(cfg, allocator, make_executor, make_calculator, NullProbe).0
}

/// [`run_open_system`] with a [`Probe`] threaded through the quantum
/// core — the observation layer the closed drivers have always had, now
/// available under sustained arrivals. A
/// [`TraceProbe`](abg_sim::TraceProbe) in retaining mode captures
/// per-job quantum traces (availability included on request), enabling
/// trim and deprivation analysis of open-system runs; a custom probe
/// can aggregate whatever it likes online. Returns the outcome together
/// with the probe.
///
/// With [`NullProbe`] this *is* `run_open_system`: the probe
/// monomorphizes to nothing and the loop is the uninstrumented one the
/// pinned open-sweep fingerprint covers.
///
/// # Panics
///
/// Panics on an inconsistent configuration (see [`OpenConfig`]).
pub fn run_open_system_probed<A, E, C, P>(
    cfg: &OpenConfig,
    allocator: A,
    mut make_executor: E,
    mut make_calculator: C,
    probe: P,
) -> (OpenOutcome, P)
where
    A: Allocator,
    E: FnMut(&mut StdRng, Option<Box<dyn JobExecutor + Send>>) -> Box<dyn JobExecutor + Send>,
    C: FnMut() -> Box<dyn RequestCalculator + Send>,
    P: Probe,
{
    cfg.assert_valid();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut calendar = ArrivalCalendar::new(&cfg.arrivals);
    let mut engine = QuantumCore::new(allocator, cfg.quantum_len, probe);
    let mut detector = SaturationDetector::new(cfg.saturation);

    let warmup = cfg.warmup_jobs;
    let measured = cfg.measured_jobs;
    // Measured samples keyed by arrival id (NaN = not yet completed);
    // batch means runs over arrival order, the natural time order of
    // the process.
    let mut responses = vec![f64::NAN; measured as usize];
    let mut slowdowns = vec![f64::NAN; measured as usize];
    let mut outstanding = measured;

    let mut arrivals = 0u64;
    let mut next_arrival = calendar.next_arrival(&mut rng);
    let mut completed_work = 0u64;
    let mut done: Vec<CompletedJob> = Vec::new();
    // Executors handed back by the engine when their jobs drained,
    // offered to the factory one per admission (LIFO — the hottest
    // buffers first). Bounded by the peak in-system job count.
    let mut pool: Vec<Box<dyn JobExecutor + Send>> = Vec::new();

    let outcome = 'run: loop {
        // Admit everything due at (or before) the current boundary; the
        // admission id is the arrival index.
        while next_arrival <= engine.now() {
            let executor = make_executor(&mut rng, pool.pop());
            engine.admit(executor, make_calculator(), next_arrival);
            arrivals += 1;
            next_arrival = calendar.next_arrival(&mut rng);
        }
        if !engine.any_live() {
            // Empty system: fast-forward to the boundary of the next
            // arrival instead of stepping idle quanta.
            engine.skip_idle_until(next_arrival);
            continue;
        }

        done.clear();
        engine.step_quantum_reclaiming(&mut done, &mut pool);
        detector.record(engine.jobs_in_system());

        for job in &done {
            completed_work += job.work;
            if job.id < warmup || job.id >= warmup + measured {
                continue;
            }
            let slot = (job.id - warmup) as usize;
            let response = job.response_time() as f64;
            // Solo lower bound on response: the job cannot beat its
            // span nor perfect speedup on the whole machine.
            let lower = (job.span as f64).max(job.work as f64 / cfg.processors as f64);
            responses[slot] = response;
            slowdowns[slot] = response / lower.max(1.0);
            outstanding -= 1;
        }

        if outstanding == 0 {
            break steady_stats(
                cfg,
                &responses,
                &slowdowns,
                arrivals,
                completed_work,
                &engine,
                &detector,
            );
        }

        if let Some(reason) = saturation_trip(cfg, &engine, &detector) {
            break unstable_report(reason, arrivals, measured - outstanding, &engine);
        }

        // Event-driven macro-stepping: between the real quantum just
        // executed and the next driver-level event (arrival admission,
        // trend evaluation, budget edge), jump the core across frozen
        // quanta in bulk. The core declines whenever a completion or a
        // request change could occur, so nothing observable is skipped.
        while let Some(len) = engine.frozen_quantum_len() {
            let bound = frozen_window_bound(
                engine.now(),
                len,
                next_arrival,
                detector.quanta_until_trend_check(),
                engine.quanta(),
                cfg.max_quanta,
            );
            let advanced = engine.advance_frozen(bound);
            if advanced == 0 {
                break;
            }
            detector.record_n(engine.jobs_in_system(), advanced);
            if let Some(reason) = saturation_trip(cfg, &engine, &detector) {
                break 'run unstable_report(reason, arrivals, measured - outstanding, &engine);
            }
        }
    };
    (outcome, engine.into_probe())
}

/// The steady outcome, assembled from the measurement buffers once the
/// last measured job completed.
#[allow(clippy::too_many_arguments)]
fn steady_stats<A: Allocator, P: Probe>(
    cfg: &OpenConfig,
    responses: &[f64],
    slowdowns: &[f64],
    arrivals: u64,
    completed_work: u64,
    engine: &QuantumCore<Box<dyn JobExecutor + Send>, Box<dyn RequestCalculator + Send>, A, P>,
    detector: &SaturationDetector,
) -> OpenOutcome {
    let response = batch_means(responses, cfg.batches)
        .expect("validate() guarantees one observation per batch");
    let slowdown = percentiles(slowdowns).expect("measured_jobs > 0");
    let horizon = engine.now();
    OpenOutcome::Steady(SteadyStats {
        response,
        slowdown,
        completed: cfg.measured_jobs,
        arrivals,
        quanta: engine.quanta(),
        horizon,
        mean_jobs_in_system: detector.mean_jobs_in_system(),
        peak_jobs_in_system: detector.peak_jobs_in_system(),
        measured_utilization: measured_utilization(completed_work, cfg.processors, horizon),
    })
}

/// Evaluates the saturation detector and the quanta budget — the same
/// check, in the same order, after every executed quantum (bulk windows
/// end exactly on trend-evaluation and budget edges, so evaluating once
/// per window sees what per-quantum evaluation would have seen).
fn saturation_trip<A: Allocator, P: Probe>(
    cfg: &OpenConfig,
    engine: &QuantumCore<Box<dyn JobExecutor + Send>, Box<dyn RequestCalculator + Send>, A, P>,
    detector: &SaturationDetector,
) -> Option<SaturationReason> {
    detector.check().or_else(|| {
        (engine.quanta() >= cfg.max_quanta).then_some(SaturationReason::HorizonExhausted {
            quanta: cfg.max_quanta,
        })
    })
}

/// The unstable outcome at the moment `reason` tripped.
fn unstable_report<A: Allocator, P: Probe>(
    reason: SaturationReason,
    arrivals: u64,
    completed: u64,
    engine: &QuantumCore<Box<dyn JobExecutor + Send>, Box<dyn RequestCalculator + Send>, A, P>,
) -> OpenOutcome {
    OpenOutcome::Unstable(UnstableReport {
        reason,
        quanta: engine.quanta(),
        horizon: engine.now(),
        jobs_in_system: engine.jobs_in_system() as u64,
        completed,
        arrivals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use abg_alloc::DynamicEquiPartition;
    use abg_control::AControl;
    use abg_dag::PhasedJob;
    use abg_sched::PipelinedExecutor;
    use abg_workload::{mean_gap_for_utilization, ArrivalProcess};

    /// Constant width-2, 40-level jobs: T1 = 80, T∞ = 40.
    fn constant_job() -> Box<dyn JobExecutor + Send> {
        Box::new(PipelinedExecutor::new(PhasedJob::constant(2, 40)))
    }

    fn config(rho: f64) -> OpenConfig {
        OpenConfig {
            processors: 16,
            quantum_len: 10,
            arrivals: ArrivalProcess::Poisson {
                mean_gap: mean_gap_for_utilization(rho, 16, 80.0),
            },
            warmup_jobs: 50,
            measured_jobs: 200,
            batches: 10,
            max_quanta: 2_000_000,
            saturation: SaturationConfig::default(),
            seed: 0x0BE7,
        }
    }

    fn run(cfg: &OpenConfig) -> OpenOutcome {
        run_open_system(
            cfg,
            DynamicEquiPartition::new(cfg.processors),
            |_rng, _recycled| constant_job(),
            || Box::new(AControl::new(0.2)),
        )
    }

    #[test]
    fn recycling_executors_changes_nothing_observable() {
        // Same run twice: one factory drops every recycled executor and
        // builds fresh, the other resets and reuses. The outcomes must
        // be identical — recycling is an allocation-lifetime change.
        let cfg = config(0.5);
        let fresh = run(&cfg);
        let mut reused = 0u64;
        let recycled = run_open_system(
            &cfg,
            DynamicEquiPartition::new(cfg.processors),
            |_rng, recycled| {
                if let Some(mut ex) = recycled {
                    if ex.try_reset() {
                        reused += 1;
                        return ex;
                    }
                }
                constant_job()
            },
            || Box::new(AControl::new(0.2)),
        );
        assert_eq!(fresh, recycled);
        assert!(reused > 100, "pool must actually be exercised: {reused}");
    }

    #[test]
    fn light_load_reaches_steady_state_with_finite_statistics() {
        let out = run(&config(0.3));
        let stats = out.steady().expect("rho = 0.3 must be stable");
        assert_eq!(stats.completed, 200);
        assert!(stats.response.mean.is_finite() && stats.response.mean >= 40.0);
        assert!(stats.response.half_width.is_finite());
        assert!(stats.slowdown.p50 >= 1.0, "slowdown below its lower bound");
        assert!(stats.slowdown.p50 <= stats.slowdown.p95);
        assert!(stats.slowdown.p95 <= stats.slowdown.p99);
        assert!(stats.measured_utilization > 0.05 && stats.measured_utilization < 1.0);
        assert!(stats.arrivals >= 250, "arrivals kept flowing past warmup");
    }

    #[test]
    fn overload_is_flagged_unstable_not_hung() {
        let out = run(&config(1.5));
        match out {
            OpenOutcome::Unstable(report) => {
                assert!(
                    matches!(
                        report.reason,
                        SaturationReason::QueueGrowth { .. } | SaturationReason::InSystemCap { .. }
                    ),
                    "expected a queue-based trip, got {:?}",
                    report.reason
                );
                assert!(report.jobs_in_system > 0);
            }
            OpenOutcome::Steady(s) => panic!("rho = 1.5 reported steady: {s:?}"),
        }
    }

    #[test]
    fn runs_are_deterministic_for_a_fixed_seed() {
        let a = run(&config(0.4));
        let b = run(&config(0.4));
        assert_eq!(a, b);
        let mut other = config(0.4);
        other.seed ^= 1;
        assert_ne!(run(&other), a, "seed must matter");
    }

    #[test]
    fn heavier_stable_load_has_larger_response() {
        let light = run(&config(0.15));
        let heavy = run(&config(0.75));
        let (light, heavy) = (light.steady().unwrap(), heavy.steady().unwrap());
        assert!(
            heavy.response.mean >= light.response.mean,
            "queueing delay should grow with load: {} vs {}",
            heavy.response.mean,
            light.response.mean
        );
        assert!(heavy.mean_jobs_in_system > light.mean_jobs_in_system);
    }

    #[test]
    fn trace_arrivals_drive_the_driver_too() {
        let mut cfg = config(0.3);
        cfg.arrivals = ArrivalProcess::Trace {
            gaps: vec![20, 0, 40],
        };
        let out = run(&cfg);
        assert!(out.is_steady(), "deterministic gaps at light load");
    }

    #[test]
    fn quanta_budget_reports_horizon_exhausted() {
        let mut cfg = config(0.3);
        cfg.max_quanta = 16;
        match run(&cfg) {
            OpenOutcome::Unstable(report) => {
                assert!(matches!(
                    report.reason,
                    SaturationReason::HorizonExhausted { quanta: 16 }
                ));
            }
            OpenOutcome::Steady(_) => panic!("16 quanta cannot finish 250 jobs"),
        }
    }

    #[test]
    #[should_panic(expected = "one observation per batch")]
    fn too_few_measured_jobs_for_batches_rejected() {
        let mut cfg = config(0.3);
        cfg.measured_jobs = 4;
        cfg.batches = 10;
        let _ = run(&cfg);
    }

    #[test]
    fn validate_reports_typed_errors_with_the_historical_messages() {
        let base = config(0.3);
        assert_eq!(base.validate(), Ok(()));

        type Mutate<'a> = &'a dyn Fn(&mut OpenConfig);
        let cases: [(Mutate, ConfigError, &str); 5] = [
            (
                &|c| c.processors = 0,
                ConfigError::NoProcessors,
                "machine must have processors",
            ),
            (
                &|c| c.measured_jobs = 0,
                ConfigError::NothingToMeasure,
                "nothing to measure",
            ),
            (
                &|c| c.batches = 1,
                ConfigError::TooFewBatches,
                "batch means needs at least two batches",
            ),
            (
                &|c| {
                    c.measured_jobs = 4;
                    c.batches = 10;
                },
                ConfigError::TooFewObservations {
                    measured_jobs: 4,
                    batches: 10,
                },
                "need at least one observation per batch (4 jobs < 10 batches)",
            ),
            (
                &|c| c.max_quanta = 0,
                ConfigError::NoQuantaBudget,
                "need a positive quanta budget",
            ),
        ];
        for (mutate, expected, message) in cases {
            let mut cfg = base.clone();
            mutate(&mut cfg);
            let err = cfg.validate().unwrap_err();
            assert_eq!(err, expected);
            // assert_valid (and with it the drivers) must keep panicking
            // with the exact messages the old asserts produced.
            assert_eq!(err.to_string(), message);
        }
    }

    #[test]
    fn zero_horizon_abort_yields_zero_utilization_not_nan() {
        // A run aborted before executing a single quantum used to feed
        // `0 / (P · 0)` into the utilization — a NaN that poisoned any
        // aggregation over it.
        assert_eq!(measured_utilization(0, 16, 0).to_bits(), 0.0_f64.to_bits());
        // Normal case unchanged.
        assert_eq!(measured_utilization(320, 16, 10), 2.0);
        // The companion statistic over an empty detector history is
        // likewise a plain zero.
        let detector = SaturationDetector::new(SaturationConfig::default());
        assert_eq!(detector.mean_jobs_in_system().to_bits(), 0.0_f64.to_bits());
    }
}
