//! Property tests for release schedules and arrival streams: the
//! closed-system sampler ([`ReleaseSchedule::sample`]) and the
//! open-system stream ([`ArrivalProcess::stream`]).

use abg_workload::{ArrivalProcess, ReleaseSchedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Batched schedules release every job at step 0, whatever the set
    /// size or rng state.
    #[test]
    fn batched_releases_are_all_zero(n in 0usize..200, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let releases = ReleaseSchedule::Batched.sample(n, &mut rng);
        prop_assert_eq!(releases.len(), n);
        prop_assert!(releases.iter().all(|&r| r == 0));
    }

    /// Uniform releases stay inside `[0, horizon]` inclusive.
    #[test]
    fn uniform_releases_respect_the_horizon(
        n in 0usize..200,
        horizon in 0u64..100_000,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let releases = ReleaseSchedule::Uniform { horizon }.sample(n, &mut rng);
        prop_assert_eq!(releases.len(), n);
        prop_assert!(releases.iter().all(|&r| r <= horizon));
    }

    /// Poisson releases are produced in arrival order: the sampled
    /// sequence is non-decreasing (gaps are non-negative by
    /// construction).
    #[test]
    fn poisson_releases_are_non_decreasing(
        n in 1usize..200,
        // Bits of a gap in [0.5, ~64.5): always positive and finite.
        gap_scale in 0u8..128,
        seed in 0u64..1_000_000,
    ) {
        let mean_gap = 0.5 + gap_scale as f64 / 2.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let releases = ReleaseSchedule::Poisson { mean_gap }.sample(n, &mut rng);
        prop_assert_eq!(releases.len(), n);
        prop_assert!(releases.windows(2).all(|w| w[0] <= w[1]), "{:?}", releases);
    }

    /// The unbounded stream agrees with the closed-system sampler on
    /// monotonicity and eventually advances past any horizon.
    #[test]
    fn arrival_streams_are_monotone_and_unbounded(
        mean_gap_half in 1u32..100,
        seed in 0u64..1_000_000,
    ) {
        let process = ArrivalProcess::Poisson { mean_gap: mean_gap_half as f64 / 2.0 };
        let mut stream = process.stream();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut prev = 0u64;
        for _ in 0..256 {
            let t = stream.next_arrival(&mut rng);
            prop_assert!(t >= prev, "arrivals went backwards: {t} < {prev}");
            prev = t;
        }
        // 256 draws with a positive mean gap advance with overwhelming
        // probability; equality would need every single gap to round to
        // zero, which the exponential sampler cannot sustain.
        prop_assert!(prev > 0);
    }

    /// Independently seeded substreams preserve the aggregate arrival
    /// rate: each of the `n` substreams of a Poisson stream is a renewal
    /// process with mean gap `n · g`, so the union of their arrivals
    /// over a common horizon offers the same utilization as the parent
    /// stream — within confidence bounds of the Poisson count.
    #[test]
    fn substream_union_preserves_the_aggregate_rate(
        mean_gap_half in 4u32..40,
        n in 2usize..6,
        seed in 0u64..1_000_000,
    ) {
        let mean_gap = mean_gap_half as f64 / 2.0;
        let process = ArrivalProcess::Poisson { mean_gap };
        let per_sub = 400usize;
        // Drive every substream from its own SplitMix64-derived seed —
        // the independent-streams mode a sharded driver uses when it
        // wants per-shard RNG substreams rather than one shared path.
        let mut last_times = Vec::new();
        let mut all_times: Vec<u64> = Vec::new();
        for mut sub in process.stream().split(n, seed) {
            let mut rng = StdRng::seed_from_u64(sub.seed);
            let times: Vec<u64> = (0..per_sub).map(|_| sub.next_arrival(&mut rng)).collect();
            last_times.push(*times.last().unwrap());
            all_times.extend(times);
        }
        // Count the union's arrivals over the horizon every substream
        // covered, so no substream's tail is truncated unevenly.
        let horizon = *last_times.iter().min().unwrap();
        prop_assume!(horizon > 0);
        let count = all_times.iter().filter(|&&t| t <= horizon).count() as f64;
        let expected = horizon as f64 / mean_gap;
        // The union of n independent decimated streams has Poisson-like
        // counts at the aggregate rate; 5 standard deviations (plus a
        // small-count floor) keeps the flake probability negligible
        // across the 256 proptest cases.
        let tolerance = 5.0 * expected.sqrt() + 10.0;
        prop_assert!(
            (count - expected).abs() <= tolerance,
            "union rate off: {count} arrivals vs {expected} expected (gap {mean_gap}, n {n})"
        );
    }

    /// Trace streams replay their gaps cyclically as a running prefix
    /// sum.
    #[test]
    fn trace_streams_replay_gaps_cyclically(
        gaps in prop::collection::vec(0u64..50, 1..12),
        rounds in 1usize..4,
    ) {
        prop_assume!(gaps.iter().any(|&g| g > 0));
        let process = ArrivalProcess::Trace { gaps: gaps.clone() };
        let mut stream = process.stream();
        let mut rng = StdRng::seed_from_u64(0);
        let mut expected = 0u64;
        for round in 0..rounds {
            for (i, &g) in gaps.iter().enumerate() {
                expected += g;
                let got = stream.next_arrival(&mut rng);
                prop_assert_eq!(got, expected, "round {} gap {}", round, i);
            }
        }
    }
}

// The panic paths are deterministic contract checks, not properties.

#[test]
#[should_panic(expected = "mean inter-arrival gap must be positive")]
fn poisson_schedule_rejects_zero_gap() {
    let mut rng = StdRng::seed_from_u64(1);
    let _ = ReleaseSchedule::Poisson { mean_gap: 0.0 }.sample(3, &mut rng);
}

#[test]
#[should_panic(expected = "mean inter-arrival gap must be positive")]
fn poisson_schedule_rejects_negative_gap() {
    let mut rng = StdRng::seed_from_u64(1);
    let _ = ReleaseSchedule::Poisson { mean_gap: -4.0 }.sample(3, &mut rng);
}

#[test]
#[should_panic(expected = "mean inter-arrival gap must be positive")]
fn poisson_schedule_rejects_nan_gap() {
    let mut rng = StdRng::seed_from_u64(1);
    let _ = ReleaseSchedule::Poisson { mean_gap: f64::NAN }.sample(3, &mut rng);
}

#[test]
#[should_panic(expected = "mean inter-arrival gap must be positive")]
fn poisson_process_rejects_non_positive_gap() {
    let _ = ArrivalProcess::Poisson { mean_gap: 0.0 }.stream();
}

#[test]
#[should_panic(expected = "arrival trace must contain gaps")]
fn trace_process_rejects_empty_trace() {
    let _ = ArrivalProcess::Trace { gaps: vec![] }.stream();
}

#[test]
#[should_panic(expected = "positive gap so time advances")]
fn trace_process_rejects_all_zero_gaps() {
    let _ = ArrivalProcess::Trace {
        gaps: vec![0, 0, 0],
    }
    .stream();
}
