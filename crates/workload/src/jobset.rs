//! Job sets with a target system load (the Figure-6 workload).

use crate::mixed_factor_job;
use crate::release::ReleaseSchedule;
use abg_dag::PhasedJob;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Specification of a multiprogrammed job set.
///
/// The paper defines **load** as "the average parallelism of the entire
/// job set normalized by the total number of processors"; the generator
/// keeps adding mixed-factor jobs until the accumulated average
/// parallelism `Σ_j T1_j/T∞_j` reaches `load · P` (always at least one
/// job, and never more than `max_jobs` — Theorem 5 needs `|J| ≤ P`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSetSpec {
    /// Machine size `P`.
    pub processors: u32,
    /// Quantum length `L` (steps = levels under the reference schedule).
    pub quantum_len: u64,
    /// Target load (average parallelism of the set / `P`).
    pub load: f64,
    /// Largest parallel-phase width sampled for member jobs.
    pub max_factor: u64,
    /// Phase pairs per member job.
    pub pairs: u64,
    /// Hard cap on the number of jobs (defaults should keep `|J| ≤ P`).
    pub max_jobs: usize,
    /// Arrival process.
    pub release: ReleaseSchedule,
}

impl JobSetSpec {
    /// A paper-style spec: `P = 128`, `L = 1000`, factors up to 100,
    /// batched arrivals, `|J| ≤ P`.
    pub fn paper_default(load: f64) -> Self {
        Self {
            processors: 128,
            quantum_len: 1000,
            load,
            max_factor: 100,
            pairs: 3,
            max_jobs: 128,
            release: ReleaseSchedule::Batched,
        }
    }

    /// Generates a job set meeting the spec.
    ///
    /// # Panics
    ///
    /// Panics if `load <= 0`, `processors == 0`, or `max_jobs == 0`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> JobSet {
        assert!(self.load > 0.0, "load must be positive");
        assert!(self.processors > 0, "machine must have processors");
        assert!(self.max_jobs > 0, "need room for at least one job");
        let target = self.load * self.processors as f64;
        let mut jobs = Vec::new();
        let mut accumulated = 0.0;
        while accumulated < target && jobs.len() < self.max_jobs {
            let job = mixed_factor_job(self.max_factor, self.quantum_len, self.pairs, rng);
            accumulated += job.average_parallelism();
            jobs.push(job);
        }
        let releases = self.release.sample(jobs.len(), rng);
        JobSet {
            jobs,
            releases,
            processors: self.processors,
            quantum_len: self.quantum_len,
        }
    }
}

/// A generated job set: the member jobs, their release steps, and the
/// machine they were sized for.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobSet {
    /// Member jobs.
    pub jobs: Vec<PhasedJob>,
    /// Release step of each job (same indexing as `jobs`).
    pub releases: Vec<u64>,
    /// Machine size the set was sized against.
    pub processors: u32,
    /// Quantum length the set was sized against.
    pub quantum_len: u64,
}

impl JobSet {
    /// The achieved load: `Σ_j (T1_j/T∞_j) / P`.
    pub fn load(&self) -> f64 {
        self.jobs
            .iter()
            .map(PhasedJob::average_parallelism)
            .sum::<f64>()
            / self.processors as f64
    }

    /// Total work of the set.
    pub fn total_work(&self) -> u64 {
        self.jobs.iter().map(PhasedJob::work).sum()
    }

    /// Number of member jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_spec(load: f64) -> JobSetSpec {
        JobSetSpec {
            processors: 32,
            quantum_len: 8,
            load,
            max_factor: 10,
            pairs: 2,
            max_jobs: 32,
            release: ReleaseSchedule::Batched,
        }
    }

    #[test]
    fn load_reaches_target_approximately() {
        let mut rng = StdRng::seed_from_u64(21);
        for load in [0.5, 1.0, 2.0] {
            let set = small_spec(load).generate(&mut rng);
            assert!(!set.is_empty());
            // Load overshoots by at most one job's parallelism.
            assert!(set.load() >= load || set.len() == set.jobs.capacity().max(32));
            assert!(
                set.load() <= load + 10.0 / 32.0 + 1.0,
                "load {}",
                set.load()
            );
        }
    }

    #[test]
    fn max_jobs_caps_the_set() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut spec = small_spec(100.0);
        spec.max_jobs = 5;
        let set = spec.generate(&mut rng);
        assert_eq!(set.len(), 5);
    }

    #[test]
    fn releases_match_job_count() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut spec = small_spec(1.0);
        spec.release = ReleaseSchedule::Uniform { horizon: 50 };
        let set = spec.generate(&mut rng);
        assert_eq!(set.jobs.len(), set.releases.len());
    }

    #[test]
    fn paper_default_respects_job_bound() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut spec = JobSetSpec::paper_default(6.0);
        // Shrink member jobs so the test is cheap; the cap logic is what
        // is under test.
        spec.quantum_len = 8;
        spec.pairs = 1;
        let set = spec.generate(&mut rng);
        assert!(set.len() <= 128, "Theorem 5 requires |J| ≤ P");
    }

    #[test]
    #[should_panic(expected = "load must be positive")]
    fn zero_load_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = small_spec(0.0).generate(&mut rng);
    }
}
