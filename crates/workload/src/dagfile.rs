//! A line-based on-disk format for weighted task dags.
//!
//! The format is deliberately minimal — three directives, one per line,
//! `#` comments — so traces are diffable, hand-editable, and trivially
//! producible from other tools:
//!
//! ```text
//! # any comment
//! tasks 4
//! weight 0 2.5
//! weight 2 1.5
//! edge 0 1
//! edge 0 2
//! edge 1 3
//! edge 2 3
//! ```
//!
//! * `tasks <n>` — declares `n` tasks with ids `0..n`; must appear
//!   before any `weight` or `edge` line, exactly once.
//! * `weight <id> <w>` — sets one task's weight (`f64`, finite and
//!   positive; validated by the same rule as `DagWire` decoding).
//!   Omitted tasks keep weight 1. Files with no weight lines load as
//!   unit dags with no weight table at all.
//! * `edge <from> <to>` — one precedence edge.
//!
//! [`write_dag`] emits weights via Rust's shortest-round-trip float
//! formatting, so save → load reproduces every weight bit-for-bit
//! (generator weights are exact binary fractions, but the guarantee
//! holds for arbitrary `f64`s).

use abg_dag::{DagBuilder, DagError, ExplicitDag, TaskId};
use std::fmt::{self, Write as _};
use std::path::Path;

/// Errors from parsing or loading a dag file.
#[derive(Debug)]
pub enum DagFileError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// A line failed to parse; carries the 1-based line number.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong on that line.
        message: String,
    },
    /// The parsed structure is not a valid dag (cycle, bad weight, …).
    Dag(DagError),
}

impl fmt::Display for DagFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagFileError::Io(e) => write!(f, "dag file i/o error: {e}"),
            DagFileError::Parse { line, message } => {
                write!(f, "dag file parse error on line {line}: {message}")
            }
            DagFileError::Dag(e) => write!(f, "dag file rejected: {e}"),
        }
    }
}

impl std::error::Error for DagFileError {}

impl From<std::io::Error> for DagFileError {
    fn from(e: std::io::Error) -> Self {
        DagFileError::Io(e)
    }
}

impl From<DagError> for DagFileError {
    fn from(e: DagError) -> Self {
        DagFileError::Dag(e)
    }
}

/// Serialises a dag to the text format: a `tasks` header, one `weight`
/// line per task when the dag carries a weight table, and one `edge`
/// line per precedence edge in task order.
pub fn write_dag(dag: &ExplicitDag) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# abg dag: {} tasks", dag.num_tasks());
    let _ = writeln!(out, "tasks {}", dag.num_tasks());
    if let Some(wp) = dag.weight_profile() {
        for (i, w) in wp.weights().iter().enumerate() {
            let _ = writeln!(out, "weight {i} {w}");
        }
    }
    for i in 0..dag.num_tasks() {
        let t = TaskId(i as u32);
        for &s in dag.successors(t) {
            let _ = writeln!(out, "edge {} {}", i, s.index());
        }
    }
    out
}

fn parse_field<T: std::str::FromStr>(
    token: Option<&str>,
    what: &str,
    line: usize,
) -> Result<T, DagFileError> {
    let token = token.ok_or_else(|| DagFileError::Parse {
        line,
        message: format!("missing {what}"),
    })?;
    token.parse().map_err(|_| DagFileError::Parse {
        line,
        message: format!("invalid {what} '{token}'"),
    })
}

/// Parses the text format into an [`ExplicitDag`]. Weight validity and
/// acyclicity are enforced by the dag builder, so a loaded dag satisfies
/// exactly the invariants of a programmatically built one.
pub fn parse_dag(text: &str) -> Result<ExplicitDag, DagFileError> {
    let mut builder: Option<DagBuilder> = None;
    let mut saw_weight = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        let directive = tokens.next().expect("non-empty line has a first token");
        match directive {
            "tasks" => {
                if builder.is_some() {
                    return Err(DagFileError::Parse {
                        line,
                        message: "duplicate 'tasks' directive".into(),
                    });
                }
                let n: usize = parse_field(tokens.next(), "task count", line)?;
                let mut b = DagBuilder::with_capacity(n);
                for _ in 0..n {
                    b.add_task();
                }
                builder = Some(b);
            }
            "weight" => {
                let b = builder.as_mut().ok_or_else(|| DagFileError::Parse {
                    line,
                    message: "'weight' before 'tasks'".into(),
                })?;
                let id: u32 = parse_field(tokens.next(), "task id", line)?;
                let w: f64 = parse_field(tokens.next(), "weight", line)?;
                b.set_weight(TaskId(id), w)?;
                saw_weight = true;
            }
            "edge" => {
                let b = builder.as_mut().ok_or_else(|| DagFileError::Parse {
                    line,
                    message: "'edge' before 'tasks'".into(),
                })?;
                let from: u32 = parse_field(tokens.next(), "edge source", line)?;
                let to: u32 = parse_field(tokens.next(), "edge target", line)?;
                b.add_edge(TaskId(from), TaskId(to))?;
            }
            other => {
                return Err(DagFileError::Parse {
                    line,
                    message: format!("unknown directive '{other}'"),
                });
            }
        }
        if let Some(extra) = tokens.next() {
            return Err(DagFileError::Parse {
                line,
                message: format!("trailing token '{extra}'"),
            });
        }
    }
    let builder = builder.ok_or_else(|| DagFileError::Parse {
        line: 0,
        message: "missing 'tasks' directive".into(),
    })?;
    let _ = saw_weight; // all-unit weight files legitimately stay unit
    Ok(builder.build()?)
}

/// Writes a dag to `path` in the text format.
pub fn save_dag<P: AsRef<Path>>(path: P, dag: &ExplicitDag) -> Result<(), DagFileError> {
    std::fs::write(path, write_dag(dag))?;
    Ok(())
}

/// Loads a dag from a text-format file at `path`.
pub fn load_dag<P: AsRef<Path>>(path: P) -> Result<ExplicitDag, DagFileError> {
    parse_dag(&std::fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workflow::WorkflowKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn parses_the_documented_example() {
        let d = parse_dag(
            "# any comment\n\
             tasks 4\n\
             weight 0 2.5\n\
             weight 2 1.5\n\
             edge 0 1\n\
             edge 0 2\n\
             edge 1 3\n\
             edge 2 3\n",
        )
        .unwrap();
        assert_eq!(d.num_tasks(), 4);
        assert!(!d.is_unit_weight());
        assert_eq!(d.weight(TaskId(0)), 2.5);
        assert_eq!(d.weight(TaskId(1)), 1.0);
        assert_eq!(d.task_cost(TaskId(2)), 2);
        assert_eq!(d.span(), 3);
        assert_eq!(d.work(), 3 + 1 + 2 + 1);
    }

    #[test]
    fn round_trips_every_workflow_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(23);
        for kind in WorkflowKind::ALL {
            let d = kind.generate(7, &mut rng);
            let reloaded = parse_dag(&write_dag(&d)).unwrap();
            assert_eq!(d.num_tasks(), reloaded.num_tasks(), "{kind}");
            assert_eq!(d.work(), reloaded.work(), "{kind}");
            assert_eq!(d.weighted_span(), reloaded.weighted_span(), "{kind}");
            let w1: Vec<u64> = d
                .weight_profile()
                .unwrap()
                .weights()
                .iter()
                .map(|w| w.to_bits())
                .collect();
            let w2: Vec<u64> = reloaded
                .weight_profile()
                .unwrap()
                .weights()
                .iter()
                .map(|w| w.to_bits())
                .collect();
            assert_eq!(w1, w2, "{kind}: weights must round-trip bit-for-bit");
            for i in 0..d.num_tasks() {
                let t = TaskId(i as u32);
                assert_eq!(d.successors(t), reloaded.successors(t), "{kind} task {i}");
            }
        }
    }

    #[test]
    fn unit_dag_round_trips_without_a_weight_table() {
        let d = abg_dag::generate::fork_join_diamond(5);
        let reloaded = parse_dag(&write_dag(&d)).unwrap();
        assert!(reloaded.is_unit_weight());
        assert!(reloaded.weight_profile().is_none());
        assert_eq!(d.work(), reloaded.work());
        assert_eq!(d.span(), reloaded.span());
    }

    #[test]
    fn save_and_load_through_the_filesystem() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = WorkflowKind::Montage.generate(4, &mut rng);
        let path = std::env::temp_dir().join("abg_dagfile_roundtrip_test.dag");
        save_dag(&path, &d).unwrap();
        let reloaded = load_dag(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(d.work(), reloaded.work());
        assert_eq!(d.weighted_span(), reloaded.weighted_span());
    }

    #[test]
    fn rejects_malformed_input_with_line_numbers() {
        let err = parse_dag("tasks 2\nedge 0\n").unwrap_err();
        assert!(
            err.to_string().contains("line 2") && err.to_string().contains("edge target"),
            "{err}"
        );
        let err = parse_dag("weight 0 2.0\n").unwrap_err();
        assert!(err.to_string().contains("'weight' before 'tasks'"), "{err}");
        let err = parse_dag("tasks 2\ntasks 2\n").unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        let err = parse_dag("tasks 1\nweight 0 two\n").unwrap_err();
        assert!(err.to_string().contains("invalid weight 'two'"), "{err}");
        let err = parse_dag("tasks 2\nedge 0 1 9\n").unwrap_err();
        assert!(err.to_string().contains("trailing token '9'"), "{err}");
        let err = parse_dag("").unwrap_err();
        assert!(err.to_string().contains("missing 'tasks'"), "{err}");
        let err = parse_dag("nodes 3\n").unwrap_err();
        assert!(
            err.to_string().contains("unknown directive 'nodes'"),
            "{err}"
        );
    }

    #[test]
    fn invalid_weights_surface_the_typed_dag_error() {
        let err = parse_dag("tasks 1\nweight 0 -2.0\n").unwrap_err();
        assert!(
            err.to_string()
                .contains("invalid weight for task t0: must be finite and positive"),
            "{err}"
        );
        let err = parse_dag("tasks 2\nedge 0 1\nedge 1 0\n").unwrap_err();
        assert!(matches!(err, DagFileError::Dag(_)), "{err}");
    }
}
